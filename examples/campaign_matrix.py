#!/usr/bin/env python
"""Campaign orchestration: a 2-server × 2-workload × 2-environment sweep.

Expands the matrix into 8 independent jobs, runs them across worker
processes, and exports the merged results — the paper's "many runs"
methodology in one script.  Re-running after an interruption resumes
from the on-disk shards instead of starting over.

Usage::

    python examples/campaign_matrix.py [output_dir] [n_workers]
"""

import sys

from repro.campaign import CampaignExecutor, CampaignSpec, JobStore
from repro.core.retrieval import retrieve
from repro.core.visualization import ascii_boxplot


def main() -> None:
    output_dir = sys.argv[1] if len(sys.argv) > 1 else "campaign-out"
    n_workers = int(sys.argv[2]) if len(sys.argv) > 2 else 2

    spec = CampaignSpec(
        name="example-sweep",
        servers=["vanilla", "papermc"],
        workloads=["control", "players"],
        environments=["das5-2core", "aws-t3.large"],
        bot_counts=[10],
        iterations=2,
        duration_s=10.0,
        seed=7,
        output_dir=output_dir,
        # Cloud players cells start with drained burst credits so the
        # short example run still shows throttling behaviour.
        overrides=[
            {
                "where": {
                    "workload": "players",
                    "environment": "aws-t3.large",
                },
                "set": {"warm_machines": True},
            }
        ],
    )
    print(
        f"{spec.name}: {spec.n_cells} cells x {spec.iterations} iterations "
        f"on {n_workers} worker(s) -> {output_dir}/"
    )

    def progress(job, n_done, n_total):
        print(f"  [{n_done}/{n_total}] {job.cell.key()}")

    executor = CampaignExecutor(spec, jobs=n_workers, progress=progress)
    already_done = JobStore(spec.output_dir).completed_ids()
    result = executor.run(resume=bool(already_done))

    export_dir = retrieve(result, f"{output_dir}/export")
    print(f"\nExported {len(result.iterations)} iterations to {export_dir}")

    print("\nISR per (server, environment), pooled over workloads:")
    for server in spec.servers:
        for environment in spec.environments:
            isrs = [
                it.isr
                for it in result.iterations
                if it.server == server and it.environment == environment
            ]
            mean_isr = sum(isrs) / len(isrs)
            print(f"  {server:10s} {environment:14s} ISR {mean_isr:.4f}")

    print("\nTick durations per environment:")
    series = [
        (
            environment,
            [
                t
                for it in result.iterations
                if it.environment == environment
                for t in it.tick_durations_ms
            ],
        )
        for environment in spec.environments
    ]
    print(ascii_boxplot(series))


if __name__ == "__main__":
    main()
