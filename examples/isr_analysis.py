#!/usr/bin/env python
"""ISR metric analysis: why order matters (the paper's §4 / Figure 6).

Builds synthetic tick traces with identical *distributions* but different
*orderings* and compares ISR against standard deviation, Allan variance,
and RFC 3550 jitter; then sweeps the closed-form model ISR(s, lambda).
"""

import numpy as np

from repro.core.visualization import format_table
from repro.metrics import (
    allan_variance,
    clustered_outlier_trace,
    instability_ratio,
    isr_closed_form,
    periodic_outlier_trace,
    rfc3550_jitter,
    spread_outlier_trace,
)

BUDGET_MS = 50.0


def main() -> None:
    clustered = clustered_outlier_trace(1000, 5, 20.0)
    spread = spread_outlier_trace(1000, 5, 20.0)
    assert sorted(clustered) == sorted(spread)

    print("Two 1000-tick traces, 5 outliers of 1000 ms each;")
    print("identical distributions, different order:\n")
    print(format_table(
        ["metric", "outliers clustered", "outliers spread", "verdict"],
        [
            ["std dev [ms]", f"{np.std(clustered):.2f}",
             f"{np.std(spread):.2f}", "blind to order"],
            ["Allan variance", f"{allan_variance(list(clustered)):.0f}",
             f"{allan_variance(list(spread)):.0f}", "order-aware"],
            ["RFC3550 jitter [ms]", f"{rfc3550_jitter(list(clustered)):.2f}",
             f"{rfc3550_jitter(list(spread)):.2f}",
             "order-aware, not normalized"],
            ["ISR", f"{instability_ratio(clustered, BUDGET_MS):.4f}",
             f"{instability_ratio(spread, BUDGET_MS):.4f}",
             "order-aware, in [0, 1]"],
        ],
    ))

    print("\nClosed-form ISR(s, lambda) = (s-1)/(s+lambda-1):")
    rows = []
    for s in (2, 10, 20):
        row = [f"s={s}"]
        for lam in (2, 5, 10, 25, 50, 100):
            model = isr_closed_form(s, lam)
            measured = instability_ratio(
                periodic_outlier_trace(lam * 200, lam, s), BUDGET_MS
            )
            row.append(f"{model:.3f}/{measured:.3f}")
        rows.append(row)
    print(format_table(
        ["curve (model/measured)", "lam=2", "5", "10", "25", "50", "100"],
        rows,
    ))
    print("\nPaper's worked example: s=10, lambda=25 ->"
          f" ISR = {isr_closed_form(10, 25):.2f} (paper: 0.26)")


if __name__ == "__main__":
    main()
