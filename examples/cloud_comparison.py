#!/usr/bin/env python
"""Cloud vs self-hosted comparison (the paper's MF3 / insight I3).

Runs the Players workload (25 bots) for several iterations on DAS-5, Azure
and AWS for all three server variants, then prints ISR and tick-time box
plots per environment — the data a game operator needs to pick a host.
"""

from repro.core import ExperimentRunner, MeterstickConfig
from repro.core.visualization import ascii_boxplot, format_table

ENVIRONMENTS = ("das5-2core", "azure-d2v3", "aws-t3.large")
SERVERS = ("vanilla", "forge", "papermc")


def main() -> None:
    rows = []
    tick_series = []
    for environment in ENVIRONMENTS:
        config = MeterstickConfig(
            world="players",
            environment=environment,
            iterations=4,
            duration_s=30.0,
            warm_machines=True,
            seed=11,
        )
        print(f"Benchmarking {environment} "
              f"({config.iterations} x {config.duration_s:.0f} s) ...")
        campaign = ExperimentRunner(config).run()
        for server in SERVERS:
            isrs = campaign.isr_values(server)
            ticks = campaign.pooled_tick_durations(server)
            rows.append(
                [
                    environment,
                    server,
                    f"{sorted(isrs)[len(isrs) // 2]:.4f}",
                    f"{max(isrs):.4f}",
                    f"{sum(ticks) / len(ticks):.1f}",
                ]
            )
            tick_series.append((f"{environment[:10]}/{server[:7]}", ticks))

    print("\nPer-iteration ISR and pooled tick times:")
    print(format_table(
        ["environment", "server", "ISR median", "ISR max", "tick mean ms"],
        rows,
    ))
    print("\nTick-time distributions:")
    print(ascii_boxplot(tick_series, width=56, lo=0.0, hi=120.0))
    print(
        "\nReading: self-hosting (DAS-5) is the most stable for every "
        "server; no single game is best on both clouds — pick the cloud "
        "for your MLG (paper insight I3)."
    )


if __name__ == "__main__":
    main()
