#!/usr/bin/env python
"""Build a custom workload against the public API (the paper's R8).

Defines a "griefer raid": a world with a village-like built area where a
walking player detonates scattered TNT charges while two farms keep
running — then benchmarks it on two environments.  Shows how to subclass
:class:`repro.workloads.Workload` and wire custom tick hooks.
"""

from repro.cloud import get_environment
from repro.core import run_iteration
from repro.core.visualization import format_table
from repro.emulation import BotSwarm, BoundedRandomWalk
from repro.mlg.blocks import Block
from repro.mlg.server import MLGServer
from repro.mlg.workreport import WorkReport
from repro.mlg.world import World
from repro.mlg.worldgen import TerrainGenerator
from repro.simtime import SimClock
from repro.workloads import Workload
from repro.workloads.constructs import build_entity_farm, build_stone_farm


class GrieferRaid(Workload):
    """Scattered TNT charges detonating around an inhabited build."""

    name = "griefer-raid"
    display_name = "Griefer Raid"
    description = "walking player + farms + staggered TNT charges"

    def create_world(self, seed: int) -> World:
        world = World(generator=TerrainGenerator(seed=seed))
        # A small "village": cobble houses on the surface.
        world.ensure_chunk(2, 2)
        ground = world.column_height(40, 40)
        for house in range(4):
            bx = 36 + (house % 2) * 10
            bz = 36 + (house // 2) * 10
            world.fill(bx, ground, bz, bx + 5, ground + 3, bz + 5,
                       Block.COBBLESTONE)
        # Buried TNT charges around the village.
        self._charges = []
        for i in range(int(6 * self.scale)):
            cx, cz = 30 + (i * 7) % 28, 30 + (i * 11) % 28
            cy = max(2, world.column_height(cx, cz) - 2)
            world.fill(cx, cy, cz, cx + 1, cy + 1, cz + 1, Block.TNT)
            self._charges.append((cx, cy, cz))
        return world

    def install(self, server: MLGServer, swarm: BotSwarm) -> None:
        build_entity_farm(server, 60, 30)
        build_stone_farm(server, 30, 60)
        charges = list(self._charges)

        def detonate(server_: MLGServer, tick_index: int,
                     report: WorkReport) -> None:
            # One charge every five seconds, starting at t=10 s.
            if tick_index < 200 or tick_index % 100 != 0:
                return
            charge = (tick_index - 200) // 100
            if charge < len(charges):
                x, y, z = charges[charge]
                server_.tnt.prime_region(x, y, z, x + 1, y + 1, z + 1,
                                         fuse_spread=(10, 30))

        server.add_tick_hook(detonate)
        swarm.add_bot(
            "raider",
            behavior=BoundedRandomWalk(28.0, 28.0, 62.0, 62.0),
            spawn_x=45.0, spawn_z=45.0,
        )


def main() -> None:
    rows = []
    for environment in ("das5-2core", "aws-t3.large"):
        env = get_environment(environment)
        machine = env.create_machine(seed=5)
        machine.drain_credits()
        workload = GrieferRaid()
        world = workload.create_world(5)
        server = MLGServer("vanilla", machine, world=world,
                           clock=SimClock(), seed=5)
        import numpy as np

        swarm = BotSwarm(server, env.network, np.random.default_rng(5))
        workload.install(server, swarm)
        server.start()
        deadline = server.clock.now_us + 45_000_000
        while server.clock.now_us < deadline and server.running:
            server.tick()
            swarm.step()
            if server.crashed:
                break
        from repro.metrics import instability_ratio, summarize

        ticks = [r.duration_ms for r in server.tick_records]
        stats = summarize(ticks)
        rows.append(
            [
                environment,
                f"{stats['mean']:.1f}",
                f"{stats['max']:.0f}",
                f"{instability_ratio(ticks, 50.0):.4f}",
                server.tnt.explosions_total,
            ]
        )
    print(format_table(
        ["environment", "tick mean ms", "tick max ms", "ISR", "explosions"],
        rows,
    ))


if __name__ == "__main__":
    main()
