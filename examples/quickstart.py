#!/usr/bin/env python
"""Quickstart: benchmark one MLG server under one workload.

Runs the Farm workload on vanilla Minecraft hosted on an AWS t3.large,
prints tick statistics, the Instability Ratio, and an ASCII view of the
tick-duration trace — the minimal Meterstick loop.

Usage::

    python examples/quickstart.py [workload] [server] [environment]
"""

import sys

from repro.core import run_iteration
from repro.core.visualization import ascii_timeseries
from repro.metrics import NOTICEABLE_MS, UNPLAYABLE_MS


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "farm"
    server = sys.argv[2] if len(sys.argv) > 2 else "vanilla"
    environment = sys.argv[3] if len(sys.argv) > 3 else "aws-t3.large"

    print(f"Running {workload!r} on {server} in {environment} (60 s) ...")
    result = run_iteration(
        workload, server, environment, duration_s=60.0, seed=42
    )

    tick = result.tick_stats()
    print(f"\nTick durations [ms]:")
    print(f"  mean {tick['mean']:.1f}   median {tick['median']:.1f}   "
          f"p95 {tick['p95']:.1f}   max {tick['max']:.0f}")
    print(f"  Instability Ratio (ISR): {result.isr:.4f}")
    print(f"  overloaded (> 50 ms): {100 * sum(1 for t in result.tick_durations_ms if t > 50) / len(result.tick_durations_ms):.1f}% of ticks")

    response = result.response_stats()
    if response:
        print(f"\nResponse times [ms] (chat probe):")
        print(f"  median {response['median']:.1f}   p95 {response['p95']:.1f}"
              f"   max {response['max']:.0f}")
        print(f"  > noticeable ({NOTICEABLE_MS:.0f} ms): "
              f"{100 * response['frac_noticeable']:.1f}%"
              f"   > unplayable ({UNPLAYABLE_MS:.0f} ms): "
              f"{100 * response['frac_unplayable']:.1f}%")

    if result.crashed:
        print(f"\nSERVER CRASHED: {result.crash_reason}")

    print("\nTick trace (one char per ~bucket, darker = longer):")
    print(" ", ascii_timeseries(result.tick_durations_ms, width=76,
                                height_label=" ms"))


if __name__ == "__main__":
    main()
