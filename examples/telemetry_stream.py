"""Streaming telemetry demo: long runs in O(1) memory, live statistics.

Runs one iteration with ``retain_raw=False`` — no per-tick lists are
kept anywhere — and prints the streaming statistics that replace them:
exact moments and ISR, sketched quantiles, per-window CoV, and the
warmup→steady-state boundary.

Usage::

    python examples/telemetry_stream.py [workload] [server] [env] [secs]
"""

import sys

from repro.core import run_iteration


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "farm"
    server = sys.argv[2] if len(sys.argv) > 2 else "vanilla"
    environment = sys.argv[3] if len(sys.argv) > 3 else "aws-t3.large"
    duration_s = float(sys.argv[4]) if len(sys.argv) > 4 else 120.0

    result = run_iteration(
        workload,
        server,
        environment,
        duration_s=duration_s,
        seed=42,
        retain_raw=False,
    )
    assert result.tick_durations_ms == []  # nothing retained...
    tick = result.telemetry["tick"]
    snap = tick["tick_ms"]
    windows = tick["windows"]

    print(f"{workload}/{server} on {environment}, {duration_s:.0f}s:")
    print(f"  ticks observed   {tick['ticks']}")
    print(f"  isr (streaming)  {tick['isr']:.4f}")
    print(
        "  tick_ms          "
        f"mean={snap['mean']:.2f} std={snap['std']:.2f} cov={snap['cov']:.3f}"
    )
    print(
        "  quantiles        "
        f"p50={snap['p50']:.1f} p95={snap['p95']:.1f} p99={snap['p99']:.1f}"
    )
    print(f"  >50ms ticks      {100 * snap['frac_over_budget']:.1f}%")
    if windows["steady"]:
        print(
            f"  steady state     after {windows['warmup_samples']} ticks "
            f"(window {windows['steady_since_window']})"
        )
    else:
        print(f"  steady state     not reached in {windows['n_windows']} windows")
    covs = windows["recent_covs"]
    if covs:
        print(f"  window CoV tail  {' '.join(f'{c:.2f}' for c in covs[-8:])}")
    print(f"  recent ticks     {[round(t, 1) for t in snap['tail'][-10:]]}")


if __name__ == "__main__":
    main()
