#!/usr/bin/env python
"""Lag-machine stress test: watch a griefing construct kill a cloud server.

Runs the Lag workload on DAS-5 (self-hosted: survives with extreme but
stable alternation) and on a warm AWS t3.large (credit-throttled: the
update storm compounds until every client times out and the server stops).
Demonstrates the paper's §5.3 crash and the every-other-tick ISR pattern.
"""

from repro.cloud import get_environment
from repro.core import run_iteration
from repro.core.visualization import ascii_timeseries
from repro.simtime import SimClock


def run(environment: str, warm: bool) -> None:
    env = get_environment(environment)
    machine = env.create_machine(seed=3)
    if warm:
        machine.drain_credits()
    print(f"\n--- Lag workload on {environment}"
          f"{' (warm VM, credits drained)' if warm else ''} ---")
    result = run_iteration(
        "lag", "vanilla", environment, duration_s=60.0, seed=3,
        machine=machine, clock=SimClock(),
    )
    ticks = result.tick_durations_ms
    print(f"ticks executed: {len(ticks)}")
    print(f"tick mean {sum(ticks) / len(ticks):.0f} ms, "
          f"max {max(ticks):.0f} ms, ISR {result.isr:.3f}")
    pulses = ticks[2::2][:10]
    rests = ticks[3::2][:10]
    print(f"pulse ticks (every other): "
          f"{', '.join(f'{t:.0f}' for t in pulses)} ms")
    print(f"rest ticks in between:     "
          f"{', '.join(f'{t:.1f}' for t in rests)} ms")
    if result.crashed:
        print(f"SERVER CRASHED: {result.crash_reason}")
    else:
        print("server survived (stable alternation, maximal ISR)")
    print("trace:", ascii_timeseries(ticks, width=70, height_label=" ms"))


def main() -> None:
    run("das5-2core", warm=False)
    run("aws-t3.large", warm=True)
    print(
        "\nReading: the same construct that a dedicated 2-core node "
        "absorbs (at ISR ~0.9) spirals a burst-limited cloud node into a "
        "client-timeout crash — the paper's missing Lag/AWS data points."
    )


if __name__ == "__main__":
    main()
