"""Engine-level behavior: pragma hygiene, ordering, determinism, and
the JSON round-trip."""

import json
from pathlib import Path

from repro.lint import (
    findings_from_json,
    lint_paths,
    render_json,
    render_text,
)
from repro.lint.findings import JSON_SCHEMA, Finding, sort_findings

CORPUS = Path(__file__).parent / "corpus"


def write_sim_file(root: Path, body: str) -> Path:
    path = root / "src" / "repro" / "mlg" / "snippet.py"
    path.parent.mkdir(parents=True)
    path.write_text(body)
    return path


class TestPragmas:
    def test_pragma_suppresses_matching_rule(self, tmp_path):
        write_sim_file(
            tmp_path,
            "import time\n\n\ndef f():\n"
            "    return time.time()"
            "  # lint: allow[MSL001] operator log stamp only\n",
        )
        assert lint_paths(["src"], root=tmp_path) == []

    def test_pragma_without_justification_warns(self, tmp_path):
        write_sim_file(
            tmp_path,
            "import time\n\n\ndef f():\n"
            "    return time.time()  # lint: allow[MSL001]\n",
        )
        findings = lint_paths(["src"], root=tmp_path)
        assert [f.rule for f in findings] == ["MSL000"]
        assert findings[0].severity == "warning"
        assert "without a justification" in findings[0].message

    def test_unused_pragma_warns(self, tmp_path):
        write_sim_file(
            tmp_path,
            "def f():\n"
            "    return 1  # lint: allow[MSL001] nothing actually wrong\n",
        )
        findings = lint_paths(["src"], root=tmp_path)
        assert [f.rule for f in findings] == ["MSL000"]
        assert "unused pragma: MSL001 never fired" in findings[0].message

    def test_pragma_does_not_suppress_other_rules(self, tmp_path):
        write_sim_file(
            tmp_path,
            "import time\n\n\ndef f():\n"
            "    return time.time()"
            "  # lint: allow[MSL006] wrong rule for this hazard\n",
        )
        findings = lint_paths(["src"], root=tmp_path)
        rules = sorted(f.rule for f in findings)
        # The MSL001 finding survives; the MSL006 allowance is unused.
        assert rules == ["MSL000", "MSL001"]

    def test_multi_rule_pragma(self, tmp_path):
        write_sim_file(
            tmp_path,
            "import time\nfrom numpy.random import default_rng\n\n\n"
            "def f():\n"
            "    return time.time(), default_rng()"
            "  # lint: allow[MSL001,MSL006] smoke harness, not measured\n",
        )
        assert lint_paths(["src"], root=tmp_path) == []


class TestSyntaxError:
    def test_unparseable_file_is_a_finding_not_a_crash(self, tmp_path):
        write_sim_file(tmp_path, "def broken(:\n    pass\n")
        findings = lint_paths(["src"], root=tmp_path)
        assert len(findings) == 1
        assert findings[0].rule == "MSL000"
        assert findings[0].severity == "error"
        assert "syntax error" in findings[0].message


class TestOrderingAndDeterminism:
    def test_findings_are_stably_sorted(self):
        findings = lint_paths(["src"], root=CORPUS / "regbad")
        assert findings == sort_findings(findings)
        keys = [f.sort_key() for f in findings]
        assert keys == sorted(keys)

    def test_two_runs_render_byte_identical(self):
        first = lint_paths(["src"], root=CORPUS / "badproj")
        second = lint_paths(["src"], root=CORPUS / "badproj")
        assert render_text(first).encode() == render_text(second).encode()
        assert render_json(first).encode() == render_json(second).encode()

    def test_text_rendering_shape(self):
        findings = lint_paths(["src"], root=CORPUS / "regbad")
        lines = render_text(findings).splitlines()
        assert lines[-1].endswith("finding(s): 22 error(s), 0 warning(s)")
        first = findings[0]
        assert lines[0] == (
            f"{first.path}:{first.line}:{first.col}: "
            f"{first.rule} [{first.severity}] {first.message}"
        )


class TestJsonRoundTrip:
    def test_round_trip_preserves_findings(self):
        findings = lint_paths(["src"], root=CORPUS / "regbad")
        assert findings_from_json(render_json(findings)) == findings

    def test_schema_shape(self):
        findings = lint_paths(["src"], root=CORPUS / "regbad")
        payload = json.loads(render_json(findings))
        assert payload["schema"] == JSON_SCHEMA
        assert payload["count"] == len(findings)
        assert payload["errors"] == sum(
            1 for f in findings if f.severity == "error"
        )
        assert payload["warnings"] == payload["count"] - payload["errors"]
        entry = payload["findings"][0]
        assert set(entry) == {
            "rule", "severity", "path", "line", "col", "message"
        }

    def test_rejects_foreign_schema(self):
        doc = json.dumps({"schema": "not-lint/v9", "findings": []})
        try:
            findings_from_json(doc)
        except ValueError as exc:
            assert "schema" in str(exc)
        else:
            raise AssertionError("foreign schema accepted")

    def test_empty_round_trip(self):
        assert findings_from_json(render_json([])) == []


class TestFindingOrderKey:
    def test_sort_key_orders_by_location_then_rule(self):
        a = Finding("MSL002", "error", "a.py", 3, 1, "zzz")
        b = Finding("MSL001", "error", "a.py", 3, 1, "aaa")
        c = Finding("MSL001", "error", "a.py", 2, 9, "mmm")
        assert sort_findings([a, b, c]) == [c, b, a]
