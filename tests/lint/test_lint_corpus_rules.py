"""Corpus tests: each rule fires on its known-bad fixture and stays
quiet on the pragma'd/allowlisted twin.

The fixtures under ``corpus/`` are mini project trees that mirror the
real ``src/repro/...`` layout, so path scoping (MSL001) and the
registry-file locations (MSL002–MSL005) resolve exactly as they do on
the real tree — the engine just gets a different ``root``.
"""

from pathlib import Path

from repro.lint import lint_paths

CORPUS = Path(__file__).parent / "corpus"


def lint_project(project: str):
    return lint_paths(["src"], root=CORPUS / project)


def findings_in(findings, path_suffix, rule=None):
    return [
        f
        for f in findings
        if f.path.endswith(path_suffix) and (rule is None or f.rule == rule)
    ]


class TestMSL001Determinism:
    def test_fires_on_every_hazard_class(self):
        found = findings_in(
            lint_project("badproj"), "determinism_bad.py", "MSL001"
        )
        messages = "\n".join(f.message for f in found)
        assert "time.time()" in messages
        assert "datetime.datetime.now()" in messages
        assert "random.random()" in messages
        assert "numpy.random.normal()" in messages
        assert "os.listdir()" in messages
        assert ".iterdir()" in messages
        assert "glob.glob()" in messages
        assert "iteration over a set expression" in messages
        assert "comprehension over a set expression" in messages
        assert len(found) == 9

    def test_quiet_on_sorted_sinks_and_pragma(self):
        findings = lint_project("badproj")
        assert findings_in(findings, "determinism_ok.py") == []

    def test_does_not_police_non_simulation_paths(self):
        # rng_bad.py lives under core/ — MSL001 is scoped out there even
        # though it calls numpy.random.seed (MSL006's business).
        findings = lint_project("badproj")
        assert findings_in(findings, "rng_bad.py", "MSL001") == []


class TestMSL002OpAccounting:
    def test_fires_on_unregistered_count_sites(self):
        found = findings_in(lint_project("badproj"), "ops_bad.py", "MSL002")
        messages = "\n".join(f.message for f in found)
        assert "Op.GAMMA is not a registered Op constant" in messages
        assert "report.add('unpriced_op')" in messages
        assert len(found) == 2

    def test_quiet_on_registered_ops_and_pragma(self):
        findings = lint_project("badproj")
        assert findings_in(findings, "ops_ok.py") == []

    def test_registry_cross_checks(self):
        findings = [
            f for f in lint_project("regbad") if f.rule == "MSL002"
        ]
        messages = "\n".join(f.message for f in findings)
        assert "Op.ORPHAN missing from Op.ALL" in messages
        assert "Op.ORPHAN has no cost" in messages
        assert "Op.BETA has no cost" in messages
        assert "Op.ORPHAN has no explicit _BUCKET_BY_OP entry" in messages
        assert "stale cost-table entry Op.STALE" in messages
        assert "unknown bucket 'Bogus Bucket'" in messages

    def test_registry_quiet_when_consistent(self):
        assert lint_project("regok") == []


class TestMSL003KnobThreading:
    def test_fires_on_divergent_and_unthreaded_knobs(self):
        findings = [
            f for f in lint_project("regbad") if f.rule == "MSL003"
        ]
        messages = "\n".join(f.message for f in findings)
        assert (
            "knob 'new_knob' defaults diverge: MLGServer uses 4, "
            "MeterstickConfig uses 3" in messages
        )
        assert "missing from CampaignSpec" in messages
        assert (
            "knob 'server_only_knob' is not declared on MeterstickConfig"
            in messages
        )
        assert (
            "'autosave_interval_s' defaults diverge: MeterstickConfig uses "
            "45.0, CampaignSpec uses 90.0" in messages
        )
        assert "_OVERRIDABLE_FIELDS lists 'ghost_field'" in messages

    def test_server_local_params_are_not_knobs(self):
        # variant/machine/world/clock never appear in regbad findings.
        messages = "\n".join(f.message for f in lint_project("regbad"))
        for wiring in ("'variant'", "'machine'", "'world'", "'clock'"):
            assert wiring not in messages


class TestMSL004ProvenanceHygiene:
    def test_fires_on_undecided_stale_and_double_listed(self):
        findings = [
            f for f in lint_project("regbad") if f.rule == "MSL004"
        ]
        messages = "\n".join(f.message for f in findings)
        assert "'new_knob' has no provenance decision" in messages
        assert "'unregistered_field' has no provenance decision" in messages
        assert "stale provenance registry entry 'stale_entry'" in messages
        assert (
            "'output_dir' is listed as both fingerprinted and excluded"
            in messages
        )
        assert len(findings) == 4


class TestMSL005TelemetryRegistration:
    def test_fires_on_unregistered_stale_and_unknown_column(self):
        findings = [
            f for f in lint_project("regbad") if f.rule == "MSL005"
        ]
        messages = "\n".join(f.message for f in findings)
        assert "'mystery_ms' is published to the bus but missing" in messages
        assert "'stale_ms' is never published" in messages
        assert (
            "names 'unknown_field', which is not a METRIC_FIELDS"
            in messages
        )
        assert len(findings) == 3

    def test_resolves_metric_name_through_module_constant(self):
        # tick_ms is published via the TICK_METRIC constant and is
        # registered, so it must NOT be flagged as unregistered.
        findings = [
            f for f in lint_project("regbad") if f.rule == "MSL005"
        ]
        assert not any("'tick_ms' is published" in f.message for f in findings)


class TestMSL006RngDiscipline:
    def test_fires_on_every_construction_pattern(self):
        found = findings_in(lint_project("badproj"), "rng_bad.py", "MSL006")
        messages = "\n".join(f.message for f in found)
        assert "default_rng() without a seed" in messages
        assert "ignores_seed() takes rng/seed" in messages
        assert "numpy.random.seed() reseeds the *global* generator" in messages
        assert "random.Random() without a seed" in messages
        assert len(found) == 4

    def test_quiet_on_threaded_and_pinned_seeds(self):
        findings = lint_project("badproj")
        assert findings_in(findings, "rng_ok.py") == []


class TestMSL007TransportLayering:
    def test_fires_on_every_import_pattern(self):
        found = findings_in(
            lint_project("badproj"), "transport_bad.py", "MSL007"
        )
        messages = "\n".join(f.message for f in found)
        assert "'repro.mlg.server'" in messages
        assert "'repro.mlg.netqueue'" in messages
        assert "'repro.mlg.world'" in messages
        assert len(found) == 4  # import, from-mlg, and 2 from-submodule

    def test_quiet_on_boundary_imports_and_pragma(self):
        findings = lint_project("badproj")
        assert findings_in(findings, "transport_ok.py") == []

    def test_scoped_to_emulation(self):
        # mlg-internal files import each other freely; MSL007 polices
        # only src/repro/emulation/.
        findings = lint_project("badproj")
        assert findings_in(findings, "ops_ok.py", "MSL007") == []


class TestMSL008ObsRegistration:
    def test_fires_on_unregistered_stale_and_bad_source(self):
        findings = [
            f for f in lint_project("regbad") if f.rule == "MSL008"
        ]
        messages = "\n".join(f.message for f in findings)
        assert (
            "'repro_mystery_total' is exported to the obs endpoint but "
            "missing" in messages
        )
        assert "'repro_orphan_total' is never exported" in messages
        assert (
            "names source 'ghost_stream', which is neither a "
            "SIDECAR_METRICS stream nor an obs section" in messages
        )
        assert len(findings) == 3

    def test_registered_exports_and_sections_stay_quiet(self):
        # repro_tick_p50_ms is exported and sourced from a real sidecar
        # stream; repro_bogus_ms IS exported so only its source fires.
        findings = [
            f for f in lint_project("regbad") if f.rule == "MSL008"
        ]
        messages = "\n".join(f.message for f in findings)
        assert "'repro_tick_p50_ms'" not in messages
        assert "'repro_bogus_ms' is never exported" not in messages

    def test_findings_anchor_on_the_registry_entry_line(self):
        by_msg = {
            f.message: f
            for f in lint_project("regbad")
            if f.rule == "MSL008" and "registry" in f.path
        }
        lines = {f.line for f in by_msg.values()}
        assert len(lines) == len(by_msg)  # one entry line each, not the dict


class TestPartialScan:
    def test_single_file_scan_skips_registry_finalizers(self):
        # Linting one file must not fire "never published"/"missing
        # from ALL" registry checks — they need the whole tree.
        findings = lint_paths(
            ["src/repro/telemetry/tap.py"], root=CORPUS / "regbad"
        )
        assert all(f.rule == "MSL005" for f in findings)
        messages = "\n".join(f.message for f in findings)
        assert "'mystery_ms' is published" in messages  # per-file: kept
        assert "stale_ms" not in messages  # finalize-only: skipped
