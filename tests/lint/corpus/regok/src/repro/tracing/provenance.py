"""Clean twin: every field in exactly one registry, nothing stale."""

_NON_MEASUREMENT_FIELDS = (
    "output_dir",
)

_MEASUREMENT_FIELDS = (
    "seed",
    "autosave_interval_s",
    "new_knob",
    "name",
)
