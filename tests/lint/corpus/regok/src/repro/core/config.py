"""Clean twin: defaults agree with the server layer, every field has a
provenance decision."""

from dataclasses import dataclass


@dataclass
class MeterstickConfig:
    output_dir: str = "out"
    seed: int = 0
    autosave_interval_s: float = 45.0
    new_knob: int = 4
