"""Clean twin: registry entries all published, all columns defined."""

METRIC_FIELDS = {
    "tick_p50_ms": "p50 tick (ms)",
    "response_p50_ms": "p50 response (ms)",
}

SIDECAR_METRICS = {
    "tick_ms": ("tick_p50_ms",),
    "response_ms": ("response_p50_ms",),
}
