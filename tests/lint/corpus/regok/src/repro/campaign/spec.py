"""Clean twin: spec defaults agree with the config layer."""

from dataclasses import dataclass

_OVERRIDABLE_FIELDS = frozenset({"autosave_interval_s", "new_knob"})


@dataclass
class CampaignSpec:
    name: str = "campaign"
    seed: int = 0
    autosave_interval_s: float = 45.0
    new_knob: int = 4
    output_dir: str = "out"
