"""Clean twin: only registered metrics reach the bus."""

TICK_METRIC = "tick_ms"
RESPONSE_METRIC = "response_ms"


class ServerTelemetry:
    def __init__(self, bus):
        self.bus = bus

    def observe(self, tick_value, response_value):
        self.bus.publish(TICK_METRIC, tick_value)
        self.bus.publish(RESPONSE_METRIC, response_value)
