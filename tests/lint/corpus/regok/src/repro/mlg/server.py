"""Clean twin: every knob threaded with an identical default."""

AUTOSAVE_INTERVAL_S = 45.0


class MLGServer:
    def __init__(
        self,
        variant,
        machine,
        world=None,
        clock=None,
        seed=0,
        autosave_interval_s=AUTOSAVE_INTERVAL_S,
        new_knob=4,
    ):
        self.seed = seed
        self.autosave_interval_s = autosave_interval_s
        self.new_knob = new_knob
