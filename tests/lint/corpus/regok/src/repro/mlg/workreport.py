"""Clean twin of regbad: registries complete and mutually consistent."""


class Op:
    ALPHA = "alpha"
    BETA = "beta"

    ALL = (ALPHA, BETA)


FIGURE11_BUCKETS = ("Entities", "Other")

_BUCKET_BY_OP = {
    Op.ALPHA: "Entities",
    Op.BETA: "Other",
}
