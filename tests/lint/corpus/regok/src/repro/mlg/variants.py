"""Clean twin: every Op constant priced, nothing stale."""

from repro.mlg.workreport import Op

_BASE_COSTS = {
    Op.ALPHA: 1.0,
    Op.BETA: 2.0,
}
