"""Clean twin: every OBS_METRICS entry exported, every source real."""

OBS_METRICS = {
    "repro_tick_p50_ms": ("gauge", "tick_ms", "p50", "Median tick wall."),
    "repro_uptime_ticks": ("counter", "tap", "ticks", "Ticks served."),
}
