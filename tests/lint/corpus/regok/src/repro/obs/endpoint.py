"""Clean twin: exports exactly the registered obs metrics."""

TICK_GAUGE = "repro_tick_p50_ms"


def build(snap, tap):
    snap.export(TICK_GAUGE, tap.tick_p50_ms)
    snap.export("repro_uptime_ticks", tap.ticks)
