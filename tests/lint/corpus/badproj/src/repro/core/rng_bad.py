"""Known-bad MSL006 corpus: RNG construction instead of threading."""

import random

import numpy as np
from numpy.random import default_rng


def unseeded():
    return np.random.default_rng()


def ignores_seed(seed):
    return default_rng(1234)


def reseeds_global(seed):
    np.random.seed(seed)


def ambient_stdlib():
    return random.Random()
