"""True-negative twin of rng_bad: every generator derives from an
explicit seed, threaded parameters are respected."""

import random

import numpy as np
from numpy.random import default_rng

_SMOKE_RNG = default_rng(123)


def seeded(seed):
    return default_rng(seed)


def threaded(rng, seed):
    return rng if rng is not None else np.random.default_rng(seed)


def derived(seed):
    return default_rng(seed + 17)


def fixed_bench():
    # No rng/seed parameter: a pinned literal seed is the sanctioned
    # pattern for self-contained benchmarks.
    return default_rng(12345)


def stdlib_seeded():
    return random.Random(7)
