"""Known-bad fixture for MSL007: every emulation import pattern that
reaches past the transport boundary into server internals."""

import repro.mlg.server
from repro.mlg import netqueue
from repro.mlg.server import MLGServer
from repro.mlg.world import World


def reach_in(server: MLGServer, world: World):
    queue = netqueue.NetworkQueues(server.clock)
    return repro.mlg.server, queue
