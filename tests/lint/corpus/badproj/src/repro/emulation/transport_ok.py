"""True-negative twin of transport_bad: the allowed boundary imports,
a non-mlg import, a relative import, and one pragma'd reach-in."""

import numpy as np

from repro.mlg import protocol
from repro.mlg.server import MLGServer  # lint: allow[MSL007] type-only reference for a docs example
from repro.mlg.transport import ServerSession, as_transport

from .behavior import make_behavior


def boundary_only(target) -> ServerSession:
    session = as_transport(target).session()
    assert protocol.PacketCategory.CHAT
    assert np is not None and make_behavior is not None
    return session
