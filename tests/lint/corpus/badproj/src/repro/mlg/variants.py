"""Mini cost table for the per-file corpus: prices every op."""

from repro.mlg.workreport import Op

_BASE_COSTS = {
    Op.ALPHA: 1.0,
    Op.BETA: 2.0,
}
