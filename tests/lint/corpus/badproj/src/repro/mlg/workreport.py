"""Mini op registry for the per-file corpus: complete and consistent."""


class Op:
    ALPHA = "alpha"
    BETA = "beta"

    ALL = (ALPHA, BETA)


FIGURE11_BUCKETS = ("Entities", "Other")

_BUCKET_BY_OP = {
    Op.ALPHA: "Entities",
    Op.BETA: "Other",
}
