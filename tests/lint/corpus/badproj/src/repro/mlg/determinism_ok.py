"""True-negative twin of determinism_bad: every hazard made safe, one
via pragma, the rest via order-insensitive sinks."""

import os
import time
from pathlib import Path


def safe(world_dir):
    started = time.time()  # lint: allow[MSL001] operator-log wall stamp, never enters simulation
    names = sorted(os.listdir(world_dir))
    for path in sorted(Path(world_dir).iterdir()):
        print(path)
    stems = {path.stem for path in Path(world_dir).glob("*.json")}
    if "spawn" in os.listdir(world_dir):
        print("present")
    for cell in sorted({(0, 0), (1, 1)}):
        print(cell)
    count = len(os.listdir(world_dir))
    return started, names, stems, count
