"""Known-bad MSL001 corpus: every hazard class, one per statement."""

import glob
import os
import random
import time
from datetime import datetime
from pathlib import Path

import numpy as np


def hazards(world_dir):
    started = time.time()
    stamp = datetime.now()
    roll = random.random()
    jitter = np.random.normal()
    names = os.listdir(world_dir)
    for path in Path(world_dir).iterdir():
        print(path)
    regions = glob.glob("r.*.msr")
    for cell in {(0, 0), (1, 1)}:
        print(cell)
    order = [name for name in set(names)]
    return started, stamp, roll, jitter, names, regions, order
