"""Known-bad MSL002 corpus: count sites naming unregistered ops."""

from repro.mlg.workreport import Op


def tick(report):
    report.add(Op.ALPHA)
    report.add(Op.GAMMA)
    report.add("beta", 2)
    report.add("unpriced_op")
