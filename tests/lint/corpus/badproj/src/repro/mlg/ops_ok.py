"""True-negative twin of ops_bad: registered ops, pragma'd prototype."""

from repro.mlg.workreport import Op


def tick(report):
    report.add(Op.ALPHA)
    report.add("beta", 2)
    report.add("prototype_op")  # lint: allow[MSL002] prototype counter, priced in a follow-up PR
    report.count = 0  # attribute named like a receiver, not a count site
