"""Known-bad MSL003 server layer: ``new_knob`` default diverges from
the config layer, ``server_only_knob`` is not declared on the config."""

AUTOSAVE_INTERVAL_S = 45.0


class MLGServer:
    def __init__(
        self,
        variant,
        machine,
        world=None,
        clock=None,
        seed=0,
        telemetry_window=100,
        autosave_interval_s=AUTOSAVE_INTERVAL_S,
        new_knob=4,
        server_only_knob=7,
    ):
        self.seed = seed
        self.autosave_interval_s = autosave_interval_s
        self.new_knob = new_knob
        self.server_only_knob = server_only_knob
