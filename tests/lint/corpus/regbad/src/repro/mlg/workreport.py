"""Known-bad MSL002 registry: ORPHAN is unlisted/unpriced/unbucketed,
BETA is unpriced and maps to a bucket Figure 11 does not have."""


class Op:
    ALPHA = "alpha"
    BETA = "beta"
    ORPHAN = "orphan"

    ALL = (ALPHA, BETA)


FIGURE11_BUCKETS = ("Entities", "Other")

_BUCKET_BY_OP = {
    Op.ALPHA: "Entities",
    Op.BETA: "Bogus Bucket",
}
