"""Known-bad MSL002 cost table: prices a constant that does not exist."""

from repro.mlg.workreport import Op

_BASE_COSTS = {
    Op.ALPHA: 1.0,
    Op.STALE: 9.0,
}
