"""Known-bad MSL005 registry: ``stale_ms`` is never published and
``tick_ms`` claims a report column METRIC_FIELDS does not define."""

METRIC_FIELDS = {
    "tick_p50_ms": "p50 tick (ms)",
}

SIDECAR_METRICS = {
    "tick_ms": ("tick_p50_ms", "unknown_field"),
    "stale_ms": ("tick_p50_ms",),
}
