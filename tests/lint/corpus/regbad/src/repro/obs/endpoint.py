"""Known-bad obs exporter: ``repro_mystery_total`` is exported without a
registry entry; the orphaned registry entry is never exported here."""


def build(snap, tap):
    snap.export("repro_tick_p50_ms", tap.tick_p50_ms)
    snap.export("repro_bogus_ms", tap.tick_p50_ms)
    snap.export("repro_mystery_total", tap.ticks)
