"""Known-bad MSL008 registry: ``repro_orphan_total`` is never exported
and ``repro_bogus_ms`` claims a source that is neither a sidecar stream
nor an obs section."""

OBS_METRICS = {
    "repro_tick_p50_ms": ("gauge", "tick_ms", "p50", "Median tick wall."),
    "repro_orphan_total": ("counter", "tick_ms", "count", "Stale entry."),
    "repro_bogus_ms": ("gauge", "ghost_stream", "p50", "Bad source."),
}
