"""Known-bad MSL003 spec layer: ``autosave_interval_s`` default
diverges from the config, ``_OVERRIDABLE_FIELDS`` lists a ghost."""

from dataclasses import dataclass

_OVERRIDABLE_FIELDS = frozenset({"autosave_interval_s", "ghost_field"})


@dataclass
class CampaignSpec:
    name: str = "campaign"
    seed: int = 0
    autosave_interval_s: float = 90.0
    output_dir: str = "out"
