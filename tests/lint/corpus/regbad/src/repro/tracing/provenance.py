"""Known-bad MSL004 registries: ``stale_entry`` names no field,
``output_dir`` is listed as both fingerprinted and excluded, and
``new_knob``/``unregistered_field`` have no decision at all."""

_NON_MEASUREMENT_FIELDS = (
    "output_dir",
    "stale_entry",
)

_MEASUREMENT_FIELDS = (
    "seed",
    "autosave_interval_s",
    "name",
    "output_dir",
)
