"""Known-bad MSL003/MSL004 config layer: ``new_knob`` default diverges
from the server, ``unregistered_field`` has no provenance decision."""

from dataclasses import dataclass


@dataclass
class MeterstickConfig:
    output_dir: str = "out"
    seed: int = 0
    autosave_interval_s: float = 45.0
    new_knob: int = 3
    unregistered_field: bool = False
