"""Known-bad MSL005 producer: publishes a metric the sidecar registry
has never heard of."""

TICK_METRIC = "tick_ms"


class ServerTelemetry:
    def __init__(self, bus):
        self.bus = bus

    def observe(self, value):
        self.bus.publish(TICK_METRIC, value)
        self.bus.publish("mystery_ms", value)
