"""CLI tests for the ``repro lint`` verb: exit codes, JSON output, the
artifact file, and the baseline workflow the CI gate relies on."""

import json
import shutil
from pathlib import Path

from repro.campaign.cli import main
from repro.lint.findings import JSON_SCHEMA, findings_from_json

CORPUS = Path(__file__).parent / "corpus"
REPO_ROOT = Path(__file__).resolve().parents[2]


class TestExitCodes:
    def test_findings_exit_1(self, capsys):
        assert main(["lint", "src", "--root", str(CORPUS / "badproj")]) == 1

    def test_clean_tree_exit_0(self, capsys):
        assert main(["lint", "src", "--root", str(CORPUS / "regok")]) == 0
        out = capsys.readouterr().out
        assert "0 finding(s): 0 error(s), 0 warning(s)" in out

    def test_missing_path_exit_2(self, capsys):
        assert main(["lint", "no/such/dir", "--root", str(CORPUS)]) == 2
        assert "error:" in capsys.readouterr().err


class TestJsonOutput:
    def test_stdout_json_parses_and_round_trips(self, capsys):
        code = main(
            [
                "lint", "src",
                "--root", str(CORPUS / "regbad"),
                "--format", "json",
            ]
        )
        assert code == 1
        out = capsys.readouterr().out
        payload = json.loads(out)
        assert payload["schema"] == JSON_SCHEMA
        assert payload["count"] == len(payload["findings"]) > 0
        assert findings_from_json(out)  # same document, typed

    def test_out_artifact_written_even_in_text_mode(self, tmp_path, capsys):
        artifact = tmp_path / "ci" / "lint-findings.json"
        code = main(
            [
                "lint", "src",
                "--root", str(CORPUS / "regbad"),
                "--out", str(artifact),
            ]
        )
        assert code == 1
        findings = findings_from_json(artifact.read_text())
        assert {f.rule for f in findings} >= {"MSL002", "MSL003", "MSL004"}


class TestBaselineWorkflow:
    """The CI-gate semantics: grandfather today's findings, fail on new
    ones — including a deliberately-seeded violation."""

    def seeded_tree(self, tmp_path) -> Path:
        root = tmp_path / "proj"
        shutil.copytree(CORPUS / "regbad", root)
        return root

    def test_update_then_baseline_passes(self, tmp_path, capsys):
        root = self.seeded_tree(tmp_path)
        assert main(
            ["lint", "src", "--root", str(root), "--update-baseline"]
        ) == 0
        assert "review and commit the diff" in capsys.readouterr().out
        baseline = json.loads((root / "lint-baseline.json").read_text())
        assert baseline["version"] == 1
        assert len(baseline["suppressions"]) > 0
        assert main(["lint", "src", "--root", str(root), "--baseline"]) == 0
        assert "baselined finding(s) suppressed" in capsys.readouterr().out

    def test_new_violation_fails_baselined_gate(self, tmp_path, capsys):
        root = self.seeded_tree(tmp_path)
        assert main(
            ["lint", "src", "--root", str(root), "--update-baseline"]
        ) == 0
        capsys.readouterr()
        seeded = root / "src" / "repro" / "mlg" / "freshly_bad.py"
        seeded.write_text(
            "import time\n\n\ndef f():\n    return time.time()\n"
        )
        assert main(["lint", "src", "--root", str(root), "--baseline"]) == 1
        out = capsys.readouterr().out
        # Only the new finding surfaces; the grandfathered ones stay out.
        assert "freshly_bad.py" in out
        assert "1 finding(s): 1 error(s)" in out

    def test_corrupt_baseline_exit_2(self, tmp_path, capsys):
        root = self.seeded_tree(tmp_path)
        (root / "lint-baseline.json").write_text('{"version": 99}\n')
        assert main(["lint", "src", "--root", str(root), "--baseline"]) == 2
        assert "baseline version" in capsys.readouterr().err

    def test_missing_baseline_is_empty(self, tmp_path, capsys):
        root = self.seeded_tree(tmp_path)
        assert main(["lint", "src", "--root", str(root), "--baseline"]) == 1


class TestRepoIsClean:
    """The acceptance bar: ``repro lint src`` at HEAD exits 0 and the
    committed baseline carries no suppressions."""

    def test_lint_src_at_head_is_clean(self, capsys):
        assert main(["lint", "src", "--root", str(REPO_ROOT)]) == 0
        out = capsys.readouterr().out
        assert "0 finding(s)" in out

    def test_committed_baseline_is_empty(self):
        baseline = json.loads(
            (REPO_ROOT / "lint-baseline.json").read_text()
        )
        assert baseline == {"suppressions": [], "version": 1}
