"""End-to-end integration tests: the paper's headline shapes, in miniature.

These run short full-stack experiments (server + engines + bots + machine
models) and assert the orderings the paper reports, with durations kept
small enough for the regular test suite.
"""

import numpy as np
import pytest

from repro.analysis.figures import run_cell
from repro.core import ExperimentRunner, MeterstickConfig, run_iteration
from repro.metrics import instability_ratio


@pytest.fixture(scope="module")
def control_cells():
    return {
        (server, env): run_cell(server=server, workload="control",
                                environment=env, duration_s=20.0, seed=11)
        for server in ("vanilla", "papermc")
        for env in ("das5-2core", "aws-t3.large")
    }


class TestVariantOrdering:
    def test_papermc_is_fastest(self, control_cells):
        das5_vanilla = control_cells[("vanilla", "das5-2core")]
        das5_papermc = control_cells[("papermc", "das5-2core")]
        assert (
            np.mean(das5_papermc.tick_durations_ms[1:])
            < np.mean(das5_vanilla.tick_durations_ms[1:])
        )

    def test_forge_is_slowest(self):
        forge = run_cell("control", "forge", "das5-2core", 15.0, seed=11)
        vanilla = run_cell("control", "vanilla", "das5-2core", 15.0, seed=11)
        assert (
            np.mean(forge.tick_durations_ms[1:])
            > np.mean(vanilla.tick_durations_ms[1:])
        )


class TestEnvironmentOrdering:
    def test_cloud_is_noisier_than_das5(self, control_cells):
        for server in ("vanilla", "papermc"):
            das5 = control_cells[(server, "das5-2core")]
            aws = control_cells[(server, "aws-t3.large")]
            das5_std = np.std(das5.tick_durations_ms[1:])
            aws_std = np.std(aws.tick_durations_ms[1:])
            assert aws_std > das5_std

    def test_sixteen_cores_beat_two(self):
        two = run_cell("tnt", "vanilla", "das5-2core", 35.0, seed=4)
        sixteen = run_cell("tnt", "vanilla", "das5-16core", 35.0, seed=4)
        assert (
            np.mean(sixteen.tick_durations_ms)
            < np.mean(two.tick_durations_ms)
        )


class TestWorkloadShapes:
    def test_environment_workload_beats_player_workload(self):
        """MF2's core claim: Farm/TNT variability exceeds Players'."""
        tnt = run_cell("tnt", "vanilla", "aws-t3.large", 45.0, seed=9)
        players = run_cell("players", "vanilla", "aws-t3.large", 45.0, seed=9)
        assert tnt.isr > players.isr

    def test_lag_crashes_aws_but_not_das5(self):
        das5 = run_cell("lag", "vanilla", "das5-2core", 60.0, seed=2)
        aws = run_cell("lag", "vanilla", "aws-t3.large", 60.0, seed=2)
        assert not das5.crashed
        assert das5.isr > 0.7
        assert aws.crashed

    def test_single_player_can_overload_the_game(self):
        """§2.2.2: one player (even idle) plus an environment workload
        overloads the simulator — unlike traditional games, where only
        player count drives load."""
        cell = run_cell("tnt", "vanilla", "das5-2core", 45.0, seed=3)
        assert any(t > 50.0 for t in cell.tick_durations_ms[200:])


class TestDeterminismAndCrash:
    def test_full_iteration_determinism(self):
        a = run_iteration("farm", "papermc", "azure-d2v3", 10.0, seed=77)
        b = run_iteration("farm", "papermc", "azure-d2v3", 10.0, seed=77)
        assert a.tick_durations_ms == b.tick_durations_ms
        assert a.isr == b.isr
        assert a.packet_counts == b.packet_counts

    def test_crash_terminates_campaign_iteration(self):
        config = MeterstickConfig(
            servers=["vanilla"],
            world="lag",
            environment="aws-t3.large",
            duration_s=60.0,
            iterations=1,
            warm_machines=True,
            seed=2,
        )
        result = ExperimentRunner(config).run()
        assert result.any_crashed("vanilla")
        assert result.iterations[0].crash_reason

    def test_isr_recomputable_from_trace(self):
        cell = run_cell("farm", "vanilla", "das5-2core", 10.0, seed=5)
        assert cell.isr == pytest.approx(
            instability_ratio(cell.tick_durations_ms, 50.0)
        )
