"""Ablation: which PaperMC optimization buys what (DESIGN.md §6).

The paper credits PaperMC's TNT performance to its rewritten entity
handler and explosion optimizations (Appendix A / MF4).  These tests
rebuild PaperMC profiles with individual optimizations disabled and
verify each one's contribution on the workload it targets.
"""

from dataclasses import replace
from types import MappingProxyType

import numpy as np
import pytest

from repro.cloud import get_environment
from repro.core.experiment import run_iteration
from repro.mlg.variants import PAPERMC, VANILLA
from repro.mlg.workreport import Op
from repro.simtime import SimClock


def _papermc_without(**overrides):
    """A PaperMC profile with selected optimizations reverted to vanilla."""
    cost_overrides = overrides.pop("costs", {})
    table = dict(PAPERMC.cost_table)
    for op in cost_overrides:
        table[op] = VANILLA.cost_table[op]
    return replace(
        PAPERMC,
        name="papermc-ablated",
        cost_table=MappingProxyType(table),
        **overrides,
    )


def _run(variant, workload, duration_s=40.0, seed=13):
    env = get_environment("das5-2core")
    machine = env.create_machine(seed=seed)
    return run_iteration(
        workload,
        variant,
        "das5-2core",
        duration_s=duration_s,
        seed=seed,
        machine=machine,
        clock=SimClock(),
    )


class TestTntOptimizationAblation:
    def test_explosion_optimization_carries_tnt_performance(self):
        full = _run(PAPERMC, "tnt")
        no_tnt_opt = _run(
            _papermc_without(
                costs={Op.EXPLOSION_RAY, Op.TNT_UPDATE, Op.COLLISION_PAIR}
            ),
            "tnt",
        )
        full_mean = np.mean(full.tick_durations_ms)
        ablated_mean = np.mean(no_tnt_opt.tick_durations_ms)
        assert ablated_mean > 1.3 * full_mean, (
            "removing the TNT optimizations must visibly slow the chain"
        )


class TestItemMergingAblation:
    def test_merging_bounds_farm_entity_count(self):
        full = _run(PAPERMC, "farm")
        no_merge = _run(replace(PAPERMC, name="p-nomerge",
                                merge_items=False), "farm")
        # Without merging, more item entities stay alive -> more entity
        # messages relative to the merged profile.
        assert (
            no_merge.packet_counts.get("entity_move", 0)
            > full.packet_counts.get("entity_move", 0)
        )


class TestAsyncChatAblation:
    def test_sync_chat_re_couples_response_to_tick(self):
        full = _run(PAPERMC, "control", duration_s=20.0)
        sync = _run(replace(PAPERMC, name="p-sync", async_chat=False),
                    "control", duration_s=20.0)
        # Async chat answers in ~RTT; sync chat waits for a tick.
        assert np.median(full.response_times_ms) < 10.0
        assert np.median(sync.response_times_ms) > 20.0


class TestEntityBroadcastAblation:
    def test_batched_sends_halve_entity_traffic(self):
        full = _run(PAPERMC, "farm")
        unbatched = _run(
            replace(PAPERMC, name="p-unbatched",
                    entity_broadcast_interval=1),
            "farm",
        )
        assert (
            unbatched.packet_counts.get("entity_move", 0)
            > 1.5 * full.packet_counts.get("entity_move", 0)
        )


class TestParallelFractionAblation:
    def test_threading_rework_matters_on_many_cores(self):
        serial = replace(PAPERMC, name="p-serial", parallel_fraction=0.0)
        env = get_environment("das5-16core")
        a = run_iteration("farm", PAPERMC, "das5-16core", 20.0, seed=13,
                          machine=env.create_machine(seed=13),
                          clock=SimClock())
        b = run_iteration("farm", serial, "das5-16core", 20.0, seed=13,
                          machine=env.create_machine(seed=13),
                          clock=SimClock())
        assert np.mean(a.tick_durations_ms[1:]) < np.mean(
            b.tick_durations_ms[1:]
        )
