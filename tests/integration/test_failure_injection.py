"""Failure-injection tests: the harness under adverse conditions."""

import numpy as np
import pytest

from repro.core import (
    ControlClient,
    ControlError,
    ControlServer,
    MessageType,
    Transport,
)
from repro.core.experiment import run_iteration
from repro.core.results import ExperimentResult, IterationResult
from repro.mlg.blocks import Block
from repro.mlg.constants import CLIENT_TIMEOUT_US
from repro.mlg.protocol import ActionKind, PlayerAction
from repro.mlg.server import MLGServer
from repro.mlg.world import World
from repro.simtime import SimClock


class FixedMachine:
    throttled_executions = 0
    total_executions = 0
    cpu_used_us = 0.0
    wall_observed_us = 0.0
    credits_s = 0.0

    def execute(self, work_us, parallel_fraction, now_us, **kwargs):
        return max(1, int(work_us))


def _flat_server():
    world = World()
    for cx in range(3):
        for cz in range(3):
            chunk = world.ensure_chunk(cx, cz)
            chunk.blocks[:, :, :60] = Block.STONE
            chunk.recompute_heightmap()
    return MLGServer("vanilla", FixedMachine(), world=world, seed=0)


class TestClientChurn:
    def test_partial_timeout_does_not_crash_server(self):
        """One client timing out is churn, not a crash."""
        server = _flat_server()
        a = server.connect_client("a", 8.0, 8.0, 1000, 1000, 2)
        server.connect_client("b", 24.0, 8.0, 1000, 1000, 2)
        server.start()
        server.tick()
        # Force one client's keepalive state to be ancient.
        endpoint = server.net.client(a.client_id)
        endpoint.last_keepalive_flush_us = -2 * CLIENT_TIMEOUT_US
        server.tick()
        assert server.net.connected_count == 1
        assert not server.crashed
        assert server.running or not server.crashed

    def test_actions_after_disconnect_are_dropped(self):
        server = _flat_server()
        conn = server.connect_client("a", 8.0, 8.0, 1000, 1000, 2)
        server.net.disconnect(conn.client_id, "quit")
        action = PlayerAction(ActionKind.MOVE, conn.client_id, (9.0, 60.0, 8.0))
        assert server.submit_action(action, 0) == -1

    def test_reconnection_after_crash_state(self):
        """A stopped server refuses to run further ticks via run_for."""
        server = _flat_server()
        server.stop(reason="test crash")
        assert server.crashed
        records = server.run_for(1.0)
        # run_for starts the loop again, but the crash flag stays visible.
        assert server.crash_reason == "test crash"
        assert isinstance(records, list)


class TestControllerFaults:
    def test_error_mid_sequence_propagates(self):
        controller = ControlServer()
        mlg = ControlClient("m", "M", Transport())
        controller.register(mlg)

        def fail(payload):
            raise RuntimeError("jvm oom")

        mlg.on(MessageType.INITIALIZE, fail)
        with pytest.raises(ControlError, match="jvm oom"):
            controller.run_iteration_sequence("vanilla", 0, "m", [])

    def test_unacknowledged_worker_detected(self):
        controller = ControlServer()
        client = ControlClient("m", "M", Transport())
        controller.register(client)
        # Sabotage: swallow the queue so no ack is produced.
        client.transport.to_worker.clear()

        class DeadTransport(Transport):
            pass

        client.transport = DeadTransport()
        with pytest.raises(ControlError):
            # process_one sees no message -> no reply queued.
            controller.command("m", MessageType.KEEP_ALIVE)
            controller.command("m", MessageType.INITIALIZE)


class TestResultRobustness:
    def test_result_with_crash_serializes(self, tmp_path):
        result = IterationResult(
            server="vanilla",
            workload="lag",
            environment="aws-t3.large",
            iteration=0,
            seed=1,
            duration_s=60.0,
            tick_durations_ms=[50.0, 31000.0],
            response_times_ms=[],
            tick_distribution={},
            packet_counts={},
            packet_bytes={},
            entity_message_share=0.0,
            entity_byte_share=0.0,
            system_summary={},
            crashed=True,
            crash_reason="all clients timed out (keepalive)",
            throttled_ticks=5,
            final_credits_s=0.0,
        )
        experiment = ExperimentResult(config={}, iterations=[result])
        path = experiment.save_json(tmp_path / "crash.json")
        loaded = ExperimentResult.load_json(path)
        assert loaded.iterations[0].crashed
        assert loaded.any_crashed()

    def test_empty_response_stats_is_none(self):
        result = run_iteration(
            "control", "papermc", "das5-2core", duration_s=2.0, seed=1
        )
        # PaperMC still produces response times via the async path.
        assert result.response_stats() is not None

    def test_zero_duration_trace_isr(self):
        result = IterationResult(
            server="x", workload="y", environment="z", iteration=0, seed=0,
            duration_s=0.0, tick_durations_ms=[], response_times_ms=[],
            tick_distribution={}, packet_counts={}, packet_bytes={},
            entity_message_share=0.0, entity_byte_share=0.0,
            system_summary={}, crashed=False, crash_reason=None,
            throttled_ticks=0, final_credits_s=0.0,
        )
        assert result.isr == 0.0
        assert result.response_stats() is None
