"""End-to-end loopback: ``repro serve`` + ``repro clients`` over real
sockets, producing the standard campaign artifacts.

One short tcp cell is served on an ephemeral loopback port while a
3-bot client fleet runs against it from another thread.  The on-disk
results must be the normal campaign layout — manifest, streamed
telemetry sidecar, completed job shard — with real (nonzero) ``wire_*``
measurements and client-measured response times folded in.
"""

import json
import threading

import pytest

from repro.campaign.store import JobStore
from repro.net import run_clients, serve_cell
from repro.reporting.dataset import sidecar_row

N_BOTS = 3


@pytest.fixture(scope="module")
def loopback_run(tmp_path_factory):
    """Serve one 1-second tcp cell and run 3 wire clients against it."""
    root = tmp_path_factory.mktemp("wire")
    out_dir = root / "campaign-out"
    spec_path = root / "wire.yaml"
    spec_path.write_text(
        json.dumps(
            {
                "name": "wire-loopback",
                "servers": ["vanilla"],
                "workloads": ["players"],
                "environments": ["das5"],
                "bot_counts": [N_BOTS],
                "iterations": 1,
                "duration_s": 1.0,
                "seed": 7,
                "transport": "tcp",
                "output_dir": str(out_dir),
            }
        )
    )
    listening = threading.Event()
    box = {}

    def on_listen(port):
        box["port"] = port
        listening.set()

    def serve():
        try:
            box["serve"] = serve_cell(spec_path, cell=0, on_listen=on_listen)
        except BaseException as exc:  # surface into the test thread
            box["error"] = exc
            listening.set()

    thread = threading.Thread(target=serve)
    thread.start()
    assert listening.wait(30), "serve_cell never bound its socket"
    if "error" in box:
        raise box["error"]
    box["clients"] = run_clients(
        "127.0.0.1", box["port"], N_BOTS, stagger_s=0.05, seed=7
    )
    thread.join(60)
    assert not thread.is_alive(), "serve_cell did not finish"
    if "error" in box:
        raise box["error"]
    box["store"] = JobStore(out_dir)
    return box


class TestLoopbackCampaign:
    def test_clients_connected_and_sampled(self, loopback_run):
        clients = loopback_run["clients"]
        assert clients["connected"] == N_BOTS
        assert clients["ticks_seen"] > 0
        assert clients["samples"] >= 1
        assert clients["response_p50_ms"] > 0

    def test_serve_summary_and_shard(self, loopback_run):
        summary = loopback_run["serve"]
        assert summary["iterations"] == 1
        assert not summary["crashed"]
        store = loopback_run["store"]
        iterations = store.load_job(summary["job_id"])
        assert iterations is not None and len(iterations) == 1
        it = iterations[0]
        # Client-side samples streamed back over the wire and were
        # folded into the server's measurement record.
        assert it.response_times_ms
        assert it.telemetry["response_ms"]["count"] == len(
            it.response_times_ms
        )
        assert it.provenance.get("fingerprint")

    def test_manifest_is_standard(self, loopback_run):
        manifest = loopback_run["store"].read_manifest()
        assert manifest["name"] == "wire-loopback"
        assert manifest["spec"]["transport"] == "tcp"
        assert len(manifest["jobs"]) == 1
        assert manifest["provenance"]["fingerprint"]
        assert "hygiene" in manifest["provenance"]

    def test_sidecar_has_real_wire_metrics(self, loopback_run):
        store = loopback_run["store"]
        job_id = loopback_run["serve"]["job_id"]
        lines = store.read_job_telemetry(job_id)
        assert len(lines) == 1
        wire = lines[0]["telemetry"]["wire"]
        assert wire["wire_bytes_out"]["total"] > 0
        assert wire["wire_bytes_in"]["total"] > 0
        assert wire["wire_connects"]["count"] == N_BOTS
        assert wire["wire_flush_us"]["count"] > 0

    def test_report_rows_carry_wire_columns(self, loopback_run):
        store = loopback_run["store"]
        manifest = store.read_manifest()
        job_dict = manifest["jobs"][0]
        line = store.read_job_telemetry(job_dict["job_id"])[0]
        row = sidecar_row(job_dict, line)
        assert row["wire_bytes_out"] > 0
        assert row["wire_bytes_in"] > 0
        assert row["wire_connects"] == N_BOTS
        assert row["wire_flush_p99_us"] > 0
        # Inproc sidecars have no wire section: columns stay None.
        inproc_line = json.loads(json.dumps(line))
        del inproc_line["telemetry"]["wire"]
        inproc_row = sidecar_row(job_dict, inproc_line)
        assert inproc_row["wire_bytes_out"] is None
        assert inproc_row["wire_connects"] is None

    def test_shard_refuses_silent_clobber(self, loopback_run):
        spec_path = loopback_run["store"].root.parent / "wire.yaml"
        with pytest.raises(FileExistsError):
            serve_cell(spec_path, cell=0)
