"""Tests for environments, noise processes, and the network model."""

import numpy as np
import pytest

from repro.cloud import (
    AWS_T3_2XLARGE,
    AWS_T3_LARGE,
    AWS_T3_XLARGE,
    AZURE_D2V3,
    DAS5_16CORE,
    DAS5_2CORE,
    ENVIRONMENTS,
    NetworkModel,
    NoiseModel,
    NoiseParams,
    get_environment,
)


class TestEnvironments:
    def test_registry_names_and_aliases(self):
        assert get_environment("das5") is DAS5_2CORE
        assert get_environment("aws") is AWS_T3_LARGE
        assert get_environment("azure") is AZURE_D2V3
        assert get_environment("AWS-T3.2XLARGE") is AWS_T3_2XLARGE

    def test_unknown_environment_raises(self):
        with pytest.raises(ValueError, match="unknown environment"):
            get_environment("gcp-n2")

    def test_node_shapes_match_paper(self):
        # §5.1.2: both cloud node types have 2 vCPUs and 8 GB memory.
        assert AWS_T3_LARGE.machine_spec.vcpus == 2
        assert AWS_T3_LARGE.machine_spec.memory_gb == 8.0
        assert AZURE_D2V3.machine_spec.vcpus == 2
        assert AZURE_D2V3.machine_spec.memory_gb == 8.0
        # AWS node ladder of MF5: L=2, XL=4, 2XL=8 vCPUs.
        assert AWS_T3_XLARGE.machine_spec.vcpus == 4
        assert AWS_T3_2XLARGE.machine_spec.vcpus == 8
        # DAS-5: dual 8-core node, affinity-limited variant has 2.
        assert DAS5_16CORE.machine_spec.vcpus == 16
        assert DAS5_2CORE.machine_spec.vcpus == 2
        assert DAS5_2CORE.machine_spec.memory_gb == 64.0

    def test_kinds(self):
        assert DAS5_2CORE.kind == "self-hosted"
        assert AWS_T3_LARGE.kind == "cloud"
        assert AZURE_D2V3.kind == "cloud"

    def test_only_aws_is_burstable(self):
        assert AWS_T3_LARGE.machine_spec.burst is not None
        assert AZURE_D2V3.machine_spec.burst is None
        assert DAS5_2CORE.machine_spec.burst is None

    def test_clouds_are_noisier_than_das5(self):
        das5 = DAS5_2CORE.machine_spec.noise
        for cloud in (AWS_T3_LARGE, AZURE_D2V3):
            noise = cloud.machine_spec.noise
            assert noise.jitter_sigma > das5.jitter_sigma
            assert noise.pause_rate_per_s > das5.pause_rate_per_s
            assert noise.placement_sigma > das5.placement_sigma

    def test_create_machine_independent_instances(self):
        a = DAS5_2CORE.create_machine(seed=1)
        b = DAS5_2CORE.create_machine(seed=1)
        a.execute(1000, 0.0, 0)
        assert b.total_executions == 0


class TestNoiseModel:
    def test_quiet_params_give_unity(self):
        model = NoiseModel(NoiseParams(jitter_sigma=0.0), np.random.default_rng(0))
        assert model.sample(0) == pytest.approx(1.0)

    def test_slowdown_floor(self):
        model = NoiseModel(
            NoiseParams(jitter_sigma=0.5, placement_sigma=0.5),
            np.random.default_rng(0),
        )
        for t in range(200):
            assert model.sample(t * 50_000) >= 0.7

    def test_steal_spikes_raise_slowdown(self):
        params = NoiseParams(
            jitter_sigma=0.0, steal_rate_per_s=1000.0, steal_share=0.5,
        )
        model = NoiseModel(params, np.random.default_rng(1))
        model.sample(0)
        assert model.sample(50_000) >= 1.9  # inside a steal window

    def test_pause_sampling(self):
        params = NoiseParams(pause_rate_per_s=1000.0, pause_ms_range=(10, 20))
        model = NoiseModel(params, np.random.default_rng(2))
        pause = model.sample_pause_us(1.0)
        assert 10_000 <= pause <= 20_000

    def test_no_pauses_when_disabled(self):
        model = NoiseModel(NoiseParams(), np.random.default_rng(3))
        assert model.sample_pause_us(10.0) == 0


class TestNetworkModel:
    def test_latency_pair_positive_and_varied(self):
        model = NetworkModel(median_one_way_us=1000, sigma=0.3)
        rng = np.random.default_rng(4)
        pairs = [model.latency_pair(rng) for _ in range(50)]
        ups = {up for up, _ in pairs}
        assert len(ups) > 10
        assert all(up >= model.floor_us for up, _ in pairs)

    def test_floor_enforced(self):
        model = NetworkModel(median_one_way_us=10, sigma=0.0, floor_us=50)
        rng = np.random.default_rng(5)
        up, down = model.latency_pair(rng)
        assert up == 50 and down == 50

    def test_das5_faster_than_clouds(self):
        rng = np.random.default_rng(6)
        das5 = np.mean([DAS5_2CORE.network.latency_pair(rng)[0] for _ in range(100)])
        aws = np.mean([AWS_T3_LARGE.network.latency_pair(rng)[0] for _ in range(100)])
        assert das5 < aws
