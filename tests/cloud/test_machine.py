"""Tests for the machine model: Amdahl scaling, credits, throttling."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cloud.machine import (
    BurstSpec,
    Machine,
    MachineSpec,
    amdahl_speedup,
)
from repro.cloud.variability import NoiseParams


def _quiet_noise():
    return NoiseParams(
        jitter_sigma=0.0, placement_sigma=0.0, ar1_sigma=0.0,
        steal_rate_per_s=0.0, pause_rate_per_s=0.0,
    )


def _machine(vcpus=2, speed=1.0, burst=None, seed=0):
    spec = MachineSpec(
        name="test", vcpus=vcpus, memory_gb=8.0, per_core_speed=speed,
        noise=_quiet_noise(), burst=burst,
    )
    return Machine(spec, seed=seed)


class TestAmdahl:
    def test_serial_task_gets_no_speedup(self):
        assert amdahl_speedup(8, 0.0) == 1.0

    def test_speedup_increases_with_cores(self):
        assert amdahl_speedup(4, 0.5) > amdahl_speedup(2, 0.5)

    def test_single_core_is_identity(self):
        assert amdahl_speedup(1, 0.5) == pytest.approx(1.0)

    def test_known_value(self):
        # pf=0.5 on 2 cores: 1 / (0.5 + 0.25) = 4/3.
        assert amdahl_speedup(2, 0.5) == pytest.approx(4.0 / 3.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            amdahl_speedup(0, 0.5)
        with pytest.raises(ValueError):
            amdahl_speedup(2, 1.0)

    @given(
        st.integers(min_value=1, max_value=64),
        st.floats(min_value=0.0, max_value=0.99),
    )
    def test_speedup_bounded_by_cores(self, vcpus, pf):
        speedup = amdahl_speedup(vcpus, pf)
        assert 1.0 <= speedup <= vcpus + 1e-9


class TestExecute:
    def test_duration_scales_with_work(self):
        machine = _machine()
        short = machine.execute(10_000, 0.0, 0)
        long = machine.execute(40_000, 0.0, 1_000_000)
        assert long == pytest.approx(4 * short, rel=0.01)

    def test_faster_core_is_faster(self):
        slow = _machine(speed=1.0).execute(10_000, 0.0, 0)
        fast = _machine(speed=2.0).execute(10_000, 0.0, 0)
        assert fast == pytest.approx(slow / 2, rel=0.01)

    def test_parallel_fraction_uses_cores(self):
        two = _machine(vcpus=2).execute(100_000, 0.4, 0)
        sixteen = _machine(vcpus=16).execute(100_000, 0.4, 0)
        assert sixteen < two

    def test_negative_work_rejected(self):
        with pytest.raises(ValueError):
            _machine().execute(-1.0, 0.0, 0)

    def test_zero_work_has_minimal_duration(self):
        assert _machine().execute(0.0, 0.0, 0) == 1

    def test_gc_contention_slows_small_machines(self):
        base = _machine(vcpus=2).execute(100_000, 0.0, 0)
        loaded = _machine(vcpus=2).execute(
            100_000, 0.0, 0, alloc_pressure=3500.0
        )
        assert loaded > base * 1.3
        # A 16-core box absorbs the same GC demand.
        big = _machine(vcpus=16).execute(
            100_000, 0.0, 0, alloc_pressure=3500.0
        )
        assert big == pytest.approx(
            _machine(vcpus=16).execute(100_000, 0.0, 0), rel=0.01
        )

    def test_utilization_tracks_usage(self):
        machine = _machine()
        now = 0
        for _ in range(100):
            duration = machine.execute(25_000, 0.0, now)
            now += max(duration, 50_000)
        assert 0.1 < machine.utilization() < 0.6


class TestBurstCredits:
    def _burst_machine(self, baseline=0.45, initial=10.0, vcpus=2):
        burst = BurstSpec(
            baseline_per_vcpu=baseline,
            initial_credits_s_per_vcpu=initial,
            max_credits_s_per_vcpu=60.0,
            throttle_penalty=1.0,
        )
        return _machine(vcpus=vcpus, burst=burst)

    def test_initial_credits_scale_with_vcpus(self):
        assert self._burst_machine(vcpus=2).credits_s == 20.0
        assert self._burst_machine(vcpus=8).credits_s == 80.0

    def test_light_load_never_throttles(self):
        machine = self._burst_machine()
        now = 0
        for _ in range(1000):
            duration = machine.execute(10_000, 0.0, now)  # 20% util
            now += max(duration, 50_000)
        assert machine.throttled_executions == 0

    def test_sustained_overload_throttles(self):
        machine = self._burst_machine(initial=1.0)
        now = 0
        for _ in range(200):
            duration = machine.execute(200_000, 0.0, now)  # 4x budget
            now += duration
        assert machine.throttled_executions > 0
        assert machine.is_throttled or machine.credits_s < 2.0

    def test_throttled_ticks_are_slower(self):
        machine = self._burst_machine(baseline=0.2, initial=0.0)
        machine.drain_credits()
        throttled = machine.execute(200_000, 0.0, 0)
        free = self._burst_machine(baseline=0.2, initial=50.0).execute(
            200_000, 0.0, 0
        )
        # Baseline 0.2/vCPU x 2 vCPUs = 0.4 cores for the tick thread.
        assert throttled == pytest.approx(free / 0.4, rel=0.02)

    def test_idle_time_accrues_credits(self):
        machine = self._burst_machine(initial=0.0)
        machine.drain_credits()
        machine.execute(1_000, 0.0, 0)
        machine.execute(1_000, 0.0, 10_000_000)  # 10 s later
        assert machine.credits_s > 5.0

    def test_credit_cap(self):
        machine = self._burst_machine(initial=60.0)
        machine.execute(100, 0.0, 0)
        machine.execute(100, 0.0, 1_000_000_000)  # ~17 min idle
        assert machine.credits_s <= 120.0

    def test_background_burn_drains_credits(self):
        lean = self._burst_machine(initial=10.0)
        hungry = self._burst_machine(initial=10.0)
        now = 0
        for _ in range(100):
            lean.execute(10_000, 0.0, now, background_cpu_fraction=0.0)
            hungry.execute(10_000, 0.0, now, background_cpu_fraction=0.45)
            now += 50_000
        assert hungry.credits_s < lean.credits_s

    def test_redeploy_restores_credits(self):
        machine = self._burst_machine(initial=10.0)
        machine.drain_credits()
        assert machine.credits_s == 0.0
        machine.redeploy()
        assert machine.credits_s == 20.0


class TestNoiseIntegration:
    def test_noisy_machine_varies_durations(self):
        spec = MachineSpec(
            name="noisy", vcpus=2, memory_gb=8.0, per_core_speed=1.0,
            noise=NoiseParams(jitter_sigma=0.1),
        )
        machine = Machine(spec, seed=5)
        durations = {machine.execute(50_000, 0.0, t * 50_000) for t in range(50)}
        assert len(durations) > 10

    def test_placement_factor_is_stable_within_boot(self):
        spec = MachineSpec(
            name="placed", vcpus=2, memory_gb=8.0, per_core_speed=1.0,
            noise=NoiseParams(placement_sigma=0.2),
        )
        machine = Machine(spec, seed=9)
        first = machine.noise.placement_factor
        machine.execute(1_000, 0.0, 0)
        assert machine.noise.placement_factor == first
        machine.redeploy()
        assert machine.noise.placement_factor != first

    def test_determinism_given_seed(self):
        a = _machine(seed=3).execute(50_000, 0.2, 0)
        b = _machine(seed=3).execute(50_000, 0.2, 0)
        assert a == b
