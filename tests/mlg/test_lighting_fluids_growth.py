"""Tests for the lighting, fluid, and growth terrain-simulation engines."""

import numpy as np
import pytest

from repro.mlg.blocks import Block
from repro.mlg.constants import MAX_LIGHT, SEA_LEVEL, WORLD_HEIGHT
from repro.mlg.fluids import (
    LAVA_TICK_INTERVAL,
    MAX_FLOW_LEVEL,
    MAX_LAVA_FLOW_LEVEL,
    WATER_TICK_INTERVAL,
    FluidEngine,
)
from repro.mlg.growth import CROP_MATURE_STAGE, GrowthEngine, KELP_MAX_HEIGHT
from repro.mlg.lighting import LightEngine
from repro.mlg.workreport import Op, WorkReport
from repro.mlg.world import World


def _flat_world(ground_y=60, size=1):
    """A flat stone slab covering ``size``x``size`` chunks."""
    world = World()
    for cx in range(size):
        for cz in range(size):
            chunk = world.ensure_chunk(cx, cz)
            chunk.blocks[:, :, :ground_y] = Block.STONE
            chunk.recompute_heightmap()
    return world


class TestLighting:
    def test_skylight_above_ground_is_full(self):
        world = _flat_world()
        lights = LightEngine(world)
        chunk = world.get_chunk(0, 0)
        lights.light_chunk(chunk)
        assert lights.light_at(4, 80, 4) == MAX_LIGHT

    def test_skylight_blocked_below_ground(self):
        world = _flat_world()
        lights = LightEngine(world)
        chunk = world.get_chunk(0, 0)
        lights.light_chunk(chunk)
        assert int(chunk.skylight[4, 4, 10]) == 0

    def test_roof_makes_darkness(self):
        world = _flat_world()
        lights = LightEngine(world)
        # Roof at y=65 over the column (4,4): below it becomes dark.
        world.set_block(4, 65, 4, Block.STONE)
        lights.relight_column(4, 4)
        chunk = world.get_chunk(0, 0)
        assert int(chunk.skylight[4, 4, 62]) == 0
        assert int(chunk.skylight[4, 4, 70]) == MAX_LIGHT

    def test_torch_emits_block_light(self):
        world = _flat_world()
        world.set_block(8, 60, 8, Block.TORCH)
        lights = LightEngine(world)
        chunk = world.get_chunk(0, 0)
        lights.light_chunk(chunk)
        assert int(chunk.blocklight[8, 8, 60]) == 14
        # One block away: one less.
        assert int(chunk.blocklight[8, 8, 61]) == 13

    def test_block_light_decays_with_distance(self):
        world = _flat_world()
        world.set_block(8, 70, 8, Block.TORCH)
        lights = LightEngine(world)
        chunk = world.get_chunk(0, 0)
        lights.light_chunk(chunk)
        assert int(chunk.blocklight[8, 8, 75]) == 14 - 5

    def test_relight_records_work(self):
        world = _flat_world()
        lights = LightEngine(world)
        lights.light_chunk(world.get_chunk(0, 0))
        report = WorkReport()
        lights.relight_around(4, 60, 4, report)
        assert report.get(Op.LIGHTING) > 0

    def test_light_at_unloaded_is_full(self):
        world = World()
        lights = LightEngine(world)
        assert lights.light_at(1000, 64, 1000) == MAX_LIGHT


class TestFluids:
    def test_water_flows_downhill(self):
        world = _flat_world(ground_y=60)
        fluids = FluidEngine(world)
        # A water source on a ledge with a pit next to it.
        world.set_block(4, 59, 4, Block.AIR)  # pit at (4, 4)
        world.set_block(5, 60, 4, Block.WATER_SOURCE)
        fluids.schedule(5, 60, 4)
        report = WorkReport()
        for tick in range(0, 10 * WATER_TICK_INTERVAL):
            fluids.tick(tick, report)
        # Water spread sideways into the pit column and fell down.
        assert world.get_block(4, 59, 4) in (
            Block.WATER_FLOW, Block.WATER_SOURCE
        ) or world.get_block(4, 60, 4) == Block.WATER_FLOW

    def test_spread_level_decreases(self):
        world = _flat_world(ground_y=60)
        fluids = FluidEngine(world)
        world.set_block(8, 60, 8, Block.WATER_SOURCE)
        fluids.schedule(8, 60, 8)
        report = WorkReport()
        for tick in range(0, 20 * WATER_TICK_INTERVAL):
            fluids.tick(tick, report)
        assert world.get_block(9, 60, 8) == Block.WATER_FLOW
        level_near = world.get_aux(9, 60, 8)
        level_far = world.get_aux(11, 60, 8)
        assert level_near > level_far or world.get_block(11, 60, 8) == Block.AIR

    def test_spread_is_bounded(self):
        world = _flat_world(ground_y=60, size=2)
        fluids = FluidEngine(world)
        world.set_block(8, 60, 8, Block.WATER_SOURCE)
        fluids.schedule(8, 60, 8)
        report = WorkReport()
        for tick in range(0, 40 * WATER_TICK_INTERVAL):
            fluids.tick(tick, report)
        # Max spread radius is 7 on flat ground.
        assert world.get_block(8 + 8, 60, 8) == Block.AIR

    def test_fluid_only_ticks_on_interval(self):
        world = _flat_world()
        fluids = FluidEngine(world)
        world.set_block(4, 60, 4, Block.WATER_SOURCE)
        fluids.schedule(4, 60, 4)
        report = WorkReport()
        assert fluids.tick(1, report) == 0  # not a fluid tick
        assert fluids.tick(WATER_TICK_INTERVAL, report) == 1

    def test_flow_vector_points_downstream(self):
        world = _flat_world(ground_y=60)
        fluids = FluidEngine(world)
        world.set_block(4, 60, 4, Block.WATER_FLOW, aux=6)
        world.set_block(5, 60, 4, Block.WATER_FLOW, aux=4)
        push = fluids.flow_vector(4, 60, 4)
        assert push[0] > 0  # toward +x (lower level)
        assert push[1] == 0

    def test_flow_vector_still_water_is_zero(self):
        world = _flat_world()
        world.set_block(4, 60, 4, Block.WATER_SOURCE)
        fluids = FluidEngine(world)
        assert fluids.flow_vector(4, 60, 4) == (0.0, 0.0)

    def test_work_is_counted(self):
        world = _flat_world(ground_y=60)
        fluids = FluidEngine(world)
        world.set_block(8, 60, 8, Block.WATER_SOURCE)
        fluids.schedule(8, 60, 8)
        report = WorkReport()
        for tick in range(0, 10 * WATER_TICK_INTERVAL):
            fluids.tick(tick, report)
        assert report.get(Op.FLUID) > 0
        assert report.get(Op.BLOCK_ADD_REMOVE) > 0

    def test_stale_queue_entries_are_not_charged(self):
        # A queued cell that no longer holds fluid when popped is queue
        # churn, not fluid work; it must not be charged to Op.FLUID.
        world = _flat_world(ground_y=60)
        fluids = FluidEngine(world)
        world.set_block(4, 60, 4, Block.WATER_SOURCE)
        fluids.schedule(4, 60, 4)
        world.set_block(4, 60, 4, Block.STONE)  # gone before the tick
        report = WorkReport()
        assert fluids.tick(WATER_TICK_INTERVAL, report) == 0
        assert report.get(Op.FLUID) == 0

    def test_flow_down_refreshes_weaker_flow_below(self):
        # A lower-level WATER_FLOW directly under a source must be
        # refreshed to full strength, not left stale because only AIR
        # below was ever written.
        world = _flat_world(ground_y=58)
        world.set_block(4, 60, 4, Block.WATER_SOURCE)
        world.set_block(4, 59, 4, Block.WATER_FLOW, aux=2)
        fluids = FluidEngine(world)
        fluids.schedule(4, 60, 4)
        report = WorkReport()
        fluids.tick(WATER_TICK_INTERVAL, report)
        assert world.get_aux(4, 59, 4) == MAX_FLOW_LEVEL


class TestLava:
    def test_lava_spreads_sideways_with_short_reach(self):
        world = _flat_world(ground_y=60)
        fluids = FluidEngine(world)
        world.set_block(8, 60, 8, Block.LAVA)
        fluids.schedule(8, 60, 8)
        report = WorkReport()
        for tick in range(0, 30 * LAVA_TICK_INTERVAL):
            fluids.tick(tick, report)
        assert world.get_block(9, 60, 8) == Block.LAVA
        assert world.get_aux(9, 60, 8) == MAX_LAVA_FLOW_LEVEL
        # Shorter reach than water: dead past MAX_LAVA_FLOW_LEVEL blocks.
        assert world.get_block(8 + MAX_LAVA_FLOW_LEVEL + 1, 60, 8) == Block.AIR
        assert report.get(Op.FLUID) > 0

    def test_lava_flows_down(self):
        world = _flat_world(ground_y=60)
        world.set_block(4, 59, 4, Block.AIR)  # pit
        world.set_block(4, 60, 4, Block.LAVA)
        fluids = FluidEngine(world)
        fluids.schedule(4, 60, 4)
        report = WorkReport()
        for tick in range(0, 5 * LAVA_TICK_INTERVAL):
            fluids.tick(tick, report)
        assert world.get_block(4, 59, 4) == Block.LAVA

    def test_lava_is_slower_than_water(self):
        # A lava cell queued at tick 0 does nothing on a plain water tick;
        # it waits for the (less frequent) lava interval.
        world = _flat_world(ground_y=60)
        world.set_block(4, 60, 4, Block.LAVA)
        fluids = FluidEngine(world)
        fluids.schedule(4, 60, 4)
        report = WorkReport()
        assert fluids.tick(WATER_TICK_INTERVAL, report) == 0
        assert world.get_block(5, 60, 4) == Block.AIR
        assert fluids.tick(LAVA_TICK_INTERVAL, report) == 1
        assert world.get_block(5, 60, 4) == Block.LAVA

    def test_queued_lava_is_not_pure_churn(self):
        # The old engine enqueued lava cells and silently dropped them in
        # _update_cell — work was counted with nothing simulated.  Now a
        # processed lava cell actually spreads.
        world = _flat_world(ground_y=60)
        world.set_block(4, 60, 4, Block.LAVA)
        fluids = FluidEngine(world)
        fluids.schedule_neighbors(5, 60, 4)
        assert fluids.pending == 1
        report = WorkReport()
        for tick in range(0, 2 * LAVA_TICK_INTERVAL):
            fluids.tick(tick, report)
        assert world.count_blocks(Block.LAVA) > 1

    def test_unsupported_lava_flow_clears(self):
        world = _flat_world(ground_y=60)
        world.set_block(4, 60, 4, Block.LAVA)
        world.set_aux(4, 60, 4, 1)  # a flow with no feeding neighbor
        fluids = FluidEngine(world)
        fluids.schedule(4, 60, 4)
        report = WorkReport()
        for tick in range(0, 2 * LAVA_TICK_INTERVAL):
            fluids.tick(tick, report)
        assert world.get_block(4, 60, 4) == Block.AIR

    def test_lava_exerts_no_item_push(self):
        world = _flat_world(ground_y=60)
        world.set_block(4, 60, 4, Block.LAVA)
        world.set_aux(4, 60, 4, 2)
        fluids = FluidEngine(world)
        assert fluids.flow_vector(4, 60, 4) == (0.0, 0.0)


class TestGrowth:
    def _engine(self, world, seed=0):
        return GrowthEngine(world, np.random.default_rng(seed))

    def test_crop_stage_advances_and_matures(self):
        """Direct stage mechanics: each growth step advances one stage and
        maturation is announced exactly once."""
        world = _flat_world()
        world.set_block(4, 60, 4, Block.CROP, aux=0)
        growth = self._engine(world)
        chunk = world.get_chunk(0, 0)
        for expected_stage in range(1, CROP_MATURE_STAGE + 1):
            growth._grow_crop(chunk, 4, 4, 60)
            assert world.get_aux(4, 60, 4) == expected_stage
        matured = list(growth.matured)
        assert matured == [(4, 60, 4)]
        # Mature crops stop advancing.
        growth._grow_crop(chunk, 4, 4, 60)
        assert world.get_aux(4, 60, 4) == CROP_MATURE_STAGE

    def test_crop_field_progresses_under_random_ticks(self):
        world = _flat_world()
        for x in range(16):
            for z in range(16):
                world.set_block(x, 60, z, Block.CROP, aux=0)
        growth = self._engine(world)
        report = WorkReport()
        for _ in range(3000):
            growth.tick(report)
        chunk = world.get_chunk(0, 0)
        assert int(chunk.aux[:, :, 60].sum()) > 0, "no crop advanced"

    def test_kelp_grows_up_through_water(self):
        world = _flat_world(ground_y=40)
        for y in range(40, SEA_LEVEL):
            world.set_block(4, y, 4, Block.WATER_SOURCE)
        world.set_block(4, 40, 4, Block.KELP)
        growth = self._engine(world)
        report = WorkReport()
        chunk = world.get_chunk(0, 0)
        growth._grow_kelp(chunk, 4, 4, 40, report)
        assert world.get_block(4, 41, 4) == Block.KELP
        assert report.get(Op.BLOCK_ADD_REMOVE) == 1

    def test_kelp_height_is_capped(self):
        world = _flat_world(ground_y=30)
        for y in range(30, SEA_LEVEL):
            world.set_block(4, y, 4, Block.WATER_SOURCE)
        world.set_block(4, 30, 4, Block.KELP)
        growth = self._engine(world)
        report = WorkReport()
        chunk = world.get_chunk(0, 0)
        for _ in range(3 * KELP_MAX_HEIGHT):
            growth._grow_kelp(chunk, 4, 4, 30, report)
        stalk = 0
        y = 30
        while world.get_block(4, y, 4) == Block.KELP:
            stalk += 1
            y += 1
        assert stalk <= KELP_MAX_HEIGHT

    def test_growth_counts_random_ticks(self):
        world = _flat_world()
        growth = self._engine(world)
        report = WorkReport()
        growth.tick(report)
        from repro.mlg.constants import RANDOM_TICK_SPEED

        assert report.get(Op.GROWTH) == RANDOM_TICK_SPEED  # one chunk

    def test_empty_world_is_noop(self):
        world = World()
        growth = self._engine(world)
        report = WorkReport()
        assert growth.tick(report) == 0
