"""Tests for the game loop and the MLG server facade."""

import numpy as np
import pytest

from repro.cloud import get_environment
from repro.mlg.blocks import Block
from repro.mlg.constants import CLIENT_TIMEOUT_US, TICK_BUDGET_US
from repro.mlg.protocol import ActionKind, PacketCategory, PlayerAction
from repro.mlg.server import MLGServer
from repro.mlg.world import World
from repro.mlg.worldgen import TerrainGenerator
from repro.simtime import SimClock


class FixedMachine:
    """Deterministic machine: duration equals work (no noise)."""

    def __init__(self, slowdown=1.0):
        self.slowdown = slowdown
        self.throttled_executions = 0
        self.total_executions = 0
        self.cpu_used_us = 0.0
        self.wall_observed_us = 0.0

    @property
    def credits_s(self):
        return 0.0

    def execute(self, work_us, parallel_fraction, now_us, **kwargs):
        self.total_executions += 1
        self.cpu_used_us += work_us
        return max(1, int(work_us * self.slowdown))


def _server(variant="vanilla", machine=None, flat=True, seed=0):
    if flat:
        world = World()
        for cx in range(-1, 3):
            for cz in range(-1, 3):
                chunk = world.ensure_chunk(cx, cz)
                chunk.blocks[:, :, :60] = Block.STONE
                chunk.recompute_heightmap()
    else:
        world = World(generator=TerrainGenerator(seed=1))
    return MLGServer(
        variant, machine or FixedMachine(), world=world, seed=seed
    )


class TestTickMechanics:
    def test_fast_tick_waits_for_budget(self):
        server = _server()
        record = server.tick()
        assert record.duration_us < TICK_BUDGET_US
        assert record.wait_us == TICK_BUDGET_US - record.duration_us
        assert server.clock.now_us == TICK_BUDGET_US

    def test_slow_tick_has_no_wait(self):
        server = _server(machine=FixedMachine(slowdown=100.0))
        server.connect_client("p", 8.0, 8.0, 1000, 1000, view_distance=4)
        record = server.tick()  # the join tick carries chunk-gen work
        assert record.duration_us > TICK_BUDGET_US
        assert record.wait_us == 0
        assert record.overloaded

    def test_tick_indexes_increment(self):
        server = _server()
        records = [server.tick() for _ in range(5)]
        assert [r.index for r in records] == [0, 1, 2, 3, 4]

    def test_records_accumulate(self):
        server = _server()
        server.tick()
        server.tick()
        assert len(server.tick_records) == 2
        assert server.tick_durations_ms()

    def test_breakdown_buckets_present(self):
        server = _server()
        record = server.tick()
        assert "Other" in record.breakdown_us  # tick_fixed lands in Other

    def test_run_for_stops_at_deadline(self):
        server = _server()
        records = server.run_for(1.0)
        assert len(records) == 20  # 20 Hz x 1 s
        assert server.clock.now_us >= 1_000_000


class TestJoinWork:
    def test_join_work_charged_to_next_tick(self):
        server = _server()
        baseline = server.tick()
        server.connect_client("p", 8.0, 8.0, 1000, 1000, view_distance=4)
        join_tick = server.tick()
        after = server.tick()
        assert join_tick.duration_us > 5 * baseline.duration_us
        assert after.duration_us < join_tick.duration_us

    def test_join_ships_chunk_data(self):
        server = _server()
        server.connect_client("p", 8.0, 8.0, 1000, 1000, view_distance=4)
        server.tick()
        assert server.net.stats.counts[PacketCategory.CHUNK_DATA] == 81


class TestActionRoundtrip:
    def test_move_action_applies_next_tick(self):
        server = _server()
        conn = server.connect_client("p", 8.0, 8.0, 1000, 1000, 4)
        server.tick()
        action = PlayerAction(ActionKind.MOVE, conn.client_id, (9.0, 60.0, 8.0))
        server.submit_action(action, server.clock.now_us)
        server.tick()
        server.tick()
        assert conn.x == 9.0

    def test_sync_chat_echo_latency_includes_tick(self):
        server = _server("vanilla")
        conn = server.connect_client("p", 8.0, 8.0, 1000, 2000, 4)
        server.tick()
        sent_at = server.clock.now_us
        action = PlayerAction(ActionKind.CHAT, conn.client_id, (1, 32))
        server.submit_action(action, sent_at)
        server.tick()  # in flight during this tick (arrival > tick start)
        server.tick()  # drained, processed, flushed at tick end
        endpoint = server.net.client(conn.client_id)
        chats = [
            d for d in endpoint.drain_deliveries()
            if d.category == PacketCategory.CHAT
        ]
        assert len(chats) == 1
        # Echo arrives after uplink + tick + downlink; at least RTT.
        assert chats[0].delivered_at_us - sent_at >= 3000

    def test_async_chat_skips_tick(self):
        server = _server("papermc")
        conn = server.connect_client("p", 8.0, 8.0, 1000, 2000, 4)
        sent_at = server.clock.now_us
        action = PlayerAction(ActionKind.CHAT, conn.client_id, (5, 32))
        server.submit_action(action, sent_at)
        endpoint = server.net.client(conn.client_id)
        chats = [
            d for d in endpoint.drain_deliveries()
            if d.category == PacketCategory.CHAT
        ]
        assert len(chats) == 1  # delivered without any tick running
        latency = chats[0].delivered_at_us - sent_at
        assert latency < 10_000  # well under one tick budget


class TestCrash:
    def test_monster_tick_times_out_all_clients(self):
        server = _server(machine=FixedMachine(slowdown=1.0))
        server.connect_client("p", 8.0, 8.0, 1000, 1000, 2)
        server.tick()

        def stall(server_, tick_index, report):
            if tick_index == 2:
                report.add("chat", CLIENT_TIMEOUT_US / 25.0)  # 25 µs each

        server.add_tick_hook(stall)
        server.start()
        for _ in range(5):
            server.tick()
            if server.crashed:
                break
        assert server.crashed
        assert "timed out" in server.crash_reason
        assert server.net.connected_count == 0

    def test_no_crash_without_clients(self):
        server = _server(machine=FixedMachine(slowdown=1000.0))
        server.start()
        for _ in range(3):
            server.tick()
        assert not server.crashed


class TestServerIntrospection:
    def test_memory_grows_with_world(self):
        server = _server()
        before = server.memory_bytes()
        server.world.ensure_chunk(50, 50)
        assert server.memory_bytes() > before

    def test_thread_count_from_variant(self):
        assert _server("vanilla").thread_count == 26
        assert _server("papermc").thread_count == 43

    def test_overloaded_fraction(self):
        server = _server(machine=FixedMachine(slowdown=200.0))
        server.connect_client("p", 8.0, 8.0, 1000, 1000, 4)
        server.tick()
        assert server.overloaded_fraction > 0

    def test_autosave_writes_dirty_chunks(self):
        server = _server()
        server.world.set_block(1, 61, 1, Block.STONE)
        server.run_for(46.0)  # past the 45 s autosave interval
        assert server.disk_bytes_written > 0

    def test_variant_resolution_by_string(self):
        server = _server("minecraft")
        assert server.variant.name == "vanilla"


class TestHeadlessRedstone:
    """Observer-triggered redstone must advance with zero clients: the
    drain+notify step is server-side simulation, not client broadcast."""

    def _observer_server(self):
        server = _server()
        # Observer watching a block we mutate from a tick hook, wired to
        # a powered line so the pulse produces visible updates.
        server.world.set_block(10, 61, 10, Block.OBSERVER, log=False)
        server.redstone.register_observer(10, 61, 10)
        server.world.set_block(11, 61, 10, Block.REDSTONE_WIRE, log=False)

        def mutate(server_, tick_index, report):
            if tick_index == 0:
                # Logged change adjacent to the observer.
                server_.world.set_block(10, 62, 10, Block.STONE)

        server.add_tick_hook(mutate)
        return server

    def test_observer_fires_with_zero_clients(self):
        server = self._observer_server()
        assert server.net.connected_count == 0
        updates = []
        for _ in range(6):
            server.tick()
            updates.append(server.redstone.last_tick_updates)
        assert sum(updates) > 0, (
            "zero-client run froze observer redstone: block changes were "
            "drained without notifying the redstone engine"
        )

    def test_observer_updates_match_connected_run(self):
        # The circuit advances identically whether or not anyone watches.
        connected = self._observer_server()
        connected.connect_client("p", 8.0, 8.0, 1000, 1000, 4)
        headless = self._observer_server()
        totals = {}
        for name, server in (("connected", connected), ("headless", headless)):
            updates = []
            for _ in range(6):
                server.tick()
                updates.append(server.redstone.last_tick_updates)
            # Tick wall-times differ (join work), so compare totals, not
            # per-tick placement.
            totals[name] = sum(updates)
        assert totals["headless"] == totals["connected"]
        assert totals["headless"] > 0


class TestEntityBroadcastInterval:
    def test_papermc_batches_entity_moves(self):
        counts = {}
        for variant in ("vanilla", "papermc"):
            server = _server(variant, seed=3)
            server.connect_client("p", 8.0, 8.0, 1000, 1000, 4)
            for _ in range(40):
                mob = server.entities.spawn("mob", 10.0, 60.0, 10.0)
                mob.goal = (30, 60, 30)
            server.run_for(3.0)
            counts[variant] = server.net.stats.counts.get(
                PacketCategory.ENTITY_MOVE, 0
            )
        assert counts["papermc"] < counts["vanilla"]
