"""Tests for the block registry and the chunked voxel world."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.mlg.blocks import BLOCK_SPECS, Block, is_opaque, is_solid, spec
from repro.mlg.constants import CHUNK_SIZE, WORLD_HEIGHT
from repro.mlg.world import BlockChange, Chunk, World


class TestBlockRegistry:
    def test_every_block_id_has_a_spec(self):
        for block_id in Block.ALL:
            assert spec(block_id).name

    def test_air_is_not_solid_and_not_opaque(self):
        assert not is_solid(Block.AIR)
        assert not is_opaque(Block.AIR)

    def test_stone_is_solid_and_opaque(self):
        assert is_solid(Block.STONE)
        assert is_opaque(Block.STONE)

    def test_water_is_fluid(self):
        assert spec(Block.WATER_SOURCE).fluid
        assert spec(Block.WATER_FLOW).fluid
        assert not spec(Block.STONE).fluid

    def test_gravity_blocks(self):
        assert spec(Block.SAND).gravity
        assert spec(Block.GRAVEL).gravity
        assert not spec(Block.STONE).gravity

    def test_light_emitters(self):
        assert spec(Block.TORCH).light_emission > 0
        assert spec(Block.LAVA).light_emission == 15
        assert spec(Block.STONE).light_emission == 0

    def test_bedrock_is_blast_proof(self):
        assert spec(Block.BEDROCK).blast_resistance > 1000

    def test_tnt_has_zero_resistance(self):
        assert spec(Block.TNT).blast_resistance == 0.0

    def test_unknown_block_raises(self):
        with pytest.raises(ValueError):
            spec(255)

    def test_ids_are_dense_and_uint8_safe(self):
        assert max(Block.ALL) < 256
        assert set(BLOCK_SPECS) == set(Block.ALL)


class TestChunk:
    def test_new_chunk_is_all_air(self):
        chunk = Chunk(0, 0)
        assert int(chunk.blocks.sum()) == 0
        assert int(chunk.heightmap.max()) == 0

    def test_heightmap_recompute(self):
        chunk = Chunk(0, 0)
        chunk.blocks[3, 4, 10] = Block.STONE
        chunk.blocks[3, 4, 20] = Block.STONE
        chunk.recompute_heightmap()
        assert chunk.heightmap[3, 4] == 21
        assert chunk.heightmap[0, 0] == 0

    def test_update_height_single_column(self):
        chunk = Chunk(0, 0)
        chunk.blocks[5, 5, 30] = Block.DIRT
        chunk.update_height_at(5, 5)
        assert chunk.heightmap[5, 5] == 31

    def test_nbytes_accounts_all_arrays(self):
        chunk = Chunk(0, 0)
        expected = (
            chunk.blocks.nbytes
            + chunk.aux.nbytes
            + chunk.skylight.nbytes
            + chunk.blocklight.nbytes
            + chunk.heightmap.nbytes
        )
        assert chunk.nbytes == expected


class TestWorld:
    def test_get_unloaded_is_air(self):
        world = World()
        assert world.get_block(1000, 64, 1000) == Block.AIR

    def test_set_get_roundtrip(self):
        world = World()
        world.set_block(5, 64, 9, Block.STONE)
        assert world.get_block(5, 64, 9) == Block.STONE

    def test_negative_coordinates(self):
        world = World()
        world.set_block(-3, 10, -17, Block.DIRT)
        assert world.get_block(-3, 10, -17) == Block.DIRT
        assert world.get_block(-3, 10, -18) == Block.AIR

    def test_out_of_vertical_bounds(self):
        world = World()
        assert world.set_block(0, -1, 0, Block.STONE) is None
        assert world.set_block(0, WORLD_HEIGHT, 0, Block.STONE) is None
        assert world.get_block(0, -5, 0) == Block.AIR

    def test_change_log_records_mutations(self):
        world = World()
        world.set_block(1, 60, 1, Block.STONE)
        world.set_block(1, 60, 1, Block.AIR)
        changes = world.drain_changes()
        assert changes == [
            BlockChange(1, 60, 1, Block.AIR, Block.STONE),
            BlockChange(1, 60, 1, Block.STONE, Block.AIR),
        ]
        assert world.drain_changes() == []

    def test_noop_set_is_not_logged(self):
        world = World()
        world.set_block(1, 60, 1, Block.STONE)
        world.drain_changes()
        assert world.set_block(1, 60, 1, Block.STONE) is None
        assert world.pending_change_count() == 0

    def test_log_false_suppresses_change_log(self):
        world = World()
        world.set_block(1, 60, 1, Block.STONE, log=False)
        assert world.pending_change_count() == 0

    def test_heightmap_updates_on_set(self):
        world = World()
        world.set_block(4, 50, 4, Block.STONE)
        assert world.column_height(4, 4) == 51
        world.set_block(4, 50, 4, Block.AIR)
        assert world.column_height(4, 4) == 0

    def test_generator_invoked_lazily(self):
        calls = []

        def generator(chunk):
            calls.append((chunk.cx, chunk.cz))
            chunk.blocks[:, :, 0] = Block.BEDROCK

        world = World(generator=generator)
        assert world.get_block(0, 0, 0) == Block.AIR  # reads don't generate
        world.ensure_chunk(0, 0)
        assert calls == [(0, 0)]
        assert world.get_block(0, 0, 0) == Block.BEDROCK
        world.ensure_chunk(0, 0)
        assert calls == [(0, 0)]  # second call is a no-op

    def test_chunk_coords(self):
        assert World.chunk_coords(0, 0) == (0, 0)
        assert World.chunk_coords(15, 15) == (0, 0)
        assert World.chunk_coords(16, 0) == (1, 0)
        assert World.chunk_coords(-1, -16) == (-1, -1)

    def test_fill_counts_and_validates(self):
        world = World()
        count = world.fill(0, 10, 0, 3, 11, 3, Block.STONE)
        assert count == 4 * 4 * 2
        with pytest.raises(ValueError):
            world.fill(5, 5, 5, 4, 5, 5, Block.STONE)

    def test_count_blocks(self):
        world = World()
        world.fill(0, 10, 0, 2, 10, 2, Block.TNT)
        assert world.count_blocks(Block.TNT) == 9

    def test_column_heights_bulk_matches_scalar(self):
        world = World()
        world.set_block(2, 40, 3, Block.STONE)
        world.set_block(20, 55, 30, Block.STONE)
        xs = np.array([2, 20, 100])
        zs = np.array([3, 30, 100])
        heights = world.column_heights_bulk(xs, zs)
        assert list(heights) == [41, 56, 0]

    def test_nbytes_grows_with_chunks(self):
        world = World()
        world.ensure_chunk(0, 0)
        one = world.nbytes
        world.ensure_chunk(1, 0)
        assert world.nbytes == 2 * one


@given(
    st.integers(min_value=-1000, max_value=1000),
    st.integers(min_value=0, max_value=WORLD_HEIGHT - 1),
    st.integers(min_value=-1000, max_value=1000),
    st.sampled_from(Block.ALL),
)
def test_property_set_get_roundtrip(x, y, z, block_id):
    world = World()
    world.set_block(x, y, z, block_id)
    assert world.get_block(x, y, z) == block_id


@given(st.lists(
    st.tuples(
        st.integers(min_value=-64, max_value=64),
        st.integers(min_value=0, max_value=WORLD_HEIGHT - 1),
        st.integers(min_value=-64, max_value=64),
    ),
    min_size=1, max_size=30,
))
def test_property_heightmap_consistent_after_mutations(positions):
    world = World()
    for x, y, z in positions:
        world.set_block(x, y, z, Block.STONE)
    for x, y, z in positions:
        chunk = world.get_chunk(x >> 4, z >> 4)
        column = chunk.blocks[x & 15, z & 15]
        top = int(np.flatnonzero(column)[-1]) + 1
        assert world.column_height(x, z) == top
