"""Tests for spawning, the player handler, and the chat subsystem."""

import numpy as np
import pytest

from repro.mlg.blocks import Block
from repro.mlg.chat import ChatSystem
from repro.mlg.entity import EntityKind
from repro.mlg.entity_manager import EntityManager
from repro.mlg.fluids import FluidEngine
from repro.mlg.lighting import LightEngine
from repro.mlg.netqueue import NetworkQueues
from repro.mlg.player import PlayerHandler
from repro.mlg.protocol import ActionKind, PacketCategory, PlayerAction
from repro.mlg.spawning import SpawnEngine, SpawnPlatform
from repro.mlg.workreport import Op, WorkReport
from repro.mlg.world import World


def _flat_world(ground_y=60, size=3):
    world = World()
    for cx in range(size):
        for cz in range(size):
            chunk = world.ensure_chunk(cx, cz)
            chunk.blocks[:, :, :ground_y] = Block.STONE
            chunk.recompute_heightmap()
    return world


def _stack(world=None, seed=0):
    world = world if world is not None else _flat_world()
    lights = LightEngine(world)
    for chunk in world.loaded_chunks():
        lights.light_chunk(chunk)
    entities = EntityManager(world, np.random.default_rng(seed))
    spawning = SpawnEngine(world, lights, entities, np.random.default_rng(seed))
    return world, lights, entities, spawning


class TestSpawnChecks:
    def test_valid_surface_spawn_for_passive(self):
        world, lights, entities, spawning = _stack()
        assert spawning.can_spawn_at(8, 60, 8, passive=True)

    def test_hostile_needs_darkness(self):
        world, lights, entities, spawning = _stack()
        assert not spawning.can_spawn_at(8, 60, 8, passive=False)

    def test_no_spawn_inside_solid(self):
        world, lights, entities, spawning = _stack()
        assert not spawning.can_spawn_at(8, 30, 8, passive=True)

    def test_no_spawn_without_floor(self):
        world, lights, entities, spawning = _stack()
        assert not spawning.can_spawn_at(8, 80, 8, passive=True)

    def test_dark_roofed_spot_allows_hostile(self):
        world, lights, entities, spawning = _stack()
        for dx in range(-2, 3):
            for dz in range(-2, 3):
                world.set_block(8 + dx, 64, 8 + dz, Block.STONE)
        lights.relight_column(8, 8)
        assert spawning.can_spawn_at(8, 60, 8, passive=False)


class TestPlatformSpawning:
    def test_platform_spawns_up_to_cap(self):
        world, lights, entities, spawning = _stack()
        # Build a dark platform.
        for x in range(4, 12):
            for z in range(4, 12):
                world.set_block(x, 69, z, Block.OBSIDIAN)
                world.set_block(x, 73, z, Block.STONE)
        chunk = world.get_chunk(0, 0)
        lights.light_chunk(chunk)
        platform = SpawnPlatform(
            4, 4, 11, 11, y=70, attempts_per_tick=2.0, local_cap=5
        )
        spawning.add_platform(platform)
        report = WorkReport()
        for _ in range(200):
            spawning.tick([], report)
        assert entities.count(EntityKind.MOB) == 5
        assert report.get(Op.SPAWN_ATTEMPT) > 0

    def test_goal_kills_and_drops(self):
        world, lights, entities, spawning = _stack()
        platform = SpawnPlatform(
            0, 0, 8, 8, y=61, attempts_per_tick=0.0, local_cap=5,
            goal=(4, 61, 4), drops_per_kill=3,
        )
        spawning.add_platform(platform)
        mob = entities.spawn(EntityKind.MOB, 4.5, 61.0, 4.5)
        platform._mobs.append(mob)
        report = WorkReport()
        spawning.tick([], report)
        assert not mob.alive
        assert spawning.kills_total == 1
        assert entities.count(EntityKind.ITEM) == 3

    def test_goal_collection_absorbs_old_items(self):
        world, lights, entities, spawning = _stack()
        platform = SpawnPlatform(
            0, 0, 8, 8, y=61, attempts_per_tick=0.0,
            goal=(4, 61, 4), collect_after_ticks=10,
        )
        spawning.add_platform(platform)
        item = entities.spawn(EntityKind.ITEM, 4.5, 61.0, 4.5)
        item.age_ticks = 50
        report = WorkReport()
        spawning.tick([], report)
        assert not item.alive
        assert entities.collected_items == 1

    def test_natural_spawning_caps_at_mob_cap(self):
        from repro.mlg.constants import MOB_CAP

        world, lights, entities, spawning = _stack()
        report = WorkReport()
        for _ in range(3000):
            spawning.tick([(24.0, 61.0, 24.0)], report)
        assert entities.count(EntityKind.MOB) <= MOB_CAP


class TestPlayerHandler:
    def _handler(self):
        world = _flat_world()
        lights = LightEngine(world)
        fluids = FluidEngine(world)
        net = NetworkQueues()
        chat = ChatSystem(net, async_mode=False)
        handler = PlayerHandler(world, lights, fluids, net, chat)
        return handler, world, net, chat

    def test_connect_loads_view(self):
        handler, world, net, _ = self._handler()
        net.register_client(1, 0, 1000, 1000)
        report = WorkReport()
        conn = handler.connect(1, "alice", 8.0, 8.0, report, view_distance=2)
        assert len(conn.loaded_chunks) == 25
        # Every chunk is charged exactly once: generated, disk-loaded, or
        # (already resident, as in this pre-built flat world) view-attached.
        assert (
            report.get(Op.CHUNK_GEN)
            + report.get(Op.CHUNK_LOAD)
            + report.get(Op.CHUNK_VIEW)
        ) == 25
        assert net.stats.counts[PacketCategory.CHUNK_DATA] == 25

    def test_connect_spawns_at_ground_level(self):
        handler, world, _, _ = self._handler()
        handler.net.register_client(1, 0, 1000, 1000)
        conn = handler.connect(1, "alice", 8.0, 8.0, WorkReport(), 2)
        assert conn.y == 60.0

    def test_move_is_validated_against_terrain(self):
        handler, world, net, _ = self._handler()
        net.register_client(1, 0, 1000, 1000)
        conn = handler.connect(1, "alice", 8.0, 8.0, WorkReport(), 2)
        # Try to move inside solid stone: rejected.
        action = PlayerAction(ActionKind.MOVE, 1, (9.0, 30.0, 8.0))
        handler.process_actions([action], WorkReport())
        assert (conn.x, conn.y) == (8.0, 60.0)
        # A legal surface move is applied.
        action = PlayerAction(ActionKind.MOVE, 1, (9.0, 60.0, 8.0))
        handler.process_actions([action], WorkReport())
        assert conn.x == 9.0
        assert conn.moved_this_tick

    def test_build_and_dig(self):
        handler, world, net, _ = self._handler()
        net.register_client(1, 0, 1000, 1000)
        handler.connect(1, "alice", 8.0, 8.0, WorkReport(), 2)
        report = WorkReport()
        build = PlayerAction(
            ActionKind.BUILD, 1, (10, 60, 10, Block.COBBLESTONE)
        )
        handler.process_actions([build], report)
        assert world.get_block(10, 60, 10) == Block.COBBLESTONE
        assert report.get(Op.BLOCK_ADD_REMOVE) == 1
        assert report.get(Op.LIGHTING) > 0
        dig = PlayerAction(ActionKind.DIG, 1, (10, 60, 10))
        handler.process_actions([dig], report)
        assert world.get_block(10, 60, 10) == Block.AIR

    def test_build_into_solid_rejected(self):
        handler, world, net, _ = self._handler()
        net.register_client(1, 0, 1000, 1000)
        handler.connect(1, "alice", 8.0, 8.0, WorkReport(), 2)
        build = PlayerAction(ActionKind.BUILD, 1, (8, 30, 8, Block.GLASS))
        handler.process_actions([build], WorkReport())
        assert world.get_block(8, 30, 8) == Block.STONE

    def test_crossing_chunk_border_loads_more(self):
        handler, world, net, _ = self._handler()
        net.register_client(1, 0, 1000, 1000)
        conn = handler.connect(1, "alice", 8.0, 8.0, WorkReport(), 2)
        before = len(conn.loaded_chunks)
        move = PlayerAction(ActionKind.MOVE, 1, (24.0, 60.0, 8.0))
        handler.process_actions([move], WorkReport())
        assert len(conn.loaded_chunks) > before

    def test_actions_from_unknown_client_ignored(self):
        handler, _, _, _ = self._handler()
        processed = handler.process_actions(
            [PlayerAction(ActionKind.MOVE, 99, (1.0, 60.0, 1.0))],
            WorkReport(),
        )
        assert processed == 0


class TestChat:
    def test_sync_chat_waits_for_tick(self):
        net = NetworkQueues()
        net.register_client(1, 0, 1000, 2000)
        chat = ChatSystem(net, async_mode=False)
        report = WorkReport()
        chat.submit(1, probe_id=7, arrival_us=100, report=report)
        assert chat.pending_count() == 1
        assert chat.process_tick(report) == 1
        flushed = chat.flush_processed(50_000, report)
        assert flushed == 1
        deliveries = net.client(1).drain_deliveries()
        assert len(deliveries) == 1
        delivery = deliveries[0]
        assert delivery.payload == (1, 7)
        assert delivery.delivered_at_us == 50_000 + 2000

    def test_async_chat_answers_immediately(self):
        from repro.mlg.chat import ASYNC_CHAT_LATENCY_US

        net = NetworkQueues()
        net.register_client(1, 0, 1000, 2000)
        chat = ChatSystem(net, async_mode=True)
        report = WorkReport()
        chat.submit(1, probe_id=3, arrival_us=10_000, report=report)
        assert chat.pending_count() == 0
        deliveries = net.client(1).drain_deliveries()
        assert len(deliveries) == 1
        assert (
            deliveries[0].delivered_at_us
            == 10_000 + ASYNC_CHAT_LATENCY_US + 2000
        )

    def test_chat_broadcast_reaches_everyone(self):
        net = NetworkQueues()
        for cid in (1, 2, 3):
            net.register_client(cid, 0, 1000, 1000)
        chat = ChatSystem(net, async_mode=False)
        report = WorkReport()
        chat.submit(1, probe_id=1, arrival_us=0, report=report)
        chat.process_tick(report)
        chat.flush_processed(50_000, report)
        for cid in (1, 2, 3):
            assert len(net.client(cid).drain_deliveries()) == 1
