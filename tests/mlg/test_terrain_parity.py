"""Scalar-vs-batched parity for the terrain engines and bulk world APIs.

The batched fluid/growth paths must produce the *bit-identical* final
world state (blocks + aux + heightmap) as the scalar reference on
recorded scenarios — the contract that makes the numpy batching a pure
performance change rather than a simulation-model change.
"""

import numpy as np
import pytest

from repro.mlg.blocks import Block
from repro.mlg.constants import CHUNK_SIZE, WORLD_HEIGHT
from repro.mlg.fluids import (
    LAVA_TICK_INTERVAL,
    WATER_TICK_INTERVAL,
    FluidEngine,
)
from repro.mlg.growth import GrowthEngine
from repro.mlg.workreport import Op, WorkReport
from repro.mlg.world import World


def _flat_world(ground_y=40, size=3):
    world = World()
    for cx in range(size):
        for cz in range(size):
            chunk = world.ensure_chunk(cx, cz)
            chunk.blocks[:, :, :ground_y] = Block.STONE
            chunk.recompute_heightmap()
    return world


def _assert_worlds_identical(a: World, b: World):
    keys_a = {(c.cx, c.cz) for c in a.loaded_chunks()}
    keys_b = {(c.cx, c.cz) for c in b.loaded_chunks()}
    assert keys_a == keys_b
    for key in sorted(keys_a):
        ca, cb = a.get_chunk(*key), b.get_chunk(*key)
        np.testing.assert_array_equal(ca.blocks, cb.blocks, err_msg=str(key))
        np.testing.assert_array_equal(ca.aux, cb.aux, err_msg=str(key))
        np.testing.assert_array_equal(
            ca.heightmap, cb.heightmap, err_msg=str(key)
        )


# -- recorded fluid scenarios -------------------------------------------------
#
# Each scenario builds a world, seeds the fluid queue, and is run to
# quiescence on both engines; it must drain its queue within the tick cap
# so the comparison really is of a settled final state.


def _scenario_dam_break(world: World, fluids: FluidEngine):
    """Water spilling from a ledge down a two-step terrace."""
    # Carve a stepped pit into the 3x3-chunk slab.
    world.fill(8, 36, 8, 24, 40, 30, Block.AIR)
    world.fill(8, 4, 8, 24, 38, 30, Block.STONE)
    world.fill(14, 4, 8, 24, 36, 30, Block.STONE)
    world.fill(14, 37, 8, 24, 37, 30, Block.AIR)
    # A line of sources on the ledge.
    for z in range(10, 28):
        world.set_block(8, 41, z, Block.WATER_SOURCE)
        fluids.schedule(8, 41, z)


def _scenario_drain(world: World, fluids: FluidEngine):
    """An established flow sheet whose feeding sources vanish."""
    for z in range(12, 24):
        for i, x in enumerate(range(10, 17)):
            world.set_block(x, 41, z, Block.WATER_FLOW, aux=7 - i)
    # Sources fed the sheet from x=9; remove them and wake the edge.
    for z in range(12, 24):
        fluids.schedule(10, 41, z)


def _scenario_lava_pond(world: World, fluids: FluidEngine):
    """Lava spreading over a step, plus an unsupported lava flow."""
    world.fill(20, 41, 20, 26, 41, 26, Block.STONE)  # a raised slab
    for pos in ((22, 42, 22), (24, 42, 24)):
        world.set_block(*pos, Block.LAVA)
        fluids.schedule(*pos)
    world.set_block(10, 41, 10, Block.LAVA)
    world.set_aux(10, 41, 10, 1)  # stray flow with no source: must clear
    fluids.schedule(10, 41, 10)


def _scenario_mixed(world: World, fluids: FluidEngine):
    """Water and lava queues active in the same ticks."""
    _scenario_drain(world, fluids)
    _scenario_lava_pond(world, fluids)


FLUID_SCENARIOS = {
    "dam_break": _scenario_dam_break,
    "drain": _scenario_drain,
    "lava_pond": _scenario_lava_pond,
    "mixed": _scenario_mixed,
}


def _run_fluid_scenario(build, batched: bool, max_ticks: int = 4000):
    world = _flat_world()
    fluids = FluidEngine(world, batched=batched)
    build(world, fluids)
    report = WorkReport()
    tick = 0
    while fluids.pending and tick < max_ticks:
        fluids.tick(tick, report)
        tick += 1
    assert fluids.pending == 0, "scenario must reach quiescence"
    return world, report


class TestFluidParity:
    @pytest.mark.parametrize("name", sorted(FLUID_SCENARIOS))
    def test_final_state_bit_identical(self, name):
        build = FLUID_SCENARIOS[name]
        world_scalar, _ = _run_fluid_scenario(build, batched=False)
        world_batched, _ = _run_fluid_scenario(build, batched=True)
        _assert_worlds_identical(world_scalar, world_batched)

    @pytest.mark.parametrize("name", sorted(FLUID_SCENARIOS))
    def test_scenarios_do_real_work(self, name):
        _, report = _run_fluid_scenario(FLUID_SCENARIOS[name], batched=True)
        assert report.get(Op.FLUID) > 0
        assert report.get(Op.BLOCK_ADD_REMOVE) > 0


class TestGrowthParity:
    def _planted_world(self):
        world = _flat_world(ground_y=40, size=2)
        for x in range(0, 32, 2):
            for z in range(0, 32, 2):
                world.set_block(x, 40, z, Block.CROP, aux=0)
        for x in range(1, 32, 8):
            world.set_block(x, 40, 31, Block.SAPLING)
            for y in range(40, 52):
                world.set_block(x + 1, y, 31, Block.WATER_SOURCE)
            world.set_block(x + 1, 40, 31, Block.KELP)
        return world

    def test_same_seed_bit_identical(self):
        report_a, report_b = WorkReport(), WorkReport()
        world_a = self._planted_world()
        growth_a = GrowthEngine(world_a, np.random.default_rng(123))
        world_b = self._planted_world()
        growth_b = GrowthEngine(world_b, np.random.default_rng(123))
        matured_a: list = []
        matured_b: list = []
        for _ in range(2000):
            growth_a.tick(report_a)
            matured_a.extend(growth_a.matured)
        for _ in range(2000):
            growth_b.tick_scalar(report_b)
            matured_b.extend(growth_b.matured)
        _assert_worlds_identical(world_a, world_b)
        assert matured_a == matured_b
        assert report_a.get(Op.GROWTH) == report_b.get(Op.GROWTH)
        assert report_a.get(Op.BLOCK_ADD_REMOVE) == report_b.get(
            Op.BLOCK_ADD_REMOVE
        )


# -- bulk world API parity ----------------------------------------------------


class TestSetBlocksBulk:
    def test_matches_scalar_set_block(self):
        rng = np.random.default_rng(7)
        n = 400
        xs = rng.integers(-8, 40, size=n)
        ys = rng.integers(-2, WORLD_HEIGHT + 2, size=n)
        zs = rng.integers(-8, 40, size=n)
        # Unique positions (the bulk API's contract).
        seen = set()
        keep = []
        for i in range(n):
            key = (int(xs[i]), int(ys[i]), int(zs[i]))
            if key not in seen:
                seen.add(key)
                keep.append(i)
        xs, ys, zs = xs[keep], ys[keep], zs[keep]
        blocks = rng.choice(
            [Block.AIR, Block.STONE, Block.WATER_FLOW, Block.SAND],
            size=len(xs),
        )
        auxs = rng.integers(0, 8, size=len(xs))

        world_a = _flat_world(size=2)
        world_b = _flat_world(size=2)
        changed_scalar = 0
        for x, y, z, b, a in zip(xs, ys, zs, blocks, auxs):
            if world_a.set_block(int(x), int(y), int(z), int(b),
                                 aux=int(a)) is not None:
                changed_scalar += 1
        changed_bulk = world_b.set_blocks_bulk(xs, ys, zs, blocks, auxs)
        assert changed_bulk == changed_scalar
        _assert_worlds_identical(world_a, world_b)
        # The change log carries the same entries (order may differ
        # between the scalar input order and chunk grouping — it doesn't:
        # bulk appends in input order too).
        assert world_a.drain_changes() == world_b.drain_changes()

    def test_aux_bulk_matches_get_aux(self):
        world = _flat_world(size=2)
        world.set_block(3, 41, 3, Block.WATER_FLOW, aux=5)
        world.set_block(17, 41, 9, Block.WATER_FLOW, aux=2)
        xs = np.array([3, 17, 100, 3])
        ys = np.array([41, 41, 41, 300])
        zs = np.array([3, 9, 100, 3])
        out = world.aux_bulk(xs, ys, zs)
        assert out.tolist() == [5, 2, 0, 0]

    def test_set_aux_bulk(self):
        world = _flat_world(size=2)
        world.set_block(3, 41, 3, Block.WATER_FLOW, aux=1)
        world.set_aux_bulk(
            np.array([3]), np.array([41]), np.array([3]), np.array([6])
        )
        assert world.get_aux(3, 41, 3) == 6


class TestFillVectorized:
    def test_matches_scalar_reference(self):
        def scalar_fill(world, x0, y0, z0, x1, y1, z1, block_id, log):
            count = 0
            for x in range(x0, x1 + 1):
                for z in range(z0, z1 + 1):
                    for y in range(y0, y1 + 1):
                        if world.set_block(x, y, z, block_id,
                                           log=log) is not None:
                            count += 1
            return count

        for log in (False, True):
            world_a = _flat_world(size=2)
            world_b = _flat_world(size=2)
            args = (6, 38, 6, 21, 44, 19)
            count_a = scalar_fill(world_a, *args, Block.TNT, log)
            count_b = world_b.fill(*args, Block.TNT, log=log)
            assert count_a == count_b
            _assert_worlds_identical(world_a, world_b)
            assert world_a.drain_changes() == world_b.drain_changes()

    def test_air_fill_lowers_heightmap(self):
        world = _flat_world(size=1, ground_y=40)
        world.fill(2, 30, 2, 5, 45, 5, Block.AIR)
        assert world.column_height(3, 3) == 30
        world_scalar = _flat_world(size=1, ground_y=40)
        for x in range(2, 6):
            for z in range(2, 6):
                for y in range(30, 46):
                    world_scalar.set_block(x, y, z, Block.AIR)
        _assert_worlds_identical(world, world_scalar)

    def test_out_of_bounds_y_is_clamped(self):
        world = World()
        count = world.fill(0, -5, 0, 1, WORLD_HEIGHT + 5, 1, Block.STONE)
        assert count == 2 * 2 * WORLD_HEIGHT
        assert world.column_height(0, 0) == WORLD_HEIGHT
