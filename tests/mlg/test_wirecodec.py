"""Wire codec properties: round-trip identity and the Table 8 size
contract.

Seeded fuzz over every ``PacketCategory`` and ``ActionKind``:
encode→decode is the identity, and frame sizes reconcile with the
``PACKET_SIZES`` / ``PlayerAction._SIZES`` model the simulation
accounts.  The documented tolerance is pinned explicitly: with
realistic field magnitudes every frame hits its model size *exactly*
(padding); with adversarially large varint fields a frame may only ever
*exceed* the model, never undercut it — except batched entity moves,
whose whole purpose is to undercut the per-packet model.
"""

import numpy as np
import pytest

from repro.mlg import wirecodec as wc
from repro.mlg.protocol import (
    ActionKind,
    PACKET_SIZES,
    PacketCategory,
    PlayerAction,
)

#: Realistic bounds per schema tag: single-varint-byte ids/coords, the
#: magnitudes the small-world simulation actually produces.  The tiny
#: packets (entity_move at 13 model bytes) only have padding room for
#: these; larger fields are the WIDE tolerance case below.
REALISTIC = {
    "uv": lambda rng: int(rng.integers(0, 128)),
    "sv": lambda rng: int(rng.integers(-64, 64)),
    "u8": lambda rng: int(rng.integers(0, 256)),
    "f32": lambda rng: float(np.float32(rng.uniform(-1e4, 1e4))),
    "f64": lambda rng: float(rng.uniform(-1e6, 1e6)),
}

#: Adversarial bounds: field values whose varints outgrow the padding
#: budget of the smallest packets.
WIDE = {
    "uv": lambda rng: int(rng.integers(0, 1 << 60)),
    "sv": lambda rng: int(rng.integers(-(1 << 59), 1 << 59)),
    "u8": lambda rng: int(rng.integers(0, 256)),
    "f32": lambda rng: float(np.float32(rng.uniform(-1e30, 1e30))),
    "f64": lambda rng: float(rng.uniform(-1e300, 1e300)),
}


def fuzz_payload(schema, rng, bounds):
    return tuple(bounds[tag](rng) for tag in schema)


class TestPrimitives:
    def test_varint_round_trip(self):
        rng = np.random.default_rng(2022)
        values = [0, 1, 127, 128, 300, (1 << 63) - 1] + [
            int(rng.integers(0, 1 << 62)) for _ in range(200)
        ]
        for value in values:
            encoded = wc.encode_varint(value)
            decoded, end = wc.decode_varint(encoded)
            assert decoded == value
            assert end == len(encoded)

    def test_varint_rejects_negative_and_truncated(self):
        with pytest.raises(ValueError):
            wc.encode_varint(-1)
        with pytest.raises(ValueError, match="truncated"):
            wc.decode_varint(wc.encode_varint(300)[:1])

    def test_zigzag_round_trip(self):
        rng = np.random.default_rng(7)
        for value in [0, -1, 1, -(1 << 62)] + [
            int(rng.integers(-(1 << 60), 1 << 60)) for _ in range(200)
        ]:
            assert wc.unzigzag(wc.zigzag(value)) == value
            assert wc.zigzag(value) >= 0


class TestCategoryFrames:
    @pytest.mark.parametrize("category", PacketCategory.ALL)
    def test_state_round_trip_and_exact_model_size(self, category):
        rng = np.random.default_rng(hash(category) % (1 << 32))
        schema = wc.CATEGORY_SCHEMAS[category]
        for _ in range(50):
            payload = fuzz_payload(schema, rng, REALISTIC)
            frame = wc.encode_state(category, payload)
            assert len(frame) == PACKET_SIZES[category]
            msg, end = wc.decode_frame(frame)
            assert end == len(frame)
            assert msg == wc.WireState(category, payload)

    @pytest.mark.parametrize("category", PacketCategory.ALL)
    def test_delivery_round_trip_and_exact_model_size(self, category):
        rng = np.random.default_rng(hash(category) % (1 << 32) + 1)
        schema = wc.CATEGORY_SCHEMAS[category]
        for _ in range(50):
            payload = fuzz_payload(schema, rng, REALISTIC)
            delivered_at = int(rng.integers(0, 1 << 20))
            frame = wc.encode_delivery(category, payload, delivered_at)
            assert len(frame) == PACKET_SIZES[category]
            msg, end = wc.decode_frame(frame)
            assert end == len(frame)
            assert msg == wc.WireDelivery(category, payload, delivered_at)

    @pytest.mark.parametrize("category", PacketCategory.ALL)
    def test_wide_fields_round_trip_never_undercut_model(self, category):
        # The documented tolerance: huge varints may overflow the pad
        # budget of tiny packets, so the frame may exceed the model —
        # but it must never come in under it.
        rng = np.random.default_rng(hash(category) % (1 << 32) + 2)
        schema = wc.CATEGORY_SCHEMAS[category]
        for _ in range(50):
            payload = fuzz_payload(schema, rng, WIDE)
            frame = wc.encode_state(category, payload)
            assert len(frame) >= PACKET_SIZES[category]
            msg, _ = wc.decode_frame(frame)
            assert msg == wc.WireState(category, payload)


class TestActionFrames:
    @pytest.mark.parametrize(
        "kind",
        (ActionKind.MOVE, ActionKind.BUILD, ActionKind.DIG, ActionKind.CHAT),
    )
    def test_round_trip_and_exact_model_size(self, kind):
        rng = np.random.default_rng(hash(kind) % (1 << 32))
        schema = wc.ACTION_SCHEMAS[kind]
        for _ in range(50):
            action = PlayerAction(
                kind,
                int(rng.integers(1, 1 << 10)),
                fuzz_payload(schema, rng, REALISTIC),
            )
            sent_at = int(rng.integers(0, 100_000_000))  # µs, ~100 sim-s
            frame = wc.encode_action(action, sent_at)
            assert len(frame) == action.size_bytes
            msg, end = wc.decode_frame(frame)
            assert end == len(frame)
            assert msg == wc.WireAction(action, sent_at)


class TestSessionFrames:
    def test_hello_round_trip_including_view_distance_none(self):
        for view in (None, 0, 2, 10):
            frame = wc.encode_hello("bot-0", 8.5, 9.25, 1000, 1500, view)
            msg, _ = wc.decode_frame(frame)
            assert msg == wc.WireHello("bot-0", 8.5, 9.25, 1000, 1500, view)

    def test_welcome_tick_response_bye_round_trip(self):
        rng = np.random.default_rng(99)
        for _ in range(25):
            cid = int(rng.integers(1, 1 << 20))
            now = int(rng.integers(0, 1 << 50))
            x, y, z = (float(rng.uniform(-1e6, 1e6)) for _ in range(3))
            buf = (
                wc.encode_welcome(cid, x, y, z, now)
                + wc.encode_tick(now, cid)
                + wc.encode_response_sample(x)
                + wc.encode_bye("done")
            )
            msgs = []
            offset = 0
            while offset < len(buf):
                msg, offset = wc.decode_frame(buf, offset)
                msgs.append(msg)
            assert msgs == [
                wc.WireWelcome(cid, x, y, z, now),
                wc.WireTick(now, cid),
                wc.WireResponseSample(x),
                wc.WireBye("done"),
            ]


class TestEntityBatch:
    def test_round_trip_and_batch_saving(self):
        rng = np.random.default_rng(4242)
        for _ in range(25):
            n = int(rng.integers(1, 64))
            eids = np.sort(rng.choice(1 << 16, size=n, replace=False))
            moves = tuple(
                (
                    int(eid),
                    int(rng.integers(-8, 9)),
                    int(rng.integers(-8, 9)),
                    int(rng.integers(-8, 9)),
                )
                for eid in eids
            )
            frame = wc.encode_entity_batch(moves)
            msg, end = wc.decode_frame(frame)
            assert end == len(frame)
            assert msg == wc.WireEntityBatch(moves)
            # The saving that motivates wire_batch_flush: one batch frame
            # costs well under n per-packet model frames.
            modeled = n * PACKET_SIZES[PacketCategory.ENTITY_MOVE]
            assert len(frame) < modeled or n == 1


class TestFrameDecoder:
    def _message_stream(self):
        rng = np.random.default_rng(31337)
        buf = bytearray()
        expected = []
        for category in PacketCategory.ALL:
            payload = fuzz_payload(
                wc.CATEGORY_SCHEMAS[category], rng, REALISTIC
            )
            buf += wc.encode_state(category, payload)
            expected.append(wc.WireState(category, payload))
        buf += wc.encode_tick(123456, 7)
        expected.append(wc.WireTick(123456, 7))
        return bytes(buf), expected

    @pytest.mark.parametrize("chunk", (1, 7, 13, 4096))
    def test_chunked_feeding_matches_whole_buffer(self, chunk):
        buf, expected = self._message_stream()
        decoder = wc.FrameDecoder()
        got = []
        for start in range(0, len(buf), chunk):
            got.extend(decoder.feed(buf[start : start + chunk]))
        assert got == expected
        assert decoder.pending_bytes == 0

    def test_partial_frame_stays_pending(self):
        buf, _ = self._message_stream()
        decoder = wc.FrameDecoder()
        decoder.feed(buf[:5])
        assert decoder.pending_bytes == 5
