"""Regression tests for the unified struct-of-arrays entity kernel.

These pin the single-physics guarantee: the simulation model must be the
same at every population size (the old code silently switched to a
divergent vectorized path above 96 physical entities), items must ground
against the floor *below* them (not the heightmap top), water transport
must work at any scale, and the store's free list / compaction must keep
handles valid.
"""

import numpy as np
import pytest

from repro.mlg.blocks import Block
from repro.mlg.entity import EntityKind
from repro.mlg.entity_manager import _ITEM_DESPAWN_TICKS, EntityManager
from repro.mlg.entity_store import MIN_CAPACITY
from repro.mlg.fluids import FluidEngine
from repro.mlg.workreport import Op, WorkReport
from repro.mlg.world import World

#: The population threshold the old dual-path implementation switched at;
#: tests straddle it to prove the discontinuity is gone.
OLD_SWARM_THRESHOLD = 96


def _flat_world(ground_y=60, span=(-1, 3)):
    world = World()
    for cx in range(span[0], span[1]):
        for cz in range(span[0], span[1]):
            chunk = world.ensure_chunk(cx, cz)
            chunk.blocks[:, :, :ground_y] = Block.STONE
            chunk.recompute_heightmap()
    return world


def _manager(world=None, merge=False, seed=0, fluid_flow=None):
    world = world if world is not None else _flat_world()
    return (
        EntityManager(
            world,
            np.random.default_rng(seed),
            merge_items=merge,
            fluid_flow=fluid_flow,
        ),
        world,
    )


def _spread_positions(n, x0=1.0, z0=1.0, pitch=2.5, per_row=12):
    """Positions ≥2 blocks apart: every entity alone in its hash cell, so
    no collision jitter is drawn and runs stay rng-independent."""
    return [
        (x0 + (i % per_row) * pitch, z0 + (i // per_row) * pitch)
        for i in range(n)
    ]


def _run_population(n, ticks=60, seed=11, probe_count=12):
    """Spawn ``n`` spread-out items (some pre-aged to despawn mid-run) and
    return (probe trajectories, despawn ticks) for the first entities."""
    mgr, _ = _manager(_flat_world(span=(0, 4)), seed=seed)
    entities = []
    for i, (x, z) in enumerate(_spread_positions(n)):
        e = mgr.spawn(EntityKind.ITEM, x, 66.0, z, vx=0.02 * (i % 3))
        if i % 7 == 3:
            # Pre-age so a handful despawn at staggered mid-run ticks.
            e.age_ticks = _ITEM_DESPAWN_TICKS - 10 - i
        entities.append(e)
    trajectories = [[] for _ in range(probe_count)]
    despawn_tick = {}
    report = WorkReport()
    for t in range(ticks):
        mgr.begin_tick()
        mgr.tick(report)
        for dead in mgr.removed_this_tick:
            despawn_tick[dead.eid] = t
        for k in range(probe_count):
            e = entities[k]
            trajectories[k].append((e.x, e.y, e.z, e.vx, e.vy, e.vz))
    return trajectories, despawn_tick


class TestCrossThresholdParity:
    """Straddling the old 96-entity threshold changes nothing but scale."""

    def test_shared_trajectories_bit_identical_95_vs_97(self):
        n_low = OLD_SWARM_THRESHOLD - 1
        n_high = OLD_SWARM_THRESHOLD + 1
        traj_low, despawn_low = _run_population(n_low)
        traj_high, despawn_high = _run_population(n_high)
        # The first 95 entities are spawned identically in both runs; with
        # one physics kernel their trajectories must match bit for bit.
        assert traj_low == traj_high
        shared = set(despawn_low) & set(despawn_high)
        assert shared, "some shared probes must despawn mid-run"
        for eid in shared:
            assert despawn_low[eid] == despawn_high[eid]

    def test_op_counts_scale_exactly_linearly(self):
        """+2 entities ⇒ exactly +2 item updates per tick, nothing else."""
        counts = {}
        for n in (OLD_SWARM_THRESHOLD - 1, OLD_SWARM_THRESHOLD + 1):
            mgr, _ = _manager(_flat_world(span=(0, 4)), seed=5)
            for x, z in _spread_positions(n):
                mgr.spawn(EntityKind.ITEM, x, 61.0, z)
            per_tick = []
            for _ in range(20):
                report = WorkReport()
                mgr.begin_tick()
                mgr.tick(report)
                per_tick.append(
                    (report.get(Op.ITEM_UPDATE), report.get(Op.COLLISION_PAIR))
                )
            counts[n] = per_tick
        for (items_low, pairs_low), (items_high, pairs_high) in zip(
            counts[OLD_SWARM_THRESHOLD - 1], counts[OLD_SWARM_THRESHOLD + 1]
        ):
            assert items_high == items_low + 2
            assert pairs_low == pairs_high == 0  # all spread out

    def test_same_seed_runs_are_bit_identical(self):
        """Seeded determinism at both sides of the old threshold."""
        for n in (OLD_SWARM_THRESHOLD - 1, OLD_SWARM_THRESHOLD + 1):
            first = _run_population(n, ticks=40, seed=23)
            second = _run_population(n, ticks=40, seed=23)
            assert first == second


class _FixedMachine:
    """Deterministic machine: duration equals work (no noise)."""

    @property
    def credits_s(self):
        return 0.0

    def execute(self, work_us, parallel_fraction, now_us, **kwargs):
        return max(1, int(work_us))


class TestServerLevelDeterminism:
    """Full-server runs straddling the old threshold: seeded repeats must
    reproduce the ISR, every tick duration, and the Fig. 11 work totals
    bit-identically."""

    def _run_server(self, n_items, seed=3):
        from repro.mlg.server import MLGServer

        server = MLGServer(
            "vanilla", _FixedMachine(), world=_flat_world(span=(0, 4)),
            seed=seed,
        )
        for x, z in _spread_positions(n_items):
            server.entities.spawn(EntityKind.ITEM, x, 66.0, z)
        server.run_for(3.0)
        return (
            server.telemetry.isr,
            tuple(server.tick_durations_ms()),
            tuple(sorted(server.telemetry.bucket_totals_us.items())),
        )

    @pytest.mark.parametrize(
        "n", [OLD_SWARM_THRESHOLD - 1, OLD_SWARM_THRESHOLD + 1]
    )
    def test_isr_ticks_and_work_bit_identical(self, n):
        assert self._run_server(n) == self._run_server(n)


class TestEnclosedFarmGrounding:
    """Items under a roof must ground on the floor below, never teleport
    to the structure top (the old vectorized path grounded against the
    heightmap)."""

    def _roofed_world(self, roof_y=65):
        world = _flat_world(span=(0, 4))  # floor top surface at y=60
        # A sealed 12×12 room: roof slab well above the floor.
        for x in range(2, 14):
            for z in range(2, 14):
                world.set_block(x, roof_y, z, Block.STONE, log=False)
        return world

    def test_items_stay_inside_enclosed_farm(self):
        floor_y, roof_y = 60, 65
        world = self._roofed_world(roof_y)
        mgr, _ = _manager(world)
        n = OLD_SWARM_THRESHOLD + 30  # old code: swarm path engaged
        items = [
            mgr.spawn(
                EntityKind.ITEM,
                2.5 + (i % 11),
                floor_y + 2.0,
                2.5 + (i // 11),
                vy=0.05,
            )
            for i in range(n)
        ]
        report = WorkReport()
        for _ in range(80):
            mgr.begin_tick()
            mgr.tick(report)
        for item in items:
            assert item.y < roof_y, "item teleported through the roof"
            assert item.y >= floor_y - 1e-9

    def test_bulk_ground_query_scans_below_not_heightmap_top(self):
        world = self._roofed_world()
        # Directly compare the bulk query against the heightmap: under the
        # roof they must disagree (heightmap sees the roof top).
        xs = np.array([5.5])
        zs = np.array([5.5])
        ground = world.ground_below_bulk(xs, np.array([62.0]), zs)
        assert ground[0] == 60.0
        heights = world.column_heights_bulk(
            xs.astype(np.int64), zs.astype(np.int64)
        )
        assert heights[0] == 66  # roof top + 1: the WRONG ground for items


class TestWaterTransportAtScale:
    """Flow push is part of the one kernel: it must keep working past the
    old threshold where the vectorized path silently dropped it."""

    def _channel_world(self, y=60, length=24):
        world = _flat_world(ground_y=y, span=(0, 4))
        for i in range(length):
            for dz in range(-1, 2):
                # Strictly decreasing level along +x: flow pushes downstream
                # everywhere in the channel.
                world.set_block(
                    2 + i, y, 8 + dz, Block.WATER_FLOW,
                    aux=max(1, length - i), log=False,
                )
        return world

    def _transport_displacement(self, n_items, ticks=80):
        world = self._channel_world()
        fluids = FluidEngine(world)
        mgr, _ = _manager(world, fluid_flow=fluids.flow_vector)
        items = [
            mgr.spawn(
                EntityKind.ITEM,
                2.5 + 0.02 * (i % 5),
                60.5,
                7.5 + 0.06 * (i % 30),
            )
            for i in range(n_items)
        ]
        start_x = [item.x for item in items]
        report = WorkReport()
        for _ in range(ticks):
            mgr.begin_tick()
            mgr.tick(report)
        moved = [item.x - x0 for item, x0 in zip(items, start_x)]
        return float(np.mean(moved))

    def test_water_pushes_items_below_old_threshold(self):
        assert self._transport_displacement(10) > 1.0

    def test_water_pushes_items_above_old_threshold(self):
        # 120 physical entities: the old swarm path skipped _apply_water_push
        # entirely, freezing every farm's collection belt.
        assert self._transport_displacement(OLD_SWARM_THRESHOLD + 24) > 1.0


class TestStoreInvariants:
    """Free-list reuse, growth, compaction, and handle detachment."""

    def _reap(self, mgr):
        report = WorkReport()
        mgr.begin_tick()
        mgr.tick(report)

    def test_free_list_reuses_slots_without_growth(self):
        mgr, _ = _manager()
        first = [mgr.spawn(EntityKind.ITEM, 1.0 + i, 61.0, 1.0) for i in range(10)]
        cap = mgr.store.capacity
        free_before = mgr.store.free_count
        for e in first[:5]:
            mgr.remove(e)
        self._reap(mgr)
        assert mgr.store.free_count == free_before + 5
        again = [mgr.spawn(EntityKind.ITEM, 2.0 + i, 61.0, 2.0) for i in range(5)]
        assert mgr.store.capacity == cap
        assert mgr.store.free_count == free_before
        eids = [e.eid for e in first + again]
        assert len(set(eids)) == len(eids)

    def test_store_grows_on_demand(self):
        mgr, _ = _manager(_flat_world(span=(0, 8)))
        n = MIN_CAPACITY * 3
        items = [
            mgr.spawn(EntityKind.ITEM, 1.0 + (i % 100), 61.0, 1.0 + (i // 100))
            for i in range(n)
        ]
        assert mgr.store.capacity >= n
        assert mgr.count(EntityKind.ITEM) == n
        # Handles read through growth reallocations.
        assert items[0].x == pytest.approx(1.0)
        assert items[-1].alive

    def test_compaction_shrinks_and_preserves_handles(self):
        mgr, _ = _manager(_flat_world(span=(0, 8)))
        n = MIN_CAPACITY * 8
        items = [
            mgr.spawn(EntityKind.ITEM, 1.0 + (i % 100), 61.0, 1.0 + (i // 100))
            for i in range(n)
        ]
        grown = mgr.store.capacity
        assert grown >= n
        survivors = items[:: n // 8]  # keep 8 spread across slot space
        for item in items:
            if item not in survivors:
                mgr.remove(item)
        state_before = [(e.eid, e.x, e.y, e.z) for e in survivors]
        self._reap(mgr)
        assert mgr.store.capacity < grown
        assert mgr.count(EntityKind.ITEM) == len(survivors)
        for (eid, x, _y, z), e in zip(state_before, survivors):
            assert e.eid == eid
            assert e.alive
            assert e.x == x
            assert e.z == z
            assert mgr.get(eid) is e

    def test_reaped_handles_detach_from_recycled_slots(self):
        mgr, _ = _manager()
        victim = mgr.spawn(EntityKind.ITEM, 3.0, 61.0, 3.0)
        victim_eid = victim.eid
        mgr.remove(victim)
        self._reap(mgr)
        # The next spawn reuses the slot; the stale handle must keep
        # reporting its own death, not the newcomer's state.
        newcomer = mgr.spawn(EntityKind.TNT, 9.0, 70.0, 9.0, fuse_ticks=50)
        assert newcomer.alive
        assert not victim.alive
        assert victim.eid == victim_eid
        assert victim.x == pytest.approx(3.0)
        assert victim.kind == EntityKind.ITEM
        assert mgr.get(victim_eid) is None

    def test_absorb_items_takes_oldest_first_under_limit(self):
        mgr, _ = _manager()
        # Younger items land in the lowest slots; the oldest item spawns
        # last (highest slot), so slot-order absorption would starve it.
        young = [
            mgr.spawn(EntityKind.ITEM, 5.0 + 0.2 * i, 61.0, 5.0)
            for i in range(3)
        ]
        for item in young:
            item.age_ticks = 200
        oldest = mgr.spawn(EntityKind.ITEM, 5.6, 61.0, 5.0)
        oldest.age_ticks = 500
        absorbed = mgr.absorb_items(
            5.0, 5.0, radius=4.0, min_age_ticks=100, limit=2
        )
        assert absorbed == 2
        assert not oldest.alive, "binding limit starved the oldest item"

    def test_live_count_matches_dict(self):
        mgr, _ = _manager()
        for i in range(20):
            mgr.spawn(EntityKind.ITEM, 1.0 + i, 61.0, 1.0)
        mgr.remove(next(iter(mgr.all_entities())))
        self._reap(mgr)
        assert mgr.count() == len(list(mgr.all_entities())) == 19


class TestFloorBucketing:
    """Spatial cells use floor, not int() truncation: cells straddling an
    axis at negative coordinates must not alias."""

    def test_items_across_origin_do_not_merge(self):
        mgr, _ = _manager(merge=True)
        a = mgr.spawn(EntityKind.ITEM, -0.5, 61.0, 5.5)
        b = mgr.spawn(EntityKind.ITEM, 0.5, 61.0, 5.5)
        report = WorkReport()
        mgr.begin_tick()
        mgr.tick(report)
        assert a.alive and b.alive, "x∈(-1,1) aliased into one merge cell"

    def test_no_collision_pairs_across_origin(self):
        mgr, _ = _manager()
        mgr.spawn(EntityKind.ITEM, -0.3, 61.0, 5.5)
        mgr.spawn(EntityKind.ITEM, 0.3, 61.0, 5.5)
        report = WorkReport()
        mgr.begin_tick()
        mgr.tick(report)
        assert report.get(Op.COLLISION_PAIR) == 0

    def test_collision_pairs_within_one_cell_still_counted(self):
        mgr, _ = _manager()
        mgr.spawn(EntityKind.ITEM, 5.2, 61.0, 5.5)
        mgr.spawn(EntityKind.ITEM, 5.8, 61.0, 5.5)
        report = WorkReport()
        mgr.begin_tick()
        mgr.tick(report)
        assert report.get(Op.COLLISION_PAIR) > 0
