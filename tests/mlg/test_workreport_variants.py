"""Tests for work accounting and the server variant profiles."""

import pytest

from repro.mlg.variants import (
    FORGE,
    PAPERMC,
    VANILLA,
    VARIANTS,
    get_variant,
)
from repro.mlg.workreport import (
    FIGURE11_BUCKETS,
    Op,
    WorkReport,
    bucket_of,
)


class TestWorkReport:
    def test_add_and_get(self):
        report = WorkReport()
        report.add(Op.ENTITY_UPDATE, 5)
        report.add(Op.ENTITY_UPDATE, 3)
        assert report.get(Op.ENTITY_UPDATE) == 8
        assert report.get(Op.CHAT) == 0

    def test_zero_add_is_noop(self):
        report = WorkReport()
        report.add(Op.CHAT, 0)
        assert Op.CHAT not in report.counts

    def test_negative_add_rejected(self):
        with pytest.raises(ValueError):
            WorkReport().add(Op.CHAT, -1)

    def test_merge(self):
        a = WorkReport()
        b = WorkReport()
        a.add(Op.CHAT, 1)
        b.add(Op.CHAT, 2)
        b.add(Op.PACKET, 4)
        a.merge(b)
        assert a.get(Op.CHAT) == 3
        assert a.get(Op.PACKET) == 4

    def test_cost_application(self):
        report = WorkReport()
        report.add(Op.ENTITY_UPDATE, 10)
        report.add(Op.PACKET, 100)
        table = {Op.ENTITY_UPDATE: 2.0, Op.PACKET: 0.5}
        costs = report.cost_us(table)
        assert costs[Op.ENTITY_UPDATE] == 20.0
        assert costs[Op.PACKET] == 50.0
        assert report.total_cost_us(table) == 70.0

    def test_missing_op_costs_nothing(self):
        report = WorkReport()
        report.add(Op.CHAT, 100)
        assert report.total_cost_us({}) == 0.0

    def test_bucketing_matches_figure11(self):
        assert bucket_of(Op.ENTITY_UPDATE) == "Entities"
        assert bucket_of(Op.TNT_UPDATE) == "Entities"
        assert bucket_of(Op.PATHFIND_NODE) == "Entities"
        assert bucket_of(Op.REDSTONE) == "Block Update"
        assert bucket_of(Op.LIGHTING) == "Block Update"
        assert bucket_of(Op.FLUID) == "Fluids"
        assert bucket_of(Op.BLOCK_ADD_REMOVE) == "Block Add/Remove"
        assert bucket_of(Op.CHAT) == "Other"
        # Chunk IO is attributable since the persistence extension: all
        # three ways a chunk enters play share the "Chunk Load" bucket,
        # and autosave write-back gets its own.
        assert bucket_of(Op.CHUNK_GEN) == "Chunk Load"
        assert bucket_of(Op.CHUNK_LOAD) == "Chunk Load"
        assert bucket_of(Op.CHUNK_VIEW) == "Chunk Load"
        assert bucket_of(Op.CHUNK_SAVE) == "Autosave"

    def test_bucketed_cost(self):
        report = WorkReport()
        report.add(Op.ENTITY_UPDATE, 10)
        report.add(Op.COLLISION_PAIR, 10)
        report.add(Op.CHAT, 10)
        table = {Op.ENTITY_UPDATE: 1.0, Op.COLLISION_PAIR: 1.0, Op.CHAT: 1.0}
        buckets = report.bucketed_cost_us(table)
        assert buckets["Entities"] == 20.0
        assert buckets["Other"] == 10.0

    def test_every_op_has_a_bucket(self):
        for op in Op.ALL:
            assert bucket_of(op) in FIGURE11_BUCKETS

    def test_copy_is_independent(self):
        a = WorkReport()
        a.add(Op.CHAT, 1)
        b = a.copy()
        b.add(Op.CHAT, 1)
        assert a.get(Op.CHAT) == 1


class TestVariants:
    def test_registry_aliases(self):
        assert get_variant("minecraft") is VANILLA
        assert get_variant("VANILLA") is VANILLA
        assert get_variant("paper") is PAPERMC
        assert get_variant("Forge") is FORGE

    def test_unknown_variant_raises(self):
        with pytest.raises(ValueError, match="unknown MLG variant"):
            get_variant("spigot")

    def test_forge_is_slower_than_vanilla(self):
        for op in (Op.ENTITY_UPDATE, Op.CHUNK_TICK, Op.BLOCK_UPDATE):
            assert FORGE.cost_of(op) > VANILLA.cost_of(op)

    def test_papermc_optimizes_entities_and_tnt(self):
        assert PAPERMC.cost_of(Op.ENTITY_UPDATE) < VANILLA.cost_of(
            Op.ENTITY_UPDATE
        )
        assert PAPERMC.cost_of(Op.EXPLOSION_RAY) < 0.3 * VANILLA.cost_of(
            Op.EXPLOSION_RAY
        )
        assert PAPERMC.cost_of(Op.REDSTONE) < VANILLA.cost_of(Op.REDSTONE)

    def test_papermc_feature_flags(self):
        assert PAPERMC.async_chat
        assert PAPERMC.merge_items
        assert PAPERMC.entity_broadcast_interval == 2
        assert not VANILLA.async_chat
        assert not FORGE.merge_items

    def test_papermc_threading_profile(self):
        assert PAPERMC.parallel_fraction > VANILLA.parallel_fraction
        assert PAPERMC.thread_count > VANILLA.thread_count
        assert PAPERMC.background_cpu_fraction > VANILLA.background_cpu_fraction
        assert PAPERMC.gc_factor < VANILLA.gc_factor

    def test_cost_tables_are_readonly(self):
        with pytest.raises(TypeError):
            VANILLA.cost_table[Op.CHAT] = 0.0

    def test_variant_names_unique_in_registry(self):
        canonical = {v.name for v in VARIANTS.values()}
        assert canonical == {"vanilla", "forge", "papermc"}
