"""Tests for the entity manager and the TNT/explosion system."""

import numpy as np
import pytest

from repro.mlg.blocks import Block
from repro.mlg.entity import Entity, EntityKind
from repro.mlg.entity_manager import EntityManager
from repro.mlg.tnt import BLAST_RADIUS, RAYS_PER_EXPLOSION, TNTSystem
from repro.mlg.workreport import Op, WorkReport
from repro.mlg.world import World


def _flat_world(ground_y=60, size=3):
    world = World()
    for cx in range(size):
        for cz in range(size):
            chunk = world.ensure_chunk(cx, cz)
            chunk.blocks[:, :, :ground_y] = Block.STONE
            chunk.recompute_heightmap()
    return world


def _manager(world=None, merge=False, seed=0):
    world = world if world is not None else _flat_world()
    return EntityManager(
        world, np.random.default_rng(seed), merge_items=merge
    ), world


class TestEntityLifecycle:
    def test_spawn_assigns_unique_ids(self):
        mgr, _ = _manager()
        a = mgr.spawn(EntityKind.ITEM, 1.0, 61.0, 1.0)
        b = mgr.spawn(EntityKind.MOB, 2.0, 61.0, 2.0)
        assert a.eid != b.eid
        assert mgr.count() == 2
        assert mgr.count(EntityKind.ITEM) == 1

    def test_remove_reaps_at_tick_end(self):
        mgr, _ = _manager()
        entity = mgr.spawn(EntityKind.ITEM, 1.0, 61.0, 1.0)
        mgr.begin_tick()
        mgr.remove(entity)
        assert not entity.alive
        report = WorkReport()
        mgr.tick(report)
        assert mgr.count() == 0
        assert entity in mgr.removed_this_tick

    def test_double_remove_is_idempotent(self):
        mgr, _ = _manager()
        entity = mgr.spawn(EntityKind.ITEM, 1.0, 61.0, 1.0)
        mgr.begin_tick()
        mgr.remove(entity)
        mgr.remove(entity)
        assert len(mgr.removed_this_tick) == 1

    def test_entities_near(self):
        mgr, _ = _manager()
        mgr.spawn(EntityKind.ITEM, 1.0, 61.0, 1.0)
        mgr.spawn(EntityKind.ITEM, 30.0, 61.0, 30.0)
        near = mgr.entities_near(0.0, 61.0, 0.0, 5.0)
        assert len(near) == 1


class TestPhysics:
    def test_gravity_pulls_to_ground(self):
        mgr, _ = _manager()
        entity = mgr.spawn(EntityKind.ITEM, 8.0, 70.0, 8.0)
        report = WorkReport()
        for _ in range(100):
            mgr.begin_tick()
            mgr.tick(report)
        assert entity.y == pytest.approx(60.0, abs=0.01)
        assert entity.vy == 0.0

    def test_horizontal_friction_stops_sliding(self):
        mgr, _ = _manager()
        entity = mgr.spawn(EntityKind.ITEM, 8.0, 60.0, 8.0, vx=0.5)
        report = WorkReport()
        for _ in range(200):
            mgr.begin_tick()
            mgr.tick(report)
        assert abs(entity.vx) < 1e-3

    def test_item_despawns_after_timeout(self):
        from repro.mlg.entity_manager import _ITEM_DESPAWN_TICKS

        mgr, _ = _manager()
        entity = mgr.spawn(EntityKind.ITEM, 8.0, 60.0, 8.0)
        entity.age_ticks = _ITEM_DESPAWN_TICKS
        report = WorkReport()
        mgr.begin_tick()
        mgr.tick(report)
        assert mgr.count(EntityKind.ITEM) == 0

    def test_large_swarm_lands_on_the_ground(self):
        """The kernel must land big populations on the ground too."""
        mgr, _ = _manager()
        entities = [
            mgr.spawn(EntityKind.TNT, 8.0 + i * 0.01, 70.0, 8.0, fuse_ticks=10_000)
            for i in range(106)
        ]
        report = WorkReport()
        for _ in range(120):
            mgr.begin_tick()
            mgr.tick(report)
        for entity in entities:
            assert entity.y <= 70.0
            assert entity.y >= 59.0

    def test_swarm_counts_tnt_updates(self):
        mgr, _ = _manager()
        for i in range(106):
            mgr.spawn(EntityKind.TNT, 8.0, 61.0, 8.0, fuse_ticks=10_000)
        report = WorkReport()
        mgr.begin_tick()
        mgr.tick(report)
        assert report.get(Op.TNT_UPDATE) == 106

    def test_collision_pairs_counted_for_crowds(self):
        mgr, _ = _manager()
        for _ in range(10):
            mgr.spawn(EntityKind.ITEM, 8.2, 61.0, 8.2)
        report = WorkReport()
        mgr.begin_tick()
        mgr.tick(report)
        assert report.get(Op.COLLISION_PAIR) > 0

    def test_lone_entity_has_no_collision_pairs(self):
        mgr, _ = _manager()
        mgr.spawn(EntityKind.ITEM, 8.0, 61.0, 8.0)
        report = WorkReport()
        mgr.begin_tick()
        mgr.tick(report)
        assert report.get(Op.COLLISION_PAIR) == 0


class TestMobAI:
    def test_mob_with_goal_moves_toward_it(self):
        mgr, _ = _manager()
        mob = mgr.spawn(EntityKind.MOB, 2.0, 60.0, 2.0)
        mob.goal = (12, 60, 2)
        report = WorkReport()
        for _ in range(400):
            mgr.begin_tick()
            mgr.tick(report)
        assert mob.x > 8.0, "mob should have pathed toward its goal"

    def test_mob_stays_in_loaded_chunks(self):
        mgr, world = _manager()
        mob = mgr.spawn(EntityKind.MOB, 2.0, 60.0, 2.0)
        mob.goal = None
        report = WorkReport()
        for _ in range(2000):
            mgr.begin_tick()
            mgr.tick(report)
        assert world.has_chunk(int(mob.x) >> 4, int(mob.z) >> 4)


class TestItemMerging:
    def test_colocated_items_merge_when_enabled(self):
        mgr, _ = _manager(merge=True)
        for _ in range(5):
            mgr.spawn(EntityKind.ITEM, 8.3, 61.0, 8.3)
        report = WorkReport()
        mgr.begin_tick()
        mgr.tick(report)
        items = mgr.entities_of(EntityKind.ITEM)
        assert len(items) == 1
        assert items[0].stack_count == 5

    def test_no_merging_when_disabled(self):
        mgr, _ = _manager(merge=False)
        for _ in range(5):
            mgr.spawn(EntityKind.ITEM, 8.3, 61.0, 8.3)
        report = WorkReport()
        mgr.begin_tick()
        mgr.tick(report)
        assert len(mgr.entities_of(EntityKind.ITEM)) == 5

    def test_distant_items_do_not_merge(self):
        mgr, _ = _manager(merge=True)
        mgr.spawn(EntityKind.ITEM, 2.0, 61.0, 2.0)
        mgr.spawn(EntityKind.ITEM, 30.0, 61.0, 30.0)
        report = WorkReport()
        mgr.begin_tick()
        mgr.tick(report)
        assert len(mgr.entities_of(EntityKind.ITEM)) == 2


class TestTNT:
    def _system(self, world=None, seed=1):
        mgr, world = _manager(world)
        return TNTSystem(world, mgr, np.random.default_rng(seed)), mgr, world

    def test_prime_block_replaces_block_with_entity(self):
        tnt, mgr, world = self._system()
        world.set_block(8, 60, 8, Block.TNT, log=False)
        entity = tnt.prime_block(8, 60, 8)
        assert entity is not None
        assert world.get_block(8, 60, 8) == Block.AIR
        assert entity.kind == EntityKind.TNT
        assert entity.fuse_ticks > 0

    def test_prime_non_tnt_returns_none(self):
        tnt, _, world = self._system()
        assert tnt.prime_block(8, 60, 8) is None

    def test_prime_region_counts(self):
        tnt, _, world = self._system()
        world.fill(4, 61, 4, 7, 62, 7, Block.TNT)
        primed = tnt.prime_region(0, 60, 0, 15, 70, 15)
        assert primed == 4 * 4 * 2

    def test_fuse_countdown_and_explosion(self):
        tnt, mgr, world = self._system()
        world.set_block(8, 61, 8, Block.TNT, log=False)
        tnt.prime_block(8, 61, 8, fuse_ticks=3)
        report = WorkReport()
        explosions = 0
        for _ in range(5):
            mgr.begin_tick()
            explosions += tnt.tick(report)
            mgr.tick(report)
        assert explosions == 1
        assert tnt.explosions_total == 1

    def test_explosion_destroys_terrain(self):
        tnt, mgr, world = self._system()
        entity = mgr.spawn(EntityKind.TNT, 24.5, 60.5, 24.5, fuse_ticks=1)
        report = WorkReport()
        destroyed = tnt.explode(entity, report)
        assert destroyed > 0
        assert world.get_block(24, 59, 24) == Block.AIR
        assert report.get(Op.EXPLOSION_RAY) == RAYS_PER_EXPLOSION
        assert report.get(Op.BLOCK_ADD_REMOVE) == destroyed

    def test_explosion_respects_blast_resistance(self):
        tnt, mgr, world = self._system()
        world.set_block(24, 61, 24, Block.OBSIDIAN, log=False)
        entity = mgr.spawn(EntityKind.TNT, 24.5, 62.5, 24.5)
        tnt.explode(entity, WorkReport())
        assert world.get_block(24, 61, 24) == Block.OBSIDIAN

    def test_chain_reaction_primes_neighbors(self):
        tnt, mgr, world = self._system()
        world.fill(24, 61, 24, 26, 61, 26, Block.TNT)
        entity = mgr.spawn(EntityKind.TNT, 25.5, 61.5, 25.5, fuse_ticks=1)
        report = WorkReport()
        tnt.explode(entity, report)
        chained = mgr.entities_of(EntityKind.TNT)
        assert len(chained) >= 8, "surrounding TNT blocks must be primed"
        for primed in chained:
            assert 1 <= primed.fuse_ticks <= 30

    def test_knockback_pushes_entities_away(self):
        tnt, mgr, world = self._system()
        bystander = mgr.spawn(EntityKind.ITEM, 27.0, 61.0, 24.5)
        entity = mgr.spawn(EntityKind.TNT, 24.5, 61.0, 24.5)
        tnt.explode(entity, WorkReport())
        assert bystander.vx > 0  # pushed in +x, away from the blast

    def test_full_cuboid_chain_consumes_all_tnt(self):
        tnt, mgr, world = self._system()
        world.fill(20, 61, 20, 25, 63, 25, Block.TNT)
        tnt.prime_region(20, 61, 20, 25, 63, 25, fuse_spread=(1, 5))
        report = WorkReport()
        for _ in range(300):
            mgr.begin_tick()
            tnt.tick(report)
            mgr.tick(report)
            if not mgr.entities_of(EntityKind.TNT):
                break
        assert not mgr.entities_of(EntityKind.TNT)
        assert world.count_blocks(Block.TNT) == 0
        assert tnt.explosions_total == 6 * 6 * 3
