"""Transport-boundary parity: the session path is bit-identical to the
pre-refactor direct-call path.

``OldStyleBot`` below replicates the pre-boundary ``EmulatedPlayer``
verbatim — direct ``server.net`` / ``server.world`` / ``server.telemetry``
reach-ins, same RNG draw order — and races an identically-seeded
``EmulatedPlayer`` + ``InProcessTransport`` run.  Everything observable
must agree byte-for-byte: tick telemetry, response times, packet
accounting, tick durations.
"""

import numpy as np
import pytest

from repro.cloud.providers import get_environment
from repro.core.collectors import MetricExternalizer
from repro.core.experiment import run_iteration
from repro.emulation.behavior import BoundedRandomWalk
from repro.emulation.bot import EmulatedPlayer
from repro.emulation.swarm import BotSwarm
from repro.mlg.protocol import ActionKind, PacketCategory, PlayerAction
from repro.mlg.server import MLGServer
from repro.mlg.transport import (
    InProcessTransport,
    ServerSession,
    as_transport,
)
from repro.simtime import SimClock, s_to_us
from repro.workloads import get_workload


class OldStyleBot:
    """The pre-refactor bot, reaching directly into server internals."""

    def __init__(
        self,
        name,
        server,
        rng,
        behavior,
        spawn_x=8.0,
        spawn_z=8.0,
        latency_up_us=1000,
        latency_down_us=1000,
        probe_interval_s=1.0,
    ):
        self.server = server
        self.rng = rng
        self.behavior = behavior
        self.probe_interval_us = s_to_us(probe_interval_s)
        conn = server.connect_client(
            name, spawn_x, spawn_z, latency_up_us, latency_down_us
        )
        self.client_id = conn.client_id
        self.x, self.z = conn.x, conn.z
        self._next_probe_us = server.clock.now_us
        self._next_probe_id = 1
        self._pending_probes = {}
        self.response_times_ms = []
        self._maybe_probe(server.clock.now_us)

    def step(self, now_us):
        endpoint = self.server.net.client(self.client_id)
        if endpoint is None or endpoint.disconnected:
            return
        for delivery in endpoint.drain_deliveries():
            if delivery.category != PacketCategory.CHAT:
                continue
            sender_id, probe_id = delivery.payload
            if sender_id != self.client_id:
                continue
            sent_at = self._pending_probes.pop(probe_id, None)
            if sent_at is not None:
                response_ms = (delivery.delivered_at_us - sent_at) / 1000.0
                self.server.telemetry.observe_response(response_ms)
                self.response_times_ms.append(response_ms)
        target = self.behavior.next_move(self.x, self.z, self.rng)
        if target is not None:
            tx, tz = target
            ground = self.server.world.column_height(int(tx), int(tz))
            action = PlayerAction(
                ActionKind.MOVE,
                self.client_id,
                (tx, float(max(ground, 1)), tz),
            )
            self.x, self.z = tx, tz
            self.server.submit_action(action, now_us)
        self._maybe_probe(now_us)

    def _maybe_probe(self, now_us):
        if now_us < self._next_probe_us:
            return
        probe_id = self._next_probe_id
        self._next_probe_id += 1
        sent_at = now_us + int(self.rng.uniform(0, 45_000))
        action = PlayerAction(
            ActionKind.CHAT, self.client_id, (probe_id, 32)
        )
        self.server.submit_action(action, sent_at)
        self._pending_probes[probe_id] = sent_at
        self._next_probe_us = now_us + self.probe_interval_us + int(
            self.rng.uniform(-0.1, 0.1) * self.probe_interval_us
        )


def build_server(seed=5):
    env = get_environment("das5")
    machine = env.create_machine(seed=seed)
    clock = SimClock()
    workload = get_workload("players", n_bots=2)
    world = workload.create_world(seed)
    server = MLGServer(
        "vanilla", machine, world=world, clock=clock, seed=seed
    )
    return server, clock


def drive(server, clock, bots, duration_s=3.0):
    externalizer = MetricExternalizer(server)
    server.start()
    deadline = clock.now_us + s_to_us(duration_s)
    while clock.now_us < deadline and server.running:
        server.tick()
        for bot in bots:
            bot.step(clock.now_us)
    server.running = False
    return externalizer.tick_durations_ms()


class TestSessionParity:
    def test_session_path_bit_identical_to_direct_path(self):
        def bots_old(server):
            rng = np.random.default_rng(123)
            return [
                OldStyleBot(
                    f"bot-{i}",
                    server,
                    rng,
                    BoundedRandomWalk(0.0, 0.0, 32.0, 32.0),
                    spawn_x=4.0 + i,
                    spawn_z=6.0 + i,
                )
                for i in range(3)
            ]

        def bots_new(server):
            rng = np.random.default_rng(123)
            transport = InProcessTransport(server)
            return [
                EmulatedPlayer(
                    f"bot-{i}",
                    transport.session(),
                    rng,
                    behavior=BoundedRandomWalk(0.0, 0.0, 32.0, 32.0),
                    spawn_x=4.0 + i,
                    spawn_z=6.0 + i,
                )
                for i in range(3)
            ]

        server_a, clock_a = build_server()
        ticks_a = drive(server_a, clock_a, bots_old(server_a))
        server_b, clock_b = build_server()
        ticks_b = drive(server_b, clock_b, bots_new(server_b))

        assert ticks_a == ticks_b
        assert server_a.telemetry.snapshot(
            include_tails=True
        ) == server_b.telemetry.snapshot(include_tails=True)
        assert server_a.net.stats.counts == server_b.net.stats.counts
        assert server_a.net.stats.bytes_ == server_b.net.stats.bytes_

    def test_bot_response_samples_agree(self):
        server_a, clock_a = build_server(seed=11)
        rng_a = np.random.default_rng(42)
        old = OldStyleBot(
            "probe", server_a, rng_a, BoundedRandomWalk(0.0, 0.0, 16.0, 16.0)
        )
        drive(server_a, clock_a, [old])

        server_b, clock_b = build_server(seed=11)
        rng_b = np.random.default_rng(42)
        new = EmulatedPlayer(
            "probe",
            InProcessTransport(server_b).session(),
            rng_b,
            behavior=BoundedRandomWalk(0.0, 0.0, 16.0, 16.0),
        )
        drive(server_b, clock_b, [new])

        assert old.response_times_ms == new.response_times_ms
        assert old.response_times_ms  # the run actually sampled probes


class TestTransportApi:
    def test_as_transport_normalizes_servers_and_passes_transports(self):
        server, _ = build_server()
        transport = as_transport(server)
        assert isinstance(transport, InProcessTransport)
        assert as_transport(transport) is transport

    def test_session_is_the_only_surface_bots_need(self):
        server, clock = build_server()
        session = InProcessTransport(server).session()
        assert isinstance(session, ServerSession)
        info = session.connect("solo", 8.0, 8.0, 1000, 1000)
        assert session.connected
        assert session.now_us() == clock.now_us
        assert session.ground_height(8, 8) >= 1
        server.start()
        session.submit(
            PlayerAction(ActionKind.CHAT, info.client_id, (1, 32)),
            clock.now_us,
        )
        for _ in range(40):
            server.tick()
        deliveries = session.poll_deliveries()
        assert [d.category for d in deliveries].count(PacketCategory.CHAT) == 1
        # Drain semantics: a second poll returns nothing new.
        assert session.poll_deliveries() == []
        session.disconnect("test over")
        assert not session.connected
        assert session.poll_deliveries() == []

    def test_swarm_accepts_server_or_transport_identically(self):
        results = []
        for wrap in (lambda s: s, InProcessTransport):
            server, clock = build_server(seed=3)
            swarm = BotSwarm(
                wrap(server),
                get_environment("das5").network,
                np.random.default_rng(9),
            )
            swarm.add_player_workload(n_bots=3)
            server.start()
            deadline = clock.now_us + s_to_us(2.0)
            while clock.now_us < deadline and server.running:
                server.tick()
                swarm.step()
            server.running = False
            results.append(
                (
                    swarm.response_times_ms(),
                    server.telemetry.snapshot(include_tails=True),
                )
            )
        assert results[0] == results[1]


class TestIterationDeterminism:
    def test_run_iteration_still_bit_identical(self):
        # The refactor must not perturb the measurement loop: two
        # identically-seeded iterations agree on every serialized field.
        kwargs = dict(
            workload_name="players",
            server_name="vanilla",
            environment_name="das5",
            duration_s=2.0,
            seed=17,
            n_bots=3,
        )
        first = run_iteration(**kwargs).to_dict()
        second = run_iteration(**kwargs).to_dict()
        assert first == second
        assert first["telemetry"]["tick"]["ticks"] > 0

    def test_inproc_transport_knob_does_not_change_results(self):
        kwargs = dict(
            workload_name="players",
            server_name="vanilla",
            environment_name="das5",
            duration_s=2.0,
            seed=23,
            n_bots=2,
        )
        default = run_iteration(**kwargs).to_dict()
        explicit = run_iteration(
            **kwargs, transport="inproc", wire_port=0, wire_batch_flush=True
        ).to_dict()
        assert default == explicit


class TestEndpointEncapsulation:
    def test_deliveries_are_private_with_drain_accessor(self):
        server, clock = build_server()
        conn = server.connect_client("cap", 8.0, 8.0, 0, 0)
        endpoint = server.net.client(conn.client_id)
        assert not hasattr(endpoint, "deliveries")
        server.start()
        server.submit_action(
            PlayerAction(ActionKind.CHAT, conn.client_id, (1, 32)),
            clock.now_us,
        )
        for _ in range(40):
            server.tick()
        assert endpoint.pending_deliveries > 0
        drained = endpoint.drain_deliveries()
        assert drained
        assert endpoint.pending_deliveries == 0
        assert endpoint.drain_deliveries() == []
