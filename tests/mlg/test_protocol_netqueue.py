"""Tests for the packet taxonomy and the networking queues."""

import pytest

from repro.mlg.constants import CLIENT_TIMEOUT_US, KEEPALIVE_INTERVAL_US
from repro.mlg.netqueue import NetworkQueues
from repro.mlg.protocol import (
    ActionKind,
    PACKET_SIZES,
    PacketCategory,
    PacketStats,
    PlayerAction,
)
from repro.mlg.workreport import Op, WorkReport


class TestPacketStats:
    def test_record_counts_and_bytes(self):
        stats = PacketStats()
        added = stats.record(PacketCategory.ENTITY_MOVE, 10)
        assert added == 10 * PACKET_SIZES[PacketCategory.ENTITY_MOVE]
        assert stats.total_count == 10
        assert stats.total_bytes == added

    def test_entity_share_table8_semantics(self):
        stats = PacketStats()
        stats.record(PacketCategory.ENTITY_MOVE, 90)
        stats.record(PacketCategory.CHUNK_DATA, 10)
        n_share, b_share = stats.entity_share()
        assert n_share == pytest.approx(0.9)
        # Chunk data dominates bytes despite being 10% of messages.
        assert b_share < 0.05

    def test_empty_stats_share_is_zero(self):
        assert PacketStats().entity_share() == (0.0, 0.0)

    def test_merge(self):
        a = PacketStats()
        b = PacketStats()
        a.record(PacketCategory.CHAT, 2)
        b.record(PacketCategory.CHAT, 3)
        a.merge(b)
        assert a.counts[PacketCategory.CHAT] == 5

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            PacketStats().record(PacketCategory.CHAT, -1)

    def test_every_category_has_a_size(self):
        for category in PacketCategory.ALL:
            assert PACKET_SIZES[category] > 0

    def test_entity_related_set(self):
        assert PacketCategory.ENTITY_MOVE in PacketCategory.ENTITY_RELATED
        assert PacketCategory.CHAT not in PacketCategory.ENTITY_RELATED


class TestPlayerAction:
    def test_sizes_by_kind(self):
        move = PlayerAction(ActionKind.MOVE, 1, (1.0, 2.0, 3.0))
        chat = PlayerAction(ActionKind.CHAT, 1, (1, 32))
        assert move.size_bytes != chat.size_bytes
        assert move.size_bytes > 0


class TestNetworkQueues:
    def test_inbound_buffered_until_tick_start(self):
        net = NetworkQueues()
        net.register_client(1, 0, latency_up_us=5_000, latency_down_us=5_000)
        action = PlayerAction(ActionKind.MOVE, 1, (1.0, 2.0, 3.0))
        arrival = net.submit_action(action, sent_at_us=10_000)
        assert arrival == 15_000
        assert net.drain_inbound(14_999) == []
        assert net.drain_inbound(15_000) == [action]
        assert net.inbound_pending == 0

    def test_inbound_sorted_by_arrival(self):
        net = NetworkQueues()
        net.register_client(1, 0, 1_000, 1_000)
        net.register_client(2, 0, 9_000, 1_000)
        early = PlayerAction(ActionKind.MOVE, 2, (0.0, 0.0, 0.0))
        late = PlayerAction(ActionKind.MOVE, 1, (1.0, 1.0, 1.0))
        net.submit_action(early, sent_at_us=0)     # arrives 9 000
        net.submit_action(late, sent_at_us=10_000)  # arrives 11 000
        assert net.drain_inbound(20_000) == [early, late]

    def test_submit_to_disconnected_client_fails(self):
        net = NetworkQueues()
        net.register_client(1, 0, 1_000, 1_000)
        net.disconnect(1, "test")
        action = PlayerAction(ActionKind.MOVE, 1, (0.0, 0.0, 0.0))
        assert net.submit_action(action, 0) == -1

    def test_broadcast_counts_per_connected_client(self):
        net = NetworkQueues()
        net.register_client(1, 0, 1_000, 1_000)
        net.register_client(2, 0, 1_000, 1_000)
        net.disconnect(2, "gone")
        report = WorkReport()
        net.broadcast_counted(PacketCategory.ENTITY_MOVE, 5, report)
        assert net.stats.counts[PacketCategory.ENTITY_MOVE] == 5  # one client
        assert report.get(Op.PACKET) == 5

    def test_deliveries_carry_downlink_latency(self):
        net = NetworkQueues()
        net.register_client(1, 0, 1_000, 7_000)
        report = WorkReport()
        delivery = net.deliver(
            1, PacketCategory.CHAT, (1, 1), flush_us=100_000, report=report
        )
        assert delivery.delivered_at_us == 107_000

    def test_keepalives_sent_on_interval(self):
        net = NetworkQueues()
        net.register_client(1, 0, 1_000, 1_000)
        report = WorkReport()
        assert net.flush_keepalives(KEEPALIVE_INTERVAL_US - 1, report) == []
        net.flush_keepalives(KEEPALIVE_INTERVAL_US, report)
        assert net.stats.counts.get(PacketCategory.KEEPALIVE, 0) == 1
        # Not resent until the next interval.
        net.flush_keepalives(KEEPALIVE_INTERVAL_US + 1, report)
        assert net.stats.counts[PacketCategory.KEEPALIVE] == 1

    def test_timeout_after_silence(self):
        net = NetworkQueues()
        net.register_client(1, 0, 1_000, 1_000)
        report = WorkReport()
        timed_out = net.flush_keepalives(CLIENT_TIMEOUT_US, report)
        assert timed_out == [1]
        assert net.client(1).disconnected
        assert net.client(1).disconnect_reason == "keepalive timeout"

    def test_check_timeouts_without_sending(self):
        net = NetworkQueues()
        net.register_client(1, 0, 1_000, 1_000)
        assert net.check_timeouts(CLIENT_TIMEOUT_US - 1) == []
        assert net.check_timeouts(CLIENT_TIMEOUT_US) == [1]

    def test_regular_flushes_prevent_timeout(self):
        net = NetworkQueues()
        net.register_client(1, 0, 1_000, 1_000)
        report = WorkReport()
        t = 0
        for _ in range(100):
            t += KEEPALIVE_INTERVAL_US
            assert net.flush_keepalives(t, report) == []
        assert not net.client(1).disconnected

    def test_connected_count(self):
        net = NetworkQueues()
        net.register_client(1, 0, 1, 1)
        net.register_client(2, 0, 1, 1)
        assert net.connected_count == 2
        net.disconnect(1, "bye")
        assert net.connected_count == 1
