"""Tests for the seeded terrain generator (Control world substrate)."""

import numpy as np
import pytest

from repro.mlg.blocks import Block
from repro.mlg.constants import CHUNK_SIZE, SEA_LEVEL, WORLD_HEIGHT
from repro.mlg.world import Chunk, World
from repro.mlg.worldgen import PAPER_SEED, TerrainGenerator, value_noise_2d


class TestValueNoise:
    def test_range(self):
        xs, zs = np.meshgrid(np.arange(100), np.arange(100))
        noise = value_noise_2d(xs, zs, seed=1, scale=16.0)
        assert float(noise.min()) >= 0.0
        assert float(noise.max()) < 1.0

    def test_deterministic(self):
        xs = np.arange(50)
        a = value_noise_2d(xs, xs, seed=42, scale=8.0)
        b = value_noise_2d(xs, xs, seed=42, scale=8.0)
        assert np.array_equal(a, b)

    def test_seed_changes_field(self):
        xs = np.arange(50)
        a = value_noise_2d(xs, xs, seed=1, scale=8.0)
        b = value_noise_2d(xs, xs, seed=2, scale=8.0)
        assert not np.array_equal(a, b)

    def test_smoothness(self):
        """Adjacent samples differ much less than the lattice spacing."""
        xs = np.arange(200)
        zs = np.zeros(200)
        noise = value_noise_2d(xs, zs, seed=7, scale=32.0)
        assert float(np.abs(np.diff(noise)).max()) < 0.2

    def test_scale_validation(self):
        with pytest.raises(ValueError):
            value_noise_2d(np.arange(4), np.arange(4), seed=1, scale=0.0)


class TestTerrainGenerator:
    def _generate(self, cx=0, cz=0, seed=PAPER_SEED):
        generator = TerrainGenerator(seed=seed)
        chunk = Chunk(cx, cz)
        generator(chunk)
        return chunk

    def test_determinism(self):
        a = self._generate()
        b = self._generate()
        assert np.array_equal(a.blocks, b.blocks)

    def test_bedrock_floor(self):
        chunk = self._generate()
        assert np.all(chunk.blocks[:, :, 0] == Block.BEDROCK)

    def test_layering_stone_dirt_grass(self):
        chunk = self._generate()
        # Find a column above sea level and check the soil profile.
        found = False
        for lx in range(CHUNK_SIZE):
            for lz in range(CHUNK_SIZE):
                h = int(chunk.heightmap[lx, lz])
                top = int(chunk.blocks[lx, lz, h - 1])
                if top == Block.GRASS:
                    assert chunk.blocks[lx, lz, h - 2] == Block.DIRT
                    assert chunk.blocks[lx, lz, h - 5] == Block.STONE
                    found = True
        assert found, "no grass column found in chunk"

    def test_water_below_sea_level(self):
        # Search nearby chunks for an underwater column.
        generator = TerrainGenerator(seed=PAPER_SEED)
        world = World(generator=generator)
        found_water = False
        for cx in range(-6, 7, 2):
            for cz in range(-6, 7, 2):
                chunk = world.ensure_chunk(cx, cz)
                if (chunk.blocks == Block.WATER_SOURCE).any():
                    found_water = True
        assert found_water, "no water found in a 13x13-chunk neighborhood"

    def test_heights_in_bounds(self):
        generator = TerrainGenerator(seed=1)
        xs, zs = np.meshgrid(np.arange(0, 512, 8), np.arange(0, 512, 8))
        heights = generator.height_at(xs, zs)
        assert int(heights.min()) >= 8
        assert int(heights.max()) <= WORLD_HEIGHT - 20

    def test_different_chunks_differ(self):
        a = self._generate(0, 0)
        b = self._generate(5, 9)
        assert not np.array_equal(a.blocks, b.blocks)

    def test_heightmap_synced_after_generation(self):
        chunk = self._generate()
        expected = Chunk(chunk.cx, chunk.cz)
        expected.blocks[:] = chunk.blocks
        expected.recompute_heightmap()
        assert np.array_equal(chunk.heightmap, expected.heightmap)

    def test_trees_appear_somewhere(self):
        generator = TerrainGenerator(seed=PAPER_SEED)
        world = World(generator=generator)
        wood = 0
        for cx in range(-8, 9, 2):
            for cz in range(-8, 9, 2):
                chunk = world.ensure_chunk(cx, cz)
                wood += int((chunk.blocks == Block.WOOD).sum())
        assert wood > 0, "no trees generated in an 17x17-chunk sample"
