"""Tests for the redstone engine and dynamic A* pathfinding."""

import numpy as np
import pytest

from repro.mlg.blocks import Block
from repro.mlg.pathfinding import PathFinder
from repro.mlg.redstone import (
    PISTON_FACINGS,
    REDSTONE_TICK_US,
    ClockCircuit,
    RedstoneEngine,
)
from repro.mlg.workreport import Op, WorkReport
from repro.mlg.world import World


def _flat_world(ground_y=60):
    world = World()
    chunk = world.ensure_chunk(0, 0)
    chunk.blocks[:, :, :ground_y] = Block.STONE
    chunk.recompute_heightmap()
    return world


class TestClockCircuit:
    def test_requires_a_period(self):
        with pytest.raises(ValueError):
            ClockCircuit()

    def test_rejects_both_scheduling_modes(self):
        with pytest.raises(ValueError):
            ClockCircuit(period_us=100, period_ticks=2)

    def test_sim_time_clock_fires_on_schedule(self):
        world = _flat_world()
        engine = RedstoneEngine(world)
        clock = engine.add_clock(ClockCircuit(period_us=100_000, gate_count=10))
        report = WorkReport()
        engine.tick(50_000, report)
        assert clock.fired_pulses == 0
        engine.tick(100_000, report)
        assert clock.fired_pulses == 1
        assert report.get(Op.REDSTONE) == 10

    def test_missed_periods_pile_up(self):
        """Sim-time clocks fire once per elapsed period — the lag runaway
        ingredient: a slow tick makes multiple pulses due at once."""
        world = _flat_world()
        engine = RedstoneEngine(world)
        clock = engine.add_clock(ClockCircuit(period_us=100_000, gate_count=1))
        report = WorkReport()
        engine.tick(500_000, report)  # five periods elapsed at once
        assert clock.fired_pulses == 5

    def test_backlog_is_capped(self):
        world = _flat_world()
        engine = RedstoneEngine(world)
        clock = engine.add_clock(ClockCircuit(period_us=1_000, gate_count=1))
        report = WorkReport()
        engine.tick(10_000_000_000, report)
        assert clock.fired_pulses <= RedstoneEngine.MAX_BACKLOG_PULSES

    def test_game_tick_clock_fires_every_n_ticks(self):
        world = _flat_world()
        engine = RedstoneEngine(world)
        clock = engine.add_clock(ClockCircuit(period_ticks=2, gate_count=5))
        report = WorkReport()
        for tick_index in range(10):
            engine.tick(tick_index * 50_000, report, tick_index=tick_index)
        assert clock.fired_pulses == 5  # ticks 0, 2, 4, 6, 8

    def test_phase_at_period_is_normalized(self):
        # tick % period can never equal a phase >= period: before the
        # normalization such a clock never fired at all.
        clock = ClockCircuit(period_ticks=4, phase_ticks=4)
        assert clock.phase_ticks == 0
        world = _flat_world()
        engine = RedstoneEngine(world)
        engine.add_clock(clock)
        report = WorkReport()
        for tick_index in range(8):
            engine.tick(tick_index * 50_000, report, tick_index=tick_index)
        assert clock.fired_pulses == 2  # ticks 0 and 4

    def test_phase_beyond_period_wraps(self):
        clock = ClockCircuit(period_ticks=4, phase_ticks=6)
        assert clock.phase_ticks == 2
        world = _flat_world()
        engine = RedstoneEngine(world)
        engine.add_clock(clock)
        report = WorkReport()
        fired_at = []
        for tick_index in range(9):
            before = clock.fired_pulses
            engine.tick(tick_index * 50_000, report, tick_index=tick_index)
            if clock.fired_pulses > before:
                fired_at.append(tick_index)
        assert fired_at == [2, 6]

    def test_gate_op_routing(self):
        world = _flat_world()
        engine = RedstoneEngine(world)
        engine.add_clock(
            ClockCircuit(period_ticks=1, gate_count=7, gate_op=Op.BLOCK_UPDATE)
        )
        report = WorkReport()
        engine.tick(0, report, tick_index=0)
        assert report.get(Op.BLOCK_UPDATE) == 7
        assert report.get(Op.REDSTONE) == 0


class TestWirePropagation:
    def test_power_decays_along_wire(self):
        world = _flat_world()
        for i in range(16):
            world.set_block(i, 60, 0, Block.REDSTONE_WIRE)
        engine = RedstoneEngine(world)
        clock = ClockCircuit(period_ticks=1, sources=[(0, 60, 0)])
        engine.add_clock(clock)
        report = WorkReport()
        engine.tick(0, report, tick_index=0)
        assert world.get_aux(0, 60, 0) == 15
        assert world.get_aux(5, 60, 0) == 10
        assert world.get_aux(14, 60, 0) == 1

    def test_falling_edge_depowers_whole_net(self):
        # A 12-wire run driven by a game-tick clock: during the off phase
        # every wire must read aux 0, not just the source's direct
        # neighbors (the old depropagation stopped at distance 1).
        world = _flat_world()
        run_length = 12
        for i in range(run_length):
            world.set_block(i, 60, 0, Block.REDSTONE_WIRE)
        engine = RedstoneEngine(world)
        engine.add_clock(ClockCircuit(period_ticks=2, sources=[(0, 60, 0)]))
        report = WorkReport()
        engine.tick(0, report, tick_index=0)  # on phase
        assert [world.get_aux(i, 60, 0) for i in range(run_length)] == [
            15 - i for i in range(run_length)
        ]
        engine.tick(50_000, report, tick_index=2)  # off phase
        assert [world.get_aux(i, 60, 0) for i in range(run_length)] == [
            0
        ] * run_length

    def test_branched_net_fully_depowers(self):
        world = _flat_world()
        # A T-shaped net: trunk along x, branch along z at x=4.
        for i in range(10):
            world.set_block(i, 60, 0, Block.REDSTONE_WIRE)
        for j in range(1, 8):
            world.set_block(4, 60, j, Block.REDSTONE_WIRE)
        engine = RedstoneEngine(world)
        engine.add_clock(ClockCircuit(period_ticks=2, sources=[(0, 60, 0)]))
        report = WorkReport()
        engine.tick(0, report, tick_index=0)
        assert world.get_aux(4, 60, 7) > 0
        engine.tick(50_000, report, tick_index=2)
        assert all(world.get_aux(i, 60, 0) == 0 for i in range(10))
        assert all(world.get_aux(4, 60, j) == 0 for j in range(1, 8))

    def test_power_takes_strongest_path(self):
        # Two paths from the source to a junction wire: 3 steps direct,
        # 7 steps around.  Max-power relaxation must leave the junction
        # at 15-3 regardless of which branch the walk explores first.
        world = _flat_world()
        source = (0, 60, 0)
        world.set_block(*source, Block.REDSTONE_WIRE)
        for i in (1, 2):  # short path along x
            world.set_block(i, 60, 0, Block.REDSTONE_WIRE)
        junction = (3, 60, 0)
        world.set_block(*junction, Block.REDSTONE_WIRE)
        # Long path: up z, across x, back down z into the junction.
        for j in (1, 2):
            world.set_block(0, 60, j, Block.REDSTONE_WIRE)
        for i in (1, 2, 3):
            world.set_block(i, 60, 2, Block.REDSTONE_WIRE)
        world.set_block(3, 60, 1, Block.REDSTONE_WIRE)
        engine = RedstoneEngine(world)
        engine.add_clock(ClockCircuit(period_ticks=1, sources=[source]))
        report = WorkReport()
        engine.tick(0, report, tick_index=0)
        assert world.get_aux(*junction) == 12

    def test_piston_extends_when_powered(self):
        world = _flat_world()
        world.set_block(0, 60, 0, Block.REDSTONE_WIRE)
        world.set_block(1, 60, 0, Block.PISTON)
        world.set_aux(1, 60, 0, 2)  # face +x
        engine = RedstoneEngine(world)
        clock = ClockCircuit(period_ticks=2, sources=[(0, 60, 0)])
        engine.add_clock(clock)
        report = WorkReport()
        engine.tick(0, report, tick_index=0)  # pulse ON
        assert world.get_block(2, 60, 0) == Block.PISTON_HEAD
        engine.tick(50_000, report, tick_index=2)  # pulse OFF
        assert world.get_block(2, 60, 0) == Block.AIR

    def test_piston_pushes_block(self):
        world = _flat_world()
        world.set_block(0, 60, 0, Block.REDSTONE_WIRE)
        world.set_block(1, 60, 0, Block.PISTON)
        world.set_aux(1, 60, 0, 2)
        world.set_block(2, 60, 0, Block.COBBLESTONE)
        engine = RedstoneEngine(world)
        engine.add_clock(ClockCircuit(period_ticks=1, sources=[(0, 60, 0)]))
        report = WorkReport()
        engine.tick(0, report, tick_index=0)
        assert world.get_block(3, 60, 0) == Block.COBBLESTONE
        assert world.get_block(2, 60, 0) == Block.PISTON_HEAD

    def test_piston_facings_table(self):
        assert len(PISTON_FACINGS) == 6
        assert (0, 1, 0) in PISTON_FACINGS

    def test_repeater_delays_propagation(self):
        world = _flat_world()
        world.set_block(0, 60, 0, Block.REDSTONE_WIRE)
        world.set_block(1, 60, 0, Block.REPEATER)
        world.set_aux(1, 60, 0, 2)  # 2 redstone-tick delay
        world.set_block(2, 60, 0, Block.REDSTONE_WIRE)
        engine = RedstoneEngine(world)
        engine.add_clock(ClockCircuit(period_ticks=1, sources=[(0, 60, 0)]))
        report = WorkReport()
        engine.tick(0, report, tick_index=0)
        assert world.get_aux(2, 60, 0) == 0  # not yet
        engine.tick(2 * REDSTONE_TICK_US, report, tick_index=4)
        assert world.get_aux(2, 60, 0) == 15  # re-emitted at full power

    def test_observer_fires_on_neighbor_change(self):
        world = _flat_world()
        world.set_block(5, 61, 5, Block.OBSERVER)
        engine = RedstoneEngine(world)
        engine.register_observer(5, 61, 5)
        report = WorkReport()
        from repro.mlg.world import BlockChange

        engine.on_block_changes(
            [BlockChange(5, 60, 5, Block.AIR, Block.STONE)], now_us=0
        )
        assert engine.pending_events() == 1
        engine.tick(REDSTONE_TICK_US, report)
        assert report.get(Op.REDSTONE) >= 1

    def test_no_observers_means_no_overhead(self):
        world = _flat_world()
        engine = RedstoneEngine(world)
        from repro.mlg.world import BlockChange

        engine.on_block_changes(
            [BlockChange(5, 60, 5, Block.AIR, Block.STONE)] * 100, now_us=0
        )
        assert engine.pending_events() == 0


class TestPathfinding:
    def test_straight_path_on_flat_ground(self):
        world = _flat_world()
        finder = PathFinder(world)
        result = finder.find_path((0, 60, 0), (6, 60, 0))
        assert result.found
        assert result.path[0] == (0, 60, 0)
        assert result.path[-1] == (6, 60, 0)
        assert len(result.path) == 7

    def test_path_around_wall(self):
        world = _flat_world()
        # A wall across x=3 with a gap at z=9.
        for z in range(0, 9):
            for y in range(60, 63):
                world.set_block(3, y, z, Block.STONE)
        finder = PathFinder(world)
        result = finder.find_path((0, 60, 0), (6, 60, 0))
        assert result.found
        assert any(pos[2] >= 9 for pos in result.path), "path must detour"

    def test_unreachable_goal_respects_budget(self):
        world = _flat_world()
        # Box in the goal completely.
        for dx, dz in ((1, 0), (-1, 0), (0, 1), (0, -1)):
            for y in range(60, 64):
                world.set_block(10 + dx, y, 10 + dz, Block.STONE)
        world.set_block(10, 62, 10, Block.STONE)
        finder = PathFinder(world, max_expansions=150)
        result = finder.find_path((0, 60, 0), (10, 60, 10))
        assert not result.found
        assert result.expanded <= 150

    def test_expansions_recorded_in_report(self):
        world = _flat_world()
        finder = PathFinder(world)
        report = WorkReport()
        finder.find_path((0, 60, 0), (8, 60, 8), report)
        assert report.get(Op.PATHFIND_NODE) > 0

    def test_step_up_and_down(self):
        world = _flat_world()
        world.set_block(3, 60, 0, Block.STONE)  # a one-block step
        finder = PathFinder(world)
        result = finder.find_path((0, 60, 0), (6, 60, 0))
        assert result.found

    def test_unwalkable_start_fails_fast(self):
        world = _flat_world()
        finder = PathFinder(world)
        result = finder.find_path((0, 10, 0), (5, 60, 5))  # inside stone
        assert not result.found
        assert result.expanded == 1

    def test_mob_can_walk_on_water(self):
        world = _flat_world(ground_y=58)
        world.set_block(4, 58, 4, Block.WATER_SOURCE)
        finder = PathFinder(world)
        assert finder.is_walkable(4, 59, 4)
