"""Runtime twin of lint rule MSL002: the Op registry, the cost table,
and the bucket map agree — and every Op is actually recorded somewhere.

The lint rule proves these invariants statically (pure ``ast``); this
test proves them against the *imported* modules, so a registry that
parses fine but diverges at runtime (e.g. a constant shadowed later)
still fails CI.
"""

import ast
from pathlib import Path

from repro.mlg import variants
from repro.mlg.workreport import _BUCKET_BY_OP, FIGURE11_BUCKETS, Op

SRC_ROOT = Path(variants.__file__).resolve().parents[1]

#: The registry files themselves — Op.X references there are
#: definitions/registrations, not engine call sites.
_REGISTRY_FILES = {"workreport.py", "variants.py"}


def op_constants() -> dict[str, str]:
    """name -> value for every string constant on Op (minus ALL)."""
    return {
        name: value
        for name, value in vars(Op).items()
        if not name.startswith("_") and isinstance(value, str)
    }


class TestOpRegistry:
    def test_all_lists_every_constant_exactly_once(self):
        constants = op_constants()
        assert sorted(Op.ALL) == sorted(constants.values())
        assert len(set(Op.ALL)) == len(Op.ALL)

    def test_every_op_has_a_base_cost(self):
        base = variants._BASE_COSTS
        missing = [op for op in Op.ALL if op not in base]
        assert missing == [], f"uncosted ops: {missing}"

    def test_every_variant_prices_every_op(self):
        for name, profile in variants.VARIANTS.items():
            missing = [op for op in Op.ALL if op not in profile.cost_table]
            assert missing == [], f"variant {name!r} misses: {missing}"

    def test_every_op_has_an_explicit_bucket(self):
        assert sorted(_BUCKET_BY_OP) == sorted(Op.ALL)
        unknown = {
            op: bucket
            for op, bucket in _BUCKET_BY_OP.items()
            if bucket not in FIGURE11_BUCKETS
        }
        assert unknown == {}

    def test_every_op_is_recorded_by_some_engine(self):
        """Each Op constant appears at ≥1 call site outside the registry
        files — a priced-and-bucketed op nothing records is dead weight
        in the cost model."""
        referenced: set[str] = set()
        for path in sorted(SRC_ROOT.rglob("*.py")):
            if path.name in _REGISTRY_FILES or "__pycache__" in path.parts:
                continue
            tree = ast.parse(path.read_text(), filename=str(path))
            for node in ast.walk(tree):
                if (
                    isinstance(node, ast.Attribute)
                    and isinstance(node.value, ast.Name)
                    and node.value.id == "Op"
                ):
                    referenced.add(node.attr)
        constants = op_constants()
        unreferenced = sorted(set(constants) - referenced)
        assert unreferenced == [], (
            f"ops never recorded by any engine: {unreferenced}"
        )
