"""Tests for the simulated-time base."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.simtime import (
    MS_PER_SECOND,
    US_PER_MS,
    US_PER_SECOND,
    SimClock,
    ms_to_us,
    s_to_us,
    us_to_ms,
    us_to_s,
)


class TestConversions:
    def test_constants(self):
        assert US_PER_MS == 1_000
        assert US_PER_SECOND == 1_000_000
        assert MS_PER_SECOND == 1_000

    def test_roundtrips(self):
        assert ms_to_us(50.0) == 50_000
        assert us_to_ms(50_000) == 50.0
        assert s_to_us(1.5) == 1_500_000
        assert us_to_s(1_500_000) == 1.5

    def test_rounding(self):
        assert ms_to_us(0.0004) == 0
        assert ms_to_us(0.0006) == 1

    @given(st.floats(min_value=0.0, max_value=1e6))
    def test_ms_us_roundtrip_error_below_1us(self, ms):
        assert abs(us_to_ms(ms_to_us(ms)) - ms) <= 0.001


class TestSimClock:
    def test_starts_at_zero(self):
        clock = SimClock()
        assert clock.now_us == 0
        assert clock.now_ms == 0.0
        assert clock.now_s == 0.0

    def test_custom_start(self):
        assert SimClock(start_us=5_000).now_us == 5_000

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            SimClock(start_us=-1)

    def test_advance_accumulates(self):
        clock = SimClock()
        clock.advance(50_000)
        clock.advance(25_000)
        assert clock.now_us == 75_000
        assert clock.now_ms == 75.0

    def test_advance_backwards_rejected(self):
        clock = SimClock()
        with pytest.raises(ValueError):
            clock.advance(-1)

    def test_advance_to_is_monotone(self):
        clock = SimClock()
        clock.advance_to(100)
        assert clock.now_us == 100
        clock.advance_to(50)  # no-op, never backwards
        assert clock.now_us == 100

    def test_repr(self):
        assert "42" in repr(SimClock(42))

    @given(st.lists(st.integers(min_value=0, max_value=10**9), max_size=50))
    def test_monotonicity_property(self, deltas):
        clock = SimClock()
        last = 0
        for delta in deltas:
            clock.advance(delta)
            assert clock.now_us >= last
            last = clock.now_us
        assert clock.now_us == sum(deltas)
