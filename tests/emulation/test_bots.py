"""Tests for the player-emulation bots and swarm."""

import numpy as np
import pytest

from repro.cloud import get_environment
from repro.emulation import Behavior, BotSwarm, BoundedRandomWalk, Idle
from repro.emulation.bot import EmulatedPlayer
from repro.mlg.blocks import Block
from repro.mlg.server import MLGServer
from repro.mlg.world import World


class FixedMachine:
    throttled_executions = 0
    total_executions = 0
    cpu_used_us = 0.0
    wall_observed_us = 0.0
    credits_s = 0.0

    def execute(self, work_us, parallel_fraction, now_us, **kwargs):
        return max(1, int(work_us))


def _server(seed=0):
    world = World()
    for cx in range(-1, 4):
        for cz in range(-1, 4):
            chunk = world.ensure_chunk(cx, cz)
            chunk.blocks[:, :, :60] = Block.STONE
            chunk.recompute_heightmap()
    return MLGServer("vanilla", FixedMachine(), world=world, seed=seed)


class TestBehaviors:
    def test_idle_never_moves(self):
        rng = np.random.default_rng(0)
        assert Idle().next_move(1.0, 2.0, rng) is None

    def test_walk_stays_in_box(self):
        rng = np.random.default_rng(1)
        walk = BoundedRandomWalk(0.0, 0.0, 32.0, 32.0)
        x, z = 16.0, 16.0
        for _ in range(2000):
            target = walk.next_move(x, z, rng)
            assert target is not None
            x, z = target
            assert -0.5 <= x <= 32.5
            assert -0.5 <= z <= 32.5

    def test_walk_speed_bounded(self):
        rng = np.random.default_rng(2)
        walk = BoundedRandomWalk(0.0, 0.0, 32.0, 32.0, speed=0.22)
        x, z = 16.0, 16.0
        for _ in range(200):
            nx, nz = walk.next_move(x, z, rng)
            step = ((nx - x) ** 2 + (nz - z) ** 2) ** 0.5
            assert step <= 0.23
            x, z = nx, nz

    def test_walk_box_validation(self):
        with pytest.raises(ValueError):
            BoundedRandomWalk(10.0, 0.0, 0.0, 32.0)

    def test_base_class_is_abstract(self):
        with pytest.raises(NotImplementedError):
            Behavior().next_move(0.0, 0.0, np.random.default_rng(0))


class TestEmulatedPlayer:
    def test_bot_connects_on_creation(self):
        server = _server()
        bot = EmulatedPlayer(
            "b0", server, np.random.default_rng(0), spawn_x=8.0, spawn_z=8.0
        )
        assert bot.connected
        assert server.net.connected_count == 1

    def test_probe_roundtrip_measures_response_time(self):
        server = _server()
        bot = EmulatedPlayer(
            "b0", server, np.random.default_rng(0),
            probe_interval_s=0.2,
        )
        server.start()
        for _ in range(60):
            server.tick()
            bot.step(server.clock.now_us)
        assert len(bot.response_times_ms) >= 3
        # The first probe samples the connect-time chunk-loading spike.
        join_probe, *steady = bot.response_times_ms
        assert 0.0 < join_probe < 3000.0
        for rt in steady:
            assert 0.0 < rt < 200.0

    def test_walking_bot_moves_avatar(self):
        server = _server()
        bot = EmulatedPlayer(
            "b0", server, np.random.default_rng(0),
            behavior=BoundedRandomWalk(0.0, 0.0, 32.0, 32.0),
            spawn_x=16.0, spawn_z=16.0,
        )
        server.start()
        for _ in range(40):
            server.tick()
            bot.step(server.clock.now_us)
        conn = server.players.players[bot.client_id]
        assert (conn.x, conn.z) != (16.0, 16.0)

    def test_disconnected_bot_stops_acting(self):
        server = _server()
        bot = EmulatedPlayer("b0", server, np.random.default_rng(0))
        server.net.disconnect(bot.client_id, "test")
        bot.step(server.clock.now_us)  # must not raise
        assert not bot.connected


class TestBotSwarm:
    def test_player_workload_connects_n_bots(self):
        server = _server()
        env = get_environment("das5-2core")
        swarm = BotSwarm(server, env.network, np.random.default_rng(0))
        swarm.add_player_workload(n_bots=5, stagger_s=0.1)
        server.start()
        for _ in range(30):
            server.tick()
            swarm.step()
        assert swarm.connected_count == 5
        assert server.net.connected_count == 5

    def test_staggered_connection_order(self):
        server = _server()
        env = get_environment("das5-2core")
        swarm = BotSwarm(server, env.network, np.random.default_rng(0))
        swarm.add_player_workload(n_bots=4, stagger_s=0.5)
        server.start()
        server.tick()
        swarm.step()
        assert swarm.connected_count == 1  # only the first so far
        for _ in range(40):
            server.tick()
            swarm.step()
        assert swarm.connected_count == 4

    def test_observer_is_idle(self):
        server = _server()
        env = get_environment("das5-2core")
        swarm = BotSwarm(server, env.network, np.random.default_rng(0))
        swarm.add_observer()
        server.start()
        for _ in range(20):
            server.tick()
            swarm.step()
        bot = swarm.bots[0]
        conn = server.players.players[bot.client_id]
        assert (conn.x, conn.z) == (8.0, 8.0)

    def test_response_times_aggregated(self):
        server = _server()
        env = get_environment("das5-2core")
        swarm = BotSwarm(server, env.network, np.random.default_rng(0))
        swarm.add_bot("a", probe_interval_s=0.2)
        swarm.add_bot("b", probe_interval_s=0.2)
        server.start()
        for _ in range(60):
            server.tick()
            swarm.step()
        assert len(swarm.response_times_ms()) >= 6
