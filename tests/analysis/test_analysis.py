"""Tests for the analysis package: hosting data, expectations, drivers."""

import pytest

from repro.analysis import (
    HOSTING_PLANS,
    PAPER,
    fig6_isr_model,
    most_common_recommendation,
    run_cell,
)


class TestHosting:
    def test_23_surveyed_plans(self):
        assert len(HOSTING_PLANS) == 23

    def test_most_common_is_2vcpu_4gb(self):
        ram, vcpus = most_common_recommendation()
        assert (ram, vcpus) == (4.0, 2)

    def test_np_fields_are_none(self):
        aws = next(p for p in HOSTING_PLANS if p.service == "AWS")
        assert aws.cpu_speed_ghz is None
        assert aws.ram_gb == 1.0


class TestExpectations:
    def test_every_figure_key_present(self):
        for key in ("fig6", "fig7", "fig8", "fig9", "fig10", "fig11",
                    "fig12", "table7", "table8", "table2"):
            assert key in PAPER

    def test_table8_covers_grid(self):
        assert len(PAPER["table8"]) >= 9
        assert PAPER["table8"][("farm", "papermc")] == (47.5, 1.2)


class TestFigureDrivers:
    def test_fig6_driver_is_pure(self):
        result = fig6_isr_model()
        curves = [r for r in result.rows if "s" in r]
        assert {r["s"] for r in curves} == {2, 10, 20}
        fig6b = next(r for r in result.rows if r.get("trace") == "fig6b")
        assert fig6b["high_isr"] > fig6b["low_isr"]

    def test_run_cell_smoke(self):
        cell = run_cell("control", "vanilla", "das5-2core", duration_s=3.0)
        assert cell.tick_durations_ms
        assert cell.environment == "das5-2core"

    def test_run_cell_warm_flag(self):
        warm = run_cell("control", "vanilla", "aws-t3.large", 2.0, warm=True)
        cold = run_cell("control", "vanilla", "aws-t3.large", 2.0, warm=False)
        assert warm.final_credits_s <= cold.final_credits_s
