"""Tests for the on-disk job store and the parallel/serial executor."""

import json

import pytest

from repro.campaign import (
    CampaignExecutor,
    CampaignSpec,
    JobPlanner,
    JobStore,
)
from repro.campaign import executor as executor_module
from repro.core.experiment import run_server_chain


def tiny_spec(tmp_path, **kwargs) -> CampaignSpec:
    base = dict(
        name="tiny",
        servers=["vanilla", "papermc"],
        workloads=["control"],
        environments=["das5-2core", "aws-t3.large"],
        iterations=2,
        duration_s=1.5,
        seed=11,
        output_dir=str(tmp_path / "out"),
    )
    base.update(kwargs)
    return CampaignSpec(**base)


class TestStore:
    def test_shard_round_trip(self, tmp_path):
        spec = tiny_spec(tmp_path)
        job = JobPlanner(spec).plan()[0]
        iterations = run_server_chain(
            JobPlanner(spec).job_config(job), job.server
        )
        store = JobStore(spec.output_dir)
        store.save_job(job, iterations)
        loaded = store.load_job(job.job_id)
        assert loaded == iterations
        assert store.completed_ids() == {job.job_id}

    def test_no_torn_shards(self, tmp_path):
        spec = tiny_spec(tmp_path)
        store = JobStore(spec.output_dir)
        job = JobPlanner(spec).plan()[0]
        store.save_job(job, [])
        # The atomic-write temp file must not linger as a phantom shard.
        assert list(store.shard_dir.glob("*.tmp")) == []

    def test_merge_orders_by_plan_index(self, tmp_path):
        spec = tiny_spec(tmp_path)
        planner = JobPlanner(spec)
        plan = planner.plan()
        store = JobStore(spec.output_dir)
        store.write_manifest(spec, plan)
        # Save shards in reverse order; merge must restore plan order.
        for job in reversed(plan):
            store.save_job(
                job, run_server_chain(planner.job_config(job), job.server)
            )
        merged = store.merge()
        cells = [
            (it.server, it.environment, it.iteration)
            for it in merged.iterations
        ]
        expected = [
            (job.server, job.environment, iteration)
            for job in plan
            for iteration in range(spec.iterations)
        ]
        assert cells == expected


class TestExecutor:
    def test_serial_and_parallel_results_identical(self, tmp_path):
        spec_a = tiny_spec(tmp_path, output_dir=str(tmp_path / "serial"))
        spec_b = tiny_spec(tmp_path, output_dir=str(tmp_path / "parallel"))
        serial = CampaignExecutor(spec_a, jobs=1).run()
        parallel = CampaignExecutor(spec_b, jobs=2).run()
        assert len(serial.iterations) == 2 * 2 * 2
        assert serial.iterations == parallel.iterations
        # Byte-identical shards on disk, too.
        for shard in sorted((tmp_path / "serial" / "jobs").iterdir()):
            twin = tmp_path / "parallel" / "jobs" / shard.name
            assert shard.read_bytes() == twin.read_bytes()

    def test_matches_sequential_experiment_runner(self, tmp_path):
        """A one-cell campaign reproduces ExperimentRunner bit for bit."""
        from repro.core import ExperimentRunner

        spec = tiny_spec(tmp_path, servers=["vanilla"],
                         environments=["aws-t3.large"])
        campaign = CampaignExecutor(spec, jobs=1).run()
        runner_result = ExperimentRunner(
            spec.cell_config(spec.cells()[0])
        ).run()
        assert campaign.iterations == runner_result.iterations

    def test_resume_skips_completed_shards(self, tmp_path, monkeypatch):
        spec = tiny_spec(tmp_path)
        plan = JobPlanner(spec).plan()
        executor = CampaignExecutor(spec, jobs=1)
        executor.run()
        store = JobStore(spec.output_dir)
        assert store.completed_ids() == {job.job_id for job in plan}
        # Drop two shards to simulate a kill, then count re-executions.
        killed = [plan[1], plan[3]]
        for job in killed:
            store.shard_path(job.job_id).unlink()
        executed = []
        real_execute = executor_module.execute_job

        def counting_execute(payload):
            executed.append(payload["job"]["job_id"])
            return real_execute(payload)

        monkeypatch.setattr(
            executor_module, "execute_job", counting_execute
        )
        resumed = CampaignExecutor(spec, jobs=1).run(resume=True)
        assert sorted(executed) == sorted(job.job_id for job in killed)
        assert len(resumed.iterations) == len(plan) * spec.iterations

    def test_resume_refuses_edited_spec(self, tmp_path):
        spec = tiny_spec(tmp_path)
        CampaignExecutor(spec, jobs=1).run()
        JobStore(spec.output_dir).shard_path(
            JobPlanner(spec).plan()[0].job_id
        ).unlink()
        edited = tiny_spec(tmp_path, duration_s=3.0)
        with pytest.raises(ValueError, match="duration_s"):
            CampaignExecutor(edited, jobs=1).run(resume=True)
        # Execution knobs may change freely between run and resume.
        relocated = tiny_spec(tmp_path, jobs=4)
        CampaignExecutor(relocated, jobs=1).run(resume=True)

    def test_fresh_run_refuses_populated_store(self, tmp_path):
        spec = tiny_spec(tmp_path)
        CampaignExecutor(spec, jobs=1).run()
        with pytest.raises(FileExistsError):
            CampaignExecutor(spec, jobs=1).run()

    def test_foreign_shards_rejected(self, tmp_path):
        spec = tiny_spec(tmp_path)
        store = JobStore(spec.output_dir)
        store.shard_dir.mkdir(parents=True)
        (store.shard_dir / "deadbeef.json").write_text(
            json.dumps({"job": {}, "iterations": []})
        )
        with pytest.raises(ValueError, match="different campaign"):
            CampaignExecutor(spec, jobs=1).run(resume=True)

    def test_progress_callback_counts_all_jobs(self, tmp_path):
        spec = tiny_spec(tmp_path)
        seen = []
        CampaignExecutor(
            spec, jobs=1, progress=lambda job, done, total: seen.append(
                (job.job_id, done, total)
            )
        ).run()
        assert [entry[1] for entry in seen] == [1, 2, 3, 4]
        assert all(entry[2] == 4 for entry in seen)
