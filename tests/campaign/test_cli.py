"""CLI round-trip: run → status → kill → resume → export on a tmp dir."""

import json

import pytest

from repro.campaign import JobStore
from repro.campaign.cli import main


@pytest.fixture()
def spec_file(tmp_path):
    spec = {
        "name": "cli-tiny",
        "servers": ["vanilla"],
        "workloads": ["control", "players"],
        "environments": ["das5-2core"],
        "bot_counts": [4],
        "iterations": 1,
        "duration_s": 1.5,
        "seed": 3,
        "output_dir": str(tmp_path / "out"),
    }
    path = tmp_path / "campaign.json"
    path.write_text(json.dumps(spec))
    return path


class TestCli:
    def test_run_status_export_round_trip(
        self, spec_file, tmp_path, capsys
    ):
        assert main(["run", str(spec_file), "--quiet"]) == 0
        out_dir = tmp_path / "out"
        assert (out_dir / "manifest.json").exists()
        assert len(list((out_dir / "jobs").glob("*.json"))) == 2

        assert main(["status", str(out_dir)]) == 0
        status_out = capsys.readouterr().out
        assert "2/2 jobs complete" in status_out

        assert main(["export", str(out_dir)]) == 0
        export_dir = out_dir / "export"
        summary = (export_dir / "summary.csv").read_text()
        assert summary.count("\n") == 3  # header + 2 iterations
        assert "behavior" in summary.splitlines()[0]
        assert (export_dir / "results.json").exists()
        grid = (export_dir / "campaign_grid.csv").read_text()
        assert "isr" in grid.splitlines()[0]
        assert "n_bots" in grid.splitlines()[0]
        # Cells sharing a server must not clobber each other's series:
        # the varying axis (workload) becomes a subdirectory.
        assert (export_dir / "vanilla" / "control"
                / "iter0_ticks.csv").exists()
        assert (export_dir / "vanilla" / "players"
                / "iter0_ticks.csv").exists()

    def test_rerun_refused_then_resume_completes(
        self, spec_file, tmp_path, capsys
    ):
        assert main(["run", str(spec_file), "--quiet"]) == 0
        assert main(["run", str(spec_file), "--quiet"]) == 2
        assert "resume" in capsys.readouterr().err

        store = JobStore(tmp_path / "out")
        shard = sorted(store.shard_dir.iterdir())[0]
        shard.unlink()
        assert main(["resume", str(spec_file), "--quiet"]) == 0
        assert len(store.completed_ids()) == 2

        # Resuming a finished campaign is a no-op, not an error.
        assert main(["resume", str(tmp_path / "out"), "--quiet"]) == 0

    def test_flood_workload_runs_end_to_end(self, tmp_path):
        # `repro run` must execute the Flood workload like any other
        # cell, and its recorded tick distribution must be dominated by
        # the Fluids bucket (the workload's defining property).
        spec = {
            "name": "cli-flood",
            "servers": ["vanilla"],
            "workloads": ["flood"],
            "environments": ["das5-2core"],
            "iterations": 1,
            "duration_s": 40.0,
            "seed": 3,
            "output_dir": str(tmp_path / "flood-out"),
        }
        path = tmp_path / "flood.json"
        path.write_text(json.dumps(spec))
        assert main(["run", str(path), "--quiet"]) == 0
        store = JobStore(tmp_path / "flood-out")
        (job_id,) = store.completed_ids()
        (iteration,) = store.load_job(job_id)
        assert not iteration.crashed
        active = {
            bucket: share
            for bucket, share in iteration.tick_distribution.items()
            if not bucket.startswith("Wait")
        }
        assert max(active, key=active.get) == "Fluids", active

    def test_status_on_missing_target_errors(self, tmp_path, capsys):
        assert main(["status", str(tmp_path / "nope")]) == 2
        assert "error:" in capsys.readouterr().err

    @pytest.mark.parametrize("verb", ["status", "export", "report"])
    def test_verbs_on_dir_without_manifest_error_cleanly(
        self, verb, tmp_path, capsys
    ):
        # A directory that exists but was never a campaign output dir:
        # one clear error naming the missing manifest, nonzero exit.
        empty = tmp_path / "not-a-campaign"
        empty.mkdir()
        assert main([verb, str(empty)]) == 2
        captured = capsys.readouterr()
        assert captured.err.count("error:") == 1
        assert "manifest" in captured.err
        assert str(empty) in captured.err

    def test_export_without_completed_jobs_errors(
        self, spec_file, tmp_path, capsys
    ):
        spec = json.loads(spec_file.read_text())
        store = JobStore(spec["output_dir"])
        from repro.campaign import CampaignSpec, JobPlanner

        campaign = CampaignSpec.from_dict(spec)
        store.write_manifest(campaign, JobPlanner(campaign).plan())
        assert main(["export", str(tmp_path / "out")]) == 1
        assert "no completed jobs" in capsys.readouterr().err

    def test_boxplot_export(self, spec_file, tmp_path, capsys):
        assert main(["run", str(spec_file), "--quiet"]) == 0
        assert main(["export", str(tmp_path / "out"), "--boxplot"]) == 0
        assert "Tick durations per server" in capsys.readouterr().out
