"""Campaign warm world-cache: prepare, warm boot, bit-identity, CLI."""

import json
from pathlib import Path

import pytest

from repro.campaign.cli import main
from repro.campaign.executor import CampaignExecutor
from repro.campaign.spec import CampaignSpec
from repro.core.experiment import run_iteration
from repro.persistence.warmup import (
    WORLD_MANIFEST,
    ensure_world_cache,
    prepare_world,
    world_cache_key,
)


class TestPrepareWorld:
    def test_prepare_writes_regions_and_manifest(self, tmp_path):
        report = prepare_world(tmp_path / "w", "control", seed=3, radius=2)
        assert report.chunks == 25
        assert report.bytes_written > 0
        manifest = json.loads((tmp_path / "w" / WORLD_MANIFEST).read_text())
        assert manifest["workload"] == "control"
        assert manifest["world_hash"] == report.world_hash
        assert (tmp_path / "w" / "region").is_dir()

    def test_prepare_replaces_rather_than_merges(self, tmp_path):
        """Re-preparation must not leave stale out-of-footprint chunks
        behind (region saves are read-modify-write; the warm cache
        serves every chunk it holds)."""
        prepare_world(tmp_path / "w", "control", seed=3, radius=3)
        report = prepare_world(tmp_path / "w", "control", seed=3, radius=1)
        assert report.chunks == 9
        from repro.persistence.store import RegionStore

        assert len(RegionStore(tmp_path / "w").chunk_positions()) == 9

    def test_ensure_is_idempotent(self, tmp_path):
        first = ensure_world_cache(tmp_path, "control", 1.0, 3, radius=2)
        stamp = (first / WORLD_MANIFEST).stat().st_mtime_ns
        again = ensure_world_cache(tmp_path, "control", 1.0, 3, radius=2)
        assert again == first
        assert (first / WORLD_MANIFEST).stat().st_mtime_ns == stamp

    def test_ensure_reprepares_on_stale_content(self, tmp_path):
        """The probe-chunk canary: a snapshot whose bytes no longer match
        what today's generator produces is rebuilt even though its
        manifest parameters look right (restored CI cache, worldgen
        drift)."""
        from repro.mlg.blocks import Block
        from repro.persistence.store import RegionStore

        path = ensure_world_cache(tmp_path, "control", 1.0, 3, radius=2)
        store = RegionStore(path)
        probe = min(store.chunk_positions())
        chunk = store.load_chunk(*probe)
        chunk.blocks[0, 0, 100] = Block.TNT  # simulate drifted terrain
        store.save_chunks([chunk])
        ensure_world_cache(tmp_path, "control", 1.0, 3, radius=2)
        rebuilt = RegionStore(path).load_chunk(*probe)
        assert rebuilt.blocks[0, 0, 100] != Block.TNT

    def test_ensure_reprepares_on_parameter_mismatch(self, tmp_path):
        path = ensure_world_cache(tmp_path, "control", 1.0, 3, radius=2)
        manifest = json.loads((path / WORLD_MANIFEST).read_text())
        manifest["seed"] = 999  # pretend it was built from another seed
        (path / WORLD_MANIFEST).write_text(json.dumps(manifest))
        ensure_world_cache(tmp_path, "control", 1.0, 3, radius=2)
        rebuilt = json.loads((path / WORLD_MANIFEST).read_text())
        assert rebuilt["seed"] == 3


class TestWarmBoot:
    def test_warm_boot_matches_cold_world_and_is_cheaper(self, tmp_path):
        cache = ensure_world_cache(tmp_path, "control", 1.0, 11, radius=10)
        cold = run_iteration(
            "control",
            "vanilla",
            "das5-2core",
            duration_s=3.0,
            seed=11,
            world_dir=str(tmp_path / "cold"),
        )
        warm = run_iteration(
            "control",
            "vanilla",
            "das5-2core",
            duration_s=3.0,
            seed=11,
            world_cache_dir=str(cache),
        )
        cold_world = cold.telemetry["world"]
        warm_world = warm.telemetry["world"]
        # Identical initial world content, but served from disk...
        assert warm_world["initial_hash"] == cold_world["initial_hash"]
        assert warm_world["chunks_loaded_from_disk"] > 200
        assert cold_world["chunks_loaded_from_disk"] == 0
        # ...which makes the connect-burst tick far cheaper than cold
        # generation (CHUNK_LOAD vs CHUNK_GEN + lighting in the cost
        # model) — the "boots faster" half of the warm-cache claim.
        assert warm.tick_durations_ms[0] < 0.5 * cold.tick_durations_ms[0]


class TestWarmCampaign:
    @pytest.fixture()
    def spec(self, tmp_path):
        return CampaignSpec(
            name="warm",
            servers=["vanilla"],
            workloads=["exploration"],
            environments=["das5-2core"],
            iterations=2,
            duration_s=6.0,
            seed=11,
            output_dir=str(tmp_path / "out"),
            world_dir=str(tmp_path / "worlds"),
            warm_world_cache=True,
            autosave_interval_s=3.0,
            max_loaded_chunks=200,
        )

    def test_iterations_boot_bit_identical_to_cold(self, spec, tmp_path):
        result = CampaignExecutor(spec).run()
        worlds = [it.telemetry["world"] for it in result.iterations]
        hashes = {w["initial_hash"] for w in worlds}
        assert len(result.iterations) == 2
        # Every iteration warm-boots the same on-disk seed...
        assert len(hashes) == 1
        assert all(w["chunks_loaded_from_disk"] > 0 for w in worlds)
        # ...and it is bit-identical to a cold-generated world of the
        # campaign seed (the cache round-trip is lossless).
        cold = run_iteration(
            "exploration",
            "vanilla",
            "das5-2core",
            duration_s=6.0,
            seed=spec.seed,
            world_dir=str(tmp_path / "cold"),
        )
        assert hashes == {cold.telemetry["world"]["initial_hash"]}
        # One cache entry per (workload, scale), named for its key.
        cache_root = Path(spec.output_dir) / "world-cache"
        assert [p.name for p in cache_root.iterdir()] == [
            world_cache_key("exploration", 1.0, spec.seed)
        ]

    def test_live_world_dirs_are_per_iteration(self, spec, tmp_path):
        CampaignExecutor(spec).run()
        cell_dirs = list((tmp_path / "worlds").iterdir())
        assert len(cell_dirs) == 1  # one cell
        iter_dirs = sorted(
            p.name for p in (cell_dirs[0] / "vanilla").iterdir()
        )
        assert iter_dirs == ["iter000", "iter001"]

    def test_rerun_wipes_stale_iteration_worlds(self, tmp_path):
        """A re-run job must not boot from region files a killed attempt
        left behind: the per-iteration world directory starts fresh."""
        from repro.core.config import MeterstickConfig
        from repro.core.experiment import run_server_chain

        def chain(root):
            config = MeterstickConfig(
                servers=["vanilla"],
                world="exploration",
                environment="das5-2core",
                duration_s=5.0,
                seed=11,
                world_dir=str(root),
                autosave_interval_s=2.0,
                max_loaded_chunks=200,
            )
            return run_server_chain(config, "vanilla")

        clean = chain(tmp_path / "clean")[0]
        # Poison the directory a "previous attempt" would have used.
        stale = tmp_path / "stale" / "vanilla" / "iter000" / "region"
        stale.mkdir(parents=True)
        (stale / "r.0.0.msr").write_bytes(b"leftover garbage")
        rerun = chain(tmp_path / "stale")[0]
        assert (
            rerun.telemetry["world"]["initial_hash"]
            == clean.telemetry["world"]["initial_hash"]
        )
        assert rerun.tick_durations_ms == clean.tick_durations_ms


class TestWorldCli:
    def test_prepare_then_inspect(self, tmp_path, capsys):
        out = tmp_path / "cli-world"
        assert (
            main(
                [
                    "world",
                    "prepare",
                    str(out),
                    "--workload",
                    "control",
                    "--seed",
                    "5",
                    "--radius",
                    "2",
                ]
            )
            == 0
        )
        assert "25 chunk(s)" in capsys.readouterr().out
        assert main(["world", "inspect", str(out)]) == 0
        text = capsys.readouterr().out
        assert "25 chunk(s)" in text
        assert "recorded hash matches" in text

    def test_inspect_flags_damage(self, tmp_path, capsys):
        out = tmp_path / "cli-world"
        main(["world", "prepare", str(out), "--radius", "1"])
        capsys.readouterr()
        region = next((out / "region").glob("r.*.msr"))
        region.write_bytes(region.read_bytes()[:-6])
        assert main(["world", "inspect", str(out)]) == 1
        assert "CORRUPT" in capsys.readouterr().out

    def test_inspect_flags_manifest_hash_mismatch(self, tmp_path, capsys):
        """CRC-intact content that no longer matches the recorded hash
        (post-prepare edits, stale cache) must fail the exit code too."""
        from repro.mlg.blocks import Block
        from repro.persistence.store import RegionStore

        out = tmp_path / "cli-world"
        main(["world", "prepare", str(out), "--radius", "1"])
        capsys.readouterr()
        store = RegionStore(out)
        chunk = store.load_chunk(0, 0)
        chunk.blocks[0, 0, 100] = Block.TNT
        store.save_chunks([chunk])  # valid CRCs, different content
        assert main(["world", "inspect", str(out)]) == 1
        assert "DOES NOT MATCH" in capsys.readouterr().out
