"""Tests for campaign spec loading/validation and job planning."""

import json

import pytest

from repro.campaign import CampaignSpec, JobPlanner
from repro.core.config import MeterstickConfig, stable_crc


def small_spec(**kwargs) -> CampaignSpec:
    base = dict(
        name="t",
        servers=["vanilla", "papermc"],
        workloads=["control", "players"],
        environments=["das5-2core", "aws-t3.large"],
        iterations=2,
        duration_s=2.0,
        seed=7,
    )
    base.update(kwargs)
    return CampaignSpec(**base)


class TestSpec:
    def test_cell_count_is_axis_product(self):
        spec = small_spec(scales=[1.0, 2.0], bot_counts=[5, 10])
        assert spec.n_cells == 2 * 2 * 2 * 2 * 2
        assert len(spec.cells()) == spec.n_cells

    def test_unknown_axis_values_rejected(self):
        with pytest.raises(ValueError):
            small_spec(servers=["notaserver"])
        with pytest.raises(ValueError):
            small_spec(workloads=["notaworkload"])
        with pytest.raises(ValueError):
            small_spec(environments=["notacloud"])
        with pytest.raises(ValueError):
            small_spec(behaviors=["moonwalk"])

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError):
            small_spec(servers=[])

    def test_cell_config_materializes_meterstick_config(self):
        spec = small_spec(bot_counts=[5], behaviors=["idle"])
        cell = spec.cells()[0]
        config = spec.cell_config(cell)
        assert isinstance(config, MeterstickConfig)
        assert config.servers == [cell.server]
        assert config.world == cell.workload
        assert config.environment == cell.environment
        assert config.number_of_bots == 5
        assert config.behavior == "idle"
        assert config.iterations == 2
        assert config.seed == 7

    def test_overrides_patch_matching_cells_only(self):
        spec = small_spec(
            overrides=[
                {
                    "where": {"workload": "players"},
                    "set": {"duration_s": 4.0, "warm_machines": True},
                }
            ]
        )
        for cell in spec.cells():
            config = spec.cell_config(cell)
            if cell.workload == "players":
                assert config.duration_s == 4.0
                assert config.warm_machines is True
            else:
                assert config.duration_s == 2.0
                assert config.warm_machines is False

    def test_bad_override_keys_rejected(self):
        with pytest.raises(ValueError):
            small_spec(overrides=[{"where": {"nope": 1}, "set": {}}])
        with pytest.raises(ValueError):
            small_spec(overrides=[{"where": {}, "set": {"ips": []}}])

    def test_cell_identity_fields_not_overridable(self):
        """Axis fields and seed define job ids; patching them would desync
        the recorded cell from the config that actually ran."""
        for field in ("scale", "number_of_bots", "behavior", "seed"):
            with pytest.raises(ValueError, match="unsupported config"):
                small_spec(overrides=[{"where": {}, "set": {field: 1}}])

    def test_json_file_round_trip(self, tmp_path):
        spec = small_spec(scales=[1.0, 1.5])
        path = spec.save(tmp_path / "spec.json")
        loaded = CampaignSpec.from_file(path)
        assert loaded == spec

    def test_yaml_file_load(self, tmp_path):
        yaml = pytest.importorskip("yaml")
        spec = small_spec()
        path = tmp_path / "spec.yaml"
        path.write_text(yaml.safe_dump(spec.to_dict()))
        assert CampaignSpec.from_file(path) == spec

    def test_unknown_spec_fields_rejected(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps({"name": "x", "frobnicate": True}))
        with pytest.raises(ValueError, match="frobnicate"):
            CampaignSpec.from_file(path)


class TestPlanner:
    def test_plan_is_deterministic(self):
        jobs_a = JobPlanner(small_spec()).plan()
        jobs_b = JobPlanner(small_spec()).plan()
        assert jobs_a == jobs_b
        assert len(jobs_a) == 8
        assert [job.index for job in jobs_a] == list(range(8))

    def test_job_ids_unique_and_stable_crc(self):
        spec = small_spec()
        jobs = JobPlanner(spec).plan()
        ids = [job.job_id for job in jobs]
        assert len(set(ids)) == len(ids)
        for job in jobs:
            assert job.job_id == f"{stable_crc(spec.seed, job.cell.key()):08x}"

    def test_seed_changes_job_ids(self):
        ids_a = {j.job_id for j in JobPlanner(small_spec(seed=7)).plan()}
        ids_b = {j.job_id for j in JobPlanner(small_spec(seed=8)).plan()}
        assert ids_a.isdisjoint(ids_b)

    def test_job_config_matches_cell(self):
        spec = small_spec()
        planner = JobPlanner(spec)
        job = planner.plan()[3]
        config = planner.job_config(job)
        assert config.servers == [job.server]
        assert config.world == job.workload
        assert config.environment == job.environment
