"""Incremental sidecar following: offsets, torn lines, truncation."""

import json

from repro.campaign.store import JobStore, SidecarFollower


def make_store(tmp_path) -> JobStore:
    store = JobStore(tmp_path / "out")
    store.telemetry_dir.mkdir(parents=True, exist_ok=True)
    return store


def append(store, name: str, payload: bytes) -> None:
    with (store.telemetry_dir / name).open("ab") as sidecar:
        sidecar.write(payload)


def line(job_id: str, iteration: int) -> bytes:
    return (
        json.dumps({"job_id": job_id, "iteration": iteration}).encode() + b"\n"
    )


class TestFollower:
    def test_each_poll_returns_only_new_lines(self, tmp_path):
        store = make_store(tmp_path)
        follower = SidecarFollower(store)
        append(store, "job-a.jsonl", line("job-a", 0))
        first = follower.poll()
        assert [entry["iteration"] for entry in first] == [0]
        assert follower.poll() == []
        append(store, "job-a.jsonl", line("job-a", 1) + line("job-a", 2))
        assert [entry["iteration"] for entry in follower.poll()] == [1, 2]
        assert follower.latest["job-a"]["iteration"] == 2

    def test_torn_line_buffers_until_completed(self, tmp_path):
        store = make_store(tmp_path)
        follower = SidecarFollower(store)
        whole = line("job-a", 0)
        append(store, "job-a.jsonl", whole[:10])
        assert follower.poll() == []
        append(store, "job-a.jsonl", whole[10:])
        assert [entry["iteration"] for entry in follower.poll()] == [0]

    def test_truncated_file_replays_from_start(self, tmp_path):
        store = make_store(tmp_path)
        follower = SidecarFollower(store)
        append(store, "job-a.jsonl", line("job-a", 0) + line("job-a", 1))
        assert len(follower.poll()) == 2
        # A re-running job truncates its own sidecar and starts over.
        (store.telemetry_dir / "job-a.jsonl").write_bytes(line("job-a", 0))
        assert [entry["iteration"] for entry in follower.poll()] == [0]

    def test_corrupt_lines_skipped(self, tmp_path):
        store = make_store(tmp_path)
        follower = SidecarFollower(store)
        append(store, "job-a.jsonl", b"{not json\n" + line("job-a", 3))
        assert [entry["iteration"] for entry in follower.poll()] == [3]

    def test_anomaly_and_clientspan_sidecars_ignored(self, tmp_path):
        store = make_store(tmp_path)
        follower = SidecarFollower(store)
        append(store, "job-a.anomalies.jsonl", line("job-a", 0))
        append(store, "fleet.clientspans.jsonl", b'{"client": 0, "tick": 1}\n')
        assert follower.poll() == []

    def test_streams_interleave_in_sorted_order(self, tmp_path):
        store = make_store(tmp_path)
        follower = SidecarFollower(store)
        append(store, "job-b.jsonl", line("job-b", 0))
        append(store, "job-a.jsonl", line("job-a", 0))
        assert [entry["job_id"] for entry in follower.poll()] == [
            "job-a",
            "job-b",
        ]
