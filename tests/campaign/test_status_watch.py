"""``repro status --watch``: incremental live polling of a campaign."""

import json

import pytest

from repro.campaign import CampaignExecutor, CampaignSpec, JobStore
from repro.campaign.cli import _load_spec, _watch_status, main


@pytest.fixture()
def finished_campaign(tmp_path):
    spec = CampaignSpec(
        name="watched",
        servers=["vanilla"],
        workloads=["control"],
        environments=["das5-2core"],
        iterations=2,
        duration_s=1.0,
        seed=9,
        output_dir=str(tmp_path / "out"),
    )
    CampaignExecutor(spec).run()
    return tmp_path / "out"


class TestStatusWatch:
    def test_watch_renders_done_jobs(self, finished_campaign, capsys):
        spec = _load_spec(str(finished_campaign))
        store = JobStore(spec.output_dir)
        rc = _watch_status(spec, store, interval_s=0.01, max_refreshes=2)
        assert rc == 0
        out = capsys.readouterr().out
        frames = out.split("\x1b[2J\x1b[H")
        assert len([frame for frame in frames if frame.strip()]) == 2
        assert "Campaign 'watched'" in out
        assert "done" in out
        assert "1/1 jobs complete" in out

    def test_watch_state_transitions_from_sidecar_tail(
        self, tmp_path, capsys
    ):
        spec = CampaignSpec(
            name="inflight",
            servers=["vanilla"],
            workloads=["control"],
            environments=["das5-2core"],
            iterations=2,
            duration_s=1.0,
            seed=9,
            output_dir=str(tmp_path / "out"),
        )
        from repro.campaign import JobPlanner

        plan = JobPlanner(spec).plan()
        store = JobStore(spec.output_dir)
        store.write_manifest(spec, plan)
        # No sidecar yet: pending.
        _watch_status(spec, store, interval_s=0.01, max_refreshes=1)
        assert "pending" in capsys.readouterr().out
        # A streamed sidecar line flips the job to running and carries
        # its iteration count into the table.
        store.telemetry_dir.mkdir(parents=True, exist_ok=True)
        store.telemetry_path(plan[0].job_id).write_text(
            json.dumps(
                {
                    "job_id": plan[0].job_id,
                    "iteration": 0,
                    "telemetry": {
                        "tick": {
                            "ticks": 10,
                            "tick_ms": {"p50": 5.0, "p99": 9.0, "cov": 0.2},
                        },
                        "response_ms": {},
                    },
                }
            )
            + "\n"
        )
        _watch_status(spec, store, interval_s=0.01, max_refreshes=1)
        out = capsys.readouterr().out
        assert "running" in out
        assert "0/1 jobs complete" in out

    def test_cli_flag_parses(self, finished_campaign, capsys):
        # --watch with no TTY still renders; bound via KeyboardInterrupt
        # is interactive-only, so just exercise the argparse wiring by
        # checking the plain one-shot path still works alongside it.
        assert main(["status", str(finished_campaign)]) == 0
        assert "jobs complete" in capsys.readouterr().out
