"""Satellite coverage: behavior wiring and per-iteration throttle deltas."""

import numpy as np
import pytest

from repro.cloud import get_environment
from repro.core import MeterstickConfig, run_iteration, run_server_chain
from repro.emulation import BotSwarm
from repro.emulation.behavior import (
    BEHAVIORS,
    BoundedRandomWalk,
    Idle,
    make_behavior,
)
from repro.mlg.server import MLGServer
from repro.mlg.world import World
from repro.workloads import get_workload


class TestBehaviorRegistry:
    def test_registry_names(self):
        assert set(BEHAVIORS) == {"bounded-random", "idle", "spiral-march"}

    def test_make_behavior(self):
        assert isinstance(make_behavior("idle"), Idle)
        walk = make_behavior("Bounded-Random", (0.0, 0.0, 8.0, 8.0))
        assert isinstance(walk, BoundedRandomWalk)
        assert (walk.x1, walk.z1) == (8.0, 8.0)
        with pytest.raises(ValueError, match="moonwalk"):
            make_behavior("moonwalk")


class TestBehaviorWiring:
    def test_config_validates_behavior(self):
        assert MeterstickConfig(behavior="idle").behavior == "idle"
        with pytest.raises(ValueError, match="behavior"):
            MeterstickConfig(behavior="moonwalk")

    def test_swarm_uses_selected_behavior(self):
        env = get_environment("das5-2core")
        for name, expected in (("idle", Idle), ("bounded-random",
                                                BoundedRandomWalk)):
            machine = env.create_machine(seed=1)
            server = MLGServer("vanilla", machine, world=World(), seed=1)
            swarm = BotSwarm(server, env.network,
                             np.random.default_rng(1))
            swarm.add_player_workload(n_bots=3, stagger_s=0.0,
                                      behavior=name)
            assert len(swarm.bots) == 3
            assert all(
                isinstance(bot.behavior, expected) for bot in swarm.bots
            )

    def test_players_workload_threads_behavior(self):
        workload = get_workload("players", n_bots=4, behavior="idle")
        assert workload.behavior == "idle"

    def test_idle_players_generate_no_player_movement(self):
        """Idle bots probe (chat) but their avatars never move, so the
        server broadcasts far fewer entity_move packets (only mobs)."""
        idle = run_iteration(
            "players", "vanilla", "das5-2core",
            duration_s=1.5, seed=5, n_bots=4, behavior="idle",
        )
        walking = run_iteration(
            "players", "vanilla", "das5-2core",
            duration_s=1.5, seed=5, n_bots=4, behavior="bounded-random",
        )
        assert (
            idle.packet_counts.get("entity_move", 0)
            < walking.packet_counts.get("entity_move", 0) / 2
        )
        # Both still measure response times via chat probes.
        assert idle.response_times_ms


class TestThrottleAccounting:
    def test_per_iteration_deltas_sum_to_machine_total(self):
        """The Lag workload on a burstable t3 throttles once credits run
        out; the per-iteration deltas must partition the cumulative count."""
        config = MeterstickConfig(
            servers=["vanilla"],
            world="lag",
            environment="aws-t3.large",
            duration_s=4.0,
            iterations=3,
            warm_machines=True,
            seed=2,
        )
        chain = run_server_chain(config, "vanilla")
        assert len(chain) == 3
        assert any(it.throttled_ticks > 0 for it in chain)
        assert all(it.throttled_ticks >= 0 for it in chain)

        # Replay the same chain by hand on a shared machine and check the
        # helper's deltas partition the machine's cumulative counter.
        from repro.simtime import SimClock, s_to_us

        env = get_environment(config.environment)
        machine = env.create_machine(
            seed=config.iteration_seed("vanilla", -1)
        )
        machine.drain_credits()
        clock = SimClock()
        cumulative = []
        for iteration in range(config.iterations):
            run_iteration(
                config.world,
                "vanilla",
                config.environment,
                duration_s=config.duration_s,
                seed=config.iteration_seed("vanilla", iteration),
                machine=machine,
                clock=clock,
                iteration=iteration,
            )
            cumulative.append(machine.throttled_executions)
            clock.advance(s_to_us(config.inter_iteration_gap_s))
        deltas = [
            count - (cumulative[i - 1] if i else 0)
            for i, count in enumerate(cumulative)
        ]
        assert [it.throttled_ticks for it in chain] == deltas
        assert sum(it.throttled_ticks for it in chain) == cumulative[-1]
