"""Perf-baseline gate: compare semantics, machine calibration, and the
CLI exit codes CI keys off."""

import json

import pytest

from repro.tracing.perf_baseline import (
    DEFAULT_TOLERANCE,
    compare,
    main,
    measure_calibration,
    write_baseline,
)

BASELINE = {
    "calibration_s": 0.100,
    "tolerance": 0.20,
    "figures": {
        "benchmarks/bench_fig11.py": 10.0,
        "benchmarks/bench_fig09.py": 4.0,
    },
}


class TestCompare:
    def test_within_budget_is_ok(self):
        rows, regressions = compare(
            {"benchmarks/bench_fig11.py": 11.9}, BASELINE, 0.100
        )
        assert regressions == []
        by_name = {row["figure"]: row for row in rows}
        assert by_name["benchmarks/bench_fig11.py"]["status"] == "ok"
        # The other baseline figure was not in this run: skipped, never
        # failed, so partial local runs stay gateable.
        assert by_name["benchmarks/bench_fig09.py"]["status"] == "missing"

    def test_regression_past_tolerance(self):
        rows, regressions = compare(
            {"benchmarks/bench_fig11.py": 12.1}, BASELINE, 0.100
        )
        assert len(regressions) == 1
        assert regressions[0]["figure"] == "benchmarks/bench_fig11.py"
        assert regressions[0]["status"] == "REGRESSION"

    def test_machine_factor_scales_the_budget(self):
        # Twice-as-slow machine: budget doubles, 19s still fits 10s base.
        _, regressions = compare(
            {"benchmarks/bench_fig11.py": 19.0}, BASELINE, 0.200
        )
        assert regressions == []
        # Twice-as-fast machine: the same 19s is a blatant regression.
        _, regressions = compare(
            {"benchmarks/bench_fig11.py": 19.0}, BASELINE, 0.050
        )
        assert len(regressions) == 1

    def test_new_figures_never_fail(self):
        rows, regressions = compare(
            {"benchmarks/bench_new.py": 99.0}, BASELINE, 0.100
        )
        assert regressions == []
        assert any(row["status"] == "new" for row in rows)

    def test_tolerance_override_wins(self):
        _, regressions = compare(
            {"benchmarks/bench_fig11.py": 11.9},
            BASELINE,
            0.100,
            tolerance=0.0,
        )
        assert len(regressions) == 1


class TestBaselineFile:
    def test_write_baseline_shape(self, tmp_path):
        path = write_baseline(
            tmp_path / "BENCH_fig11.json",
            {"benchmarks/bench_b.py": 2.3456, "benchmarks/bench_a.py": 1.0},
            calibration_s=0.123,
        )
        payload = json.loads(path.read_text())
        assert payload["calibration_s"] == 0.123
        assert payload["tolerance"] == DEFAULT_TOLERANCE
        assert payload["figures"]["benchmarks/bench_b.py"] == 2.346
        assert payload["provenance"]["fingerprint"]
        assert payload["provenance"]["captured_at"]

    def test_calibration_is_positive_and_repeatable(self):
        first = measure_calibration()
        second = measure_calibration()
        assert first > 0
        # Same machine, seconds apart: within 4x of each other even on a
        # noisy box (the factor only corrects cross-machine scale).
        assert 0.25 < first / second < 4.0


class TestMain:
    def _write(self, path, payload):
        path.write_text(json.dumps(payload))
        return str(path)

    def test_gate_ok_and_regression_exit_codes(self, tmp_path, capsys):
        cal = measure_calibration()
        baseline = self._write(
            tmp_path / "base.json",
            {
                "calibration_s": cal,
                "tolerance": 0.20,
                "figures": {"benchmarks/bench_x.py": 10.0},
            },
        )
        ok = self._write(
            tmp_path / "ok.json", {"benchmarks/bench_x.py": 10.0}
        )
        assert main(["--runtimes", ok, "--baseline", baseline]) == 0
        assert "perf trajectory OK" in capsys.readouterr().out
        bad = self._write(
            tmp_path / "bad.json", {"benchmarks/bench_x.py": 100.0}
        )
        assert main(["--runtimes", bad, "--baseline", baseline]) == 1
        assert "PERF REGRESSION" in capsys.readouterr().err

    def test_missing_inputs_exit_2(self, tmp_path):
        assert (
            main(["--runtimes", str(tmp_path / "nope.json")]) == 2
        )
        runtimes = self._write(tmp_path / "run.json", {"f": 1.0})
        assert (
            main(
                [
                    "--runtimes",
                    runtimes,
                    "--baseline",
                    str(tmp_path / "nobase.json"),
                ]
            )
            == 2
        )

    def test_every_run_appends_to_the_history(self, tmp_path, capsys):
        cal = measure_calibration()
        baseline = self._write(
            tmp_path / "base.json",
            {
                "calibration_s": cal,
                "tolerance": 0.20,
                "figures": {"benchmarks/bench_x.py": 10.0},
            },
        )
        history = tmp_path / "history.jsonl"
        ok = self._write(
            tmp_path / "ok.json", {"benchmarks/bench_x.py": 10.0}
        )
        assert main(
            ["--runtimes", ok, "--baseline", baseline,
             "--history", str(history)]
        ) == 0
        bad = self._write(
            tmp_path / "bad.json", {"benchmarks/bench_x.py": 100.0}
        )
        assert main(
            ["--runtimes", bad, "--baseline", baseline,
             "--history", str(history)]
        ) == 1
        assert main(
            ["--runtimes", ok, "--baseline", str(tmp_path / "new.json"),
             "--update", "--history", str(history)]
        ) == 0
        entries = [
            json.loads(line)
            for line in history.read_text().splitlines()
        ]
        assert [e["status"] for e in entries] == [
            "ok",
            "regression",
            "updated",
        ]
        gate = entries[0]["figures"]["benchmarks/bench_x.py"]
        assert gate["status"] == "ok"
        assert 0.0 < gate["ratio"] <= 1.0
        assert gate["delta_s"] == 0.0
        failed = entries[1]["figures"]["benchmarks/bench_x.py"]
        assert failed["status"] == "REGRESSION"
        assert failed["ratio"] > 1.0
        assert entries[0]["machine_factor"] > 0
        # Update entries record seconds but no budget ratio.
        assert (
            entries[2]["figures"]["benchmarks/bench_x.py"]["ratio"] is None
        )

    def test_default_history_lands_next_to_runtimes(self, tmp_path):
        cal = measure_calibration()
        baseline = self._write(
            tmp_path / "base.json",
            {"calibration_s": cal, "figures": {"f": 1.0}},
        )
        out = tmp_path / "out"
        out.mkdir()
        runtimes = self._write(out / "bench_runtimes.json", {"f": 1.0})
        assert main(["--runtimes", runtimes, "--baseline", baseline]) == 0
        assert (out / "perf_history.jsonl").exists()
        # --history '' opts out.
        assert main(
            ["--runtimes", runtimes, "--baseline", baseline,
             "--history", ""]
        ) == 0
        assert len(
            (out / "perf_history.jsonl").read_text().splitlines()
        ) == 1

    def test_update_writes_the_baseline(self, tmp_path, monkeypatch):
        runtimes = self._write(
            tmp_path / "run.json", {"benchmarks/bench_x.py": 3.0}
        )
        baseline = tmp_path / "BENCH_fig11.json"
        assert (
            main(
                [
                    "--runtimes",
                    runtimes,
                    "--baseline",
                    str(baseline),
                    "--update",
                ]
            )
            == 0
        )
        payload = json.loads(baseline.read_text())
        assert payload["figures"] == {"benchmarks/bench_x.py": 3.0}
        # Env-var form (what a CI "update" job would set).
        monkeypatch.setenv("METERSTICK_UPDATE_BASELINE", "1")
        assert (
            main(["--runtimes", runtimes, "--baseline", str(baseline)]) == 0
        )
        assert baseline.exists()

    def test_gate_without_update_env(self, tmp_path, monkeypatch):
        monkeypatch.delenv("METERSTICK_UPDATE_BASELINE", raising=False)
        cal = measure_calibration()
        baseline = self._write(
            tmp_path / "base.json",
            {"calibration_s": cal, "figures": {"benchmarks/bench_x.py": 5.0}},
        )
        runtimes = self._write(
            tmp_path / "run.json", {"benchmarks/bench_x.py": 5.0}
        )
        assert main(["--runtimes", runtimes, "--baseline", baseline]) == 0
