"""Chrome trace-event export: schema validity, span tiling, and the
``repro trace export`` CLI path."""

import json

import pytest

from repro.campaign import CampaignExecutor, CampaignSpec, JobStore
from repro.campaign.cli import main as cli_main
from repro.tracing.chrome import JOB_TID, render_campaign_trace, tick_events

#: Phases every X event must carry (trace-event format requirements).
_X_REQUIRED = ("name", "ph", "ts", "dur", "pid", "tid")


def _tiled(dump):
    return tick_events(dump, pid=1, tid_of=lambda name: 7)


class TestTickTiling:
    DUMP = {
        "tick": 4,
        "start_us": 1_000,
        "duration_us": 60_000,
        "work_us": 30_000.0,
        "spans": [
            {"n": "players", "d": 1, "us": 10_000.0},
            {"n": "lifecycle", "d": 1, "us": 20_000.0},
            {"n": "autosave", "d": 2, "us": 15_000.0},
            {"n": "broadcast", "d": 1, "us": 0.0},
        ],
    }

    def test_top_level_spans_tile_the_wall_duration(self):
        events = _tiled(self.DUMP)
        top = [e for e, s in zip(events, self.DUMP["spans"]) if s["d"] == 1]
        assert sum(e["dur"] for e in top) == pytest.approx(60_000)
        # Contiguous left-to-right tiling from the tick start.
        cursor = 1_000.0
        for event in top:
            assert event["ts"] == pytest.approx(cursor)
            cursor += event["dur"]

    def test_children_nest_inside_their_parent(self):
        events = _tiled(self.DUMP)
        parent = events[1]
        child = events[2]
        assert child["ts"] >= parent["ts"]
        assert child["ts"] + child["dur"] <= parent["ts"] + parent["dur"] + 1e-9
        # Proportional width: the child is 15k of the parent's 20k µs.
        assert child["dur"] == pytest.approx(parent["dur"] * 0.75)

    def test_zero_work_tick_renders_zero_width(self):
        dump = dict(self.DUMP, spans=[{"n": "begin", "d": 1, "us": 0.0}])
        (event,) = _tiled(dump)
        assert event["dur"] == 0.0

    def test_span_args_ride_into_event_args(self):
        dump = dict(
            self.DUMP,
            spans=[
                {
                    "n": "pricing",
                    "d": 1,
                    "us": 5.0,
                    "args": {"work_us": 5.0},
                }
            ],
        )
        (event,) = _tiled(dump)
        assert event["args"]["work_us"] == 5.0
        assert event["args"]["tick"] == 4


@pytest.fixture(scope="module")
def traced_store(tmp_path_factory):
    root = tmp_path_factory.mktemp("traced-campaign")
    spec = CampaignSpec(
        name="chrome",
        servers=["vanilla", "papermc"],
        workloads=["players"],  # heavy enough to trip the recorder
        iterations=1,
        duration_s=2.0,
        seed=13,
        trace=True,
        slow_tick_factor=0.5,  # force flight-recorder instants
        output_dir=str(root / "out"),
    )
    store = JobStore(spec.output_dir)
    CampaignExecutor(spec, store=store).run()
    return spec, store


class TestRenderCampaign:
    def test_document_is_valid_trace_json(self, traced_store):
        _, store = traced_store
        doc = render_campaign_trace(store, provenance={"fingerprint": "f" * 64})
        # Round-trips through JSON (Perfetto reads the serialized form).
        doc = json.loads(json.dumps(doc))
        assert doc["displayTimeUnit"] == "ms"
        assert doc["otherData"]["jobs"] == 2
        assert doc["otherData"]["traced_jobs"] == 2
        assert doc["otherData"]["provenance"]["fingerprint"] == "f" * 64
        for event in doc["traceEvents"]:
            assert event["ph"] in ("X", "M", "b", "e", "i")
            if event["ph"] == "X":
                for key in _X_REQUIRED:
                    assert key in event

    def test_tracks_jobs_and_anomalies(self, traced_store):
        _, store = traced_store
        events = render_campaign_trace(store)["traceEvents"]
        by_ph = {}
        for event in events:
            by_ph.setdefault(event["ph"], []).append(event)
        # One async begin/end pair per traced job.
        assert len(by_ph["b"]) == 2
        assert len(by_ph["e"]) == 2
        assert {e["id"] for e in by_ph["b"]} == {
            job.job_id for job in store.manifest_jobs()
        }
        # Process/thread naming metadata: every pid names its process,
        # JOB_TID is the reserved job track, spans get distinct tids.
        process_names = [
            e for e in by_ph["M"] if e["name"] == "process_name"
        ]
        assert len(process_names) == 2
        assert all(
            e["tid"] != JOB_TID
            for e in by_ph["M"]
            if e["name"] == "thread_name" and e["args"]["name"] != "job"
        )
        # slow_tick_factor=0.5 guarantees anomaly instants.
        assert by_ph["i"]
        assert all(e["s"] == "p" for e in by_ph["i"])

    def test_span_events_reconcile_with_tick_walls(self, traced_store):
        _, store = traced_store
        job = store.manifest_jobs()[0]
        iteration = store.load_job(job.job_id)[0]
        ticks = iteration.telemetry["trace"]["ticks"]
        events = render_campaign_trace(store)["traceEvents"]
        for dump in ticks[:20]:
            top = [
                e
                for e in events
                if e["ph"] == "X"
                and e["cat"] == "tick"
                and e["pid"] == 1
                and e["args"]["tick"] == dump["tick"]
                and any(
                    s["d"] == 1 and s["n"] == e["name"]
                    for s in dump["spans"]
                )
            ]
            assert sum(e["dur"] for e in top) == pytest.approx(
                dump["duration_us"]
            )

    def test_untraced_campaign_renders_empty(self, tmp_path):
        spec = CampaignSpec(
            name="untraced",
            servers=["vanilla"],
            iterations=1,
            duration_s=1.0,
            output_dir=str(tmp_path / "out"),
        )
        store = JobStore(spec.output_dir)
        CampaignExecutor(spec, store=store).run()
        doc = render_campaign_trace(store)
        assert doc["otherData"]["traced_jobs"] == 0
        assert doc["traceEvents"] == []


class TestCli:
    def test_trace_export_writes_trace_and_anomalies(self, traced_store):
        spec, store = traced_store
        rc = cli_main(["trace", "export", str(store.root)])
        assert rc == 0
        out_dir = store.root / "export"
        doc = json.loads((out_dir / "trace.json").read_text())
        assert doc["otherData"]["traced_jobs"] == 2
        assert doc["otherData"]["provenance"]["fingerprint"]
        anomaly_lines = [
            json.loads(line)
            for line in (out_dir / "anomalies.jsonl")
            .read_text()
            .splitlines()
        ]
        assert anomaly_lines
        assert all("job_id" in line for line in anomaly_lines)
