"""Tracer correctness: exact reconciliation, sampling, bit-identity,
the flight recorder, and the tick-loop overhead bound.

The load-bearing invariants:

* merging a sampled tick's top-level span deltas and re-pricing them
  through :class:`WorkReport` reproduces the tick's ``breakdown_us`` —
  and, with the post-pricing ``flush`` span excluded, its ``work_us`` —
  **bit for bit** (integer op counts subtract exactly as floats);
* ``trace=False`` runs are bit-identical with traced runs of the same
  seed: the tracer observes the simulation, it never perturbs it;
* full-rate tracing (``trace_sample_every=1``) costs at most 5% of the
  tick loop's wall time.
"""

import gc
import time

import numpy as np
import pytest

from repro.cloud.providers import get_environment
from repro.emulation.swarm import BotSwarm
from repro.mlg.constants import TICK_BUDGET_US
from repro.mlg.server import MLGServer
from repro.mlg.workreport import WorkReport
from repro.simtime import SimClock
from repro.tracing.tracer import (
    NULL_TRACER,
    Tracer,
    TracedWorkReport,
    merge_span_ops,
)
from repro.workloads import get_workload


def _traced_server(seed=5, **trace_kwargs):
    """A players-workload server with its bot swarm, ready to tick."""
    env = get_environment("das5-2core")
    machine = env.create_machine(seed=seed)
    workload = get_workload(
        "players", scale=1.0, n_bots=25, behavior="bounded-random"
    )
    world = workload.create_world(seed)
    server = MLGServer(
        "vanilla",
        machine,
        world=world,
        clock=SimClock(),
        seed=seed,
        **trace_kwargs,
    )
    rng = np.random.default_rng(seed ^ 0x5EED)
    swarm = BotSwarm(server, env.network, rng)
    workload.install(server, swarm)
    server.start()
    return server, swarm


class TestReconciliation:
    def test_span_merge_reproduces_breakdown_and_work_exactly(self):
        server, swarm = _traced_server(trace=True)
        table = server.variant.cost_table
        for _ in range(150):
            record = server.loop.run_tick()
            swarm.step()
            dump = server.tracer.last_dump
            assert dump["tick"] == record.index

            merged = WorkReport()
            merged.counts = merge_span_ops(dump["spans"])
            assert merged.bucketed_cost_us(table) == record.breakdown_us

            # work_us was priced *before* the flush span's ops landed,
            # so excluding "flush" reproduces it exactly.
            pre_flush = WorkReport()
            pre_flush.counts = merge_span_ops(
                dump["spans"], exclude=("flush",)
            )
            assert pre_flush.total_cost_us(table) == record.work_us

    def test_phase_accumulator_totals_match_span_costs(self):
        server, swarm = _traced_server(trace=True)
        totals: dict[str, float] = {}
        for _ in range(60):
            server.loop.run_tick()
            swarm.step()
            for span in server.tracer.last_dump["spans"]:
                if span.depth == 1:
                    totals[span.name] = (
                        totals.get(span.name, 0.0) + span.cost_us
                    )
        snap = server.tracer.snapshot()
        assert set(snap["phases"]) == set(totals)
        for name, acc in snap["phases"].items():
            assert acc["count"] == 60
            assert acc["mean"] * acc["count"] == pytest.approx(totals[name])

    def test_traced_report_tallies_like_plain_report(self):
        plain, traced = WorkReport(), TracedWorkReport()
        for report in (plain, traced):
            report.add("op_a", 3)
            report.add("op_b", 2.0)
            report.add("op_a", 1)
            report.add("op_zero", 0)
            other = WorkReport()
            other.add("op_b", 5)
            other.add("op_c", 1)
            report.merge(other)
        assert traced.counts == plain.counts
        assert list(traced.counts) == list(plain.counts)
        # With no span open, counts IS the (only) base segment.
        assert traced.segments == [traced.counts]
        with pytest.raises(ValueError):
            traced.add("op_a", -1)

    def test_mid_span_reads_merge_open_segments(self):
        # The game loop prices the tick *inside* the pricing span, so
        # reads must see base + every open segment, not just the
        # innermost one.
        table = {"op_a": 2.0, "op_b": 10.0}
        tracer = Tracer(table, budget_us=TICK_BUDGET_US)
        report = tracer.begin_tick(0, 0)
        report.add("op_a", 3)
        with tracer.span("outer"):
            report.add("op_b", 1)
            with tracer.span("inner"):
                report.add("op_a", 4)
                assert report.get("op_a") == 7.0
                assert report.total_cost_us(table) == 24.0
                assert report.bucketed_cost_us(table) == {"Other": 24.0}
                assert sorted(report.nonzero_ops()) == ["op_a", "op_b"]
                assert report.copy().counts == {"op_a": 7.0, "op_b": 1.0}
        # All spans closed: the base segment holds the full tally.
        assert report.counts == {"op_a": 7.0, "op_b": 1.0}
        assert report.segments == [report.counts]


class TestSampling:
    def test_sample_every_n_captures_every_nth_tick(self):
        server, swarm = _traced_server(trace=True, trace_sample_every=4)
        for _ in range(40):
            server.loop.run_tick()
            swarm.step()
        tracer = server.tracer
        assert tracer.ticks_seen == 40
        assert tracer.ticks_sampled == 10
        assert [d["tick"] % 4 for d in tracer.recent_ticks()] == [0] * 10
        # Accumulators fold sampled ticks only.
        assert all(
            acc["count"] == 10
            for acc in tracer.snapshot()["phases"].values()
        )

    def test_unsampled_ticks_use_plain_reports_and_null_spans(self):
        tracer = Tracer({}, budget_us=TICK_BUDGET_US, sample_every=2)
        sampled = tracer.begin_tick(0, 0)
        assert isinstance(sampled, TracedWorkReport)
        with tracer.span("phase") as span:
            assert span is not None
        unsampled = tracer.begin_tick(1, 0)
        assert type(unsampled) is WorkReport
        with tracer.span("phase") as span:
            assert span is None

    def test_ring_buffer_bounds_retention(self):
        server, swarm = _traced_server(trace=True)
        server.tracer.retain_ticks = 8
        server.tracer._ring = [None] * 8
        for _ in range(20):
            server.loop.run_tick()
            swarm.step()
        dumps = server.tracer.recent_ticks()
        assert [d["tick"] for d in dumps] == list(range(12, 20))

    def test_null_tracer_is_inert(self):
        report = NULL_TRACER.begin_tick(0, 0)
        assert type(report) is WorkReport
        with NULL_TRACER.span("anything") as span:
            assert span is None
        assert NULL_TRACER.snapshot() == {"enabled": False}


class TestBitIdentity:
    def test_trace_off_and_on_produce_identical_ticks(self):
        base, base_swarm = _traced_server(trace=False)
        traced, traced_swarm = _traced_server(trace=True)
        assert base.tracer is NULL_TRACER
        for _ in range(120):
            base.loop.run_tick()
            base_swarm.step()
            traced.loop.run_tick()
            traced_swarm.step()
        assert base.loop.records == traced.loop.records


class TestFlightRecorder:
    def test_slow_ticks_are_dumped_with_top_ops_and_spans(self):
        # Threshold far below any real tick: everything is "slow".
        server, swarm = _traced_server(trace=True, slow_tick_factor=0.001)
        for _ in range(30):
            server.loop.run_tick()
            swarm.step()
        tracer = server.tracer
        assert tracer.slow_ticks == 30
        anomaly = tracer.anomalies[-1]
        assert anomaly["factor"] > 0.001
        assert anomaly["spans"], "sampled tick must attach its span tree"
        costs = [us for _, _, us in anomaly["top_ops"]]
        assert costs == sorted(costs, reverse=True)
        assert len(costs) <= tracer.top_ops

    def test_recorder_watches_unsampled_ticks_without_span_tree(self):
        server, swarm = _traced_server(
            trace=True, trace_sample_every=1000, slow_tick_factor=0.001
        )
        server.loop.run_tick()  # tick 0: sampled
        swarm.step()
        server.loop.run_tick()  # tick 1: unsampled, still watched
        swarm.step()
        sampled, unsampled = list(server.tracer.anomalies)
        assert sampled["spans"]
        assert unsampled["spans"] is None
        assert unsampled["top_ops"]

    def test_anomaly_deque_is_bounded(self):
        server, swarm = _traced_server(trace=True, slow_tick_factor=0.001)
        server.tracer.anomalies = type(server.tracer.anomalies)(maxlen=5)
        for _ in range(12):
            server.loop.run_tick()
            swarm.step()
        assert len(server.tracer.anomalies) == 5
        assert [a["tick"] for a in server.tracer.anomalies] == list(
            range(7, 12)
        )


class TestOverhead:
    BLOCK = 25  # ticks per timed block

    def _block_times(self, reps: int, n_blocks: int) -> tuple[list, list]:
        """Per-block wall times, ``[rep][block]``, for off and on runs.

        Bit-identity makes block *i* of an off run and block *i* of an
        on run the same simulated work (same seed, same tick indices),
        so the pair is directly comparable.  Blocks alternate off/on
        within a rep so scheduler and thermal drift tax both variants
        evenly.
        """
        off = [[0.0] * n_blocks for _ in range(reps)]
        on = [[0.0] * n_blocks for _ in range(reps)]
        gc.collect()  # GC pauses land on whichever block is unlucky
        gc.disable()
        try:
            for rep in range(reps):
                pair = [
                    (_traced_server(trace=False), off[rep]),
                    (_traced_server(trace=True), on[rep]),
                ]
                if rep % 2:
                    pair.reverse()
                for block in range(n_blocks):
                    for (server, swarm), times in pair:
                        start = time.perf_counter()
                        for _ in range(self.BLOCK):
                            server.loop.run_tick()
                            swarm.step()
                        times[block] = time.perf_counter() - start
        finally:
            gc.enable()
        return off, on

    def _overhead_pct(self, reps: int, n_blocks: int) -> float:
        # Noise only ever slows a block down, so the honest estimate of
        # each block's true cost is its minimum across reps; a single
        # spike poisons one block of one rep, not a whole run.
        off, on = self._block_times(reps, n_blocks)
        best_off = sum(
            min(rep[block] for rep in off) for block in range(n_blocks)
        )
        best_on = sum(
            min(rep[block] for rep in on) for block in range(n_blocks)
        )
        return 100.0 * (best_on - best_off) / best_off

    def test_full_rate_tracing_overhead_within_5pct(self):
        self._block_times(1, 2)  # warm code paths before timing
        # Escalating retries before failing: on a loaded box (CI, or
        # mid-suite after hundreds of tests) measurement noise can
        # exceed the real ~3% overhead; more reps tighten the minima.
        for reps, n_blocks in ((4, 6), (6, 8), (8, 10)):
            overhead = self._overhead_pct(reps, n_blocks)
            if overhead <= 5.0:
                break
        assert overhead <= 5.0, f"tracing overhead {overhead:+.1f}% > 5%"
