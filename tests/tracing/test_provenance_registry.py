"""Runtime twin of lint rule MSL004: the provenance field registries
partition the real config/spec surface — every field has exactly one
fate, nothing stale, and ``measurement_config`` strips exactly the
excluded set."""

import dataclasses

from repro.campaign.spec import CampaignSpec
from repro.core.config import MeterstickConfig
from repro.tracing.provenance import (
    _MEASUREMENT_FIELDS,
    _NON_MEASUREMENT_FIELDS,
    measurement_config,
)


def config_surface() -> set[str]:
    return {
        f.name for f in dataclasses.fields(MeterstickConfig)
    } | {f.name for f in dataclasses.fields(CampaignSpec)}


class TestProvenanceRegistry:
    def test_registries_partition_the_config_surface(self):
        fingerprinted = set(_MEASUREMENT_FIELDS)
        excluded = set(_NON_MEASUREMENT_FIELDS)
        assert fingerprinted & excluded == set()
        surface = config_surface()
        undecided = surface - fingerprinted - excluded
        assert undecided == set(), (
            f"config fields without a provenance decision: "
            f"{sorted(undecided)}"
        )
        stale = (fingerprinted | excluded) - surface
        assert stale == set(), (
            f"stale provenance registry entries: {sorted(stale)}"
        )

    def test_no_duplicate_registry_entries(self):
        assert len(set(_MEASUREMENT_FIELDS)) == len(_MEASUREMENT_FIELDS)
        assert len(set(_NON_MEASUREMENT_FIELDS)) == len(
            _NON_MEASUREMENT_FIELDS
        )

    def test_measurement_config_strips_exactly_the_exclusions(self):
        resolved = {name: name for name in config_surface()}
        stripped = measurement_config(resolved)
        assert set(stripped) == set(resolved) - set(_NON_MEASUREMENT_FIELDS)
