"""Provenance fingerprinting: determinism, digest scope, and the
campaign/iteration wiring."""

import json

from repro.campaign import CampaignExecutor, CampaignSpec, JobStore
from repro.core.experiment import run_server_chain
from repro.core.config import MeterstickConfig
from repro.tracing.provenance import (
    environment_fingerprint,
    measurement_config,
    provenance_fingerprint,
)


class TestFingerprint:
    def test_same_inputs_same_fingerprint(self):
        config = {"seed": 7, "duration_s": 3.0}
        a = provenance_fingerprint(config)
        b = provenance_fingerprint(dict(config))
        assert a == b
        assert a["fingerprint"] == b["fingerprint"]

    def test_config_changes_change_the_digest(self):
        a = provenance_fingerprint({"seed": 7})
        b = provenance_fingerprint({"seed": 8})
        assert a["fingerprint"] != b["fingerprint"]

    def test_extra_context_enters_the_digest(self):
        a = provenance_fingerprint({"seed": 7}, extra={"server": "vanilla"})
        b = provenance_fingerprint({"seed": 7}, extra={"server": "papermc"})
        assert a["fingerprint"] != b["fingerprint"]
        assert a["server"] == "vanilla"

    def test_timestamp_never_enters_the_digest(self):
        bare = provenance_fingerprint({"seed": 7})
        stamped = provenance_fingerprint({"seed": 7}, include_timestamp=True)
        assert "captured_at" not in bare
        assert stamped["captured_at"]
        assert stamped["fingerprint"] == bare["fingerprint"]

    def test_environment_facts_present(self):
        env = environment_fingerprint()
        for key in (
            "git_sha",
            "git_dirty",
            "python",
            "numpy",
            "platform",
            "machine",
            "cpu_count",
        ):
            assert key in env
        assert env["cpu_count"] >= 1

    def test_measurement_config_strips_location_and_worker_fields(self):
        config = MeterstickConfig(
            duration_s=3.0, output_dir="somewhere/else", resume=True
        ).to_dict()
        stripped = measurement_config(config)
        for field in (
            "output_dir",
            "world_dir",
            "world_cache_dir",
            "resume",
        ):
            assert field not in stripped
        assert stripped["duration_s"] == 3.0

    def test_fingerprint_ignores_storage_location(self):
        base = MeterstickConfig(duration_s=3.0).to_dict()
        moved = MeterstickConfig(
            duration_s=3.0, output_dir="elsewhere", resume=True
        ).to_dict()
        assert (
            provenance_fingerprint(measurement_config(base))["fingerprint"]
            == provenance_fingerprint(measurement_config(moved))[
                "fingerprint"
            ]
        )


class TestWiring:
    def test_iterations_carry_deterministic_provenance(self):
        config = MeterstickConfig(
            servers=["vanilla"], duration_s=1.5, seed=9
        )
        first = run_server_chain(config, "vanilla")
        second = run_server_chain(config, "vanilla")
        prov = first[0].provenance
        assert prov["server"] == "vanilla"
        assert "captured_at" not in prov
        # The determinism contract CI relies on: same seed, same config,
        # same checkout -> identical fingerprint (and identical bytes).
        assert prov["fingerprint"] == second[0].provenance["fingerprint"]
        assert [it.to_dict() for it in first] == [
            it.to_dict() for it in second
        ]

    def test_manifest_provenance_is_timestamped_and_surfaced(self, tmp_path):
        spec = CampaignSpec(
            name="prov",
            servers=["vanilla"],
            iterations=1,
            duration_s=1.0,
            seed=3,
            output_dir=str(tmp_path / "out"),
        )
        store = JobStore(spec.output_dir)
        CampaignExecutor(spec, store=store).run()
        manifest = store.read_manifest()
        prov = manifest["provenance"]
        assert prov["captured_at"]
        assert prov["fingerprint"]
        # Sidecar lines quote the iteration fingerprint for cheap
        # cross-run comparison before any shard is opened.
        lines = store.read_job_telemetry(store.manifest_jobs()[0].job_id)
        assert all(line["fingerprint"] for line in lines)

    def test_shards_stay_byte_identical_across_reruns(self, tmp_path):
        shards = []
        for run in ("a", "b"):
            spec = CampaignSpec(
                name="prov",
                servers=["vanilla"],
                iterations=1,
                duration_s=1.0,
                seed=3,
                output_dir=str(tmp_path / run),
            )
            store = JobStore(spec.output_dir)
            CampaignExecutor(spec, store=store).run()
            job_id = store.manifest_jobs()[0].job_id
            raw = store.shard_path(job_id).read_bytes()
            # Output dirs differ between the two runs, so byte-identity
            # holds precisely because provenance strips location fields.
            assert json.loads(raw)["iterations"][0]["provenance"][
                "fingerprint"
            ]
            shards.append(raw)
        assert shards[0] == shards[1]
