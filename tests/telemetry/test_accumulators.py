"""Accuracy and merge-property tests for the streaming accumulators.

The quantile sketch and P² estimator are checked against
``numpy.percentile`` on uniform, lognormal, and bimodal inputs with
tolerance bands scaled to each distribution's p1–p99 range; Welford
merging is property-tested to be order-insensitive and to agree with
single-stream accumulation.
"""

import math

import numpy as np
import pytest

from repro.telemetry import (
    MetricAccumulator,
    P2Quantile,
    QuantileSketch,
    RingBuffer,
    WelfordAccumulator,
)

N = 20_000


def _distributions(seed: int = 7) -> dict[str, np.ndarray]:
    rng = np.random.default_rng(seed)
    return {
        "uniform": rng.uniform(0.0, 100.0, N),
        "lognormal": rng.lognormal(3.0, 0.8, N),
        "bimodal": np.concatenate(
            [rng.normal(10.0, 1.0, N // 2), rng.normal(60.0, 5.0, N // 2)]
        ),
    }


class TestQuantileSketchAccuracy:
    @pytest.mark.parametrize("dist", ["uniform", "lognormal", "bimodal"])
    @pytest.mark.parametrize("q", [25, 50, 75, 95, 99])
    def test_quantiles_within_tolerance(self, dist, q):
        data = _distributions()[dist]
        sketch = QuantileSketch()
        for value in data:
            sketch.update(value)
        true = float(np.percentile(data, q))
        est = sketch.quantile(q / 100.0)
        spread = float(np.percentile(data, 99) - np.percentile(data, 1))
        # The bimodal median sits in the empty gap between modes, where
        # every interpolating estimator (numpy included) is arbitrary —
        # allow the gap there; elsewhere demand 2% of the p1-p99 range.
        tol = 0.5 * spread if (dist == "bimodal" and q == 50) else 0.02 * spread
        assert abs(est - true) <= tol

    def test_extremes_are_exact(self):
        data = _distributions()["lognormal"]
        sketch = QuantileSketch()
        for value in data:
            sketch.update(value)
        assert sketch.quantile(0.0) == data.min()
        assert sketch.quantile(1.0) == data.max()

    def test_bounded_memory(self):
        sketch = QuantileSketch(max_bins=64)
        for value in _distributions()["lognormal"]:
            sketch.update(value)
        assert len(sketch._bins) <= 64
        assert sketch.count == N

    def test_merge_matches_single_stream(self):
        data = _distributions()["lognormal"]
        merged = QuantileSketch()
        for chunk in np.array_split(data, 7):
            part = QuantileSketch()
            for value in chunk:
                part.update(value)
            merged.merge(part)
        single = QuantileSketch()
        for value in data:
            single.update(value)
        spread = float(np.percentile(data, 99) - np.percentile(data, 1))
        for q in (0.25, 0.5, 0.75, 0.95, 0.99):
            assert abs(merged.quantile(q) - single.quantile(q)) <= 0.03 * spread
        assert merged.count == single.count == N

    def test_serialization_round_trip(self):
        sketch = QuantileSketch()
        for value in _distributions()["uniform"][:5000]:
            sketch.update(value)
        clone = QuantileSketch.from_dict(sketch.to_dict())
        for q in (0.25, 0.5, 0.95):
            assert clone.quantile(q) == sketch.quantile(q)
        assert clone.count == sketch.count


class TestP2Quantile:
    @pytest.mark.parametrize("dist", ["uniform", "lognormal", "bimodal"])
    @pytest.mark.parametrize("q", [0.5, 0.95])
    def test_accuracy(self, dist, q):
        data = _distributions()[dist]
        p2 = P2Quantile(q)
        for value in data:
            p2.update(value)
        true = float(np.percentile(data, q * 100))
        spread = float(np.percentile(data, 99) - np.percentile(data, 1))
        tol = 0.5 * spread if (dist == "bimodal" and q == 0.5) else 0.03 * spread
        assert abs(p2.value() - true) <= tol

    def test_small_samples_are_exact(self):
        p2 = P2Quantile(0.5)
        for value in (5.0, 1.0, 3.0):
            p2.update(value)
        assert p2.value() == 3.0

    def test_invalid_quantile_rejected(self):
        with pytest.raises(ValueError):
            P2Quantile(0.0)
        with pytest.raises(ValueError):
            P2Quantile(1.5)


class TestWelfordMergeProperties:
    """Merging accumulators is order-insensitive and matches one stream."""

    def _fill(self, values) -> WelfordAccumulator:
        acc = WelfordAccumulator()
        for value in values:
            acc.update(value)
        return acc

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_merge_matches_single_stream(self, seed):
        rng = np.random.default_rng(seed)
        data = rng.lognormal(2.0, 1.0, 5000)
        n_parts = int(rng.integers(2, 9))
        cuts = sorted(rng.integers(1, len(data) - 1, n_parts - 1))
        merged = WelfordAccumulator()
        for chunk in np.split(data, cuts):
            merged.merge(self._fill(chunk))
        single = self._fill(data)
        assert merged.count == single.count
        assert merged.mean == pytest.approx(single.mean, rel=1e-12)
        assert merged.std == pytest.approx(single.std, rel=1e-9)

    @pytest.mark.parametrize("seed", [10, 11, 12])
    def test_merge_is_order_insensitive(self, seed):
        rng = np.random.default_rng(seed)
        data = rng.normal(50.0, 10.0, 3000)
        parts = [self._fill(chunk) for chunk in np.array_split(data, 5)]
        forward = WelfordAccumulator()
        for part in parts:
            forward.merge(part)
        backward = WelfordAccumulator()
        for part in reversed(parts):
            backward.merge(part)
        assert forward.count == backward.count
        assert forward.mean == pytest.approx(backward.mean, rel=1e-12)
        assert forward.m2 == pytest.approx(backward.m2, rel=1e-9)

    def test_merge_empty_is_identity(self):
        acc = self._fill([1.0, 2.0, 3.0])
        before = (acc.count, acc.mean, acc.m2)
        acc.merge(WelfordAccumulator())
        assert (acc.count, acc.mean, acc.m2) == before
        empty = WelfordAccumulator()
        empty.merge(acc)
        assert empty.mean == acc.mean

    def test_matches_numpy_moments(self):
        data = _distributions()["lognormal"]
        acc = self._fill(data)
        assert acc.mean == pytest.approx(float(data.mean()), rel=1e-12)
        assert acc.std == pytest.approx(float(data.std(ddof=0)), rel=1e-9)
        assert acc.cov == pytest.approx(
            float(data.std(ddof=0) / data.mean()), rel=1e-9
        )


class TestRingBuffer:
    def test_keeps_most_recent_in_order(self):
        buf = RingBuffer(4)
        for i in range(10):
            buf.append(float(i))
        assert buf.values() == [6.0, 7.0, 8.0, 9.0]
        assert len(buf) == 4

    def test_partial_fill(self):
        buf = RingBuffer(8)
        for i in range(3):
            buf.append(float(i))
        assert buf.values() == [0.0, 1.0, 2.0]


class TestMetricAccumulator:
    def test_mean_bit_identical_to_naive_sum(self):
        data = list(_distributions()["lognormal"][:4000])
        acc = MetricAccumulator("x")
        for value in data:
            acc.update(value)
        assert acc.mean == sum(data) / len(data)

    def test_threshold_fractions(self):
        acc = MetricAccumulator("tick", thresholds={"budget": 50.0})
        for value in (10.0, 60.0, 50.0, 80.0):
            acc.update(value)
        snap = acc.snapshot()
        assert snap["frac_over_budget"] == pytest.approx(0.5)

    def test_merge_combines_everything(self):
        rng = np.random.default_rng(3)
        data = rng.uniform(0, 100, 6000)
        a = MetricAccumulator("x", thresholds={"hi": 90.0})
        b = MetricAccumulator("x", thresholds={"hi": 90.0})
        for value in data[:2500]:
            a.update(value)
        for value in data[2500:]:
            b.update(value)
        a.merge(b)
        assert a.count == len(data)
        assert a.mean == pytest.approx(float(data.mean()), rel=1e-12)
        assert a.minimum == data.min()
        assert a.maximum == data.max()
        assert a.snapshot()["frac_over_hi"] == pytest.approx(
            float((data > 90.0).mean())
        )

    def test_serialization_round_trip(self):
        acc = MetricAccumulator("x", thresholds={"hi": 5.0}, tail_size=8)
        for value in range(20):
            acc.update(float(value))
        clone = MetricAccumulator.from_dict(acc.to_dict())
        assert clone.snapshot() == acc.snapshot()
        assert clone.tail.values() == acc.tail.values()

    def test_empty_snapshot_is_defined(self):
        snap = MetricAccumulator("x").snapshot()
        assert snap["count"] == 0
        assert snap["mean"] == 0.0
        assert not math.isinf(snap["min"])
