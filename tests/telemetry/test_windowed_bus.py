"""Tests for windowed variability, steady-state detection, and the bus."""

import numpy as np
import pytest

from repro.telemetry import TelemetryBus, WindowedSeries


class TestWindowedSeries:
    def test_window_summaries(self):
        ws = WindowedSeries(window_size=10)
        for value in range(25):
            ws.update(float(value))
        assert ws.n_windows == 2
        assert ws.n_samples == 25
        first = ws.recent[0]
        assert first.count == 10
        assert first.mean == pytest.approx(4.5)
        assert first.minimum == 0.0 and first.maximum == 9.0

    def test_warmup_then_steady_detected(self):
        rng = np.random.default_rng(1)
        warmup = np.linspace(200.0, 50.0, 400) + rng.normal(0, 2, 400)
        steady = np.full(1600, 50.0) + rng.normal(0, 2, 1600)
        ws = WindowedSeries(window_size=100)
        for value in np.concatenate([warmup, steady]):
            ws.update(value)
        assert ws.steady
        # Boundary lands at window granularity near the true 400-sample
        # warmup; sticky once found.
        assert 300 <= ws.warmup_samples <= 800
        snap = ws.snapshot()
        assert snap["steady"] is True
        assert snap["warmup_samples"] == ws.warmup_samples
        assert snap["last_window"]["cov"] < 0.1

    def test_drifting_series_never_steady(self):
        ws = WindowedSeries(window_size=50, rel_tol=0.05)
        for i in range(2000):
            # every window's mean is 10% above the previous one — always
            # beyond the 5% calm tolerance
            ws.update(1.1 ** (i // 50))
        assert not ws.steady
        assert ws.warmup_samples is None

    def test_flat_series_steady_immediately(self):
        ws = WindowedSeries(window_size=20, stable_windows=3)
        for _ in range(200):
            ws.update(50.0)
        assert ws.steady
        assert ws.steady_since_window == 1
        assert ws.warmup_samples == 20

    def test_recent_windows_bounded(self):
        ws = WindowedSeries(window_size=10, recent_windows=8)
        for value in range(2000):
            ws.update(float(value))
        assert len(ws.recent) == 8
        assert ws.n_windows == 200
        # oldest retained window is the (200-8)th
        assert ws.recent[0].index == 192

    def test_per_window_cov(self):
        rng = np.random.default_rng(5)
        quiet = rng.normal(100.0, 1.0, 100)
        noisy = rng.normal(100.0, 30.0, 100)
        ws = WindowedSeries(window_size=100)
        for value in np.concatenate([quiet, noisy]):
            ws.update(value)
        covs = ws.window_covs()
        assert len(covs) == 2
        assert covs[0] < 0.05 < covs[1]

    def test_validation(self):
        with pytest.raises(ValueError):
            WindowedSeries(window_size=1)
        with pytest.raises(ValueError):
            WindowedSeries(rel_tol=0.0)
        with pytest.raises(ValueError):
            WindowedSeries(stable_windows=0)


class TestTelemetryBus:
    def test_publish_routes_to_metric(self):
        bus = TelemetryBus()
        for value in (1.0, 2.0, 3.0):
            bus.publish("tick_ms", value)
        acc = bus.metric("tick_ms")
        assert acc.count == 3
        assert acc.mean == 2.0

    def test_watch_attaches_windowed_view(self):
        bus = TelemetryBus()
        series = bus.watch("tick_ms", window_size=5)
        for value in range(12):
            bus.publish("tick_ms", float(value))
        assert series.n_windows == 2
        assert bus.window("tick_ms") is series
        assert bus.window("other") is None

    def test_subscribers_see_publishes(self):
        bus = TelemetryBus()
        seen: list[tuple[str, float]] = []
        bus.subscribe(lambda name, value: seen.append((name, value)))
        bus.subscribe(
            lambda name, value: seen.append(("only", value)), name="b"
        )
        bus.publish("a", 1.0)
        bus.publish("b", 2.0)
        assert ("a", 1.0) in seen and ("b", 2.0) in seen
        assert ("only", 2.0) in seen
        assert ("only", 1.0) not in seen

    def test_counters(self):
        bus = TelemetryBus()
        bus.count("ticks")
        bus.count("ticks", 2.0)
        assert bus.counter("ticks") == 3.0
        assert bus.counter("missing") == 0.0

    def test_conflicting_thresholds_rejected(self):
        bus = TelemetryBus()
        bus.metric("x", thresholds={"hi": 1.0})
        with pytest.raises(ValueError):
            bus.metric("x", thresholds={"hi": 2.0})

    def test_snapshot_shape(self):
        bus = TelemetryBus()
        bus.watch("tick_ms", window_size=2)
        bus.publish("tick_ms", 10.0)
        bus.publish("tick_ms", 20.0)
        bus.count("ticks", 2)
        snap = bus.snapshot()
        assert snap["metrics"]["tick_ms"]["count"] == 2
        assert snap["windows"]["tick_ms"]["n_windows"] == 1
        assert snap["counters"]["ticks"] == 2
