"""Integration tests: telemetry wired through server, collectors,
results, and the campaign executor's streaming sidecars."""

import json

import numpy as np
import pytest

from repro.campaign.executor import CampaignExecutor
from repro.campaign.spec import CampaignSpec
from repro.campaign.store import JobStore
from repro.core import IterationResult, run_iteration
from repro.core.collectors import (
    SAMPLE_INTERVAL_US,
    MetricExternalizer,
    SystemMetricsCollector,
)
from repro.metrics import instability_ratio
from repro.mlg.blocks import Block
from repro.mlg.constants import TICK_BUDGET_MS
from repro.mlg.server import MLGServer
from repro.mlg.world import World


class FixedMachine:
    throttled_executions = 0
    total_executions = 0
    credits_s = 0.0

    class spec:
        vcpus = 2

    def __init__(self, duration_us: int | None = None):
        self.duration_us = duration_us
        self.cpu_used_us = 0.0
        self.wall_observed_us = 0.0

    def execute(self, work_us, parallel_fraction, now_us, **kwargs):
        duration = self.duration_us if self.duration_us else max(1, int(work_us))
        self.cpu_used_us += work_us
        self.wall_observed_us += duration
        return duration


def _flat_server(retain_raw: bool = True, machine=None) -> MLGServer:
    world = World()
    chunk = world.ensure_chunk(0, 0)
    chunk.blocks[:, :, :60] = Block.STONE
    chunk.recompute_heightmap()
    return MLGServer(
        "vanilla",
        machine if machine is not None else FixedMachine(),
        world=world,
        seed=0,
        retain_raw=retain_raw,
    )


class TestServerTickTap:
    def test_streaming_matches_raw_exactly(self):
        server = _flat_server()
        server.run_for(5.0)
        raw = server.tick_durations_ms()
        tap = server.telemetry
        assert tap.ticks == len(raw)
        acc = tap.tick_ms
        assert acc.mean == sum(raw) / len(raw)  # bit-identical
        assert acc.minimum == min(raw)
        assert acc.maximum == max(raw)
        over = sum(1 for d in raw if d > TICK_BUDGET_MS) / len(raw)
        assert acc.snapshot()["frac_over_budget"] == pytest.approx(over)
        assert server.overloaded_fraction == pytest.approx(
            sum(1 for r in server.tick_records if r.overloaded) / len(raw)
        )

    def test_streaming_isr_matches_trace_isr(self):
        server = _flat_server()
        server.run_for(5.0)
        raw_isr = instability_ratio(server.tick_durations_ms(), TICK_BUDGET_MS)
        assert server.telemetry.isr == pytest.approx(raw_isr, rel=1e-9)

    def test_breakdown_totals_match_records(self):
        server = _flat_server()
        server.run_for(3.0)
        walked: dict[str, float] = {}
        for record in server.tick_records:
            for bucket, us in record.breakdown_us.items():
                walked[bucket] = walked.get(bucket, 0.0) + us
        assert server.telemetry.bucket_totals_us == walked

    def test_retain_raw_false_is_o1_memory(self):
        short = _flat_server(retain_raw=False)
        short.run_for(2.0)
        long = _flat_server(retain_raw=False)
        long.run_for(20.0)  # 10x the ticks
        for server in (short, long):
            assert server.tick_records == []
        assert long.telemetry.ticks >= 10 * short.telemetry.ticks - 1
        # bounded state: the tail ring and the sketch never grow past caps
        assert len(long.telemetry.tick_ms.tail) <= 256
        assert len(long.telemetry.tick_ms.sketch._bins) <= 64
        # but the streaming stats still see every tick
        assert long.telemetry.tick_ms.count == long.telemetry.ticks

    def test_retain_raw_false_raw_series_raises(self):
        server = _flat_server(retain_raw=False)
        server.run_for(1.0)
        with pytest.raises(ValueError, match="retain_raw"):
            server.tick_durations_ms()
        # the streaming surfaces keep working
        assert server.telemetry.tick_ms.count == server.telemetry.ticks
        assert len(server.telemetry.tick_ms.tail) > 0

    def test_retain_raw_false_still_reports_distribution(self):
        server = _flat_server(retain_raw=False)
        server.run_for(2.0)
        shares = MetricExternalizer(server).tick_distribution().shares
        assert sum(shares.values()) == pytest.approx(1.0, abs=0.01)
        assert "Wait After" in shares


class TestSystemCollectorBacklog:
    def test_catch_up_samples_share_window_average(self):
        # One monster tick (~2.6 s) makes several samples due at once; the
        # delta must be attributed uniformly, not all-to-the-first.
        server = _flat_server(machine=FixedMachine(duration_us=2_600_000))
        collector = SystemMetricsCollector(server)
        server.start()
        server.tick()
        taken = collector.maybe_sample()
        assert taken >= 5
        utils = [s.cpu_utilization for s in collector.samples]
        assert len(set(utils)) == 1  # uniform attribution
        assert utils[0] > 0.0  # and not zeroed out
        # Timestamps still land on the 2 Hz grid.
        times = [s.t_us for s in collector.samples]
        assert all(
            b - a == SAMPLE_INTERVAL_US for a, b in zip(times, times[1:])
        )

    def test_summary_from_accumulators_matches_raw(self):
        server = _flat_server()
        collector = SystemMetricsCollector(server)
        server.start()
        while server.clock.now_us < 3_000_000:
            server.tick()
            collector.maybe_sample()
        summary = collector.summary()
        cpu = [s.cpu_utilization for s in collector.samples]
        mem = [s.memory_bytes for s in collector.samples]
        assert summary["cpu_mean"] == sum(cpu) / len(cpu)
        assert summary["cpu_max"] == max(cpu)
        assert summary["memory_mean_mb"] == sum(mem) / len(mem) / 1e6
        assert summary["samples"] == len(collector.samples)

    def test_retain_raw_false_keeps_no_samples(self):
        server = _flat_server(retain_raw=False)
        collector = SystemMetricsCollector(server)
        server.start()
        while server.clock.now_us < 3_000_000:
            server.tick()
            collector.maybe_sample()
        assert collector.samples == []
        assert collector.summary()["samples"] > 0
        snap = collector.snapshot()
        assert snap["cpu_utilization"]["count"] == snap["samples"]


class TestIterationTelemetry:
    # "lag" exercises the feedback-driven workload, which reads the
    # last tick record and must behave identically without the list.
    @pytest.mark.parametrize("workload", ["control", "lag"])
    def test_retain_raw_modes_agree(self, workload):
        kwargs = dict(duration_s=4.0, seed=3)
        raw = run_iteration(workload, "vanilla", "das5-2core", **kwargs)
        lean = run_iteration(
            workload, "vanilla", "das5-2core", retain_raw=False, **kwargs
        )
        assert lean.tick_durations_ms == []
        assert lean.response_times_ms == []
        assert lean.telemetry == raw.telemetry
        assert lean.system_summary == raw.system_summary
        assert lean.tick_distribution == raw.tick_distribution
        assert lean.isr == pytest.approx(raw.isr, rel=1e-9)

    def test_telemetry_snapshot_contents(self):
        result = run_iteration(
            "control", "vanilla", "das5-2core", duration_s=4.0, seed=1
        )
        tick = result.telemetry["tick"]
        assert tick["ticks"] == len(result.tick_durations_ms)
        assert tick["tick_ms"]["p50"] > 0.0
        assert "windows" in tick and "breakdown_us" in tick
        assert result.telemetry["system"]["samples"] > 0
        assert result.telemetry["response_ms"]["count"] == len(
            result.response_times_ms
        )

    def test_stats_fall_back_to_telemetry(self):
        result = run_iteration(
            "control",
            "vanilla",
            "das5-2core",
            duration_s=4.0,
            seed=2,
            retain_raw=False,
        )
        stats = result.tick_stats()
        assert stats["count"] == result.telemetry["tick"]["ticks"]
        assert stats["median"] == result.telemetry["tick"]["tick_ms"]["p50"]
        response = result.response_stats()
        assert response is not None and response["count"] > 0
        assert result.isr > 0.0

    def test_json_round_trip_keeps_telemetry(self, tmp_path):
        from repro.core import ExperimentResult

        result = run_iteration(
            "control", "vanilla", "das5-2core", duration_s=2.0, seed=0
        )
        experiment = ExperimentResult(config={})
        experiment.iterations.append(result)
        path = experiment.save_json(tmp_path / "results.json")
        loaded = ExperimentResult.load_json(path)
        assert loaded.iterations[0].telemetry == result.telemetry

    def test_legacy_results_without_telemetry_still_load(self):
        result = IterationResult(
            server="vanilla",
            workload="control",
            environment="das5-2core",
            iteration=0,
            seed=0,
            duration_s=1.0,
            tick_durations_ms=[50.0, 60.0, 50.0],
            response_times_ms=[],
            tick_distribution={},
            packet_counts={},
            packet_bytes={},
            entity_message_share=0.0,
            entity_byte_share=0.0,
            system_summary={},
            crashed=False,
            crash_reason=None,
            throttled_ticks=0,
            final_credits_s=0.0,
        )
        assert result.telemetry == {}
        assert result.isr >= 0.0
        assert result.response_stats() is None


def _spec(tmp_path, name, jobs=1):
    return CampaignSpec.from_dict(
        {
            "name": "telemetry-test",
            "servers": ["vanilla"],
            "workloads": ["control"],
            "environments": ["das5-2core"],
            "iterations": 2,
            "duration_s": 1.5,
            "jobs": jobs,
            "output_dir": str(tmp_path / name),
        }
    )


class TestCampaignTelemetryShards:
    def test_sidecar_written_per_iteration(self, tmp_path):
        spec = _spec(tmp_path, "run")
        CampaignExecutor(spec).run()
        store = JobStore(spec.output_dir)
        job_id = next(iter(store.completed_ids()))
        lines = store.read_job_telemetry(job_id)
        assert [line["iteration"] for line in lines] == [0, 1]
        first = lines[0]
        assert first["job_id"] == job_id
        tick = first["telemetry"]["tick"]["tick_ms"]
        assert tick["p50"] > 0.0 and tick["count"] > 0
        assert "tail" not in tick  # sidecars stay lean
        assert "steady" in first["telemetry"]["tick"]["windows"]

    def test_serial_parallel_shards_bit_identical(self, tmp_path):
        serial = _spec(tmp_path, "serial", jobs=1)
        parallel = _spec(tmp_path, "parallel", jobs=2)
        # Two cells so the parallel pool actually fans out.
        for spec in (serial, parallel):
            spec.servers = ["vanilla", "papermc"]
        CampaignExecutor(serial).run()
        CampaignExecutor(parallel).run()
        serial_dir = JobStore(serial.output_dir).telemetry_dir
        parallel_dir = JobStore(parallel.output_dir).telemetry_dir
        serial_files = sorted(p.name for p in serial_dir.iterdir())
        assert serial_files == sorted(p.name for p in parallel_dir.iterdir())
        assert len(serial_files) == 2
        for name in serial_files:
            assert (serial_dir / name).read_bytes() == (
                parallel_dir / name
            ).read_bytes()

    def test_status_reports_live_telemetry(self, tmp_path):
        spec = _spec(tmp_path, "status")
        CampaignExecutor(spec).run()
        status = JobStore(spec.output_dir).status()
        entry = status["jobs"][0]
        assert entry["state"] == "done"
        assert entry["iterations_done"] == 2
        assert entry["telemetry"]["iteration"] == 1
        assert status["running"] == 0

    def test_inflight_job_shows_running(self, tmp_path):
        spec = _spec(tmp_path, "inflight")
        CampaignExecutor(spec).run()
        store = JobStore(spec.output_dir)
        job_id = next(iter(store.completed_ids()))
        # Simulate a killed campaign: telemetry streamed, shard not yet
        # written, plus a torn trailing line from the dying worker.
        store.shard_path(job_id).unlink()
        with store.telemetry_path(job_id).open("a") as sidecar:
            sidecar.write('{"iteration": 2, "tor')
        status = store.status()
        entry = status["jobs"][0]
        assert entry["state"] == "running"
        assert entry["iterations_done"] == 2  # torn line skipped
        assert status["running"] == 1

    def test_resume_rewrites_sidecar(self, tmp_path):
        spec = _spec(tmp_path, "resume")
        CampaignExecutor(spec).run()
        store = JobStore(spec.output_dir)
        job_id = next(iter(store.completed_ids()))
        original = store.telemetry_path(job_id).read_bytes()
        store.shard_path(job_id).unlink()
        store.telemetry_path(job_id).write_text("garbage\n")
        CampaignExecutor(spec).run(resume=True)
        assert store.telemetry_path(job_id).read_bytes() == original
