"""Tests for the comparison metrics: jitter variants and Allan variance."""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.metrics import (
    allan_deviation,
    allan_variance,
    allan_variance_profile,
    cycle_to_cycle_jitter,
    max_cycle_jitter,
    mean_cycle_jitter,
    moving_average_jitter,
    rfc3550_jitter,
)


class TestCycleJitter:
    def test_basic_differences(self):
        jitter = cycle_to_cycle_jitter([50.0, 60.0, 40.0])
        assert list(jitter) == [10.0, 20.0]

    def test_constant_sequence_has_zero_jitter(self):
        assert np.all(cycle_to_cycle_jitter([7.0] * 10) == 0.0)

    def test_short_inputs(self):
        assert cycle_to_cycle_jitter([]).size == 0
        assert cycle_to_cycle_jitter([5.0]).size == 0

    def test_max_and_mean(self):
        values = [50.0, 100.0, 50.0, 60.0]
        assert max_cycle_jitter(values) == 50.0
        assert math.isclose(mean_cycle_jitter(values), (50 + 50 + 10) / 3)

    def test_max_mean_empty(self):
        assert max_cycle_jitter([]) == 0.0
        assert mean_cycle_jitter([5.0]) == 0.0

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            cycle_to_cycle_jitter([[1.0, 2.0]])


class TestMovingAverageJitter:
    def test_window_one_equals_raw_jitter(self):
        values = [1.0, 4.0, 2.0, 9.0]
        out = moving_average_jitter(values, window=1)
        assert list(out) == list(cycle_to_cycle_jitter(values))

    def test_large_window_converges_to_cumulative_mean(self):
        values = [0.0, 10.0, 0.0, 10.0, 0.0]
        out = moving_average_jitter(values, window=100)
        assert math.isclose(out[-1], 10.0)

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            moving_average_jitter([1.0, 2.0], window=0)


class TestRfc3550:
    def test_constant_trace_yields_zero(self):
        assert rfc3550_jitter([50.0] * 20) == 0.0

    def test_converges_towards_constant_jitter(self):
        # Alternating 0/10 gives constant |D| = 10; estimator approaches 10.
        values = [0.0, 10.0] * 500
        assert abs(rfc3550_jitter(values) - 10.0) < 0.5

    def test_gain_validation(self):
        with pytest.raises(ValueError):
            rfc3550_jitter([1.0, 2.0], gain=0.0)

    @given(st.lists(st.floats(0, 1000), min_size=2, max_size=100))
    def test_estimator_bounded_by_max_jitter(self, values):
        estimate = rfc3550_jitter(values)
        assert 0.0 <= estimate <= max_cycle_jitter(values) + 1e-9


class TestAllanVariance:
    def test_constant_sequence_is_zero(self):
        assert allan_variance([5.0] * 16) == 0.0

    def test_alternating_sequence_hand_computed(self):
        # groups of size 1: diffs alternate ±2 -> AVAR = 0.5 * mean(4) = 2.
        values = [1.0, 3.0] * 8
        assert math.isclose(allan_variance(values, m=1), 2.0)

    def test_averaging_smooths_alternation(self):
        values = [1.0, 3.0] * 32
        assert allan_variance(values, m=2) < allan_variance(values, m=1)

    def test_deviation_is_sqrt(self):
        values = [1.0, 3.0] * 8
        assert math.isclose(
            allan_deviation(values), math.sqrt(allan_variance(values))
        )

    def test_requires_enough_samples(self):
        with pytest.raises(ValueError):
            allan_variance([1.0, 2.0, 3.0], m=2)

    def test_rejects_bad_m(self):
        with pytest.raises(ValueError):
            allan_variance([1.0] * 8, m=0)

    def test_profile_uses_power_of_two_ladder(self):
        profile = allan_variance_profile(list(range(64)))
        assert set(profile) == {1, 2, 4, 8, 16}

    def test_order_dependence_distinguishes_traces(self):
        """Same distribution, different order -> different Allan variance.

        This is the Table 6 property: Allan variance (like ISR, unlike
        stdev) is order dependent.
        """
        clustered = [1.0] * 8 + [9.0] * 8
        alternating = [1.0, 9.0] * 8
        assert allan_variance(alternating) > allan_variance(clustered)
        assert np.std(alternating) == pytest.approx(np.std(clustered))
