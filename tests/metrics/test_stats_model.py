"""Tests for box statistics and the Fig. 6 synthetic trace generators."""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.metrics import (
    NOTICEABLE_MS,
    UNPLAYABLE_MS,
    box_stats,
    clustered_outlier_trace,
    instability_ratio,
    iqr,
    percentile,
    periodic_outlier_trace,
    spread_outlier_trace,
    summarize,
)


class TestBoxStats:
    def test_known_values(self):
        stats = box_stats(list(range(1, 101)))
        assert stats.count == 100
        assert math.isclose(stats.mean, 50.5)
        assert stats.minimum == 1.0
        assert stats.maximum == 100.0
        assert math.isclose(stats.median, 50.5)

    def test_iqr_property(self):
        stats = box_stats(list(range(1, 101)))
        assert math.isclose(stats.iqr, stats.p75 - stats.p25)
        assert math.isclose(iqr(list(range(1, 101))), stats.iqr)

    def test_whiskers_bounded_by_extremes(self):
        data = [10.0] * 50 + [10_000.0]
        stats = box_stats(data)
        assert stats.whisker_low >= stats.minimum
        assert stats.whisker_high <= stats.maximum

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            box_stats([])

    def test_percentile_validation(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101.0)
        with pytest.raises(ValueError):
            percentile([], 50.0)

    @given(st.lists(st.floats(0, 1e6), min_size=1, max_size=300))
    def test_ordering_invariants(self, data):
        stats = box_stats(data)
        assert (
            stats.minimum
            <= stats.p5
            <= stats.p25
            <= stats.median
            <= stats.p75
            <= stats.p95
            <= stats.maximum
        )
        # The mean can drift one ulp outside [min, max] from summation
        # rounding (e.g. three identical large floats), hence the epsilon.
        eps = 1e-9 * max(1.0, abs(stats.maximum))
        assert stats.minimum - eps <= stats.mean <= stats.maximum + eps


class TestSummarize:
    def test_threshold_fractions(self):
        # 2 samples over 118, 3 over 60 (of 10).
        data = [10.0] * 7 + [80.0] + [200.0, 500.0]
        summary = summarize(data)
        assert summary["frac_unplayable"] == pytest.approx(0.2)
        assert summary["frac_noticeable"] == pytest.approx(0.3)

    def test_max_over_mean(self):
        summary = summarize([10.0, 10.0, 100.0])
        assert summary["max_over_mean"] == pytest.approx(100.0 / 40.0)

    def test_thresholds_match_paper(self):
        assert NOTICEABLE_MS == 60.0
        assert UNPLAYABLE_MS == 118.0


class TestTraceGenerators:
    def test_periodic_trace_outlier_count(self):
        trace = periodic_outlier_trace(100, 10, 20.0)
        assert int((trace > 50.0).sum()) == 10

    def test_clustered_and_spread_have_same_distribution(self):
        low = clustered_outlier_trace(1000, 5, 20.0)
        high = spread_outlier_trace(1000, 5, 20.0)
        assert sorted(low) == sorted(high)

    def test_fig6b_order_dependence(self):
        """Identical distributions, ISR an order of magnitude apart."""
        low = clustered_outlier_trace(1000, 5, 20.0)
        high = spread_outlier_trace(1000, 5, 20.0)
        isr_low = instability_ratio(low, 50.0)
        isr_high = instability_ratio(high, 50.0)
        assert isr_high > 4 * isr_low
        # Standard deviation is blind to the difference.
        assert np.std(low) == pytest.approx(np.std(high))

    def test_spread_outliers_are_isolated(self):
        trace = spread_outlier_trace(1000, 5, 20.0)
        outliers = np.flatnonzero(trace > 50.0)
        assert np.all(np.diff(outliers) > 1)

    def test_generator_validation(self):
        with pytest.raises(ValueError):
            periodic_outlier_trace(10, 0, 2.0)
        with pytest.raises(ValueError):
            clustered_outlier_trace(10, 11, 2.0)
        with pytest.raises(ValueError):
            clustered_outlier_trace(10, 5, 2.0, start=8)
        with pytest.raises(ValueError):
            spread_outlier_trace(10, -1, 2.0)

    def test_zero_outliers(self):
        assert np.all(spread_outlier_trace(100, 0, 20.0) == 50.0)
