"""Unit tests for the Instability Ratio metric (Equation 1)."""

import math

import numpy as np
import pytest

from repro.metrics import (
    expected_ticks,
    instability_ratio,
    isr_components,
    isr_closed_form,
    periodic_outlier_trace,
    tick_periods,
)

BUDGET = 50.0


class TestTickPeriods:
    def test_fast_ticks_are_clamped_to_budget(self):
        periods = tick_periods([1.0, 10.0, 49.9], BUDGET)
        assert np.all(periods == BUDGET)

    def test_slow_ticks_keep_their_duration(self):
        periods = tick_periods([60.0, 500.0], BUDGET)
        assert list(periods) == [60.0, 500.0]

    def test_mixed_trace(self):
        periods = tick_periods([10.0, 75.0], BUDGET)
        assert list(periods) == [50.0, 75.0]

    def test_empty_trace(self):
        assert tick_periods([], BUDGET).size == 0

    def test_rejects_negative_duration(self):
        with pytest.raises(ValueError):
            tick_periods([-1.0], BUDGET)

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            tick_periods([float("nan")], BUDGET)

    def test_rejects_nonpositive_budget(self):
        with pytest.raises(ValueError):
            tick_periods([50.0], 0.0)

    def test_rejects_2d_input(self):
        with pytest.raises(ValueError):
            tick_periods([[50.0, 50.0]], BUDGET)


class TestExpectedTicks:
    def test_healthy_trace_has_ne_equal_na(self):
        assert expected_ticks([10.0] * 100, BUDGET) == 100

    def test_overloaded_trace_has_ne_greater_than_na(self):
        # 10 ticks of 500 ms span 5000 ms -> 100 expected ticks at 50 ms.
        assert expected_ticks([500.0] * 10, BUDGET) == 100

    def test_empty_trace(self):
        assert expected_ticks([], BUDGET) == 0


class TestInstabilityRatio:
    def test_constant_trace_is_zero(self):
        assert instability_ratio([50.0] * 1000, BUDGET) == 0.0

    def test_all_fast_ticks_is_zero(self):
        # Fast ticks all clamp to the budget -> no jitter.
        assert instability_ratio([1.0, 20.0, 49.0] * 50, BUDGET) == 0.0

    def test_constant_slow_trace_is_zero(self):
        # Stable-but-terrible performance has ISR 0 (a documented limitation).
        assert instability_ratio([500.0] * 100, BUDGET) == 0.0

    def test_empty_and_singleton_traces(self):
        assert instability_ratio([], BUDGET) == 0.0
        assert instability_ratio([400.0], BUDGET) == 0.0

    def test_single_outlier_hand_computed(self):
        # 9 nominal + 1 outlier of 10b: jumps are (10b-b) in and out = 18b.
        # Duration = 9b + 10b = 19b -> Ne = 19.  ISR = 18b / (19 * 2b).
        trace = [BUDGET] * 5 + [10 * BUDGET] + [BUDGET] * 4
        expected = (18 * BUDGET) / (19 * 2 * BUDGET)
        assert math.isclose(instability_ratio(trace, BUDGET), expected)

    def test_matches_closed_form_on_periodic_trace(self):
        for s, lam in [(2, 2), (10, 25), (20, 5), (1.5, 10)]:
            trace = periodic_outlier_trace(10_000, lam, s, BUDGET)
            measured = instability_ratio(trace, BUDGET)
            assert math.isclose(
                measured, isr_closed_form(s, lam), rel_tol=0.02
            ), (s, lam)

    def test_paper_example_s10_lam25(self):
        # §4.2: s=10 every 25 ticks -> ISR = 9/34 ~= 0.26.
        assert math.isclose(isr_closed_form(10, 25), 9 / 34)
        trace = periodic_outlier_trace(25_000, 25, 10, BUDGET)
        assert abs(instability_ratio(trace, BUDGET) - 0.26) < 0.01

    def test_alternating_extreme_ticks_approach_one(self):
        # Alternating b and s*b tends to (s-1)/(s+1) -> 1 as s grows.
        trace = periodic_outlier_trace(10_000, 2, 1000.0, BUDGET)
        assert instability_ratio(trace, BUDGET) > 0.99

    def test_explicit_n_expected_overrides_inference(self):
        trace = [BUDGET, 10 * BUDGET, BUDGET]
        inferred = instability_ratio(trace, BUDGET)
        pinned = instability_ratio(trace, BUDGET, n_expected=100)
        assert pinned < inferred

    def test_rejects_nonpositive_n_expected(self):
        with pytest.raises(ValueError):
            instability_ratio([50.0, 60.0], BUDGET, n_expected=0)

    def test_unit_invariance(self):
        # Measuring in seconds instead of ms must not change ISR.
        trace_ms = [50.0, 500.0, 50.0, 50.0, 120.0]
        trace_s = [t / 1000.0 for t in trace_ms]
        assert math.isclose(
            instability_ratio(trace_ms, 50.0),
            instability_ratio(trace_s, 0.05),
        )


class TestIsrComponents:
    def test_components_are_consistent(self):
        trace = [BUDGET] * 10 + [20 * BUDGET] + [BUDGET] * 10
        parts = isr_components(trace, BUDGET)
        assert parts["n_actual"] == 21
        assert parts["n_expected"] == 40  # 20b + 20b of outlier time
        expected_isr = parts["jitter_sum"] / (
            parts["n_expected"] * 2 * BUDGET
        )
        assert math.isclose(parts["isr"], expected_isr)

    def test_empty_trace_components(self):
        parts = isr_components([], BUDGET)
        assert parts["isr"] == 0.0
        assert parts["n_actual"] == 0
