"""Property-based tests for ISR using hypothesis."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import (
    instability_ratio,
    isr_closed_form,
    periodic_outlier_trace,
)

BUDGET = 50.0

durations = st.lists(
    st.floats(min_value=0.0, max_value=5000.0, allow_nan=False),
    min_size=2,
    max_size=400,
)


@given(durations)
def test_isr_is_bounded(trace):
    isr = instability_ratio(trace, BUDGET)
    # Ne rounding can push the bound marginally past 1 on tiny traces.
    assert 0.0 <= isr <= 1.0 + 1e-9


@given(durations)
def test_isr_is_invariant_under_reversal_of_numerator_shape(trace):
    # Reversing a trace preserves the multiset of |differences| and the
    # total duration, hence ISR.
    forward = instability_ratio(trace, BUDGET)
    backward = instability_ratio(list(reversed(trace)), BUDGET)
    assert abs(forward - backward) < 1e-12


@given(durations, st.floats(min_value=1.5, max_value=100.0))
def test_scaling_time_units_preserves_isr(trace, factor):
    base = instability_ratio(trace, BUDGET)
    scaled = instability_ratio(
        [t * factor for t in trace], BUDGET * factor
    )
    assert abs(base - scaled) < 1e-9


@given(durations)
def test_sorting_never_increases_isr(trace):
    """A sorted trace groups similar durations, minimizing c2c jumps."""
    unsorted_isr = instability_ratio(trace, BUDGET)
    sorted_isr = instability_ratio(sorted(trace), BUDGET)
    assert sorted_isr <= unsorted_isr + 1e-9


@given(
    st.integers(min_value=2, max_value=50),
    st.floats(min_value=1.0, max_value=50.0),
)
@settings(max_examples=50)
def test_closed_form_matches_long_periodic_trace(lam, s):
    trace = periodic_outlier_trace(lam * 400, lam, s, BUDGET)
    measured = instability_ratio(trace, BUDGET)
    assert abs(measured - isr_closed_form(s, lam)) < 0.02


@given(
    st.integers(min_value=2, max_value=40),
    st.floats(min_value=2.0, max_value=40.0),
)
@settings(max_examples=50)
def test_more_frequent_outliers_increase_isr(lam, s):
    sparse = isr_closed_form(s, lam + 1)
    dense = isr_closed_form(s, lam)
    assert dense > sparse


@given(
    st.integers(min_value=2, max_value=40),
    st.floats(min_value=2.0, max_value=40.0),
)
@settings(max_examples=50)
def test_larger_outliers_increase_isr(lam, s):
    assert isr_closed_form(s + 1.0, lam) > isr_closed_form(s, lam)


@given(st.lists(st.floats(min_value=0.0, max_value=49.9), min_size=2, max_size=200))
def test_never_overloaded_trace_has_zero_isr(trace):
    """All ticks under budget clamp to b, so the trace shows no jitter."""
    assert instability_ratio(trace, BUDGET) == 0.0
