"""Tests for the visualization/CSV output component."""

import csv

import pytest

from repro.core import (
    ascii_boxplot,
    ascii_timeseries,
    format_table,
    write_csv_rows,
    write_csv_series,
)


class TestAsciiBoxplot:
    def test_contains_labels_and_medians(self):
        out = ascii_boxplot(
            [("vanilla", [10.0, 20.0, 30.0]), ("papermc", [5.0, 6.0, 7.0])]
        )
        assert "vanilla" in out
        assert "papermc" in out
        assert "med 20.0" in out

    def test_empty_input(self):
        assert ascii_boxplot([]) == "(no data)"

    def test_scale_line_present(self):
        out = ascii_boxplot([("a", [1.0, 2.0])], lo=0.0, hi=10.0)
        assert "scale: 0.0 .. 10.0" in out

    def test_box_between_whiskers(self):
        out = ascii_boxplot([("a", list(range(100)))], width=40)
        row = out.splitlines()[0]
        assert "=" in row and "|" in row and "-" in row


class TestAsciiTimeseries:
    def test_peak_reported(self):
        out = ascii_timeseries([1.0, 2.0, 50.0, 3.0], width=4)
        assert "peak 50.0" in out

    def test_empty(self):
        assert ascii_timeseries([]) == "(no data)"

    def test_downsampling_width(self):
        out = ascii_timeseries(list(range(1000)), width=50)
        body = out.split("  (peak")[0]
        assert len(body) <= 51


class TestFormatTable:
    def test_alignment_and_rule(self):
        out = format_table(["name", "v"], [["a", 1], ["long-name", 22]])
        lines = out.splitlines()
        assert lines[0].startswith("name")
        assert set(lines[1]) <= {"-", " "}
        assert len(lines) == 4

    def test_empty_rows(self):
        out = format_table(["a", "b"], [])
        assert "a" in out


class TestCsvWriters:
    def test_series_roundtrip(self, tmp_path):
        path = write_csv_series(tmp_path / "s.csv", "tick_ms", [1.5, 2.5])
        with path.open() as handle:
            rows = list(csv.reader(handle))
        assert rows[0] == ["index", "tick_ms"]
        assert rows[1] == ["0", "1.5"]
        assert rows[2] == ["1", "2.5"]

    def test_rows_roundtrip(self, tmp_path):
        path = write_csv_rows(
            tmp_path / "r.csv", ["a", "b"], [[1, "x"], [2, "y"]]
        )
        with path.open() as handle:
            rows = list(csv.reader(handle))
        assert rows == [["a", "b"], ["1", "x"], ["2", "y"]]

    def test_nested_directories_created(self, tmp_path):
        path = write_csv_series(tmp_path / "a" / "b" / "s.csv", "v", [1.0])
        assert path.exists()
