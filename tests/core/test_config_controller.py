"""Tests for the configuration (Table 4) and controller protocol (Table 1)."""

import pytest

from repro.core import (
    ControlClient,
    ControlError,
    ControlServer,
    Deployment,
    Message,
    MessageType,
    MeterstickConfig,
    Transport,
)


class TestConfig:
    def test_defaults_are_valid(self):
        config = MeterstickConfig()
        assert config.servers == ["vanilla", "forge", "papermc"]
        assert config.number_of_bots == 25  # Table 4 typical value
        assert config.duration_s == 60.0
        assert config.iterations == 1
        assert config.scale == 1.0
        assert config.ram_gb == 4.0

    def test_table4_parameters_exist(self):
        config = MeterstickConfig()
        for attribute in (
            "ips", "ssl_keys", "servers", "world", "output_dir", "resume",
            "control_port", "game_port", "jmx_urls", "jmx_port_range",
            "ram_gb", "affinity_mask", "number_of_bots", "behavior",
            "duration_s", "iterations", "scale",
        ):
            assert hasattr(config, attribute), attribute

    def test_validation_rejects_unknown_server(self):
        with pytest.raises(ValueError):
            MeterstickConfig(servers=["spigot"])

    def test_validation_rejects_unknown_world(self):
        with pytest.raises(ValueError, match="unknown world"):
            MeterstickConfig(world="skyblock")

    def test_validation_rejects_unknown_environment(self):
        with pytest.raises(ValueError):
            MeterstickConfig(environment="gcp")

    def test_validation_rejects_bad_numbers(self):
        with pytest.raises(ValueError):
            MeterstickConfig(duration_s=0.0)
        with pytest.raises(ValueError):
            MeterstickConfig(iterations=0)
        with pytest.raises(ValueError):
            MeterstickConfig(number_of_bots=-1)
        with pytest.raises(ValueError):
            MeterstickConfig(scale=-1.0)
        with pytest.raises(ValueError):
            MeterstickConfig(jmx_port_range=(100, 50))

    def test_round_trip_serialization(self):
        config = MeterstickConfig(world="tnt", iterations=3, seed=42)
        clone = MeterstickConfig.from_dict(config.to_dict())
        assert clone == config

    def test_iteration_seeds_are_distinct_and_stable(self):
        config = MeterstickConfig(seed=1)
        a = config.iteration_seed("vanilla", 0)
        b = config.iteration_seed("vanilla", 1)
        c = config.iteration_seed("forge", 0)
        assert len({a, b, c}) == 3
        assert config.iteration_seed("vanilla", 0) == a


class TestMessages:
    def test_all_table1_messages_exist(self):
        expected = {
            "set_server", "set_jmx", "iter", "initialize", "log_start",
            "log_stop", "stop_server", "connect", "convert", "ok",
            "keep_alive", "err", "exit",
        }
        assert set(MessageType.ALL) == expected

    def test_encode_decode_roundtrip(self):
        message = Message(MessageType.SET_SERVER, "papermc")
        assert message.encode() == "set_server:papermc"
        decoded = Message.decode("set_server:papermc")
        assert decoded.type == MessageType.SET_SERVER
        assert decoded.payload == "papermc"

    def test_payloadless_encoding(self):
        assert Message(MessageType.INITIALIZE).encode() == "initialize"

    def test_unknown_type_rejected(self):
        with pytest.raises(ValueError):
            Message("reboot")


class TestControlPlane:
    def _pair(self, role="M", name="m-node"):
        client = ControlClient(name, role, Transport())
        server = ControlServer()
        server.register(client)
        return server, client

    def test_command_ack_roundtrip(self):
        server, client = self._pair()
        reply = server.command("m-node", MessageType.SET_SERVER, "forge")
        assert reply == ""
        assert client.state["server"] == "forge"

    def test_wrong_destination_errors(self):
        server, client = self._pair(role="Y", name="y-node")
        with pytest.raises(ControlError, match="not valid for role"):
            server.command("y-node", MessageType.INITIALIZE)

    def test_handler_exception_becomes_err(self):
        server, client = self._pair()

        def broken(payload):
            raise RuntimeError("disk full")

        client.on(MessageType.INITIALIZE, broken)
        with pytest.raises(ControlError, match="disk full"):
            server.command("m-node", MessageType.INITIALIZE)

    def test_missing_handler_errors(self):
        server, client = self._pair()
        with pytest.raises(ControlError, match="no handler"):
            server.command("m-node", MessageType.LOG_START)

    def test_exit_marks_worker(self):
        server, client = self._pair()
        server.command("m-node", MessageType.EXIT)
        assert client.exited

    def test_keep_alive_is_silent(self):
        server, client = self._pair()
        server.keep_alive_all()
        assert not client.transport.to_controller  # no ok for keepalive

    def test_invalid_role_rejected(self):
        with pytest.raises(ValueError):
            ControlClient("x", "Z", Transport())

    def test_full_iteration_sequence(self):
        server = ControlServer()
        mlg = ControlClient("m-node", "M", Transport())
        bots = ControlClient("y-node", "Y", Transport())
        server.register(mlg)
        server.register(bots)
        calls = []
        for worker, message in (
            (mlg, MessageType.INITIALIZE),
            (mlg, MessageType.LOG_START),
            (mlg, MessageType.LOG_STOP),
            (mlg, MessageType.STOP_SERVER),
            (bots, MessageType.CONNECT),
            (bots, MessageType.CONVERT),
        ):
            worker.on(
                message,
                lambda payload, m=message, w=worker.name: calls.append((w, m)),
            )
        server.run_iteration_sequence(
            "papermc", 2, "m-node", ["y-node"], jmx_url="jmx://host:25585"
        )
        assert mlg.state == {
            "server": "papermc", "jmx": "jmx://host:25585", "iteration": "2"
        }
        assert bots.state["iteration"] == "2"
        assert ("y-node", MessageType.CONNECT) in calls
        assert calls.index(("m-node", MessageType.LOG_START)) < calls.index(
            ("y-node", MessageType.CONNECT)
        )
        assert calls[-1] == ("y-node", MessageType.CONVERT)
        server.shutdown()
        assert mlg.exited and bots.exited


class TestDeployment:
    def test_deploys_one_mlg_node_and_workers(self):
        config = MeterstickConfig(ips=["10.0.0.1", "10.0.0.2", "10.0.0.3"])
        deployment = Deployment(config)
        controller = deployment.deploy()
        assert deployment.mlg_node.role == "M"
        assert len(deployment.emulation_nodes) == 2
        assert len(controller.workers) == 3

    def test_software_bundles(self):
        config = MeterstickConfig(ips=["10.0.0.1", "10.0.0.2"])
        deployment = Deployment(config)
        deployment.deploy()
        assert "metric-externalizer" in deployment.mlg_node.installed
        assert "player-emulation" in deployment.emulation_nodes[0].installed

    def test_requires_two_ips(self):
        with pytest.raises(ValueError, match="at least two IPs"):
            Deployment(MeterstickConfig(ips=["10.0.0.1"]))

    def test_access_before_deploy_raises(self):
        deployment = Deployment(MeterstickConfig())
        with pytest.raises(RuntimeError):
            _ = deployment.mlg_node
