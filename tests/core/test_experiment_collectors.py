"""Tests for the experiment runner, collectors, results, and retrieval."""

import json

import numpy as np
import pytest

from repro.core import (
    ExperimentResult,
    ExperimentRunner,
    MeterstickConfig,
    MetricExternalizer,
    SystemMetricsCollector,
    retrieve,
    run_iteration,
    summary_rows,
)
from repro.core.collectors import SAMPLE_INTERVAL_US
from repro.mlg.blocks import Block
from repro.mlg.server import MLGServer
from repro.mlg.world import World


class FixedMachine:
    throttled_executions = 0
    total_executions = 0
    cpu_used_us = 0.0
    wall_observed_us = 0.0
    credits_s = 0.0
    class spec:  # minimal spec surface for the collector
        vcpus = 2

    def execute(self, work_us, parallel_fraction, now_us, **kwargs):
        self.cpu_used_us += work_us
        self.wall_observed_us += work_us
        return max(1, int(work_us))


def _flat_server():
    world = World()
    chunk = world.ensure_chunk(0, 0)
    chunk.blocks[:, :, :60] = Block.STONE
    chunk.recompute_heightmap()
    return MLGServer("vanilla", FixedMachine(), world=world, seed=0)


class TestCollectors:
    def test_externalizer_reads_tick_durations(self):
        server = _flat_server()
        server.run_for(1.0)
        externalizer = MetricExternalizer(server)
        assert len(externalizer.tick_durations_ms()) == 20

    def test_tick_distribution_shares_sum_to_one(self):
        server = _flat_server()
        server.run_for(2.0)
        shares = MetricExternalizer(server).tick_distribution().shares
        assert sum(shares.values()) == pytest.approx(1.0, abs=0.01)
        assert "Wait After" in shares
        assert "Wait Before" in shares

    def test_idle_server_mostly_waits(self):
        server = _flat_server()
        server.run_for(2.0)
        shares = MetricExternalizer(server).tick_distribution().shares
        assert shares["Wait After"] > 0.8

    def test_non_wait_shares_renormalize(self):
        server = _flat_server()
        server.run_for(2.0)
        dist = MetricExternalizer(server).tick_distribution()
        active = dist.non_wait_shares()
        assert sum(active.values()) == pytest.approx(1.0, abs=1e-6)
        assert all(not k.startswith("Wait") for k in active)

    def test_system_collector_samples_at_2hz(self):
        server = _flat_server()
        collector = SystemMetricsCollector(server)
        server.start()
        while server.clock.now_us < 3_000_000:
            server.tick()
            collector.maybe_sample()
        expected = 3_000_000 // SAMPLE_INTERVAL_US
        assert abs(len(collector.samples) - expected) <= 1

    def test_system_sample_fields(self):
        server = _flat_server()
        collector = SystemMetricsCollector(server)
        server.start()
        for _ in range(30):
            server.tick()
            collector.maybe_sample()
        sample = collector.samples[-1]
        assert 0.0 <= sample.cpu_utilization <= 1.0
        assert sample.memory_bytes > 500e6  # base JVM heap
        assert sample.threads == 26
        summary = collector.summary()
        assert summary["samples"] == len(collector.samples)


class TestRunIteration:
    def test_single_iteration_produces_complete_result(self):
        result = run_iteration(
            "control", "vanilla", "das5-2core", duration_s=5.0, seed=1
        )
        assert result.server == "vanilla"
        assert result.workload == "control"
        assert len(result.tick_durations_ms) >= 90
        assert result.response_times_ms  # the observer probes chat
        assert 0.0 <= result.isr <= 1.0
        assert result.entity_message_share > 0.5
        assert not result.crashed
        assert result.tick_distribution

    def test_deterministic_given_seed(self):
        a = run_iteration("control", "vanilla", "das5-2core", 5.0, seed=9)
        b = run_iteration("control", "vanilla", "das5-2core", 5.0, seed=9)
        assert a.tick_durations_ms == b.tick_durations_ms
        assert a.response_times_ms == b.response_times_ms

    def test_different_seeds_differ(self):
        a = run_iteration("control", "vanilla", "das5-2core", 5.0, seed=1)
        b = run_iteration("control", "vanilla", "das5-2core", 5.0, seed=2)
        assert a.tick_durations_ms != b.tick_durations_ms


class TestExperimentRunner:
    def test_campaign_runs_servers_times_iterations(self):
        config = MeterstickConfig(
            servers=["vanilla", "papermc"],
            world="control",
            environment="das5-2core",
            duration_s=3.0,
            iterations=2,
            seed=5,
        )
        result = ExperimentRunner(config).run()
        assert len(result.iterations) == 4
        assert len(result.for_server("vanilla")) == 2
        assert result.for_server("papermc")[1].iteration == 1

    def test_isr_values_and_pooling(self):
        config = MeterstickConfig(
            servers=["vanilla"], world="control",
            environment="das5-2core", duration_s=3.0, iterations=2,
        )
        result = ExperimentRunner(config).run()
        assert len(result.isr_values("vanilla")) == 2
        pooled = result.pooled_tick_durations("vanilla")
        total = sum(
            len(it.tick_durations_ms) for it in result.iterations
        )
        assert len(pooled) == total

    def test_warm_machines_drain_credits(self):
        config = MeterstickConfig(
            servers=["vanilla"], world="control",
            environment="aws-t3.large", duration_s=2.0,
            warm_machines=True,
        )
        result = ExperimentRunner(config).run()
        assert result.iterations[0].final_credits_s < 25.0


class TestResultsExport:
    def _result(self):
        config = MeterstickConfig(
            servers=["vanilla"], world="control",
            environment="das5-2core", duration_s=2.0, iterations=1,
        )
        return ExperimentRunner(config).run()

    def test_json_round_trip(self, tmp_path):
        result = self._result()
        path = result.save_json(tmp_path / "results.json")
        loaded = ExperimentResult.load_json(path)
        assert len(loaded.iterations) == 1
        assert loaded.iterations[0].isr == pytest.approx(
            result.iterations[0].isr
        )

    def test_summary_rows_shape(self):
        result = self._result()
        rows = summary_rows(result)
        assert len(rows) == 1
        assert rows[0][0] == "vanilla"
        assert isinstance(rows[0][4], float)  # isr

    def test_retrieve_writes_layout(self, tmp_path):
        result = self._result()
        out = retrieve(result, tmp_path / "out")
        assert (out / "summary.csv").exists()
        assert (out / "results.json").exists()
        assert (out / "vanilla" / "iter0_ticks.csv").exists()
        assert (out / "vanilla" / "iter0_responses.csv").exists()
        header = (out / "summary.csv").read_text().splitlines()[0]
        assert "isr" in header

    def test_json_is_valid_and_self_describing(self, tmp_path):
        result = self._result()
        path = result.save_json(tmp_path / "results.json")
        payload = json.loads(path.read_text())
        assert payload["config"]["world"] == "control"
        assert payload["iterations"][0]["isr"] >= 0.0
