"""Exploration workload: spiral routes and the chunk-IO churn they force."""

import math

import numpy as np
import pytest

from repro.cloud.providers import get_environment
from repro.core.experiment import run_iteration
from repro.emulation.behavior import SpiralMarch, make_behavior
from repro.emulation.swarm import BotSwarm
from repro.mlg.server import MLGServer
from repro.workloads import ExplorationWorkload, get_workload


class TestSpiralMarch:
    def test_constant_ground_speed(self):
        rng = np.random.default_rng(0)
        behavior = SpiralMarch(cx=0.0, cz=0.0, speed=1.5)
        x, z = behavior.next_move(0.0, 0.0, rng)
        for _ in range(300):
            nx, nz = behavior.next_move(x, z, rng)
            step = math.hypot(nx - x, nz - z)
            assert step == pytest.approx(1.5, rel=0.05)
            x, z = nx, nz

    def test_out_and_back_sorties_grow(self):
        rng = np.random.default_rng(0)
        behavior = SpiralMarch(
            cx=0.0, cz=0.0, speed=4.0, initial_radius=40.0, growth=20.0
        )
        radii = []
        for _ in range(400):
            x, z = behavior.next_move(0.0, 0.0, rng)
            radii.append(math.hypot(x, z))
        peak_first = max(radii[:100])
        assert peak_first == pytest.approx(40.0, abs=5.0)
        # After turning around, the route comes back near the base...
        assert min(radii[50:]) < 20.0
        # ...and the next sortie pushes past the previous frontier.
        assert behavior.sortie_radius > 40.0
        assert max(radii) > peak_first + 5.0

    def test_registry_name(self):
        behavior = make_behavior("spiral-march", (0.0, 0.0, 16.0, 16.0))
        assert isinstance(behavior, SpiralMarch)
        assert (behavior.cx, behavior.cz) == (8.0, 8.0)

    def test_registry_bots_fan_out_over_distinct_arms(self):
        # Registry-built behaviors share constructor args, so the phase
        # comes from the bot's RNG: a squad must not stack on one arm.
        rng = np.random.default_rng(3)
        behaviors = [
            make_behavior("spiral-march", (0.0, 0.0, 16.0, 16.0))
            for _ in range(4)
        ]
        for behavior in behaviors:
            behavior.next_move(8.0, 8.0, rng)
        phases = {behavior.phase for behavior in behaviors}
        assert len(phases) == 4

    def test_invalid_params_raise(self):
        with pytest.raises(ValueError):
            SpiralMarch(speed=0.0)
        with pytest.raises(ValueError):
            SpiralMarch(min_radius=100.0, initial_radius=50.0)


class TestExplorationWorkload:
    def test_scale_controls_squad_size(self):
        assert ExplorationWorkload().n_bots == 4
        assert ExplorationWorkload(scale=2.0).n_bots == 8
        assert ExplorationWorkload(scale=0.1).n_bots == 1
        assert isinstance(get_workload("exploration"), ExplorationWorkload)

    def test_scouts_connect_with_spiral_arms(self):
        env = get_environment("das5-2core")
        server = MLGServer(
            "vanilla",
            env.create_machine(seed=1),
            world=ExplorationWorkload().create_world(1),
            seed=1,
        )
        swarm = BotSwarm(server, env.network, np.random.default_rng(1))
        ExplorationWorkload().install(server, swarm)
        server.run_for(4.0)
        swarm.step()
        assert server.net.connected_count == 4
        phases = {bot.behavior.phase for bot in swarm.bots}
        assert len(phases) == 4  # one spiral arm per scout


class TestExplorationChurn:
    """The acceptance scenario: plateaued residency, a nonzero Autosave
    bucket, and visible full-flush tick spikes."""

    @pytest.fixture(scope="class")
    def result(self, tmp_path_factory):
        tmp = tmp_path_factory.mktemp("exploration")
        return run_iteration(
            "exploration",
            "vanilla",
            "das5-2core",
            duration_s=60.0,
            seed=7,
            world_dir=str(tmp / "world"),
            autosave_interval_s=5.0,
            autosave_flush_every=4,
            max_loaded_chunks=150,
        )

    def test_full_churn_cycle(self, result):
        world = result.telemetry["world"]
        assert world["chunks_saved"] > 100
        assert world["chunks_evicted"] > 100
        assert world["chunks_loaded_from_disk"] > 20
        assert world["full_flushes"] >= 1
        assert world["bytes_written"] > 0
        assert world["bytes_read"] > 0

    def test_loaded_chunk_count_plateaus(self, result):
        world = result.telemetry["world"]
        # Without eviction the run touches far more chunks than stay
        # resident: saved + evicted bound the touched set from below.
        # Residency floats above the 150-chunk cap by the squads'
        # (uncappable) in-view sets, but stays well under the frontier.
        assert world["peak_loaded_chunks"] < 400
        assert world["final_loaded_chunks"] <= world["peak_loaded_chunks"]
        # Residency ends near the cap + in-view floor, not at the total
        # touched-chunk count (which exceeds saved > 100 + reloads).
        assert world["final_loaded_chunks"] < (
            world["chunks_saved"] + world["chunks_loaded_from_disk"]
        )

    def test_autosave_and_chunk_load_buckets_visible(self, result):
        shares = result.tick_distribution
        assert shares.get("Autosave", 0.0) > 0.0
        assert shares.get("Chunk Load", 0.0) > 0.005

    def test_memory_reflects_real_sawtooth(self, result):
        # Eviction on: the synthetic GC jitter is disabled, so sampled
        # memory tracks server.memory_bytes() — which plateaus.
        summary = result.system_summary
        assert summary["memory_max_mb"] < 800.0  # 600 MB base + capped world

    def test_disabled_persistence_stays_in_memory(self):
        result = run_iteration(
            "exploration",
            "vanilla",
            "das5-2core",
            duration_s=10.0,
            seed=7,
        )
        assert "world" not in result.telemetry
        assert result.tick_distribution.get("Autosave", 0.0) == 0.0
