"""Tests for the five benchmark workloads and their constructs."""

import numpy as np
import pytest

from repro.cloud import get_environment
from repro.emulation import BotSwarm
from repro.mlg.blocks import Block
from repro.mlg.entity import EntityKind
from repro.mlg.server import MLGServer
from repro.workloads import (
    WORKLOADS,
    ControlWorkload,
    FarmWorkload,
    FloodWorkload,
    LagWorkload,
    PlayersWorkload,
    TNTWorkload,
    get_workload,
)


class FixedMachine:
    throttled_executions = 0
    total_executions = 0
    cpu_used_us = 0.0
    wall_observed_us = 0.0
    credits_s = 0.0

    def execute(self, work_us, parallel_fraction, now_us, **kwargs):
        return max(1, int(work_us))


def _setup(workload, seed=0):
    world = workload.create_world(seed)
    server = MLGServer("vanilla", FixedMachine(), world=world, seed=seed)
    env = get_environment("das5-2core")
    swarm = BotSwarm(server, env.network, np.random.default_rng(seed))
    workload.install(server, swarm)
    return server, swarm


def _run(server, swarm, seconds):
    server.start()
    deadline = server.clock.now_us + int(seconds * 1e6)
    while server.clock.now_us < deadline and server.running:
        server.tick()
        swarm.step()
        if server.crashed:
            break


class TestRegistry:
    def test_all_workloads_registered(self):
        assert set(WORKLOADS) == {
            "control", "tnt", "farm", "lag", "players", "flood",
            "exploration",
        }

    def test_get_workload_by_name(self):
        assert isinstance(get_workload("control"), ControlWorkload)
        assert isinstance(get_workload("TNT"), TNTWorkload)
        assert isinstance(get_workload("flood"), FloodWorkload)

    def test_unknown_workload_raises(self):
        with pytest.raises(ValueError, match="unknown workload"):
            get_workload("bedwars")

    def test_scale_validation(self):
        with pytest.raises(ValueError):
            get_workload("control", scale=0.0)

    def test_display_names(self):
        names = {cls.display_name for cls in WORKLOADS.values()}
        # The paper's five workloads plus our fluid-dominated and
        # chunk-IO-churn extensions.
        assert names == {
            "Control", "TNT", "Farm", "Lag", "Players", "Flood",
            "Exploration",
        }


class TestControl:
    def test_connects_single_observer(self):
        workload = ControlWorkload()
        server, swarm = _setup(workload)
        assert server.net.connected_count == 1
        assert not workload.player_based

    def test_world_is_generated_terrain(self):
        workload = ControlWorkload()
        world = workload.create_world(seed=1)
        world.ensure_chunk(0, 0)
        assert world.get_chunk(0, 0).blocks.any()


class TestTNT:
    def test_world_contains_tnt_cuboid(self):
        workload = TNTWorkload()
        world = workload.create_world(seed=1)
        dx, dy, dz = workload.cuboid_dims()
        assert (dx, dy, dz) == (16, 14, 16)
        assert world.count_blocks(Block.TNT) == 16 * 14 * 16

    def test_scale_grows_cuboid(self):
        workload = TNTWorkload(scale=2.0)
        assert workload.cuboid_dims() == (16, 28, 16)

    def test_ignition_at_20_seconds(self):
        workload = TNTWorkload()
        server, swarm = _setup(workload)
        _run(server, swarm, 19.5)
        assert server.entities.count(EntityKind.TNT) == 0
        _run(server, swarm, 1.5)
        assert server.entities.count(EntityKind.TNT) > 3000

    def test_explosions_follow_ignition(self):
        # Fuses are 60-170 game ticks; under overload those game ticks
        # stretch in wall time, so give the chain room to detonate.
        workload = TNTWorkload()
        server, swarm = _setup(workload)
        _run(server, swarm, 45.0)
        assert server.tnt.explosions_total > 0
        assert server.tnt.blocks_destroyed_total > 0


class TestFarm:
    def test_table3_construct_counts(self):
        counts = FarmWorkload().counts()
        assert counts == {
            "entity_farm": 12,
            "stone_farm": 4,
            "kelp_farm": 4,
            "item_sorter": 1,
        }

    def test_scale_multiplies_counts(self):
        counts = FarmWorkload(scale=2.0).counts()
        assert counts["entity_farm"] == 24
        assert counts["item_sorter"] == 1

    def test_install_registers_platforms_and_clocks(self):
        workload = FarmWorkload()
        server, swarm = _setup(workload)
        assert len(server.spawning.platforms) == 12
        assert len(server.redstone.clocks) == 4  # stone-farm timers
        assert len(server.tick_hooks) >= 4 + 4 + 1  # stone + kelp + sorter

    def test_farm_produces_entities_and_items(self):
        workload = FarmWorkload()
        server, swarm = _setup(workload)
        _run(server, swarm, 30.0)
        assert server.entities.count(EntityKind.MOB) > 0
        assert server.spawning.kills_total + server.entities.count(
            EntityKind.ITEM
        ) > 0

    def test_farm_entity_population_is_bounded(self):
        workload = FarmWorkload()
        server, swarm = _setup(workload)
        _run(server, swarm, 45.0)
        assert server.entities.count() < 600


class TestLag:
    def test_machine_built_with_tick_clocks(self):
        workload = LagWorkload()
        server, swarm = _setup(workload)
        assert len(workload.machine.clocks) == 16
        for clock in workload.machine.clocks:
            assert clock.period_ticks == 2

    def test_alternating_tick_pattern(self):
        workload = LagWorkload()
        server, swarm = _setup(workload)
        _run(server, swarm, 3.0)
        durations = [r.duration_us for r in server.tick_records]
        pulses = durations[2::2]
        rests = durations[3::2]
        assert min(pulses) > 10 * max(rests), "every-other-tick load expected"

    def test_scale_multiplies_gates(self):
        workload = LagWorkload(scale=2.0)
        server, swarm = _setup(workload)
        total = sum(c.gate_count for c in workload.machine.clocks)
        assert total == pytest.approx(2 * LagWorkload.BASE_GATES, rel=0.01)

    def test_stable_when_ticks_under_grace(self):
        workload = LagWorkload()
        server, swarm = _setup(workload)
        _run(server, swarm, 10.0)
        base = LagWorkload.BASE_GATES // 16
        for clock in workload.machine.clocks:
            assert clock.gate_count <= base * 2, "no runaway on a fast host"


class TestFlood:
    def test_world_has_reservoir_and_gates(self):
        workload = FloodWorkload()
        world = workload.create_world(seed=1)
        assert world.count_blocks(Block.WATER_SOURCE) > 1000
        gx0, gy0, gz0, gx1, gy1, gz1 = workload._gates[0]
        assert world.get_block(gx0, gy0, gz0) == Block.OBSIDIAN

    def test_breach_floods_the_basin(self):
        workload = FloodWorkload()
        server, swarm = _setup(workload)
        world = server.world
        assert world.count_blocks(Block.WATER_FLOW) == 0
        _run(server, swarm, 25.0)
        # The dam opened at T+10 s and the cascade is spreading.
        assert world.count_blocks(Block.WATER_FLOW) > 500
        gx0, gy0, gz0, *_ = workload._gates[0]
        assert world.get_block(gx0, gy0, gz0) in (
            Block.AIR, Block.WATER_FLOW,
        )

    def test_no_ambient_mobs(self):
        # The water-bedded canyon has no spawnable surface, so the fluid
        # signal is not polluted by the ambient mob population.
        workload = FloodWorkload()
        server, swarm = _setup(workload)
        _run(server, swarm, 30.0)
        assert server.entities.count(EntityKind.MOB) == 0

    def test_fluids_dominate_tick_distribution(self):
        workload = FloodWorkload()
        server, swarm = _setup(workload)
        _run(server, swarm, 40.0)
        totals = server.telemetry.bucket_totals_us
        assert max(totals, key=totals.get) == "Fluids"

    def test_scale_grows_basin(self):
        small = FloodWorkload().dims()
        large = FloodWorkload(scale=2.0).dims()
        assert large[0] > small[0] and large[1] > small[1]


class TestPlayers:
    def test_default_25_bots(self):
        workload = PlayersWorkload()
        assert workload.n_bots == 25
        assert workload.player_based

    def test_custom_bot_count(self):
        assert PlayersWorkload(n_bots=10).n_bots == 10
        assert PlayersWorkload(scale=2.0).n_bots == 50

    def test_bots_connect_staggered(self):
        workload = PlayersWorkload(n_bots=6)
        server, swarm = _setup(workload)
        _run(server, swarm, 3.0)
        assert server.net.connected_count == 6
