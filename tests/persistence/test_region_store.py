"""Region-file format and store: round trips, atomicity, crash safety."""

import numpy as np
import pytest

from repro.mlg.blocks import Block
from repro.mlg.constants import CHUNK_SIZE, WORLD_HEIGHT
from repro.mlg.world import Chunk, World
from repro.mlg.worldgen import TerrainGenerator
from repro.persistence.region import (
    RegionCorruptError,
    chunk_to_region,
    deserialize_chunk,
    read_region,
    serialize_chunk,
)
from repro.persistence.store import RegionStore, world_hash


def _random_chunk(cx: int, cz: int, seed: int) -> Chunk:
    rng = np.random.default_rng(seed)
    chunk = Chunk(cx, cz)
    shape = (CHUNK_SIZE, CHUNK_SIZE, WORLD_HEIGHT)
    chunk.blocks[:] = rng.integers(0, 12, size=shape, dtype=np.uint8)
    chunk.aux[:] = rng.integers(0, 256, size=shape, dtype=np.uint8)
    chunk.recompute_heightmap()
    return chunk


def _assert_chunks_equal(a: Chunk, b: Chunk) -> None:
    assert (a.cx, a.cz) == (b.cx, b.cz)
    np.testing.assert_array_equal(a.blocks, b.blocks)
    np.testing.assert_array_equal(a.aux, b.aux)
    np.testing.assert_array_equal(a.heightmap, b.heightmap)


class TestSerialization:
    def test_round_trip_is_bit_identical(self):
        chunk = _random_chunk(3, -7, seed=1)
        restored = deserialize_chunk(3, -7, serialize_chunk(chunk))
        _assert_chunks_equal(chunk, restored)

    def test_rejects_wrong_payload_size(self):
        with pytest.raises(ValueError, match="bytes"):
            deserialize_chunk(0, 0, b"\x00" * 10)

    def test_region_coords_floor_at_negatives(self):
        assert chunk_to_region(0, 0) == (0, 0)
        assert chunk_to_region(31, 31) == (0, 0)
        assert chunk_to_region(32, 0) == (1, 0)
        assert chunk_to_region(-1, -32) == (-1, -1)
        assert chunk_to_region(-33, 5) == (-2, 0)


class TestRegionStore:
    def test_save_load_round_trip_across_regions(self, tmp_path):
        store = RegionStore(tmp_path)
        coords = [(0, 0), (31, 31), (32, 0), (-1, -1), (-40, 7)]
        chunks = [
            _random_chunk(cx, cz, seed=i) for i, (cx, cz) in enumerate(coords)
        ]
        store.save_chunks(chunks)
        # Four distinct regions on disk, no torn temp files left behind.
        assert len(list((tmp_path / "region").glob("r.*.msr"))) == 4
        assert not list((tmp_path / "region").glob("*.tmp"))
        fresh = RegionStore(tmp_path)
        assert fresh.chunk_positions() == set(coords)
        for chunk in chunks:
            _assert_chunks_equal(chunk, fresh.load_chunk(chunk.cx, chunk.cz))
        assert fresh.load_chunk(99, 99) is None

    def test_read_modify_write_preserves_neighbours(self, tmp_path):
        first = _random_chunk(1, 1, seed=1)
        RegionStore(tmp_path).save_chunks([first])
        # A separate store instance (fresh cache) updates the same region.
        second = _random_chunk(2, 2, seed=2)
        RegionStore(tmp_path).save_chunks([second])
        fresh = RegionStore(tmp_path)
        _assert_chunks_equal(first, fresh.load_chunk(1, 1))
        _assert_chunks_equal(second, fresh.load_chunk(2, 2))

    def test_resave_overwrites_in_place(self, tmp_path):
        store = RegionStore(tmp_path)
        chunk = _random_chunk(0, 0, seed=3)
        store.save_chunks([chunk])
        chunk.blocks[0, 0, 10] = Block.STONE
        store.save_chunks([chunk])
        fresh = RegionStore(tmp_path)
        assert fresh.load_chunk(0, 0).blocks[0, 0, 10] == Block.STONE
        assert len(fresh.chunk_positions()) == 1


class TestCrashSafety:
    def _store_with_three_chunks(self, tmp_path):
        store = RegionStore(tmp_path)
        chunks = [_random_chunk(i, 0, seed=i) for i in range(3)]
        store.save_chunks(chunks)
        return chunks, store.region_path(0, 0)

    def test_truncated_region_recovers_intact_chunks(self, tmp_path):
        chunks, path = self._store_with_three_chunks(tmp_path)
        data = path.read_bytes()
        # Chop into the last payload (entries are sorted by chunk coords,
        # so the tail bytes belong to chunk (2, 0)).
        path.write_bytes(data[:-10])
        fresh = RegionStore(tmp_path)
        _assert_chunks_equal(chunks[0], fresh.load_chunk(0, 0))
        _assert_chunks_equal(chunks[1], fresh.load_chunk(1, 0))
        assert fresh.load_chunk(2, 0) is None
        assert [(e.cx, e.cz) for e in fresh.corrupt] == [(2, 0)]
        assert "truncated" in fresh.corrupt[0].reason
        scan = RegionStore(tmp_path).scan()
        assert scan.chunks == 2
        assert len(scan.corrupt_entries) == 1

    def test_bit_flip_is_detected_by_crc(self, tmp_path):
        chunks, path = self._store_with_three_chunks(tmp_path)
        data = bytearray(path.read_bytes())
        data[-5] ^= 0xFF  # inside the last chunk's compressed payload
        path.write_bytes(bytes(data))
        fresh = RegionStore(tmp_path)
        _assert_chunks_equal(chunks[0], fresh.load_chunk(0, 0))
        assert fresh.load_chunk(2, 0) is None
        assert any("crc" in e.reason for e in fresh.corrupt)

    def test_foreign_file_rejected_whole(self, tmp_path):
        _chunks, path = self._store_with_three_chunks(tmp_path)
        path.write_bytes(b"not a region file at all")
        with pytest.raises(RegionCorruptError, match="magic"):
            read_region(path, 0, 0)
        fresh = RegionStore(tmp_path)
        assert fresh.load_chunk(0, 0) is None
        assert fresh.corrupt  # recorded, not silently zero-filled
        scan = RegionStore(tmp_path).scan()
        assert scan.corrupt_regions and scan.regions == 0


class TestWorldHash:
    def test_sensitive_to_content_and_stable_across_round_trip(
        self, tmp_path
    ):
        world = World(generator=TerrainGenerator(seed=5))
        for cx in range(-2, 3):
            for cz in range(-2, 3):
                world.ensure_chunk(cx, cz)
        digest = world_hash(world)
        assert digest == world_hash(world)
        store = RegionStore(tmp_path)
        store.save_chunks(list(world.loaded_chunks()))
        # A world restored entirely from disk hashes identically.
        restored = World(loader=RegionStore(tmp_path).load_chunk)
        for cx, cz in store.chunk_positions():
            restored.ensure_chunk(cx, cz)
        assert world_hash(restored) == digest
        change = world.set_block(0, 100, 0, Block.STONE, log=False)
        assert change is not None  # y=100 is above this terrain: a real write
        assert world_hash(world) != digest
