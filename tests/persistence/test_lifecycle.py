"""Chunk lifecycle: autosave scheduling, flush spikes, eviction invariants."""

import numpy as np
import pytest

from repro.cloud.providers import get_environment
from repro.mlg.blocks import Block
from repro.mlg.server import MLGServer
from repro.mlg.workreport import Op
from repro.mlg.world import World
from repro.mlg.worldgen import TerrainGenerator
from repro.persistence.lifecycle import ChunkLifecycle
from repro.persistence.store import RegionStore


def _machine(seed=1):
    return get_environment("das5-2core").create_machine(seed=seed)


def _server(tmp_path=None, *, generator_seed=9, **knobs):
    world = World(generator=TerrainGenerator(seed=generator_seed))
    if tmp_path is not None:
        knobs.setdefault("world_dir", str(tmp_path / "world"))
    return MLGServer("vanilla", _machine(), world=world, seed=3, **knobs)


class TestAutosave:
    def test_interval_save_charges_autosave_bucket(self, tmp_path):
        server = _server(tmp_path, autosave_interval_s=2.0)
        server.world.set_block(8, 80, 8, Block.STONE, log=False)
        server.run_for(5.0)
        saves = [
            r.breakdown_us.get("Autosave", 0.0) for r in server.tick_records
        ]
        assert sum(saves) > 0
        assert server.lifecycle.autosaves >= 2
        assert server.disk_bytes_written > 0
        assert (tmp_path / "world" / "region").is_dir()
        # Saved chunks are clean again afterwards.
        assert server.lifecycle.dirty_count() == 0

    def test_incremental_saves_are_bounded_per_tick(self, tmp_path):
        server = _server(
            tmp_path, autosave_interval_s=2.0, autosave_flush_every=0
        )
        # Dirty a large area: far more chunks than one tick's save batch.
        server.world.fill(0, 60, 0, 159, 60, 159, Block.STONE)
        writes = []
        original = server.lifecycle.store.save_chunks
        server.lifecycle.store.save_chunks = lambda chunks: writes.append(
            len(chunks)
        ) or original(chunks)
        server.run_for(3.0)
        per_tick = [
            r.breakdown_us.get("Autosave", 0.0) for r in server.tick_records
        ]
        cost = server.variant.cost_of(Op.CHUNK_SAVE)
        cap = ChunkLifecycle.SAVE_CHUNKS_PER_TICK * cost
        assert max(per_tick) > 0
        assert max(per_tick) <= cap + 1e-6
        # The backlog drains across several consecutive ticks.
        assert sum(1 for us in per_tick if us > 0) >= 3
        # The 100-chunk backlog spans one region: the drain charges work
        # per tick but stages the bytes, rewriting the region file once
        # per cycle — not once per 16-chunk batch.
        assert len(writes) == 1 and writes[0] == 100

    def test_full_flush_produces_the_tick_spike(self, tmp_path):
        server = _server(
            tmp_path, autosave_interval_s=1.0, autosave_flush_every=1
        )
        # A 100-chunk dirty backlog, flushed in one tick (flush_every=1).
        server.world.fill(0, 60, 0, 159, 60, 159, Block.STONE)
        server.run_for(2.0)
        per_tick = [
            r.breakdown_us.get("Autosave", 0.0) for r in server.tick_records
        ]
        cost = server.variant.cost_of(Op.CHUNK_SAVE)
        cap = ChunkLifecycle.SAVE_CHUNKS_PER_TICK * cost
        assert server.lifecycle.full_flushes >= 1
        # The save-all flush writes far more than an incremental batch in
        # one tick — the classic autosave spike.
        assert max(per_tick) == pytest.approx(100 * cost)
        assert max(per_tick) > 3 * cap

    def test_no_store_means_no_real_saves(self):
        server = _server(None, max_loaded_chunks=500)
        server.world.set_block(8, 80, 8, Block.STONE, log=False)
        server.run_for(2.0)
        assert server.lifecycle is not None
        assert server.lifecycle.chunks_saved == 0
        assert server.disk_bytes_written == 0

    def test_storeless_lifecycle_keeps_synthetic_disk_metric(self):
        # Eviction/warm-cache without a world_dir: no region IO, but the
        # legacy 4 KiB/dirty-chunk model still feeds disk_bytes_written —
        # without clearing dirty flags (eviction safety relies on them),
        # and charging each dirtied chunk once, not once per interval.
        server = _server(None, max_loaded_chunks=500)
        server.world.set_block(8, 80, 8, Block.STONE, log=False)
        server.run_for(95.0, max_ticks=1925)  # two autosave intervals
        assert server.lifecycle.chunks_saved == 0
        assert server.disk_bytes_written == 4096
        assert server.world.get_chunk(0, 0).dirty


class TestEviction:
    def _grow(self, server, n_side=12):
        """Force an n_side² chunk square into memory (no players)."""
        for cx in range(n_side):
            for cz in range(n_side):
                server.world.ensure_chunk(cx, cz)

    def test_never_evicts_dirty_chunks(self, tmp_path):
        server = _server(
            tmp_path, autosave_interval_s=1000.0, max_loaded_chunks=10
        )
        self._grow(server)
        for chunk in server.world.loaded_chunks():
            chunk.dirty = True
        server.run_for(2.0)
        # Way over the cap, but nothing was clean: nothing may be dropped.
        assert server.world.loaded_chunk_count == 144
        assert server.lifecycle.chunks_evicted == 0

    def test_evicts_clean_chunks_down_to_the_cap(self, tmp_path):
        server = _server(
            tmp_path, autosave_interval_s=1.0, max_loaded_chunks=10
        )
        self._grow(server)
        reference = server.world.get_chunk(0, 0).blocks.copy()
        # Generated chunks start clean but unsaved; autosave persists
        # them incrementally, after which eviction may drop them.
        server.run_for(15.0)
        assert server.lifecycle.chunks_saved == 144
        assert server.world.loaded_chunk_count == 10
        assert server.lifecycle.chunks_evicted >= 134
        # An evicted chunk streams back bit-identically, as a disk load.
        assert not server.world.has_chunk(0, 0)
        chunk, source = server.world.ensure_chunk_tracked(0, 0)
        assert source == "loaded"
        np.testing.assert_array_equal(chunk.blocks, reference)

    def test_view_chunks_are_never_evicted(self, tmp_path):
        server = _server(
            tmp_path, autosave_interval_s=1.0, max_loaded_chunks=1
        )
        server.connect_client("p", 8.0, 8.0, 1000, 1000, view_distance=3)
        server.run_for(10.0)
        view_span = 2 * (3 + ChunkLifecycle.EVICT_MARGIN) + 1
        # The whole view square (with margin) stays resident despite the
        # absurd cap of one chunk.
        assert server.world.loaded_chunk_count >= (2 * 3 + 1) ** 2
        assert server.world.loaded_chunk_count <= view_span**2
        assert server.world.has_chunk(0, 0)

    def test_player_reentry_reloads_evicted_view_chunks(self, tmp_path):
        """The view-path half of the churn cycle: a chunk a player has
        already been sent must stream back in when they re-enter it
        after eviction (their loaded_chunks memory must not mask it)."""
        from repro.mlg.workreport import WorkReport

        server = _server(
            tmp_path, autosave_interval_s=1.0, max_loaded_chunks=20
        )
        server.connect_client("p", 8.0, 8.0, 1000, 1000, view_distance=2)
        conn = server.players.players[1]
        # March far away: the origin view leaves every anchor...
        conn.x, conn.z = 400.0, 400.0
        server.players._load_view(conn, WorkReport())
        server.run_for(5.0)  # autosave persists, eviction drops origin
        assert not server.world.has_chunk(0, 0)
        # ...and re-entering must reload it from disk, charged as such.
        conn.x, conn.z = 8.0, 8.0
        report = WorkReport()
        server.players._load_view(conn, report)
        assert report.get(Op.CHUNK_LOAD) >= 1
        assert server.world.has_chunk(0, 0)

    def test_unsaveable_unregenerable_chunks_stay_resident(self):
        # No generator, no store: eviction has nowhere to bring chunks
        # back from, so even clean chunks must stay.
        world = World()
        world.fill(0, 10, 0, 100, 10, 100, Block.STONE)
        for chunk in world.loaded_chunks():
            chunk.dirty = False
        server = MLGServer(
            "vanilla", _machine(), world=world, seed=3, max_loaded_chunks=2
        )
        server.run_for(2.0)
        assert world.loaded_chunk_count == 49
        assert server.lifecycle.chunks_evicted == 0


class TestSimulationAnchors:
    """Eviction must not pull terrain out from under active simulation
    state — fluid queues, redstone nets, and entities all read the world
    through the AIR-for-unloaded bulk queries."""

    def test_anchor_sources_include_a_one_chunk_ring(self):
        server = _server(None, max_loaded_chunks=1000)
        server.world.set_block(85, 40, 85, Block.WATER_SOURCE, log=False)
        server.fluids.schedule(85, 40, 85)  # chunk (5, 5)
        server.entities.spawn("mob", 200.0, 70.0, 200.0)  # chunk (12, 12)
        server.redstone.register_observer(300, 40, 300)  # chunk (18, 18)
        anchors = server.simulation_anchor_chunks()
        for center in ((5, 5), (12, 12), (18, 18)):
            for dx in (-1, 0, 1):
                for dz in (-1, 0, 1):
                    assert (center[0] + dx, center[1] + dz) in anchors

    def test_entity_chunks_survive_eviction(self, tmp_path):
        server = _server(
            tmp_path, autosave_interval_s=1.0, max_loaded_chunks=5
        )
        for cx in range(10):
            for cz in range(10):
                server.world.ensure_chunk(cx, cz)
        server.entities.spawn("mob", 100.0, 90.0, 100.0)  # chunk (6, 6)
        server.run_for(10.0)
        # Everything else was saved and evicted down toward the cap, but
        # the mob's chunk (and its ring) stayed resident.
        assert server.lifecycle.chunks_evicted > 0
        for dx in (-1, 0, 1):
            for dz in (-1, 0, 1):
                assert server.world.has_chunk(6 + dx, 6 + dz)


class TestPersistenceOffBitIdentity:
    def test_default_server_has_no_lifecycle(self):
        server = _server(None)
        assert server.lifecycle is None

    def test_disabled_persistence_matches_plain_run(self):
        """world_dir=None must leave the simulation bit-identical."""

        def run(**knobs):
            server = _server(None, **knobs)
            server.connect_client("p", 8.0, 8.0, 1000, 1000, 4)
            records = server.run_for(6.0)
            return [
                (r.work_us, r.duration_us, r.breakdown_us) for r in records
            ]

        assert run() == run()

    def test_legacy_autosave_model_still_runs_without_store(self):
        server = _server(None)
        server.world.set_block(1, 80, 1, Block.STONE, log=False)
        server.run_for(46.0, max_ticks=925)
        assert server.disk_bytes_written > 0  # the 4 KiB/dirty-chunk model


class TestLoaderPriority:
    def test_live_store_wins_over_warm_cache(self, tmp_path):
        cache_dir = tmp_path / "cache"
        world = World(generator=TerrainGenerator(seed=9))
        world.ensure_chunk(0, 0)
        RegionStore(cache_dir).save_chunks(list(world.loaded_chunks()))

        live_dir = tmp_path / "live"
        modified = world.get_chunk(0, 0)
        modified.blocks[0, 0, 120] = Block.TNT
        RegionStore(live_dir).save_chunks([modified])

        server = MLGServer(
            "vanilla",
            _machine(),
            world=World(generator=TerrainGenerator(seed=9)),
            world_dir=str(live_dir),
            world_cache_dir=str(cache_dir),
        )
        chunk, source = server.world.ensure_chunk_tracked(0, 0)
        assert source == "loaded"
        assert chunk.blocks[0, 0, 120] == Block.TNT

    def test_cache_misses_fall_back_to_generation(self, tmp_path):
        server = MLGServer(
            "vanilla",
            _machine(),
            world=World(generator=TerrainGenerator(seed=9)),
            world_cache_dir=str(tmp_path / "empty-cache"),
        )
        _chunk, source = server.world.ensure_chunk_tracked(5, 5)
        assert source == "generated"


class TestLifecycleValidation:
    def test_bad_knobs_raise(self):
        world = World()
        with pytest.raises(ValueError, match="interval"):
            ChunkLifecycle(world, autosave_interval_ticks=0)
        with pytest.raises(ValueError, match="max_loaded_chunks"):
            ChunkLifecycle(world, max_loaded_chunks=0)
