"""End-to-end ``repro report``: rendered from sidecars, byte-stable."""

import json
import shutil

import pytest

from repro.campaign import JobStore
from repro.campaign.cli import main


SPEC = {
    "name": "report-tiny",
    "servers": ["vanilla", "papermc"],
    "workloads": ["control"],
    "environments": ["das5-2core"],
    "bot_counts": [4],
    "iterations": 2,
    "duration_s": 1.5,
    "inter_iteration_gap_s": 0.0,
    "seed": 3,
    "trace": True,
    "slow_tick_factor": 0.5,
    "system": {"max_load_1m": 1e9},
    "output": {
        "html": "report.html",
        "pivots": [
            {
                "title": "median p99 tick (ms)",
                "value": "tick_p99_ms",
                "agg": "median",
                "csv": "p99.csv",
            }
        ],
        "plots": [
            {"kind": "matrix", "metric": "tick_p50_ms", "x": "iteration"},
            {"kind": "warmup"},
            {"kind": "anomalies"},
            {"kind": "trajectory"},
        ],
    },
}


@pytest.fixture(scope="module")
def campaign(tmp_path_factory):
    """One tiny traced campaign, run once and shared read-only."""
    tmp = tmp_path_factory.mktemp("report-campaign")
    spec = dict(SPEC, output_dir=str(tmp / "out"))
    spec_path = tmp / "campaign.json"
    spec_path.write_text(json.dumps(spec))
    assert main(["run", str(spec_path), "--quiet"]) == 0
    return tmp


def tree_bytes(root):
    return {
        path.relative_to(root): path.read_bytes()
        for path in sorted(root.rglob("*"))
        if path.is_file()
    }


class TestReportRendering:
    def test_report_renders_from_sidecars_alone(
        self, campaign, tmp_path, capsys
    ):
        out_dir = campaign / "out"
        # Shards gone: the report must not need them (sidecars only).
        stash = tmp_path / "shards"
        shutil.copytree(out_dir / "jobs", stash)
        shutil.rmtree(out_dir / "jobs")
        try:
            assert main(["report", str(out_dir),
                         "--out", str(tmp_path / "r")]) == 0
        finally:
            shutil.copytree(stash, out_dir / "jobs")
        html = (tmp_path / "r" / "report.html").read_text()
        assert "report-tiny" in html
        assert "median p99 tick (ms)" in html
        assert "<svg" in html
        # Sidecar-less shards make every job "incomplete": partial banner.
        assert "PARTIAL" in html

    def test_report_outputs_and_hygiene_banner(self, campaign, capsys):
        out_dir = campaign / "out"
        assert main(["report", str(out_dir)]) == 0
        stdout = capsys.readouterr().out
        assert "measurement hygiene:" in stdout
        report_dir = out_dir / "report"
        html = (report_dir / "report.html").read_text()
        # Hygiene banner leads the report, sourced from the manifest.
        assert 'class="banner banner-pass"' in html or (
            'class="banner banner-warn"' in html
        )
        assert "PARTIAL" not in html
        # Pivot CSV and the grid CSV share the figure pipeline's columns.
        assert (report_dir / "p99.csv").read_text().startswith("server,")
        grid_header = (
            (report_dir / "report_grid.csv").read_text().splitlines()[0]
        )
        from repro.analysis.figures import campaign_grid

        merged = JobStore(out_dir).merge()
        assert grid_header == ",".join(campaign_grid(merged).rows[0])

    def test_double_render_is_byte_identical(self, campaign, tmp_path):
        out_dir = campaign / "out"
        assert main(["report", str(out_dir),
                     "--out", str(tmp_path / "r1")]) == 0
        assert main(["report", str(out_dir),
                     "--out", str(tmp_path / "r2")]) == 0
        first = tree_bytes(tmp_path / "r1")
        second = tree_bytes(tmp_path / "r2")
        assert first == second
        assert first  # rendered something

    def test_update_output_never_touches_job_shards(
        self, campaign, capsys
    ):
        out_dir = campaign / "out"
        before = {
            path: (path.stat().st_mtime_ns, path.read_bytes())
            for path in sorted(out_dir.rglob("*"))
            if path.is_file() and path.parts[-2] in ("jobs", "telemetry")
        }
        edited = dict(SPEC, output_dir=str(out_dir))
        edited["output"] = {
            "pivots": [
                {"title": "mean ISR", "value": "isr", "csv": "isr.csv"}
            ],
            "plots": [{"kind": "matrix", "metric": "isr"}],
        }
        spec_path = campaign / "edited.json"
        spec_path.write_text(json.dumps(edited))
        assert main(["report", str(spec_path), "--update-output"]) == 0
        after = {
            path: (path.stat().st_mtime_ns, path.read_bytes())
            for path in sorted(out_dir.rglob("*"))
            if path.is_file() and path.parts[-2] in ("jobs", "telemetry")
        }
        assert before == after
        # The manifest persisted the new output: section...
        manifest = JobStore(out_dir).read_manifest()
        assert manifest["spec"]["output"] == edited["output"]
        # ...and the re-render reflects it.
        html = (out_dir / "report" / "report.html").read_text()
        assert "mean ISR" in html
        assert (out_dir / "report" / "isr.csv").exists()
        # A directory re-render now uses the persisted section too.
        assert main(["report", str(out_dir)]) == 0
        # Restore the original output: section for the tests that follow
        # (the fixture campaign is shared module-wide).
        assert main(
            ["report", str(campaign / "campaign.json"), "--update-output"]
        ) == 0

    def test_partial_campaign_renders_with_banner(
        self, campaign, tmp_path, capsys
    ):
        partial = tmp_path / "partial"
        shutil.copytree(campaign / "out", partial)
        victim = sorted((partial / "jobs").glob("*.json"))[0]
        victim.unlink()
        assert main(["report", str(partial)]) == 0
        captured = capsys.readouterr()
        assert "partial campaign" in captured.err
        html = (partial / "report" / "report.html").read_text()
        assert "PARTIAL" in html
        assert "1 of 2 job(s) complete" in html

    def test_trajectory_panel_reads_bench_history(
        self, campaign, tmp_path
    ):
        bench = tmp_path / "benchmarks"
        (bench / "out").mkdir(parents=True)
        (bench / "BENCH_fig11.json").write_text(
            json.dumps(
                {
                    "calibration_s": 0.01,
                    "tolerance": 0.2,
                    "figures": {"benchmarks/bench_x.py": 1.0},
                    "provenance": {"captured_at": "2026-08-08"},
                }
            )
        )
        (bench / "out" / "perf_history.jsonl").write_text(
            json.dumps(
                {
                    "kind": "gate",
                    "status": "ok",
                    "machine_factor": 1.0,
                    "captured_at": "2026-08-08T00:00:00",
                    "figures": {
                        "benchmarks/bench_x.py": {"ratio": 0.85}
                    },
                }
            )
            + "\n"
        )
        assert main(
            [
                "report",
                str(campaign / "out"),
                "--out",
                str(tmp_path / "r"),
                "--bench-dir",
                str(bench),
            ]
        ) == 0
        html = (tmp_path / "r" / "report.html").read_text()
        assert "committed budget" in html
        assert "1 baseline-gate run(s)" in html


class TestManifestHygiene:
    def test_provenance_carries_hygiene_outside_the_digest(
        self, campaign
    ):
        provenance = JobStore(campaign / "out").read_manifest()[
            "provenance"
        ]
        hygiene = provenance["hygiene"]
        assert hygiene["status"] in ("pass", "warn")
        assert hygiene["requests"] == {"max_load_1m": 1e9}
        assert {p["probe"] for p in hygiene["probes"]} >= {
            "governor",
            "load_1m",
        }

    def test_output_section_is_outside_the_measurement_fingerprint(self):
        from repro.tracing.provenance import (
            measurement_config,
            provenance_fingerprint,
        )

        base = dict(SPEC, output_dir="a")
        edited = dict(SPEC, output_dir="b", output={"html": "x.html"})
        assert provenance_fingerprint(measurement_config(base))[
            "fingerprint"
        ] == provenance_fingerprint(measurement_config(edited))[
            "fingerprint"
        ]

    def test_resume_ignores_output_edits(self):
        from repro.campaign.executor import _ensure_spec_unchanged

        recorded = dict(SPEC, output_dir="x")
        current = dict(recorded, output={"html": "other.html"})
        _ensure_spec_unchanged(recorded, current, "x")  # must not raise
        with pytest.raises(ValueError, match="spec changed"):
            _ensure_spec_unchanged(
                recorded, dict(recorded, duration_s=99.0), "x"
            )


class TestOutputValidation:
    def test_unknown_metric_rejected_at_spec_load(self):
        from repro.campaign.spec import CampaignSpec

        bad = dict(SPEC, output={"pivots": [{"value": "nope"}]})
        with pytest.raises(ValueError, match="unknown metric"):
            CampaignSpec.from_dict(bad)

    def test_unknown_output_key_rejected(self):
        from repro.reporting.spec import validate_output

        with pytest.raises(ValueError, match="unknown keys"):
            validate_output({"htlm": "typo.html"})

    def test_bad_system_section_rejected(self):
        from repro.campaign.spec import CampaignSpec

        with pytest.raises(ValueError, match="must be a boolean"):
            CampaignSpec.from_dict(dict(SPEC, system={"disable_smt": "yes"}))
        with pytest.raises(ValueError, match="CPU indices"):
            CampaignSpec.from_dict(
                dict(SPEC, system={"isolate_cpus": ["a"]})
            )

    def test_empty_output_section_means_default_report(self):
        from repro.reporting.spec import OutputSpec, default_output

        parsed = OutputSpec.from_dict({})
        defaults = default_output()
        assert [p.label() for p in parsed.pivots] == [
            p.label() for p in defaults.pivots
        ]
        assert [p.label() for p in parsed.plots] == [
            p.label() for p in defaults.plots
        ]
