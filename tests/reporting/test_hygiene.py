"""Hygiene probes against a faked sysfs/procfs root."""

import pytest

from repro.reporting.hygiene import HYGIENE_PROBES, hygiene_snapshot


def fake_host(
    tmp_path,
    governor="performance",
    smt="0",
    aslr="0",
    boost="0",
):
    """Materialize the sysfs/procfs files the probes read."""
    cpufreq = tmp_path / "sys/devices/system/cpu/cpu0/cpufreq"
    cpufreq.mkdir(parents=True)
    (cpufreq / "scaling_governor").write_text(governor + "\n")
    smt_dir = tmp_path / "sys/devices/system/cpu/smt"
    smt_dir.mkdir(parents=True)
    (smt_dir / "active").write_text(smt + "\n")
    proc = tmp_path / "proc/sys/kernel"
    proc.mkdir(parents=True)
    (proc / "randomize_va_space").write_text(aslr + "\n")
    boost_dir = tmp_path / "sys/devices/system/cpu/cpufreq"
    boost_dir.mkdir(parents=True, exist_ok=True)
    (boost_dir / "boost").write_text(boost + "\n")
    return tmp_path


def by_probe(snapshot):
    return {finding["probe"]: finding for finding in snapshot["probes"]}


class TestProbes:
    def test_quiet_host_with_requests_passes(self, tmp_path):
        root = fake_host(tmp_path)
        snapshot = hygiene_snapshot(
            {
                "governor": "performance",
                "disable_smt": True,
                "disable_aslr": True,
                "disable_boost": True,
                "max_load_1m": 1e9,
            },
            root=root,
        )
        assert snapshot["status"] == "pass"
        assert snapshot["warn_count"] == 0
        findings = by_probe(snapshot)
        for probe in ("governor", "smt", "aslr", "boost", "load_1m"):
            assert findings[probe]["status"] == "ok", findings[probe]

    def test_unmet_requests_warn(self, tmp_path):
        root = fake_host(
            tmp_path, governor="ondemand", smt="1", aslr="2", boost="1"
        )
        snapshot = hygiene_snapshot(
            {
                "governor": "performance",
                "disable_smt": True,
                "disable_aslr": True,
                "disable_boost": True,
            },
            root=root,
        )
        assert snapshot["status"] == "warn"
        findings = by_probe(snapshot)
        for probe in ("governor", "smt", "aslr", "boost"):
            assert findings[probe]["status"] == "warn", findings[probe]
        assert snapshot["warn_count"] >= 4
        assert "'performance'" in findings["governor"]["detail"]

    def test_non_performance_governor_warns_even_unrequested(
        self, tmp_path
    ):
        root = fake_host(tmp_path, governor="powersave")
        snapshot = hygiene_snapshot(root=root)
        assert by_probe(snapshot)["governor"]["status"] == "warn"

    def test_observed_only_conditions_are_info_not_warn(self, tmp_path):
        # No requests: SMT on / ASLR on / boost on are recorded, not
        # punished — the banner must not cry wolf on default hosts.
        root = fake_host(tmp_path, smt="1", aslr="2", boost="1")
        snapshot = hygiene_snapshot(root=root)
        findings = by_probe(snapshot)
        for probe in ("smt", "aslr", "boost"):
            assert findings[probe]["status"] == "info", findings[probe]
        assert snapshot["status"] == "pass"

    def test_unreadable_knobs_report_unknown_and_never_raise(
        self, tmp_path
    ):
        snapshot = hygiene_snapshot(
            {"governor": "performance"}, root=tmp_path / "nothing-here"
        )
        findings = by_probe(snapshot)
        for probe in ("governor", "smt", "aslr", "boost"):
            assert findings[probe]["status"] == "unknown"
            assert findings[probe]["observed"] is None
        # unknown is not a warning: absence of evidence stays neutral
        assert all(
            finding["status"] != "warn"
            for probe, finding in findings.items()
            if probe in ("governor", "smt", "aslr", "boost")
        )

    def test_intel_pstate_no_turbo_fallback(self, tmp_path):
        root = fake_host(tmp_path)
        (
            tmp_path / "sys/devices/system/cpu/cpufreq/boost"
        ).unlink()
        pstate = tmp_path / "sys/devices/system/cpu/intel_pstate"
        pstate.mkdir()
        (pstate / "no_turbo").write_text("0\n")
        snapshot = hygiene_snapshot({"disable_boost": True}, root=root)
        boost = by_probe(snapshot)["boost"]
        assert boost["status"] == "warn"
        assert boost["observed"] is True

    def test_load_ceiling(self, tmp_path):
        root = fake_host(tmp_path)
        low = hygiene_snapshot({"max_load_1m": 0.000001}, root=root)
        assert by_probe(low)["load_1m"]["status"] == "warn"
        high = hygiene_snapshot({"max_load_1m": 1e9}, root=root)
        assert by_probe(high)["load_1m"]["status"] == "ok"

    def test_snapshot_is_json_shaped(self, tmp_path):
        import json

        snapshot = hygiene_snapshot(
            {"isolate_cpus": [0, 1]}, root=fake_host(tmp_path)
        )
        json.dumps(snapshot)  # must not raise
        assert set(HYGIENE_PROBES) >= {
            finding["probe"] for finding in snapshot["probes"]
        } - {"affinity", "load_1m"}
