"""SVG panel renderers over synthetic data (no campaign required)."""

from repro.reporting.dataset import JobView
from repro.reporting.spec import PlotSpec
from repro.reporting.svg import (
    anomaly_strip,
    matrix_plot,
    trajectory_panel,
    warmup_panel,
)


def make_job(job_id="aaaa1111", windows=None, anomalies=None):
    line = {
        "iteration": 0,
        "telemetry": {"tick": {"windows": windows or {}}},
    }
    return JobView(
        job={
            "job_id": job_id,
            "index": 0,
            "server": "vanilla",
            "workload": "control",
            "environment": "das5-2core",
            "scale": 1.0,
            "n_bots": 25,
            "behavior": "bounded-random",
        },
        done=True,
        expected_iterations=1,
        lines=[line] if windows is not None else [],
        anomalies=anomalies or [],
    )


def matrix_rows():
    rows = []
    for server in ("vanilla", "papermc"):
        for workload in ("control", "farm"):
            for iteration in range(3):
                rows.append(
                    {
                        "server": server,
                        "workload": workload,
                        "iteration": iteration,
                        "tick_p99_ms": 10.0 + iteration,
                    }
                )
    return rows


class TestMatrixPlot:
    def test_facets_series_and_legend(self):
        svg = matrix_plot(matrix_rows(), PlotSpec())
        assert svg.count("facet-title") == 2  # control + farm panels
        assert "workload = control" in svg
        assert 'class="legend"' in svg
        assert "papermc" in svg and "vanilla" in svg
        assert "series-line series-1" in svg
        assert "series-line series-2" in svg
        assert "<title>" in svg  # native tooltips on markers

    def test_render_is_deterministic(self):
        spec = PlotSpec(metric="tick_p99_ms")
        assert matrix_plot(matrix_rows(), spec) == matrix_plot(
            matrix_rows(), spec
        )

    def test_series_beyond_the_slot_cap_fold_with_a_note(self):
        rows = [
            {"server": f"s{i:02d}", "workload": "w", "iteration": 0,
             "tick_p99_ms": 1.0}
            for i in range(10)
        ]
        svg = matrix_plot(rows, PlotSpec())
        assert "2 series beyond the first 8 are not drawn" in svg
        assert "series-9" not in svg

    def test_no_data_renders_an_empty_note(self):
        assert "no data" in matrix_plot([], PlotSpec())


class TestWarmupPanel:
    def test_steady_job_gets_marker_and_annotation(self):
        job = make_job(
            windows={
                "recent_covs": [0.4, 0.2, 0.05, 0.04],
                "steady": True,
                "steady_since_window": 2,
                "n_windows": 4,
                "warmup_samples": 240,
            }
        )
        svg = warmup_panel([job])
        assert "steady-marker" in svg
        assert "steady @ w2 (240 warmup ticks)" in svg
        assert "vanilla control" in svg

    def test_warming_job_says_so(self):
        job = make_job(
            windows={
                "recent_covs": [0.5, 0.4],
                "steady": False,
                "steady_since_window": None,
                "n_windows": 2,
            }
        )
        svg = warmup_panel([job])
        assert "still warming up" in svg
        assert "steady-marker" not in svg

    def test_no_windows_renders_empty_note(self):
        assert "no windowed telemetry" in warmup_panel([make_job()])


class TestAnomalyStrip:
    def anomaly(self, tick, bucket):
        return {
            "iteration": 0,
            "tick": tick,
            "duration_us": 250000,
            "factor": 5.0,
            "breakdown_us": {bucket: 200000.0, "Other": 1000.0},
        }

    def test_autosave_dominated_ticks_use_second_slot(self):
        job = make_job(
            anomalies=[
                self.anomaly(10, "Entities"),
                self.anomaly(50, "Autosave"),
                self.anomaly(70, "Chunk Load"),
            ]
        )
        svg = anomaly_strip([job])
        assert svg.count("series-bgfill-1") == 1  # the Entities tick
        assert svg.count("series-bgfill-2") == 2  # autosave + chunk IO
        assert "autosave/chunk-IO dominated" in svg
        assert "5.0x budget" in svg

    def test_no_anomalies_renders_empty_note(self):
        assert "no slow-tick anomalies" in anomaly_strip([make_job()])


class TestTrajectoryPanel:
    def entry(self, status, ratio):
        return {
            "kind": "gate",
            "status": status,
            "machine_factor": 1.0,
            "captured_at": "2026-08-08T00:00:00",
            "figures": {
                "benchmarks/bench_x.py": {"ratio": ratio},
                "benchmarks/bench_y.py": {"ratio": ratio / 2},
            },
        }

    def test_history_draws_budget_line_and_series(self):
        history = [self.entry("ok", 0.8), self.entry("regression", 1.4)]
        svg = trajectory_panel(history, {"figures": {}, "tolerance": 0.2})
        assert "budget-line" in svg
        assert "committed budget" in svg
        assert "worst figure" in svg and "mean figure" in svg
        assert "2 baseline-gate run(s)" in svg

    def test_entries_without_ratios_are_skipped(self):
        update = {
            "kind": "update",
            "status": "updated",
            "figures": {"f": {"ratio": None}},
        }
        assert "no perf history" not in trajectory_panel(
            [update, self.entry("ok", 0.9)], None
        )
        assert "perf history has no figure ratios" in trajectory_panel(
            [update], None
        )

    def test_empty_history_renders_pointer_note(self):
        assert "no perf history yet" in trajectory_panel([], None)
