"""Pivot engine: grouping, aggregation, and the shared text renderers."""

import pytest

from repro.reporting.pivot import aggregate, build_pivot
from repro.reporting.spec import PivotSpec


def rows():
    out = []
    for server in ("vanilla", "papermc"):
        for workload in ("control", "farm"):
            for iteration in range(2):
                out.append(
                    {
                        "server": server,
                        "workload": workload,
                        "iteration": iteration,
                        "tick_p99_ms": {
                            ("vanilla", "control"): 10.0,
                            ("vanilla", "farm"): 20.0,
                            ("papermc", "control"): 5.0,
                            ("papermc", "farm"): 8.0,
                        }[(server, workload)]
                        + iteration,
                        "crashed": server == "vanilla" and workload == "farm",
                    }
                )
    return out


class TestAggregate:
    def test_all_aggregates(self):
        values = [4.0, 1.0, 3.0, 2.0]
        assert aggregate("mean", values) == 2.5
        assert aggregate("median", values) == 2.5
        assert aggregate("median", [3.0, 1.0, 2.0]) == 2.0
        assert aggregate("min", values) == 1.0
        assert aggregate("max", values) == 4.0
        assert aggregate("sum", values) == 10.0
        assert aggregate("count", values) == 4.0
        assert aggregate("std", [2.0, 2.0]) == 0.0

    def test_unknown_aggregate_raises(self):
        with pytest.raises(ValueError, match="unknown aggregate"):
            aggregate("p99", [1.0])


class TestBuildPivot:
    def test_groups_sort_and_aggregate(self):
        table = build_pivot(
            rows(),
            PivotSpec(value="tick_p99_ms", agg="mean", decimals=1),
        )
        assert table.headers() == ["server", "control", "farm"]
        # Row keys sort deterministically (papermc < vanilla).
        assert table.rows() == [
            ["papermc", "5.5", "8.5"],
            ["vanilla", "10.5", "20.5"],
        ]

    def test_missing_cells_render_dash(self):
        data = [
            {"server": "vanilla", "workload": "control", "isr": 0.5},
            {"server": "papermc", "workload": "farm", "isr": 0.25},
        ]
        table = build_pivot(data, PivotSpec(value="isr"))
        assert table.rows() == [
            ["papermc", "-", "0.250"],
            ["vanilla", "0.500", "-"],
        ]

    def test_bools_aggregate_as_rates(self):
        table = build_pivot(
            rows(),
            PivotSpec(value="crashed", agg="mean", decimals=2,
                      cols=()),
        )
        assert table.headers() == ["server", "all"]
        assert table.rows() == [["papermc", "0.00"], ["vanilla", "0.50"]]

    def test_rows_without_the_metric_are_counted_not_crashed(self):
        data = [{"server": "vanilla", "workload": "control"}] * 3
        table = build_pivot(data, PivotSpec(value="isr"))
        assert table.dropped_rows == 3
        assert table.rows() == []

    def test_ascii_and_csv_share_the_text_code_path(self, tmp_path):
        table = build_pivot(rows(), PivotSpec(value="tick_p99_ms"))
        ascii_out = table.to_ascii()
        assert "control" in ascii_out and "vanilla" in ascii_out
        csv_path = tmp_path / "pivot.csv"
        table.write_csv(csv_path)
        lines = csv_path.read_text().splitlines()
        assert lines[0] == "server,control,farm"
        assert len(lines) == 3

    def test_html_escapes_and_marks_numeric_cells(self):
        data = [{"server": "<x>", "workload": "w", "isr": 1.0}]
        html = build_pivot(data, PivotSpec(value="isr")).to_html()
        assert "&lt;x&gt;" in html
        assert '<td class="num">1.000</td>' in html


class TestVisualizationFold:
    def test_core_visualization_reexports_the_same_objects(self):
        # Satellite: one code path — core.visualization is a re-export
        # of reporting.text, so ASCII output is bit-identical by
        # construction.
        import repro.core.visualization as viz
        import repro.reporting.text as text

        for name in (
            "ascii_boxplot",
            "ascii_timeseries",
            "format_table",
            "write_csv_series",
            "write_csv_rows",
        ):
            assert getattr(viz, name) is getattr(text, name), name
