"""The obs metric registry: export validation and render determinism."""

import json

import pytest

from repro.obs import (
    OBS_METRICS,
    ObsSnapshot,
    render_json,
    render_prometheus,
    telemetry_obs_snapshot,
)
from repro.reporting.spec import SIDECAR_METRICS

#: Registry sources that are obs-plane sections, not sidecar streams
#: (mirrors lint rule MSL008's OBS_ALLOWED_SECTIONS).
SECTIONS = {"tap", "trace", "campaign"}


def sample_telemetry(wire: bool = True, trace: bool = True) -> dict:
    telemetry = {
        "tick": {
            "ticks": 120,
            "isr": 0.25,
            "overloaded_fraction": 0.1,
            "entities_last": 40,
            "entities_peak": 55,
            "breakdown_us": {"redstone": 900.0, "fluids": 300.0},
            "tick_ms": {
                "mean": 12.0,
                "p50": 11.0,
                "p95": 20.0,
                "p99": 30.0,
                "max": 44.0,
                "cov": 0.4,
            },
        },
        "response_ms": {"count": 9, "p50": 31.0, "p99": 80.0},
    }
    if wire:
        telemetry["wire"] = {
            "wire_bytes_in": {"total": 1000.0},
            "wire_bytes_out": {"total": 5000.0},
            "wire_flush_us": {"count": 12, "p99": 250.0},
            "wire_connects": {"count": 3},
        }
    if trace:
        telemetry["trace"] = {
            "enabled": True,
            "slow_ticks": 2,
            "anomaly_count": 1,
        }
    return telemetry


class TestRegistryTable:
    def test_every_source_is_a_sidecar_stream_or_section(self):
        # Runtime twin of lint rule MSL008's source check.
        for name, (mtype, source, _label, help_text) in OBS_METRICS.items():
            assert mtype in {"counter", "gauge"}, name
            assert source in SIDECAR_METRICS or source in SECTIONS, name
            assert help_text, name

    def test_naming_convention(self):
        for name, (mtype, _s, _l, _h) in OBS_METRICS.items():
            assert name.startswith("repro_"), name
            if mtype == "counter":
                assert name.endswith(("_total", "_observed")), name


class TestExportValidation:
    def test_unregistered_name_rejected(self):
        snap = ObsSnapshot()
        with pytest.raises(ValueError, match="not in the OBS_METRICS"):
            snap.export("repro_mystery_total", 1)

    def test_label_discipline(self):
        snap = ObsSnapshot()
        with pytest.raises(ValueError, match="needs a 'phase' label"):
            snap.export("repro_phase_us_total", 1.0)
        with pytest.raises(ValueError, match="takes no label"):
            snap.export("repro_ticks_total", 1, label="oops")
        snap.export("repro_phase_us_total", 2.0, label="redstone")
        snap.export("repro_phase_us_total", 3.0, label="fluids")
        assert snap.values["repro_phase_us_total"] == {
            "redstone": 2.0,
            "fluids": 3.0,
        }


class TestPrometheusRendering:
    def test_stable_sorted_and_timestamp_free(self):
        snap = telemetry_obs_snapshot(sample_telemetry())
        body = render_prometheus(snap)
        samples = [
            line
            for line in body.splitlines()
            if line and not line.startswith("#")
        ]
        names = [line.split("{")[0].split(" ")[0] for line in samples]
        assert names == sorted(names)
        # One token after the value on every sample line — i.e. no
        # trailing Prometheus timestamp field.
        for line in samples:
            assert len(line.rsplit("} ", 1)[-1].split()) <= 2
        assert body == render_prometheus(
            telemetry_obs_snapshot(sample_telemetry())
        )

    def test_help_type_and_label_shape(self):
        snap = telemetry_obs_snapshot(sample_telemetry())
        body = render_prometheus(snap)
        assert "# HELP repro_ticks_total ticks simulated so far" in body
        assert "# TYPE repro_ticks_total counter" in body
        assert 'repro_phase_us_total{phase="fluids"} 300' in body
        assert 'repro_phase_us_total{phase="redstone"} 900' in body
        assert "repro_ticks_total 120" in body  # integral stays integral

    def test_label_values_escaped(self):
        snap = ObsSnapshot()
        snap.export("repro_phase_us_total", 1.0, label='we"ird\\name')
        body = render_prometheus(snap)
        assert 'phase="we\\"ird\\\\name"' in body


class TestJsonRendering:
    def test_schema_meta_and_key_order(self):
        snap = telemetry_obs_snapshot(
            sample_telemetry(), meta={"cell": "vanilla/das5"}
        )
        doc = json.loads(render_json(snap))
        assert doc["schema"] == "repro-obs/v1"
        assert doc["meta"] == {"cell": "vanilla/das5"}
        assert doc["metrics"]["repro_ticks_total"] == 120
        assert render_json(snap) == render_json(snap)


class TestTelemetrySnapshot:
    def test_wire_and_trace_sections_are_optional(self):
        snap = telemetry_obs_snapshot(sample_telemetry(wire=False, trace=False))
        assert "repro_wire_bytes_out_total" not in snap.values
        assert "repro_slow_ticks_total" not in snap.values
        full = telemetry_obs_snapshot(sample_telemetry())
        assert full.values["repro_wire_bytes_out_total"] == 5000.0
        assert full.values["repro_slow_ticks_total"] == 2.0
        assert full.values["repro_trace_anomalies_total"] == 1.0

    def test_disabled_trace_not_exported(self):
        telemetry = sample_telemetry()
        telemetry["trace"] = {"enabled": False, "slow_ticks": 9}
        snap = telemetry_obs_snapshot(telemetry)
        assert "repro_slow_ticks_total" not in snap.values
