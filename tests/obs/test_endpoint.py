"""The obs HTTP endpoint: routes, fallback, and lifecycle."""

import urllib.error
import urllib.request

import pytest

from repro.obs import ObsHttpServer, ObsSnapshot, render_json, render_prometheus


def make_snapshot() -> ObsSnapshot:
    snap = ObsSnapshot(meta={"cell": "vanilla/players/das5/3"})
    snap.export("repro_ticks_total", 42)
    snap.export("repro_tick_ms_p50", 11.5)
    return snap


def get(url: str) -> tuple[int, str, str]:
    with urllib.request.urlopen(url, timeout=5) as response:
        return (
            response.status,
            response.read().decode("utf-8"),
            response.headers.get("Content-Type", ""),
        )


@pytest.fixture
def endpoint():
    state = {"fn": make_snapshot}
    server = ObsHttpServer(lambda: state["fn"](), port=0).start()
    try:
        yield server, state
    finally:
        server.stop(grace_s=0)


class TestRoutes:
    def test_metrics_is_prometheus_text(self, endpoint):
        server, _ = endpoint
        status, body, ctype = get(server.url)
        assert status == 200
        assert ctype.startswith("text/plain")
        assert body == render_prometheus(make_snapshot())

    def test_metrics_json_carries_meta(self, endpoint):
        server, _ = endpoint
        status, body, ctype = get(server.url + ".json")
        assert status == 200
        assert ctype.startswith("application/json")
        assert body == render_json(make_snapshot())

    def test_unknown_path_404(self, endpoint):
        server, _ = endpoint
        with pytest.raises(urllib.error.HTTPError) as err:
            get(f"http://{server.host}:{server.port}/nope")
        assert err.value.code == 404


class TestFallback:
    def test_503_before_first_successful_snapshot(self):
        def boom():
            raise RuntimeError("server not constructed yet")

        server = ObsHttpServer(boom, port=0).start()
        try:
            with pytest.raises(urllib.error.HTTPError) as err:
                get(server.url)
            assert err.value.code == 503
        finally:
            server.stop(grace_s=0)

    def test_last_good_body_survives_snapshot_failure(self, endpoint):
        server, state = endpoint
        _, good, _ = get(server.url)

        def boom():
            raise RuntimeError("racing a fold")

        state["fn"] = boom
        status, body, _ = get(server.url)
        assert status == 200
        assert body == good


class TestLifecycle:
    def test_stop_releases_the_port(self):
        server = ObsHttpServer(make_snapshot, port=0).start()
        url, port = server.url, server.port
        get(url)
        server.stop(grace_s=0)
        rebound = ObsHttpServer(make_snapshot, port=port).start()
        try:
            assert rebound.port == port
        finally:
            rebound.stop(grace_s=0)
