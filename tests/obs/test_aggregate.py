"""Campaign obs aggregation: fold semantics and monotonicity."""

from repro.obs import CampaignObsAggregate


def sidecar_line(job_id: str, ticks: int, p50: float, **extra) -> dict:
    telemetry = {
        "tick": {
            "ticks": ticks,
            "isr": extra.get("isr", 0.2),
            "overloaded_fraction": 0.0,
            "entities_last": extra.get("entities", 10),
            "entities_peak": extra.get("entities_peak", 10),
            "breakdown_us": extra.get("breakdown_us", {"redstone": 100.0}),
            "tick_ms": {
                "mean": p50,
                "p50": p50,
                "p95": p50,
                "p99": p50,
                "max": p50,
                "cov": 0.1,
            },
        },
        "response_ms": {
            "count": extra.get("samples", 4),
            "p50": extra.get("response_p50", 30.0),
            "p99": 90.0,
        },
    }
    if "wire" in extra:
        telemetry["wire"] = extra["wire"]
    if "trace" in extra:
        telemetry["trace"] = extra["trace"]
    return {"job_id": job_id, "iteration": 0, "telemetry": telemetry}


class TestFold:
    def test_counters_sum_and_gauges_tick_weight(self):
        agg = CampaignObsAggregate(n_jobs=3)
        agg.fold(sidecar_line("job-a", ticks=100, p50=10.0))
        agg.fold(sidecar_line("job-b", ticks=300, p50=20.0))
        values = agg.snapshot().values
        assert values["repro_ticks_total"] == 400
        assert values["repro_jobs_total"] == 3
        assert values["repro_jobs_observed"] == 2
        assert values["repro_iterations_total"] == 2
        # (100*10 + 300*20) / 400 — weighted by ticks, not by line.
        assert values["repro_tick_ms_p50"] == 17.5

    def test_phase_us_sums_per_bucket(self):
        agg = CampaignObsAggregate(n_jobs=1)
        agg.fold(
            sidecar_line(
                "job-a", 10, 1.0, breakdown_us={"redstone": 5.0, "fluids": 2.0}
            )
        )
        agg.fold(sidecar_line("job-a", 10, 1.0, breakdown_us={"redstone": 3.0}))
        phases = agg.snapshot().values["repro_phase_us_total"]
        assert phases == {"redstone": 8.0, "fluids": 2.0}

    def test_entities_peak_is_max_not_sum(self):
        agg = CampaignObsAggregate(n_jobs=1)
        agg.fold(sidecar_line("job-a", 10, 1.0, entities_peak=50))
        agg.fold(sidecar_line("job-a", 10, 1.0, entities_peak=30))
        assert agg.snapshot().values["repro_entities_peak"] == 50

    def test_wire_and_trace_appear_only_when_seen(self):
        agg = CampaignObsAggregate(n_jobs=1)
        agg.fold(sidecar_line("job-a", 10, 1.0))
        assert "repro_wire_bytes_out_total" not in agg.snapshot().values
        agg.fold(
            sidecar_line(
                "job-a",
                10,
                1.0,
                wire={
                    "wire_bytes_in": {"total": 10.0},
                    "wire_bytes_out": {"total": 20.0},
                    "wire_connects": {"count": 2},
                    "wire_flush_us": {"count": 5, "p99": 100.0},
                },
                trace={"enabled": True, "slow_ticks": 1, "anomaly_count": 0},
            )
        )
        values = agg.snapshot().values
        assert values["repro_wire_bytes_out_total"] == 20.0
        assert values["repro_slow_ticks_total"] == 1.0

    def test_counters_monotone_across_folds(self):
        agg = CampaignObsAggregate(n_jobs=2)
        counters = (
            "repro_ticks_total",
            "repro_response_samples_total",
            "repro_iterations_total",
        )
        previous = {name: 0.0 for name in counters}
        for index in range(5):
            agg.fold(sidecar_line(f"job-{index % 2}", ticks=7, p50=2.0))
            values = agg.snapshot().values
            for name in counters:
                assert values[name] >= previous[name]
                previous[name] = values[name]

    def test_empty_aggregate_renders_zeros(self):
        values = CampaignObsAggregate(n_jobs=4).snapshot().values
        assert values["repro_ticks_total"] == 0
        assert values["repro_jobs_observed"] == 0
        assert values["repro_tick_ms_p50"] == 0.0
