"""``repro top``: frame rendering and both polling targets."""

import io
import json

import pytest

from repro.campaign import CampaignSpec, JobPlanner, JobStore
from repro.obs import ObsHttpServer, render_top, run_top, telemetry_obs_snapshot


def sample_doc(**meta) -> dict:
    snap = telemetry_obs_snapshot(
        {
            "tick": {
                "ticks": 1234,
                "isr": 0.3,
                "overloaded_fraction": 0.05,
                "entities_last": 80,
                "entities_peak": 95,
                "breakdown_us": {"redstone": 700.0, "fluids": 300.0},
                "tick_ms": {
                    "mean": 10.0,
                    "p50": 9.0,
                    "p95": 20.0,
                    "p99": 31.0,
                    "max": 40.0,
                    "cov": 0.5,
                },
            },
            "response_ms": {"count": 17, "p50": 25.0, "p99": 70.0},
        },
        meta=meta or None,
    )
    return {"meta": snap.meta, "metrics": snap.values}


class TestRenderTop:
    def test_frame_carries_headline_numbers(self):
        frame = render_top(sample_doc(campaign="tiny"), source="out/")
        assert "repro top — tiny  [out/]" in frame
        assert "ticks 1,234" in frame
        assert "p50 9.0ms" in frame
        assert "p99 31.0ms" in frame
        assert "ISR 0.3000" in frame
        assert "overloaded 5.0%" in frame
        assert "responses 17" in frame

    def test_phase_buckets_ranked_by_share(self):
        frame = render_top(sample_doc())
        redstone = frame.index("redstone")
        fluids = frame.index("fluids")
        assert redstone < fluids
        assert "70.0%" in frame and "30.0%" in frame

    def test_hygiene_banner(self):
        doc = sample_doc(
            campaign="tiny", hygiene={"status": "warn", "warn_count": 2}
        )
        assert "HYGIENE: WARN (2 warning(s))" in render_top(doc)
        doc = sample_doc(campaign="tiny", hygiene={"status": "pass"})
        assert "hygiene: PASS" in render_top(doc)

    def test_wire_and_campaign_rows_only_when_present(self):
        frame = render_top(sample_doc())
        assert "wire in" not in frame
        assert "jobs " not in frame


class TestRunTop:
    def test_polls_an_endpoint_url(self):
        snap = telemetry_obs_snapshot(
            {
                "tick": {"ticks": 5, "tick_ms": {}},
                "response_ms": {},
            },
            meta={"cell": "vanilla/players/das5/3"},
        )
        server = ObsHttpServer(lambda: snap, port=0).start()
        try:
            out = io.StringIO()
            code = run_top(server.url, once=True, out=out)
        finally:
            server.stop(grace_s=0)
        assert code == 0
        assert "ticks 5" in out.getvalue()
        assert "vanilla/players/das5/3" in out.getvalue()

    def test_unreachable_endpoint_renders_not_crashes(self):
        out = io.StringIO()
        code = run_top("http://127.0.0.1:1/metrics", once=True, out=out)
        assert code == 0
        assert "unreachable" in out.getvalue()

    def test_follows_a_campaign_directory(self, tmp_path):
        spec = CampaignSpec(
            name="topdir",
            servers=["vanilla"],
            workloads=["control"],
            environments=["das5-2core"],
            iterations=2,
            duration_s=1.0,
            seed=3,
            output_dir=str(tmp_path / "out"),
        )
        plan = JobPlanner(spec).plan()
        store = JobStore(spec.output_dir)
        store.write_manifest(
            spec,
            plan,
            provenance={"hygiene": {"status": "pass", "warn_count": 0}},
        )
        store.telemetry_dir.mkdir(parents=True, exist_ok=True)
        sidecar = {
            "job_id": plan[0].job_id,
            "iteration": 0,
            "telemetry": {
                "tick": {"ticks": 99, "tick_ms": {"p50": 8.0}},
                "response_ms": {"count": 1, "p50": 20.0, "p99": 20.0},
            },
        }
        store.telemetry_path(plan[0].job_id).write_text(
            json.dumps(sidecar) + "\n"
        )
        out = io.StringIO()
        code = run_top(
            str(store.root), interval_s=0.01, max_polls=2, out=out
        )
        assert code == 0
        frame = out.getvalue()
        assert "repro top — topdir" in frame
        assert "hygiene: PASS" in frame
        assert "ticks 99" in frame
        assert f"jobs 1/{len(plan)} observed" in frame

    def test_directory_without_manifest_is_an_error(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="manifest"):
            run_top(str(tmp_path), once=True, out=io.StringIO())
