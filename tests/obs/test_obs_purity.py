"""The obs=False contract: observing a run must not change the run.

Three executions of the same tiny campaign: two with the obs plane off
(byte-identical, the obs code must be fully inert when disabled) and one
serving a live endpoint that is actively scraped mid-run.  The scraped
run's *measurements* — tick series, response times, telemetry, seeds —
must match the unobserved ones exactly; only the recorded obs knobs and
the provenance fingerprint may differ (the obs knobs are deliberately
fingerprinted: see ``_MEASUREMENT_FIELDS`` in tracing/provenance.py).
"""

import json
import urllib.request

from repro.campaign import CampaignExecutor, CampaignSpec, JobStore

#: Keys allowed to differ between an observed and an unobserved run.
_OBS_KEYS = {"obs", "obs_port", "obs_scrape_grace", "fingerprint"}


def tiny_spec(out_dir, **kwargs) -> CampaignSpec:
    base = dict(
        name="purity",
        servers=["vanilla"],
        workloads=["control"],
        environments=["das5-2core"],
        iterations=2,
        duration_s=1.0,
        seed=23,
        output_dir=str(out_dir),
    )
    base.update(kwargs)
    return CampaignSpec(**base)


def scrub(node):
    """Drop the obs knobs and fingerprints, recursively."""
    if isinstance(node, dict):
        return {
            key: scrub(value)
            for key, value in node.items()
            if key not in _OBS_KEYS
        }
    if isinstance(node, list):
        return [scrub(item) for item in node]
    return node


class TestObsPurity:
    def test_obs_off_is_bit_identical(self, tmp_path):
        CampaignExecutor(tiny_spec(tmp_path / "a")).run()
        CampaignExecutor(tiny_spec(tmp_path / "b")).run()
        shards_a = sorted((tmp_path / "a" / "jobs").iterdir())
        shards_b = sorted((tmp_path / "b" / "jobs").iterdir())
        assert [s.name for s in shards_a] == [s.name for s in shards_b]
        for shard, twin in zip(shards_a, shards_b):
            assert shard.read_bytes() == twin.read_bytes()

    def test_scraped_run_measures_identically(self, tmp_path):
        off = CampaignExecutor(tiny_spec(tmp_path / "off"))
        off.run()

        scrapes = []

        def scrape_progress(job, done, total):
            # The endpoint is live until run() returns: scrape it so the
            # "observed" run really is observed, not just observable.
            with urllib.request.urlopen(on.obs_url, timeout=5) as response:
                scrapes.append(response.read().decode("utf-8"))

        on = CampaignExecutor(
            tiny_spec(tmp_path / "on", obs=True, obs_port=0),
            progress=scrape_progress,
        )
        on.run()
        assert scrapes and "repro_jobs_total 1" in scrapes[0]

        off_shards = sorted((tmp_path / "off" / "jobs").iterdir())
        on_shards = sorted((tmp_path / "on" / "jobs").iterdir())
        assert [s.name for s in off_shards] == [s.name for s in on_shards]
        for shard, twin in zip(off_shards, on_shards):
            assert scrub(json.loads(shard.read_text())) == scrub(
                json.loads(twin.read_text())
            )
        # The fingerprints DIFFER by design: obs knobs are
        # measurement-classified, so an observed campaign never silently
        # poses as an unobserved one.
        off_manifest = JobStore(tmp_path / "off").read_manifest()
        on_manifest = JobStore(tmp_path / "on").read_manifest()
        assert (
            off_manifest["provenance"]["fingerprint"]
            != on_manifest["provenance"]["fingerprint"]
        )

    def test_obs_off_starts_no_endpoint(self, tmp_path):
        executor = CampaignExecutor(tiny_spec(tmp_path / "plain"))
        executor.run()
        assert executor.obs_url is None
