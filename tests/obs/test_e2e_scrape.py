"""End-to-end obs scrape: a wire loopback cell served with ``obs: true``,
scraped over HTTP while the fleet is still connected.

Asserts the scrape contract from the obs registry docstring: the body is
valid Prometheus text exposition, stable-sorted with no timestamps, and
its counters are monotone between scrapes and never exceed the final
sidecar's totals.
"""

import json
import re
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.campaign.store import JobStore
from repro.net import run_clients, serve_cell

N_BOTS = 2

#: Prometheus text exposition line shapes (no timestamp field allowed).
_SAMPLE_RE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_]+=\"[^\"]*\"\})? "
    r"-?[0-9]+(\.[0-9]+)?([eE][+-][0-9]+)?$"
)


def scrape(url: str, deadline_s: float = 20.0) -> str:
    """GET the Prometheus body, retrying through the 503 warm-up."""
    deadline = time.monotonic() + deadline_s
    while True:
        try:
            with urllib.request.urlopen(url, timeout=5) as response:
                return response.read().decode("utf-8")
        except urllib.error.HTTPError as err:
            if err.code != 503 or time.monotonic() > deadline:
                raise
            time.sleep(0.05)


def counters(body: str) -> dict[str, float]:
    """Non-help sample lines of counter families, name -> value."""
    names = set()
    for line in body.splitlines():
        match = re.match(r"^# TYPE (\S+) counter$", line)
        if match:
            names.add(match.group(1))
    values = {}
    for line in body.splitlines():
        if line.startswith("#"):
            continue
        name = line.split("{")[0].split(" ")[0]
        if name in names and "{" not in line:
            values[name] = float(line.rsplit(" ", 1)[1])
    return values


@pytest.fixture(scope="module")
def scraped_run(tmp_path_factory):
    """Serve one obs-enabled tcp cell; scrape twice while clients run."""
    root = tmp_path_factory.mktemp("obs-wire")
    out_dir = root / "campaign-out"
    spec_path = root / "wire.yaml"
    spec_path.write_text(
        json.dumps(
            {
                "name": "obs-loopback",
                "servers": ["vanilla"],
                "workloads": ["players"],
                "environments": ["das5"],
                "bot_counts": [N_BOTS],
                "iterations": 1,
                "duration_s": 2.0,
                "seed": 5,
                "transport": "tcp",
                "obs": True,
                "obs_port": 0,
                "obs_scrape_grace": 0.0,
                "output_dir": str(out_dir),
            }
        )
    )
    listening = threading.Event()
    box = {}

    def on_listen(port):
        box["port"] = port
        listening.set()

    def on_obs(url):
        box["obs_url"] = url

    def serve():
        try:
            box["serve"] = serve_cell(
                spec_path, cell=0, on_listen=on_listen, on_obs=on_obs
            )
        except BaseException as exc:
            box["error"] = exc
            listening.set()

    thread = threading.Thread(target=serve)
    thread.start()
    assert listening.wait(30), "serve_cell never bound its socket"
    if "error" in box:
        raise box["error"]
    assert "obs_url" in box, "obs: true spec must fire on_obs before listen"

    trace_out = out_dir / "telemetry" / "fleet.clientspans.jsonl"

    def clients():
        box["clients"] = run_clients(
            "127.0.0.1",
            box["port"],
            N_BOTS,
            stagger_s=0.05,
            seed=5,
            trace_out=trace_out,
        )

    fleet = threading.Thread(target=clients)
    fleet.start()
    box["scrape_1"] = scrape(box["obs_url"])
    time.sleep(0.4)
    box["scrape_2"] = scrape(box["obs_url"])
    box["scrape_json"] = scrape(box["obs_url"] + ".json")
    fleet.join(60)
    thread.join(60)
    assert not thread.is_alive(), "serve_cell did not finish"
    if "error" in box:
        raise box["error"]
    box["store"] = JobStore(out_dir)
    return box


class TestMidRunScrape:
    def test_body_is_valid_prometheus_exposition(self, scraped_run):
        body = scraped_run["scrape_1"]
        assert body.endswith("\n")
        for line in body.splitlines():
            if line.startswith("# HELP ") or line.startswith("# TYPE "):
                continue
            assert _SAMPLE_RE.match(line), f"bad sample line: {line!r}"

    def test_families_are_stable_sorted(self, scraped_run):
        for body in (scraped_run["scrape_1"], scraped_run["scrape_2"]):
            names = [
                line.split(" ")[2]
                for line in body.splitlines()
                if line.startswith("# HELP ")
            ]
            assert names == sorted(names)

    def test_counters_monotone_and_bounded_by_final_sidecar(
        self, scraped_run
    ):
        first = counters(scraped_run["scrape_1"])
        second = counters(scraped_run["scrape_2"])
        assert second["repro_ticks_total"] > 0
        for name, value in first.items():
            assert second[name] >= value, name
        store = scraped_run["store"]
        job_id = scraped_run["serve"]["job_id"]
        final = store.read_job_telemetry(job_id)[-1]["telemetry"]
        assert second["repro_ticks_total"] <= final["tick"]["ticks"]
        assert (
            second["repro_wire_bytes_out_total"]
            <= final["wire"]["wire_bytes_out"]["total"]
        )

    def test_json_body_carries_run_meta(self, scraped_run):
        doc = json.loads(scraped_run["scrape_json"])
        assert doc["schema"] == "repro-obs/v1"
        assert doc["meta"]["job_id"] == scraped_run["serve"]["job_id"]
        assert doc["meta"]["cell"]
        store = scraped_run["store"]
        assert store.read_manifest()["spec"]["obs"] is True

    def test_endpoint_down_after_chain_exits(self, scraped_run):
        with pytest.raises((urllib.error.URLError, ConnectionError, OSError)):
            urllib.request.urlopen(scraped_run["obs_url"], timeout=2)


class TestClientSpansOnTheWire:
    def test_fleet_streamed_spans_with_server_tick_ids(self, scraped_run):
        summary = scraped_run["clients"]
        assert summary["span_lines"] > 0
        store = scraped_run["store"]
        lines = [
            json.loads(raw)
            for raw in (store.telemetry_dir / "fleet.clientspans.jsonl")
            .read_text()
            .splitlines()
        ]
        assert len(lines) == summary["span_lines"]
        assert {line["client"] for line in lines} == set(range(N_BOTS))
        for line in lines[:20]:
            assert line["tick"] >= 0
            assert line["now_us"] > 0
            assert line["step_us"] >= 0

    def test_trace_export_merges_client_processes(self, scraped_run, capsys):
        from repro.campaign.cli import main as cli_main

        store = scraped_run["store"]
        assert cli_main(["trace", "export", str(store.root)]) == 0
        captured = capsys.readouterr()
        assert "Merged" in captured.out
        assert "client process(es)" in captured.out
        doc = json.loads((store.root / "export" / "trace.json").read_text())
        assert doc["otherData"]["client_processes"] == N_BOTS

    def test_wire_campaign_without_spans_explains_itself(
        self, tmp_path, capsys
    ):
        from repro.campaign import CampaignSpec, JobStore as Store
        from repro.campaign.cli import main as cli_main

        spec = CampaignSpec(
            name="bare-wire",
            servers=["vanilla"],
            iterations=1,
            duration_s=1.0,
            transport="tcp",
            output_dir=str(tmp_path / "out"),
        )
        Store(spec.output_dir).write_manifest(spec, [])
        assert cli_main(["trace", "export", str(tmp_path / "out")]) == 0
        captured = capsys.readouterr()
        assert "no client spans found" in captured.err
        assert "--trace-out" in captured.err
