"""Merged Perfetto export: client span pids alongside server job pids."""

import json

import pytest

from repro.campaign import CampaignExecutor, CampaignSpec, JobStore
from repro.tracing.chrome import (
    CLIENT_SPAN_SUFFIX,
    CLIENT_TIDS,
    client_span_events,
    read_client_spans,
    render_campaign_trace,
)


@pytest.fixture(scope="module")
def merged_store(tmp_path_factory):
    """One traced server job plus a fabricated 2-client span stream.

    The client span records reuse the server's own traced tick ids and
    simulated timestamps, exactly as a live ``repro clients --trace-out``
    fleet would have observed them from the TICK frames.
    """
    root = tmp_path_factory.mktemp("merged-trace")
    spec = CampaignSpec(
        name="merged",
        servers=["vanilla"],
        workloads=["players"],
        iterations=1,
        duration_s=1.0,
        seed=19,
        trace=True,
        output_dir=str(root / "out"),
    )
    store = JobStore(spec.output_dir)
    CampaignExecutor(spec, store=store).run()
    job = store.manifest_jobs()[0]
    ticks = store.load_job(job.job_id)[0].telemetry["trace"]["ticks"]
    spans = []
    for client in range(2):
        for dump in ticks[:2]:
            spans.append(
                {
                    "client": client,
                    "tick": dump["tick"],
                    "now_us": dump["start_us"],
                    "wait_us": 40000.0,
                    "dispatch_us": 120.0,
                    "step_us": 300.0,
                    "drain_us": 15.0,
                }
            )
    store.telemetry_dir.mkdir(parents=True, exist_ok=True)
    (store.telemetry_dir / f"fleet{CLIENT_SPAN_SUFFIX}").write_text(
        "\n".join(json.dumps(span, sort_keys=True) for span in spans) + "\n"
    )
    return store, ticks


class TestMergedExport:
    def test_at_least_two_pids_with_aligned_spans(self, merged_store):
        store, ticks = merged_store
        doc = render_campaign_trace(store)
        pids = {
            e["pid"] for e in doc["traceEvents"] if e.get("ph") == "X"
        }
        assert len(pids) >= 2  # the server job + the client processes
        assert doc["otherData"]["client_processes"] == 2
        assert doc["otherData"]["client_span_lines"] == 4
        # Tick-id alignment: a client "step" span starts exactly at the
        # server tick's simulated timestamp for the same tick id.
        steps = [
            e
            for e in doc["traceEvents"]
            if e.get("cat") == "client" and e["name"] == "step"
        ]
        starts = {dump["tick"]: dump["start_us"] for dump in ticks[:2]}
        assert steps
        for event in steps:
            assert event["ts"] == pytest.approx(starts[event["args"]["tick"]])

    def test_client_processes_named_after_stream_and_index(self, merged_store):
        store, _ = merged_store
        events = render_campaign_trace(store)["traceEvents"]
        names = {
            e["args"]["name"]
            for e in events
            if e.get("ph") == "M" and e["name"] == "process_name"
        }
        assert "client fleet#0" in names
        assert "client fleet#1" in names
        # Phase tracks are named on every client pid.
        thread_names = {
            e["args"]["name"]
            for e in events
            if e.get("ph") == "M" and e["name"] == "thread_name"
        }
        assert set(CLIENT_TIDS) <= thread_names

    def test_client_pids_follow_job_pids(self, merged_store):
        store, _ = merged_store
        events = render_campaign_trace(store)["traceEvents"]
        job_pids = {
            e["pid"] for e in events if e.get("cat") in ("tick", "iteration")
        }
        client_pids = {e["pid"] for e in events if e.get("cat") == "client"}
        assert max(job_pids) < min(client_pids)


class TestClientSpanHelpers:
    def test_read_skips_corrupt_lines(self, tmp_path):
        store = JobStore(tmp_path / "out")
        store.telemetry_dir.mkdir(parents=True, exist_ok=True)
        (store.telemetry_dir / f"x{CLIENT_SPAN_SUFFIX}").write_text(
            '{"client": 0, "tick": 1, "now_us": 5}\n{torn'
        )
        streams = read_client_spans(store)
        assert list(streams) == ["x"]
        assert len(streams["x"]) == 1

    def test_phases_tile_around_the_tick_timestamp(self):
        line = {
            "client": 0,
            "tick": 7,
            "now_us": 1000.0,
            "wait_us": 100.0,
            "dispatch_us": 50.0,
            "step_us": 20.0,
            "drain_us": 0.0,  # zero-width phases are dropped
        }
        events = client_span_events([line], pid=9)
        by_name = {e["name"]: e for e in events}
        assert set(by_name) == {"wait", "dispatch", "step"}
        assert by_name["wait"]["ts"] == 850.0
        assert by_name["dispatch"]["ts"] == 950.0
        assert by_name["step"]["ts"] == 1000.0
        assert all(e["pid"] == 9 for e in events)
