"""Workload abstraction (§3.3): world + runtime behaviour + players.

A workload owns three things: how to build its starting world (Table 2),
what runtime machinery to install on the server (ignition timers, farm
hooks, the lag feedback), and which bots to connect (a single idle observer
for environment-based workloads, 25 walking bots for the player workload).
"""

from __future__ import annotations

from repro.emulation.swarm import BotSwarm
from repro.mlg.server import MLGServer
from repro.mlg.world import World

__all__ = ["Workload"]


class Workload:
    """Base class for the five benchmark workloads.

    ``scale`` is the paper's workload-intensity knob (R8): 1 is the
    configuration used in the paper's experiments; higher values select
    higher-complexity versions of the same construct.
    """

    #: Registry key, e.g. ``"control"``.
    name: str = ""
    #: Name as printed in the paper's tables/figures, e.g. ``"Control"``.
    display_name: str = ""
    #: One-line description for reports.
    description: str = ""
    #: True when this workload connects the 25-bot player swarm.
    player_based: bool = False

    def __init__(self, scale: float = 1.0) -> None:
        if scale <= 0:
            raise ValueError(f"scale must be positive, got {scale!r}")
        self.scale = scale

    # -- lifecycle ---------------------------------------------------------------

    def create_world(self, seed: int) -> World:
        """Build the starting world (called once per iteration)."""
        raise NotImplementedError

    def install(self, server: MLGServer, swarm: BotSwarm) -> None:
        """Attach runtime hooks and connect this workload's bots."""
        raise NotImplementedError

    # -- reporting ----------------------------------------------------------------

    def world_size_mb(self, world: World) -> float:
        """Loaded world size in MB (Table 2's "Size" column analogue)."""
        return world.nbytes / (1024.0 * 1024.0)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(scale={self.scale})"
