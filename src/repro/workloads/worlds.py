"""The five benchmark workloads (Tables 2 and 3).

================  =========================================  ==========
Name              Properties (paper Table 2)                 Substrate
================  =========================================  ==========
Control           Freshly generated world                    seeded worldgen
TNT               Entity actions, terrain updates            16×16×14 TNT cuboid, ignites ~20 s after connect
Farm              Resource-farm constructs                   12 entity farms, 4 stone farms, 4 kelp farms, 1 item sorter
Lag               Complex simulated construct, stress test   clock-driven gate storm, every-other-tick
Players           (§3.4.1 player-based workload)             25 bots random-walking a 32×32 area
Exploration       Chunk IO churn (persistence extension)     scout squads spiral outward from spawn
================  =========================================  ==========
"""

from __future__ import annotations

from repro.emulation.behavior import SpiralMarch
from repro.emulation.swarm import BotSwarm
from repro.mlg.blocks import Block
from repro.mlg.server import MLGServer
from repro.mlg.workreport import Op, WorkReport
from repro.mlg.world import World
from repro.mlg.worldgen import PAPER_SEED, TerrainGenerator
from repro.workloads.base import Workload
from repro.workloads.constructs import (
    build_entity_farm,
    build_item_sorter,
    build_kelp_farm,
    build_lag_machine,
    build_stone_farm,
)

__all__ = [
    "ControlWorkload",
    "TNTWorkload",
    "FarmWorkload",
    "LagWorkload",
    "PlayersWorkload",
    "FloodWorkload",
    "ExplorationWorkload",
]

#: TNT ignites this long after the player connects (§3.3.1: "around 20
#: seconds after a player connects").
TNT_IGNITION_DELAY_TICKS = 400

#: The Flood dam breaches this long after the player connects (T+10 s).
FLOOD_BREACH_DELAY_TICKS = 200
#: After the breach, the dam gate cycles (re-seal / re-open) at this
#: period so the basin alternates between flooding and draining for the
#: whole run instead of settling into a quiet steady state.
FLOOD_GATE_CYCLE_TICKS = 100


class ControlWorkload(Workload):
    """Best-case workload: an unmodified freshly generated world."""

    name = "control"
    display_name = "Control"
    description = "Freshly generated world (seed from the paper)"

    def create_world(self, seed: int) -> World:
        return World(generator=TerrainGenerator(seed=seed ^ PAPER_SEED))

    def install(self, server: MLGServer, swarm: BotSwarm) -> None:
        swarm.add_observer()


class TNTWorkload(Workload):
    """Worst-case entity/physics burst: a TNT cuboid chain reaction."""

    name = "tnt"
    display_name = "TNT"
    description = "16x16x14 TNT cuboid, ignited ~20s after connect"

    #: Base cuboid dimensions (x, y, z) at scale 1.
    BASE_DIMS = (16, 14, 16)

    def cuboid_dims(self) -> tuple[int, int, int]:
        sx, sy, sz = self.BASE_DIMS
        return (sx, max(1, int(sy * self.scale)), sz)

    def create_world(self, seed: int) -> World:
        world = World(generator=TerrainGenerator(seed=seed ^ PAPER_SEED))
        dx, dy, dz = self.cuboid_dims()
        x0, z0 = 24, 24
        world.ensure_chunk(x0 >> 4, z0 >> 4)
        world.ensure_chunk((x0 + dx) >> 4, (z0 + dz) >> 4)
        y0 = max(
            world.column_height(x0 + dx // 2, z0 + dz // 2), 40
        )
        self._cuboid = (x0, y0, z0, x0 + dx - 1, y0 + dy - 1, z0 + dz - 1)
        world.fill(*self._cuboid[:3], *self._cuboid[3:], Block.TNT)
        return world

    def install(self, server: MLGServer, swarm: BotSwarm) -> None:
        swarm.add_observer()
        cuboid = self._cuboid

        def ignite(server_: MLGServer, tick_index: int, report: WorkReport,
                   _cuboid=cuboid) -> None:
            if tick_index != TNT_IGNITION_DELAY_TICKS:
                return
            x0, y0, z0, x1, y1, z1 = _cuboid
            server_.tnt.prime_region(
                x0, y0, z0, x1, y1, z1, fuse_spread=(60, 170)
            )

        server.add_tick_hook(ignite)


class FarmWorkload(Workload):
    """Resource-farm constructs sourced from community creators (Table 3)."""

    name = "farm"
    display_name = "Farm"
    description = (
        "12 entity farms, 4 stone farms, 4 kelp farms, 1 item sorter"
    )

    def counts(self) -> dict[str, int]:
        s = self.scale
        return {
            "entity_farm": max(1, int(12 * s)),
            "stone_farm": max(1, int(4 * s)),
            "kelp_farm": max(1, int(4 * s)),
            "item_sorter": 1,
        }

    def create_world(self, seed: int) -> World:
        return World(generator=TerrainGenerator(seed=seed ^ PAPER_SEED))

    def install(self, server: MLGServer, swarm: BotSwarm) -> None:
        counts = self.counts()
        # Lay the constructs out on a ring near spawn, inside the
        # observer's view distance so they are simulated.
        positions = self._ring_positions(
            sum(counts.values()), radius=56, center=(8, 8)
        )
        cursor = iter(positions)
        for _ in range(counts["entity_farm"]):
            x, z = next(cursor)
            build_entity_farm(server, x, z)
        for _ in range(counts["stone_farm"]):
            x, z = next(cursor)
            build_stone_farm(server, x, z)
        for _ in range(counts["kelp_farm"]):
            x, z = next(cursor)
            build_kelp_farm(server, x, z)
        for _ in range(counts["item_sorter"]):
            x, z = next(cursor)
            build_item_sorter(server, x, z)
        swarm.add_observer()

    @staticmethod
    def _ring_positions(
        n: int, radius: int, center: tuple[int, int]
    ) -> list[tuple[int, int]]:
        import math

        cx, cz = center
        out = []
        for i in range(n):
            angle = 2 * math.pi * i / max(1, n)
            r = radius if i % 2 == 0 else radius * 0.6
            out.append(
                (int(cx + r * math.cos(angle)), int(cz + r * math.sin(angle)))
            )
        return out


class LagWorkload(Workload):
    """Worst-case stress test: a community Lag Machine design (§3.3.1)."""

    name = "lag"
    display_name = "Lag"
    description = "Clock-driven logic-gate storm, every-other-tick"

    #: Total gate evaluations per pulse at scale 1.
    BASE_GATES = 850_000

    def create_world(self, seed: int) -> World:
        return World(generator=TerrainGenerator(seed=seed ^ PAPER_SEED))

    def install(self, server: MLGServer, swarm: BotSwarm) -> None:
        self.machine = build_lag_machine(
            server, x0=20, z0=20,
            total_gates=int(self.BASE_GATES * self.scale),
        )
        swarm.add_observer()


class FloodWorkload(Workload):
    """Water-heavy terrain simulation: a dam break over a terraced basin.

    A reservoir holds water behind an obsidian gate; at T+10 s the gate is
    removed and the flood cascades down a terraced basin, stressing the
    fluid queue and the change-log → packet path.  The gate then cycles
    (re-seal, re-open) so the basin keeps alternating between flooding
    and draining — the first workload whose tick time is dominated by the
    Fluids bucket of the Figure 11 taxonomy.
    """

    name = "flood"
    display_name = "Flood"
    description = "Dam-break reservoir flooding a terraced basin"

    #: Basin length (x), width (z), and reservoir water depth at scale 1.
    #: The reservoir sits mid-basin with a gate on each face, so a breach
    #: sends two independent cascade fronts down the two terraced slopes.
    BASE_LENGTH = 56
    BASE_WIDTH = 62
    BASE_DEPTH = 4
    #: Terrace geometry: past a gate the floor drops TERRACE_DROP blocks
    #: every TERRACE_RUN blocks of distance, so the cascading flood keeps
    #: resetting to full spread level instead of dying after 7 blocks.
    TERRACE_RUN = 2
    TERRACE_DROP = 2
    #: Reservoir surface height (terraces descend from here).
    TOP_FLOOR = 44
    #: Length of the reservoir pocket between the two gates.
    RESERVOIR_LEN = 8
    #: Observer view distance: the basin fills the view; a wide view would
    #: just add ambient chunk-scan cost that drowns the fluid signal.
    VIEW_DISTANCE = 2

    def dims(self) -> tuple[int, int, int]:
        return (
            max(32, int(self.BASE_LENGTH * self.scale)),
            max(16, int(self.BASE_WIDTH * self.scale)),
            max(2, int(self.BASE_DEPTH * self.scale)),
        )

    def _floor_y(self, x: int, gate_lo: int, gate_hi: int) -> int:
        """Terraced floor height: descends away from both gates."""
        if gate_lo <= x <= gate_hi:
            return self.TOP_FLOOR
        dist = gate_lo - x if x < gate_lo else x - gate_hi
        drop = self.TERRACE_DROP * (dist // self.TERRACE_RUN)
        return max(6, self.TOP_FLOOR - drop)

    def create_world(self, seed: int) -> World:
        # A constructed canyon, not generated terrain: every interior
        # surface is a water bed (spawn checks refuse non-solid floors),
        # so the fluid signal is not drowned by ambient mob population.
        world = World()
        length, width, depth = self.dims()
        x0, z0 = 16, 16
        top_floor = self.TOP_FLOOR
        wall_top = top_floor + depth + 6
        x1, z1 = x0 + length - 1, z0 + width - 1
        res_lo = x0 + (length - self.RESERVOIR_LEN) // 2
        res_hi = res_lo + self.RESERVOIR_LEN - 1
        gate_lo, gate_hi = res_lo - 1, res_hi + 1
        # Terraced floor with a one-block water bed on every step.
        for x in range(x0, x1 + 1):
            floor_y = self._floor_y(x, gate_lo, gate_hi)
            world.fill(x, 4, z0, x, floor_y, z1, Block.STONE)
            world.fill(x, floor_y + 1, z0, x, floor_y + 1, z1,
                       Block.WATER_SOURCE)
        # Rim walls confine the flood; their kelp cap keeps the wall top
        # from being a spawnable surface.
        for wx0, wz0, wx1, wz1 in (
            (x0 - 1, z0 - 1, x1 + 1, z0 - 1),
            (x0 - 1, z1 + 1, x1 + 1, z1 + 1),
            (x0 - 1, z0 - 1, x0 - 1, z1 + 1),
            (x1 + 1, z0 - 1, x1 + 1, z1 + 1),
        ):
            world.fill(wx0, 4, wz0, wx1, wall_top, wz1, Block.OBSIDIAN)
            world.fill(wx0, wall_top + 1, wz0, wx1, wall_top + 1, wz1,
                       Block.KELP)
        # The two dam gates and the reservoir between them.  The kelp cap
        # above each cycled slab keeps a closed gate's top from being the
        # one spawnable surface in the workload.
        gate_y1 = top_floor + depth + 1
        self._gates = [
            (gate_lo, top_floor + 1, z0, gate_lo, gate_y1, z1),
            (gate_hi, top_floor + 1, z0, gate_hi, gate_y1, z1),
        ]
        for gate in self._gates:
            world.fill(*gate, Block.OBSIDIAN)
            world.fill(gate[0], gate_y1 + 1, z0,
                       gate[0], gate_y1 + 1, z1, Block.KELP)
        world.fill(
            res_lo, top_floor + 1, z0,
            res_hi, top_floor + depth, z1,
            Block.WATER_SOURCE,
        )
        self._spawn = (float(x0 + length // 2), float(z0 + width // 2))
        return world

    def install(self, server: MLGServer, swarm: BotSwarm) -> None:
        gates = tuple(self._gates)

        def cycle_gates(server_: MLGServer, tick_index: int,
                        report: WorkReport, _gates=gates) -> None:
            if tick_index < FLOOD_BREACH_DELAY_TICKS:
                return
            phase, offset = divmod(
                tick_index - FLOOD_BREACH_DELAY_TICKS, FLOOD_GATE_CYCLE_TICKS
            )
            if offset != 0:
                return
            # Even phases open the gates (the breach), odd phases re-seal
            # them so the basin drains; both mutate the full gate slabs
            # and wake the adjacent fluid cells.
            block = Block.AIR if phase % 2 == 0 else Block.OBSIDIAN
            for gx0, gy0, gz0, gx1, gy1, gz1 in _gates:
                changed = server_.world.fill(
                    gx0, gy0, gz0, gx1, gy1, gz1, block, log=True
                )
                if changed:
                    report.add(Op.BLOCK_ADD_REMOVE, changed)
                for z in range(gz0, gz1 + 1):
                    for y in range(gy0, gy1 + 1):
                        server_.fluids.schedule_neighbors(gx0, y, z)

        server.add_tick_hook(cycle_gates)
        sx, sz = self._spawn
        swarm.add_observer(
            spawn_x=sx, spawn_z=sz, view_distance=self.VIEW_DISTANCE
        )


class ExplorationWorkload(Workload):
    """Chunk-churn workload: scout squads spiral outward from spawn.

    Each scout marches out-and-back sorties along its own spiral arm
    (see :class:`~repro.emulation.behavior.SpiralMarch`), continuously
    pushing the terrain-generation frontier outward while re-entering the
    terrain previous sorties left behind.  With persistence enabled this
    forces the full generate → autosave → evict → reload cycle, making
    "Autosave" and "Chunk Load" visible buckets in the Fig. 11 tick-time
    taxonomy; without it, the run degenerates to pure frontier generation
    (and an ever-growing world — exactly the memory growth eviction is
    there to cap).
    """

    name = "exploration"
    display_name = "Exploration"
    description = "Scout squads spiral outward, churning chunk IO"
    player_based = True

    #: Scouts at scale 1 (each gets its own spiral arm).
    BASE_BOTS = 4
    #: Narrow view keeps the per-border chunk burst bounded and makes
    #: terrain leave the view (and become evictable) quickly.
    VIEW_DISTANCE = 4
    #: Seconds between scout connects (staggers the join bursts).
    STAGGER_S = 0.5

    def __init__(self, scale: float = 1.0) -> None:
        super().__init__(scale)
        self.n_bots = max(1, round(self.BASE_BOTS * scale))

    def create_world(self, seed: int) -> World:
        return World(generator=TerrainGenerator(seed=seed ^ PAPER_SEED))

    def install(self, server: MLGServer, swarm: BotSwarm) -> None:
        import math

        for i in range(self.n_bots):
            swarm.add_bot(
                name=f"scout-{i}",
                behavior=SpiralMarch(
                    cx=8.0,
                    cz=8.0,
                    phase=2.0 * math.pi * i / self.n_bots,
                ),
                spawn_x=8.0,
                spawn_z=8.0,
                connect_delay_s=i * self.STAGGER_S,
                view_distance=self.VIEW_DISTANCE,
            )


class PlayersWorkload(Workload):
    """The traditional player-based workload (§3.4.1): 25 walking bots."""

    name = "players"
    display_name = "Players"
    description = "25 emulated players random-walking a 32x32 area"
    player_based = True

    def __init__(
        self,
        scale: float = 1.0,
        n_bots: int = 25,
        behavior: str = "bounded-random",
    ) -> None:
        super().__init__(scale)
        self.n_bots = max(1, int(n_bots * scale))
        self.behavior = behavior

    def create_world(self, seed: int) -> World:
        return World(generator=TerrainGenerator(seed=seed ^ PAPER_SEED))

    def install(self, server: MLGServer, swarm: BotSwarm) -> None:
        swarm.add_player_workload(n_bots=self.n_bots, behavior=self.behavior)
