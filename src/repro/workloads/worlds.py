"""The five benchmark workloads (Tables 2 and 3).

================  =========================================  ==========
Name              Properties (paper Table 2)                 Substrate
================  =========================================  ==========
Control           Freshly generated world                    seeded worldgen
TNT               Entity actions, terrain updates            16×16×14 TNT cuboid, ignites ~20 s after connect
Farm              Resource-farm constructs                   12 entity farms, 4 stone farms, 4 kelp farms, 1 item sorter
Lag               Complex simulated construct, stress test   clock-driven gate storm, every-other-tick
Players           (§3.4.1 player-based workload)             25 bots random-walking a 32×32 area
================  =========================================  ==========
"""

from __future__ import annotations

from repro.emulation.swarm import BotSwarm
from repro.mlg.blocks import Block
from repro.mlg.server import MLGServer
from repro.mlg.workreport import WorkReport
from repro.mlg.world import World
from repro.mlg.worldgen import PAPER_SEED, TerrainGenerator
from repro.workloads.base import Workload
from repro.workloads.constructs import (
    build_entity_farm,
    build_item_sorter,
    build_kelp_farm,
    build_lag_machine,
    build_stone_farm,
)

__all__ = [
    "ControlWorkload",
    "TNTWorkload",
    "FarmWorkload",
    "LagWorkload",
    "PlayersWorkload",
]

#: TNT ignites this long after the player connects (§3.3.1: "around 20
#: seconds after a player connects").
TNT_IGNITION_DELAY_TICKS = 400


class ControlWorkload(Workload):
    """Best-case workload: an unmodified freshly generated world."""

    name = "control"
    display_name = "Control"
    description = "Freshly generated world (seed from the paper)"

    def create_world(self, seed: int) -> World:
        return World(generator=TerrainGenerator(seed=seed ^ PAPER_SEED))

    def install(self, server: MLGServer, swarm: BotSwarm) -> None:
        swarm.add_observer()


class TNTWorkload(Workload):
    """Worst-case entity/physics burst: a TNT cuboid chain reaction."""

    name = "tnt"
    display_name = "TNT"
    description = "16x16x14 TNT cuboid, ignited ~20s after connect"

    #: Base cuboid dimensions (x, y, z) at scale 1.
    BASE_DIMS = (16, 14, 16)

    def cuboid_dims(self) -> tuple[int, int, int]:
        sx, sy, sz = self.BASE_DIMS
        return (sx, max(1, int(sy * self.scale)), sz)

    def create_world(self, seed: int) -> World:
        world = World(generator=TerrainGenerator(seed=seed ^ PAPER_SEED))
        dx, dy, dz = self.cuboid_dims()
        x0, z0 = 24, 24
        world.ensure_chunk(x0 >> 4, z0 >> 4)
        world.ensure_chunk((x0 + dx) >> 4, (z0 + dz) >> 4)
        y0 = max(
            world.column_height(x0 + dx // 2, z0 + dz // 2), 40
        )
        self._cuboid = (x0, y0, z0, x0 + dx - 1, y0 + dy - 1, z0 + dz - 1)
        world.fill(*self._cuboid[:3], *self._cuboid[3:], Block.TNT)
        return world

    def install(self, server: MLGServer, swarm: BotSwarm) -> None:
        swarm.add_observer()
        cuboid = self._cuboid

        def ignite(server_: MLGServer, tick_index: int, report: WorkReport,
                   _cuboid=cuboid) -> None:
            if tick_index != TNT_IGNITION_DELAY_TICKS:
                return
            x0, y0, z0, x1, y1, z1 = _cuboid
            server_.tnt.prime_region(
                x0, y0, z0, x1, y1, z1, fuse_spread=(60, 170)
            )

        server.add_tick_hook(ignite)


class FarmWorkload(Workload):
    """Resource-farm constructs sourced from community creators (Table 3)."""

    name = "farm"
    display_name = "Farm"
    description = (
        "12 entity farms, 4 stone farms, 4 kelp farms, 1 item sorter"
    )

    def counts(self) -> dict[str, int]:
        s = self.scale
        return {
            "entity_farm": max(1, int(12 * s)),
            "stone_farm": max(1, int(4 * s)),
            "kelp_farm": max(1, int(4 * s)),
            "item_sorter": 1,
        }

    def create_world(self, seed: int) -> World:
        return World(generator=TerrainGenerator(seed=seed ^ PAPER_SEED))

    def install(self, server: MLGServer, swarm: BotSwarm) -> None:
        counts = self.counts()
        # Lay the constructs out on a ring near spawn, inside the
        # observer's view distance so they are simulated.
        positions = self._ring_positions(
            sum(counts.values()), radius=56, center=(8, 8)
        )
        cursor = iter(positions)
        for _ in range(counts["entity_farm"]):
            x, z = next(cursor)
            build_entity_farm(server, x, z)
        for _ in range(counts["stone_farm"]):
            x, z = next(cursor)
            build_stone_farm(server, x, z)
        for _ in range(counts["kelp_farm"]):
            x, z = next(cursor)
            build_kelp_farm(server, x, z)
        for _ in range(counts["item_sorter"]):
            x, z = next(cursor)
            build_item_sorter(server, x, z)
        swarm.add_observer()

    @staticmethod
    def _ring_positions(
        n: int, radius: int, center: tuple[int, int]
    ) -> list[tuple[int, int]]:
        import math

        cx, cz = center
        out = []
        for i in range(n):
            angle = 2 * math.pi * i / max(1, n)
            r = radius if i % 2 == 0 else radius * 0.6
            out.append(
                (int(cx + r * math.cos(angle)), int(cz + r * math.sin(angle)))
            )
        return out


class LagWorkload(Workload):
    """Worst-case stress test: a community Lag Machine design (§3.3.1)."""

    name = "lag"
    display_name = "Lag"
    description = "Clock-driven logic-gate storm, every-other-tick"

    #: Total gate evaluations per pulse at scale 1.
    BASE_GATES = 850_000

    def create_world(self, seed: int) -> World:
        return World(generator=TerrainGenerator(seed=seed ^ PAPER_SEED))

    def install(self, server: MLGServer, swarm: BotSwarm) -> None:
        self.machine = build_lag_machine(
            server, x0=20, z0=20,
            total_gates=int(self.BASE_GATES * self.scale),
        )
        swarm.add_observer()


class PlayersWorkload(Workload):
    """The traditional player-based workload (§3.4.1): 25 walking bots."""

    name = "players"
    display_name = "Players"
    description = "25 emulated players random-walking a 32x32 area"
    player_based = True

    def __init__(
        self,
        scale: float = 1.0,
        n_bots: int = 25,
        behavior: str = "bounded-random",
    ) -> None:
        super().__init__(scale)
        self.n_bots = max(1, int(n_bots * scale))
        self.behavior = behavior

    def create_world(self, seed: int) -> World:
        return World(generator=TerrainGenerator(seed=seed ^ PAPER_SEED))

    def install(self, server: MLGServer, swarm: BotSwarm) -> None:
        swarm.add_player_workload(n_bots=self.n_bots, behavior=self.behavior)
