"""Benchmark workloads: Control, TNT, Farm, Lag, Players (§3.3, §3.4.1)."""

from repro.workloads.base import Workload
from repro.workloads.constructs import (
    LagMachine,
    build_entity_farm,
    build_item_sorter,
    build_kelp_farm,
    build_lag_machine,
    build_stone_farm,
)
from repro.workloads.worlds import (
    ControlWorkload,
    ExplorationWorkload,
    FarmWorkload,
    FloodWorkload,
    LagWorkload,
    PlayersWorkload,
    TNTWorkload,
)

WORKLOADS: dict[str, type[Workload]] = {
    cls.name: cls
    for cls in (
        ControlWorkload,
        TNTWorkload,
        FarmWorkload,
        LagWorkload,
        PlayersWorkload,
        FloodWorkload,
        ExplorationWorkload,
    )
}


def get_workload(name: str, scale: float = 1.0, **kwargs) -> Workload:
    """Instantiate a workload by registry name."""
    try:
        cls = WORKLOADS[name.lower()]
    except KeyError:
        known = ", ".join(sorted(WORKLOADS))
        raise ValueError(
            f"unknown workload {name!r}; known: {known}"
        ) from None
    return cls(scale=scale, **kwargs)


__all__ = [
    "ControlWorkload",
    "ExplorationWorkload",
    "FarmWorkload",
    "FloodWorkload",
    "LagMachine",
    "LagWorkload",
    "PlayersWorkload",
    "TNTWorkload",
    "WORKLOADS",
    "Workload",
    "build_entity_farm",
    "build_item_sorter",
    "build_kelp_farm",
    "build_lag_machine",
    "build_stone_farm",
    "get_workload",
]
