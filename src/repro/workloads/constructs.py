"""Simulated-construct builders: the Farm world's machines and the Lag
machine (§3.3.1, Tables 2 and 3).

Each builder writes real blocks into the world (platforms, water channels,
redstone) and registers the runtime pieces (spawn platforms, clocks, tick
hooks) that make the construct *act*.  The construct inventory mirrors
Table 3: Entity Farms (gnembon), Stone Farms (Shulkercraft), Kelp Farms
(Mumbo Jumbo), and an Item Sorter (Mysticat).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.mlg.blocks import Block
from repro.mlg.redstone import ClockCircuit
from repro.mlg.server import MLGServer
from repro.mlg.spawning import SpawnPlatform
from repro.mlg.entity import EntityKind
from repro.mlg.workreport import Op, WorkReport

__all__ = [
    "build_entity_farm",
    "build_stone_farm",
    "build_kelp_farm",
    "build_item_sorter",
    "LagMachine",
    "build_lag_machine",
]

#: Stone/entity farm activation interval: "a fixed interval of around 4
#: seconds" (§3.3.1) = 80 game ticks.
FARM_CLOCK_TICKS = 80


def _absorb_items(
    server: MLGServer,
    report: WorkReport,
    x: float,
    z: float,
    radius: float,
    min_age_ticks: int,
    limit: int = 24,
) -> int:
    """Hopper collection shared by the farm constructs.

    Absorbs settled item entities within a horizontal radius — every real
    farm design ends in a hopper line, which is what keeps a farm's item
    population bounded.
    """
    absorbed = server.entities.absorb_items(
        x, z, radius, min_age_ticks=min_age_ticks, limit=limit
    )
    if absorbed:
        report.add(Op.BLOCK_UPDATE, 8 * absorbed)
    return absorbed


def _platform(server: MLGServer, x0: int, y: int, z0: int, size: int,
              block: int = Block.OBSIDIAN) -> None:
    """A solid platform with a light-blocking roof three blocks up."""
    for x in range(x0, x0 + size):
        for z in range(z0, z0 + size):
            server.world.set_block(x, y - 1, z, block, log=False)
            server.world.set_block(x, y + 3, z, Block.STONE, log=False)
            for dy in range(0, 3):
                server.world.set_block(x, y + dy, z, Block.AIR, log=False)


def build_entity_farm(server: MLGServer, x0: int, z0: int,
                      y: int = 80) -> SpawnPlatform:
    """A gnembon-style hostile mob farm: dark platform, funnel, kill drop.

    Spawned mobs path toward the kill chamber at the platform corner; on
    arrival they die and drop items (the farm's yield).  The spawning is
    "driven" (§3.3.1): the platform boosts attempts and manipulates mob
    pathfinding via the goal.
    """
    size = 8
    _platform(server, x0, y, z0, size)
    goal = (x0 + size - 1, y, z0 + size - 1)
    platform = SpawnPlatform(
        x0=x0,
        z0=z0,
        x1=x0 + size - 1,
        z1=z0 + size - 1,
        y=y,
        attempts_per_tick=0.08,
        local_cap=10,
        goal=goal,
        drops_per_kill=2,
    )
    server.spawning.add_platform(platform)
    # Relight so the roofed platform is actually dark.
    chunk = server.world.get_chunk(x0 >> 4, z0 >> 4)
    if chunk is not None:
        server.lights.light_chunk(chunk)
    return platform


def build_stone_farm(server: MLGServer, x0: int, z0: int,
                     y: int | None = None) -> ClockCircuit:
    """A Shulkercraft-style cobblestone farm on a 4-second redstone timer.

    Every 80 ticks the clock fires: pistons cycle, the gate network
    evaluates, a slab of freshly generated cobblestone is broken into item
    entities, and the generator refills — continuous block add/remove plus
    item pressure.
    """
    world = server.world
    if y is None:
        y = world.column_height(x0, z0) + 1
    width = 6
    # The generator bed and its piston row.
    for i in range(width):
        world.set_block(x0 + i, y - 1, z0, Block.STONE, log=False)
        world.set_block(x0 + i, y, z0, Block.COBBLESTONE, log=False)
        world.set_block(x0 + i, y, z0 + 1, Block.PISTON, log=False)
        world.set_aux(x0 + i, y, z0 + 1, 4)  # face +z
        world.set_block(x0 + i, y, z0 - 1, Block.REDSTONE_WIRE, log=False)
    clock = ClockCircuit(
        period_ticks=FARM_CLOCK_TICKS,
        phase_ticks=int(server.rng.integers(0, FARM_CLOCK_TICKS)),
        # The full gate network behind the timer: item filters, comparator
        # chains, and the piston bus all re-evaluate on each 4 s pulse.
        gate_count=20_000,
        sources=[(x0, y, z0 - 1)],
        pistons=[(x0 + i, y, z0 + 1) for i in range(width)],
    )
    server.redstone.add_clock(clock, server.clock.now_us)

    def harvest(server_: MLGServer, tick_index: int, report: WorkReport,
                _clock=clock, _x0=x0, _y=y, _z0=z0, _w=width) -> None:
        # Harvest on the clock's pulse: break the cobble row into items,
        # then refill the generator (two block writes per column).
        if _clock.period_ticks and tick_index % _clock.period_ticks != (
            _clock.phase_ticks + 1
        ) % _clock.period_ticks:
            return
        for i in range(_w):
            change = server_.world.set_block(_x0 + i, _y, _z0, Block.AIR)
            if change is not None:
                report.add(Op.BLOCK_ADD_REMOVE)
                server_.entities.spawn(
                    EntityKind.ITEM, _x0 + i + 0.5, _y + 0.2, _z0 + 0.5,
                    vy=0.08,
                )
            server_.world.set_block(_x0 + i, _y, _z0, Block.COBBLESTONE)
            report.add(Op.BLOCK_ADD_REMOVE)
        _absorb_items(
            server_, report, _x0 + _w / 2, _z0 + 0.5, radius=8.0,
            min_age_ticks=100,
        )

    server.add_tick_hook(harvest)
    return clock


def build_kelp_farm(server: MLGServer, x0: int, z0: int,
                    y_base: int = 40) -> list[tuple[int, int]]:
    """A Mumbo-Jumbo-style kelp farm: water columns, observers, flow channel.

    Event-based activation (§3.3.1): kelp grows via random ticks; when a
    stalk reaches the cutoff height an observer fires, the stalk is cut,
    and the items ride flowing water toward the collection end.
    """
    world = server.world
    columns: list[tuple[int, int]] = []
    width = 4
    cut_y = y_base + 5
    for i in range(width):
        for j in range(width):
            x, z = x0 + i * 2, z0 + j * 2
            # Water column enclosed in glass with kelp at the bottom.
            world.set_block(x, y_base - 1, z, Block.STONE, log=False)
            for dy in range(0, 8):
                world.set_block(x, y_base + dy, z, Block.WATER_SOURCE,
                                log=False)
            world.set_block(x, y_base, z, Block.KELP, log=False)
            world.set_block(x, cut_y + 1, z, Block.OBSERVER, log=False)
            server.redstone.register_observer(x, cut_y + 1, z)
            columns.append((x, z))
    # The collection channel: flowing water pushing toward the sorter side.
    for i in range(width * 2 + 2):
        world.set_block(x0 - 1 + i, y_base - 1, z0 - 2, Block.STONE,
                        log=False)
        world.set_block(x0 - 1 + i, y_base, z0 - 2, Block.WATER_FLOW,
                        aux=max(1, 7 - i // 2), log=False)

    def cut_kelp(server_: MLGServer, tick_index: int, report: WorkReport,
                 _columns=tuple(columns), _cut=cut_y,
                 _cx=x0 + width, _cz=z0 - 2) -> None:
        for x, z in _columns:
            if server_.world.get_block(x, _cut, z) == Block.KELP:
                server_.world.set_block(x, _cut, z, Block.WATER_SOURCE)
                report.add(Op.BLOCK_ADD_REMOVE)
                report.add(Op.REDSTONE, 12)  # observer + piston pulse
                server_.entities.spawn(
                    EntityKind.ITEM, x + 0.5, _cut + 0.3, z + 0.5
                )
        if tick_index % 8 == 0:
            # Hoppers at the end of the collection channel.
            _absorb_items(
                server_, report, _cx, _cz + 0.5, radius=12.0,
                min_age_ticks=100,
            )

    server.add_tick_hook(cut_kelp)
    return columns


def build_item_sorter(server: MLGServer, x0: int, z0: int,
                      y: int | None = None, radius: float = 24.0) -> None:
    """A Mysticat-style item sorter: hoppers absorbing nearby item entities.

    Event-based: every item pulled through the hopper line costs a chain
    of container checks (block updates) and a comparator pulse.
    """
    world = server.world
    if y is None:
        y = world.column_height(x0, z0) + 1
    for i in range(8):
        world.set_block(x0 + i, y - 1, z0, Block.HOPPER, log=False)
        world.set_block(x0 + i, y - 2, z0, Block.CHEST, log=False)

    def absorb(server_: MLGServer, tick_index: int, report: WorkReport,
               _x=x0 + 4.0, _z=z0 + 0.5, _y=float(y), _r=radius) -> None:
        # Hoppers pull at 2.5 items/s each; we sweep the catchment area.
        if tick_index % 8 != 0:
            return
        items = [
            e
            for e in server_.entities.entities_near(_x, _y, _z, _r)
            if e.kind == EntityKind.ITEM
        ]
        for item in items[:16]:
            server_.entities.remove(item)
            server_.entities.collected_items += 1
            report.add(Op.BLOCK_UPDATE, 8)  # hopper/container checks
            report.add(Op.REDSTONE, 4)  # comparator pulse

    server.add_tick_hook(absorb)


@dataclass
class LagMachine:
    """The Lag world's machine: fast clocks driving dense gate networks.

    The design follows the paper's description (§3.3.1): "many logic-gate
    constructs in a small area to cause a high volume of simulation rule
    activations", built from *non-malicious* rules, pulsing every other
    tick ("parts which are only simulated every other tick", §5.3).

    The update-suppression feedback reproduces the crash mode: while the
    server keeps pulse ticks under ``grace_us`` the cascade settles each
    cycle and the load is stable; once ticks stretch past the grace window
    (a throttled cloud node), overlapping cascades re-trigger each other
    and the gate volume multiplies until clients time out (§5.3's AWS
    crash).
    """

    clocks: list[ClockCircuit] = field(default_factory=list)
    base_gates: int = 0
    grace_us: int = 2_000_000
    growth: float = 3.0
    decay: float = 0.85
    max_gates_per_clock: int = 50_000_000
    #: Consecutive sub-grace ticks needed before the storm decays.
    _calm_ticks: int = field(default=0, repr=False)

    def feedback(
        self, server: MLGServer, tick_index: int, report: WorkReport
    ) -> None:
        last = server.loop.last_record
        if last is None:
            return
        per_clock_base = max(1, self.base_gates // max(1, len(self.clocks)))
        if last.duration_us > self.grace_us:
            self._calm_ticks = 0
            for clock in self.clocks:
                clock.gate_count = min(
                    self.max_gates_per_clock,
                    int(clock.gate_count * self.growth) + 1,
                )
        else:
            # Pulse ticks alternate with near-empty ticks; only a sustained
            # calm window means the cascades actually settled.
            self._calm_ticks += 1
            if self._calm_ticks >= 3:
                for clock in self.clocks:
                    clock.gate_count = max(
                        per_clock_base, int(clock.gate_count * self.decay)
                    )


def build_lag_machine(
    server: MLGServer,
    x0: int,
    z0: int,
    total_gates: int = 850_000,
    n_clocks: int = 16,
    y: int = 70,
) -> LagMachine:
    """Erect the Lag machine and wire its feedback hook into the server."""
    machine = LagMachine(base_gates=total_gates)
    per_clock = max(1, total_gates // n_clocks)
    world = server.world
    for k in range(n_clocks):
        x = x0 + (k % 4) * 3
        z = z0 + (k // 4) * 3
        world.set_block(x, y - 1, z, Block.STONE, log=False)
        world.set_block(x, y, z, Block.REDSTONE_TORCH, log=False)
        world.set_block(x + 1, y, z, Block.REDSTONE_WIRE, log=False)
        clock = ClockCircuit(
            period_ticks=2,
            phase_ticks=0,
            gate_count=per_clock,
            sources=[(x + 1, y, z)],
            gate_op=Op.BLOCK_UPDATE,
        )
        server.redstone.add_clock(clock, server.clock.now_us)
        machine.clocks.append(clock)
    server.add_tick_hook(machine.feedback)
    return machine
