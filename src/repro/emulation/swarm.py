"""Bot swarm: manages a group of emulated players against one server.

Plays the role of Meterstick's player-emulation workers (Fig. 5): connects
``n`` bots (optionally staggered, the way real players trickle in), steps
them after every server tick, and aggregates their response-time samples.

The swarm holds a *transport*, never a server: every bot it creates gets
its own :class:`~repro.mlg.transport.ServerSession`, so the same swarm
code drives in-process and wire-backed fleets.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.cloud.network import NetworkModel
from repro.emulation.behavior import Behavior, Idle, make_behavior
from repro.emulation.bot import EmulatedPlayer
from repro.mlg.transport import as_transport

__all__ = ["BotSwarm"]


class BotSwarm:
    """A set of bots plus their connection plan.

    ``target`` may be a transport or a bare ``MLGServer`` (normalized via
    :func:`as_transport` for callers that predate the boundary).
    """

    def __init__(
        self,
        target,
        network: NetworkModel,
        rng: np.random.Generator,
    ) -> None:
        self.transport = as_transport(target)
        self.network = network
        self.rng = rng
        self.bots: list[EmulatedPlayer] = []
        #: (connect_at_us, factory) for staggered joins.
        self._pending: list[tuple[int, Callable[[], EmulatedPlayer]]] = []

    # -- construction --------------------------------------------------------------

    def add_bot(
        self,
        name: str,
        behavior: Behavior | None = None,
        spawn_x: float = 8.0,
        spawn_z: float = 8.0,
        connect_delay_s: float = 0.0,
        probe_interval_s: float = 1.0,
        view_distance: int | None = None,
    ) -> None:
        """Schedule one bot; delay 0 connects immediately."""
        up, down = self.network.latency_pair(self.rng)

        def factory() -> EmulatedPlayer:
            return EmulatedPlayer(
                name,
                self.transport.session(),
                self.rng,
                behavior=behavior,
                spawn_x=spawn_x,
                spawn_z=spawn_z,
                latency_up_us=up,
                latency_down_us=down,
                probe_interval_s=probe_interval_s,
                view_distance=view_distance,
            )

        if connect_delay_s <= 0.0:
            self.bots.append(factory())
        else:
            connect_at = self.transport.now_us() + int(connect_delay_s * 1e6)
            self._pending.append((connect_at, factory))
            self._pending.sort(key=lambda entry: entry[0])

    def add_player_workload(
        self,
        n_bots: int = 25,
        area: tuple[float, float, float, float] = (0.0, 0.0, 32.0, 32.0),
        stagger_s: float = 0.25,
        behavior: str = "bounded-random",
    ) -> None:
        """The paper's Players workload: ``n_bots`` bots in a 32×32 box.

        ``behavior`` selects how each bot moves (Table 4): the default
        bounded random walk, or ``"idle"`` for stationary players.
        """
        x0, z0, x1, z1 = area
        for i in range(n_bots):
            self.add_bot(
                name=f"bot-{i}",
                behavior=make_behavior(behavior, area),
                spawn_x=float(self.rng.uniform(x0, x1)),
                spawn_z=float(self.rng.uniform(z0, z1)),
                connect_delay_s=i * stagger_s,
            )

    def add_observer(
        self,
        name: str = "observer",
        spawn_x: float = 8.0,
        spawn_z: float = 8.0,
        view_distance: int | None = None,
    ) -> None:
        """The single idle player of the environment-based workloads."""
        self.add_bot(
            name,
            behavior=Idle(),
            spawn_x=spawn_x,
            spawn_z=spawn_z,
            view_distance=view_distance,
        )

    # -- per-tick driving --------------------------------------------------------------

    def step(self) -> None:
        """Connect due bots, then step everyone (call after a server tick)."""
        now = self.transport.now_us()
        while self._pending and self._pending[0][0] <= now:
            _, factory = self._pending.pop(0)
            self.bots.append(factory())
        for bot in self.bots:
            bot.step(now)

    # -- results ------------------------------------------------------------------------

    def response_times_ms(self) -> list[float]:
        samples: list[float] = []
        for bot in self.bots:
            samples.extend(bot.response_times_ms)
        return samples

    @property
    def connected_count(self) -> int:
        return sum(1 for bot in self.bots if bot.connected)
