"""Player emulation: Yardstick-style bots and swarms (Fig. 5, #5)."""

from repro.emulation.behavior import Behavior, BoundedRandomWalk, Idle
from repro.emulation.bot import EmulatedPlayer
from repro.emulation.swarm import BotSwarm

__all__ = [
    "Behavior",
    "BotSwarm",
    "BoundedRandomWalk",
    "EmulatedPlayer",
    "Idle",
]
