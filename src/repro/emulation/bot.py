"""An emulated player — the Yardstick-style protocol client (Fig. 5, #5).

Each bot connects to the server, walks according to its behaviour, and
periodically sends a chat *probe*: a message echoed to every player
(including the sender).  Response time is the interval between sending the
probe and receiving its own echo — exactly the paper's instrument (§3.5.1):
uplink + input-queue wait + tick processing + outbound flush + downlink.

Bots speak only the :class:`~repro.mlg.transport.ServerSession` surface
(MSL007): the same behaviour code drives an in-process server and a TCP
connection in :mod:`repro.net`.
"""

from __future__ import annotations

import numpy as np

from repro.emulation.behavior import Behavior, Idle
from repro.mlg.protocol import ActionKind, PacketCategory, PlayerAction
from repro.mlg.transport import ServerSession, as_transport
from repro.simtime import s_to_us

__all__ = ["EmulatedPlayer"]

#: Default seconds between chat probes.
PROBE_INTERVAL_S = 1.0


class EmulatedPlayer:
    """One bot driving one client connection.

    ``target`` may be a :class:`ServerSession`, a transport, or a bare
    ``MLGServer`` (wrapped in an in-process session for callers that
    predate the transport boundary).
    """

    def __init__(
        self,
        name: str,
        target,
        rng: np.random.Generator,
        behavior: Behavior | None = None,
        spawn_x: float = 8.0,
        spawn_z: float = 8.0,
        latency_up_us: int = 1000,
        latency_down_us: int = 1000,
        probe_interval_s: float = PROBE_INTERVAL_S,
        view_distance: int | None = None,
    ) -> None:
        self.name = name
        self.session: ServerSession = (
            target
            if isinstance(target, ServerSession)
            else as_transport(target).session()
        )
        self.rng = rng
        self.behavior = behavior if behavior is not None else Idle()
        self.probe_interval_us = s_to_us(probe_interval_s)
        info = self.session.connect(
            name, spawn_x, spawn_z, latency_up_us, latency_down_us,
            view_distance=view_distance,
        )
        self.client_id = info.client_id
        self.x = info.x
        self.z = info.z
        self.y = info.y
        self._next_probe_us = self.session.now_us()
        self._next_probe_id = 1
        #: probe_id -> send timestamp (µs).
        self._pending_probes: dict[int, int] = {}
        #: Completed probe response times, in milliseconds.  Every sample
        #: also streams through the session's measurement plane; this raw
        #: list is only kept when raw series are retained.
        self.response_times_ms: list[float] = []
        # Real clients chat during the join sequence; the first probe goes
        # out immediately, so it samples the connect-time chunk-loading
        # spike — the source of the paper's §5.2 outliers ("directly after
        # a player connects").
        self._maybe_probe(self.session.now_us())

    # -- per-tick driving -----------------------------------------------------------

    def step(self, now_us: int) -> None:
        """Advance the bot one tick: consume echoes, move, maybe probe."""
        if not self.session.connected:
            return
        self._consume_deliveries()
        self._maybe_move(now_us)
        self._maybe_probe(now_us)

    @property
    def connected(self) -> bool:
        return self.session.connected

    def _consume_deliveries(self) -> None:
        for delivery in self.session.poll_deliveries():
            if delivery.category != PacketCategory.CHAT:
                continue
            sender_id, probe_id = delivery.payload
            if sender_id != self.client_id:
                continue
            sent_at = self._pending_probes.pop(probe_id, None)
            if sent_at is not None:
                response_ms = (delivery.delivered_at_us - sent_at) / 1000.0
                self.session.record_response_ms(response_ms)
                if self.session.retain_raw:
                    self.response_times_ms.append(response_ms)

    def _maybe_move(self, now_us: int) -> None:
        target = self.behavior.next_move(self.x, self.z, self.rng)
        if target is None:
            return
        tx, tz = target
        ground = self.session.ground_height(int(tx), int(tz))
        action = PlayerAction(
            ActionKind.MOVE, self.client_id, (tx, float(max(ground, 1)), tz)
        )
        # Client-side speculation: the bot applies its own move locally.
        self.x, self.z = tx, tz
        self.session.submit(action, now_us)

    def _maybe_probe(self, now_us: int) -> None:
        if now_us < self._next_probe_us:
            return
        probe_id = self._next_probe_id
        self._next_probe_id += 1
        # Sub-tick send offset: probes land uniformly inside tick windows.
        sent_at = now_us + int(self.rng.uniform(0, 45_000))
        action = PlayerAction(
            ActionKind.CHAT, self.client_id, (probe_id, 32)
        )
        self.session.submit(action, sent_at)
        self._pending_probes[probe_id] = sent_at
        self._next_probe_us = now_us + self.probe_interval_us + int(
            self.rng.uniform(-0.1, 0.1) * self.probe_interval_us
        )

    # -- results ------------------------------------------------------------------------

    @property
    def outstanding_probes(self) -> int:
        return len(self._pending_probes)
