"""An emulated player — the Yardstick-style protocol client (Fig. 5, #5).

Each bot connects to the server, walks according to its behaviour, and
periodically sends a chat *probe*: a message echoed to every player
(including the sender).  Response time is the interval between sending the
probe and receiving its own echo — exactly the paper's instrument (§3.5.1):
uplink + input-queue wait + tick processing + outbound flush + downlink.
"""

from __future__ import annotations

import numpy as np

from repro.emulation.behavior import Behavior, Idle
from repro.mlg.protocol import ActionKind, PacketCategory, PlayerAction
from repro.mlg.server import MLGServer
from repro.simtime import s_to_us

__all__ = ["EmulatedPlayer"]

#: Default seconds between chat probes.
PROBE_INTERVAL_S = 1.0


class EmulatedPlayer:
    """One bot driving one client connection."""

    def __init__(
        self,
        name: str,
        server: MLGServer,
        rng: np.random.Generator,
        behavior: Behavior | None = None,
        spawn_x: float = 8.0,
        spawn_z: float = 8.0,
        latency_up_us: int = 1000,
        latency_down_us: int = 1000,
        probe_interval_s: float = PROBE_INTERVAL_S,
        view_distance: int | None = None,
    ) -> None:
        self.name = name
        self.server = server
        self.rng = rng
        self.behavior = behavior if behavior is not None else Idle()
        self.probe_interval_us = s_to_us(probe_interval_s)
        # None defers to the server's default view distance.
        view_kwargs = (
            {} if view_distance is None else {"view_distance": view_distance}
        )
        conn = server.connect_client(
            name, spawn_x, spawn_z, latency_up_us, latency_down_us,
            **view_kwargs,
        )
        self.client_id = conn.client_id
        self.x = conn.x
        self.z = conn.z
        self.y = conn.y
        self._next_probe_us = server.clock.now_us
        self._next_probe_id = 1
        #: probe_id -> send timestamp (µs).
        self._pending_probes: dict[int, int] = {}
        #: Completed probe response times, in milliseconds.  Every sample
        #: also streams through the server telemetry bus; this raw list
        #: is only kept when the server retains raw series.
        self.response_times_ms: list[float] = []
        self._deliveries_seen = 0
        # Real clients chat during the join sequence; the first probe goes
        # out immediately, so it samples the connect-time chunk-loading
        # spike — the source of the paper's §5.2 outliers ("directly after
        # a player connects").
        self._maybe_probe(server.clock.now_us)

    # -- per-tick driving -----------------------------------------------------------

    def step(self, now_us: int) -> None:
        """Advance the bot one tick: consume echoes, move, maybe probe."""
        endpoint = self.server.net.client(self.client_id)
        if endpoint is None or endpoint.disconnected:
            return
        self._consume_deliveries(endpoint)
        self._maybe_move(now_us)
        self._maybe_probe(now_us)

    @property
    def connected(self) -> bool:
        endpoint = self.server.net.client(self.client_id)
        return endpoint is not None and not endpoint.disconnected

    def _consume_deliveries(self, endpoint) -> None:
        deliveries = endpoint.deliveries
        for delivery in deliveries[self._deliveries_seen :]:
            if delivery.category != PacketCategory.CHAT:
                continue
            sender_id, probe_id = delivery.payload
            if sender_id != self.client_id:
                continue
            sent_at = self._pending_probes.pop(probe_id, None)
            if sent_at is not None:
                response_ms = (delivery.delivered_at_us - sent_at) / 1000.0
                self.server.telemetry.observe_response(response_ms)
                if self.server.retain_raw:
                    self.response_times_ms.append(response_ms)
        self._deliveries_seen = len(deliveries)

    def _maybe_move(self, now_us: int) -> None:
        target = self.behavior.next_move(self.x, self.z, self.rng)
        if target is None:
            return
        tx, tz = target
        ground = self.server.world.column_height(int(tx), int(tz))
        action = PlayerAction(
            ActionKind.MOVE, self.client_id, (tx, float(max(ground, 1)), tz)
        )
        # Client-side speculation: the bot applies its own move locally.
        self.x, self.z = tx, tz
        self.server.submit_action(action, now_us)

    def _maybe_probe(self, now_us: int) -> None:
        if now_us < self._next_probe_us:
            return
        probe_id = self._next_probe_id
        self._next_probe_id += 1
        # Sub-tick send offset: probes land uniformly inside tick windows.
        sent_at = now_us + int(self.rng.uniform(0, 45_000))
        action = PlayerAction(
            ActionKind.CHAT, self.client_id, (probe_id, 32)
        )
        self.server.submit_action(action, sent_at)
        self._pending_probes[probe_id] = sent_at
        self._next_probe_us = now_us + self.probe_interval_us + int(
            self.rng.uniform(-0.1, 0.1) * self.probe_interval_us
        )

    # -- results ------------------------------------------------------------------------

    @property
    def outstanding_probes(self) -> int:
        return len(self._pending_probes)
