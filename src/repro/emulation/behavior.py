"""Bot behaviours (§3.4.1).

The paper's player-based workload connects 25 emulated players that "move
randomly in a 32-by-32 area"; the environment-based workloads connect a
single player that "performs no actions" (it still sends the chat probes
that measure response time, §3.5.1).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "BEHAVIORS",
    "Behavior",
    "BoundedRandomWalk",
    "Idle",
    "make_behavior",
]


class Behavior:
    """Decides a bot's next movement target each tick (or None)."""

    def next_move(
        self, x: float, z: float, rng: np.random.Generator
    ) -> tuple[float, float] | None:
        raise NotImplementedError


@dataclass
class BoundedRandomWalk(Behavior):
    """Random waypoint walking inside an axis-aligned box.

    The bot picks a waypoint in the box, walks toward it at ``speed``
    blocks per tick, then picks a new one — the paper's bounded random
    movement (Table 4: Behavior = "Bounded random").
    """

    x0: float
    z0: float
    x1: float
    z1: float
    speed: float = 0.22

    def __post_init__(self) -> None:
        if self.x1 <= self.x0 or self.z1 <= self.z0:
            raise ValueError("walk box corners must be ordered and non-empty")
        self._target: tuple[float, float] | None = None

    def next_move(
        self, x: float, z: float, rng: np.random.Generator
    ) -> tuple[float, float] | None:
        if self._target is None:
            self._target = (
                float(rng.uniform(self.x0, self.x1)),
                float(rng.uniform(self.z0, self.z1)),
            )
        tx, tz = self._target
        dx = tx - x
        dz = tz - z
        dist = (dx * dx + dz * dz) ** 0.5
        if dist < self.speed:
            self._target = None
            return (tx, tz)
        return (x + dx / dist * self.speed, z + dz / dist * self.speed)


class Idle(Behavior):
    """Performs no movement (the environment-workload observer player)."""

    def next_move(
        self, x: float, z: float, rng: np.random.Generator
    ) -> tuple[float, float] | None:
        return None


#: Behaviour names accepted by ``MeterstickConfig.behavior`` (Table 4).
BEHAVIORS = ("bounded-random", "idle")


def make_behavior(
    name: str, area: tuple[float, float, float, float] = (0.0, 0.0, 32.0, 32.0)
) -> Behavior:
    """Instantiate a behaviour by its config name.

    ``area`` is the walk box used by movement behaviours; idle behaviours
    ignore it.
    """
    key = name.lower()
    if key == "idle":
        return Idle()
    if key == "bounded-random":
        return BoundedRandomWalk(*area)
    known = ", ".join(BEHAVIORS)
    raise ValueError(f"unknown behavior {name!r}; known: {known}")
