"""Bot behaviours (§3.4.1).

The paper's player-based workload connects 25 emulated players that "move
randomly in a 32-by-32 area"; the environment-based workloads connect a
single player that "performs no actions" (it still sends the chat probes
that measure response time, §3.5.1).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = [
    "BEHAVIORS",
    "Behavior",
    "BoundedRandomWalk",
    "Idle",
    "SpiralMarch",
    "make_behavior",
]


class Behavior:
    """Decides a bot's next movement target each tick (or None)."""

    def next_move(
        self, x: float, z: float, rng: np.random.Generator
    ) -> tuple[float, float] | None:
        raise NotImplementedError


@dataclass
class BoundedRandomWalk(Behavior):
    """Random waypoint walking inside an axis-aligned box.

    The bot picks a waypoint in the box, walks toward it at ``speed``
    blocks per tick, then picks a new one — the paper's bounded random
    movement (Table 4: Behavior = "Bounded random").
    """

    x0: float
    z0: float
    x1: float
    z1: float
    speed: float = 0.22

    def __post_init__(self) -> None:
        if self.x1 <= self.x0 or self.z1 <= self.z0:
            raise ValueError("walk box corners must be ordered and non-empty")
        self._target: tuple[float, float] | None = None

    def next_move(
        self, x: float, z: float, rng: np.random.Generator
    ) -> tuple[float, float] | None:
        if self._target is None:
            self._target = (
                float(rng.uniform(self.x0, self.x1)),
                float(rng.uniform(self.z0, self.z1)),
            )
        tx, tz = self._target
        dx = tx - x
        dz = tz - z
        dist = (dx * dx + dz * dz) ** 0.5
        if dist < self.speed:
            self._target = None
            return (tx, tz)
        return (x + dx / dist * self.speed, z + dz / dist * self.speed)


class Idle(Behavior):
    """Performs no movement (the environment-workload observer player)."""

    def next_move(
        self, x: float, z: float, rng: np.random.Generator
    ) -> tuple[float, float] | None:
        return None


@dataclass
class SpiralMarch(Behavior):
    """Out-and-back sorties along an Archimedean spiral (Exploration).

    The bot marches outward along the spiral ``r = spacing·θ/2π`` at
    constant ground speed until it reaches the sortie's maximum radius,
    then retraces the same arc back to ``min_radius``, then heads out
    again with the maximum radius grown by ``growth`` — so every sortie
    re-enters terrain the previous one left behind (evicted chunks reload
    from disk) before pushing the generation frontier further out.
    ``phase`` rotates the whole route, giving each squad member its own
    spiral arm.
    """

    cx: float = 8.0
    cz: float = 8.0
    #: Ground speed in blocks per tick (a mounted scout, not a walker).
    speed: float = 1.6
    #: Radial distance between consecutive spiral windings, in blocks.
    spacing: float = 24.0
    #: Route rotation, in radians.  ``None`` draws a rotation from the
    #: bot's RNG on the first step, so registry-built bots (which all get
    #: identical constructor arguments) still fan out over distinct arms.
    phase: float | None = None
    #: Radius at which an inbound leg turns around.
    min_radius: float = 12.0
    #: First sortie's maximum radius.
    initial_radius: float = 64.0
    #: Maximum-radius growth per sortie.
    growth: float = 32.0

    def __post_init__(self) -> None:
        if self.speed <= 0 or self.spacing <= 0:
            raise ValueError("spiral speed and spacing must be positive")
        if not 0 < self.min_radius < self.initial_radius:
            raise ValueError("need 0 < min_radius < initial_radius")
        self._b = self.spacing / (2.0 * math.pi)
        self._theta = self.min_radius / self._b
        self._direction = 1
        self._max_radius = self.initial_radius

    @property
    def sortie_radius(self) -> float:
        """The current sortie's turnaround radius (grows over the run)."""
        return self._max_radius

    def next_move(
        self, x: float, z: float, rng: np.random.Generator
    ) -> tuple[float, float] | None:
        if self.phase is None:
            self.phase = float(rng.uniform(0.0, 2.0 * math.pi))
        radius = self._b * self._theta
        # Constant ground speed: ds = √(r² + b²)·dθ for an Archimedean
        # spiral, so dθ shrinks as the arc widens.
        dtheta = self.speed / math.hypot(radius, self._b)
        self._theta += self._direction * dtheta
        radius = self._b * self._theta
        if self._direction > 0 and radius >= self._max_radius:
            self._direction = -1
        elif self._direction < 0 and radius <= self.min_radius:
            self._direction = 1
            self._max_radius += self.growth
        angle = self._theta + self.phase
        return (
            self.cx + radius * math.cos(angle),
            self.cz + radius * math.sin(angle),
        )


#: Behaviour names accepted by ``MeterstickConfig.behavior`` (Table 4).
BEHAVIORS = ("bounded-random", "idle", "spiral-march")


def make_behavior(
    name: str, area: tuple[float, float, float, float] = (0.0, 0.0, 32.0, 32.0)
) -> Behavior:
    """Instantiate a behaviour by its config name.

    ``area`` is the walk box used by movement behaviours; idle behaviours
    ignore it.
    """
    key = name.lower()
    if key == "idle":
        return Idle()
    if key == "bounded-random":
        return BoundedRandomWalk(*area)
    if key == "spiral-march":
        x0, z0, x1, z1 = area
        return SpiralMarch(cx=(x0 + x1) / 2.0, cz=(z0 + z1) / 2.0)
    known = ", ".join(BEHAVIORS)
    raise ValueError(f"unknown behavior {name!r}; known: {known}")
