"""The ``repro`` command line: run, resume, inspect, and export campaigns.

Usage (also via the ``repro`` console script)::

    python -m repro run campaign.yaml --jobs 4
    python -m repro resume campaign.yaml --jobs 4
    python -m repro status meterstick-out/
    python -m repro status meterstick-out/ --watch
    python -m repro top meterstick-out/
    python -m repro top http://127.0.0.1:9178/metrics
    python -m repro export meterstick-out/ --out analysis/
    python -m repro report meterstick-out/
    python -m repro report campaign.yaml --update-output
    python -m repro trace export meterstick-out/
    python -m repro serve campaign.yaml --cell 0 --port 25570
    python -m repro clients --port 25570 -n 25
    python -m repro world prepare worlds/control --workload control
    python -m repro world inspect worlds/control
    python -m repro lint src --baseline

``run``/``resume`` take a campaign spec file (YAML or JSON);
``status``/``export``/``trace`` take either a spec file or a campaign
output directory (one containing a ``manifest.json``); ``world`` manages
the region-file world directories used for warm boots and persistence
runs.  ``trace export`` renders a traced campaign (spec ``trace: true``)
as Chrome trace-event JSON, loadable in Perfetto or ``chrome://tracing``.
``lint`` runs the static invariant checkers (:mod:`repro.lint`) that
guard the determinism and accounting conventions the bit-identity
claims rest on.  ``serve``/``clients`` split one cell across real TCP
sockets: ``serve`` runs a cell's server chain behind the asyncio wire
front end (writing the standard manifest/sidecar/shard artifacts), and
``clients`` ramps emulated players against it from a separate process.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.analysis.figures import campaign_grid
from repro.core.retrieval import retrieve, summary_rows
from repro.core.visualization import ascii_boxplot, format_table, write_csv_rows
from repro.campaign.executor import CampaignExecutor
from repro.campaign.planner import Job
from repro.campaign.spec import CampaignSpec
from repro.campaign.store import JobStore

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Meterstick campaign orchestration",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run a campaign spec from scratch")
    run.add_argument("spec", help="campaign spec file (.yaml/.yml/.json)")
    _add_run_options(run)

    resume = sub.add_parser(
        "resume", help="finish a killed campaign, skipping completed jobs"
    )
    resume.add_argument(
        "target", help="campaign spec file or campaign output directory"
    )
    _add_run_options(resume)

    status = sub.add_parser("status", help="show per-job completion")
    status.add_argument(
        "target", help="campaign spec file or campaign output directory"
    )
    status.add_argument(
        "--watch",
        action="store_true",
        help="poll and redraw until interrupted; holds per-sidecar byte "
        "offsets so each refresh reads only new telemetry lines",
    )
    status.add_argument(
        "--interval-s",
        type=float,
        default=2.0,
        help="seconds between --watch refreshes (default: 2)",
    )

    export = sub.add_parser(
        "export", help="merge completed jobs and export CSVs + figure data"
    )
    export.add_argument(
        "target", help="campaign spec file or campaign output directory"
    )
    export.add_argument(
        "--out",
        default=None,
        help="export directory (default: <output_dir>/export)",
    )
    export.add_argument(
        "--boxplot",
        action="store_true",
        help="print an ASCII tick-duration box plot per server",
    )

    report = sub.add_parser(
        "report",
        help="render the self-contained HTML report from the on-disk "
        "telemetry sidecars (no re-simulation)",
    )
    report.add_argument(
        "target", help="campaign spec file or campaign output directory"
    )
    report.add_argument(
        "--out",
        default=None,
        help="report directory (default: <output_dir>/report)",
    )
    report.add_argument(
        "--update-output",
        action="store_true",
        help="persist the spec file's output: section into the campaign "
        "manifest before rendering (job shards are never touched)",
    )
    report.add_argument(
        "--bench-dir",
        default=None,
        help="benchmarks directory for the perf-trajectory panel "
        "(default: ./benchmarks when it holds BENCH_fig11.json)",
    )

    trace = sub.add_parser(
        "trace", help="export span traces from a traced campaign"
    )
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)
    trace_export = trace_sub.add_parser(
        "export",
        help="render Chrome trace-event JSON (Perfetto/chrome://tracing)",
    )
    trace_export.add_argument(
        "target", help="campaign spec file or campaign output directory"
    )
    trace_export.add_argument(
        "--out",
        default=None,
        help="trace file to write (default: <output_dir>/export/trace.json)",
    )

    serve = sub.add_parser(
        "serve",
        help="serve one campaign cell over TCP (players connect with "
        "'repro clients'); writes the standard manifest/sidecars/shard",
    )
    serve.add_argument("spec", help="campaign spec file (.yaml/.yml/.json)")
    serve.add_argument(
        "--cell",
        type=int,
        default=0,
        metavar="N",
        help="planned job index to serve (default: 0)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port",
        type=int,
        default=None,
        help="listen port (default: the spec's wire_port; 0 = OS-assigned)",
    )
    serve.add_argument(
        "--no-realtime",
        action="store_true",
        help="tick as fast as possible instead of pacing 50 ms/tick",
    )

    clients = sub.add_parser(
        "clients",
        help="ramp N emulated players over TCP against 'repro serve'",
    )
    clients.add_argument("--host", default="127.0.0.1")
    clients.add_argument("--port", type=int, required=True)
    clients.add_argument("-n", type=int, default=25, help="bot count")
    clients.add_argument("--behavior", default="bounded-random")
    clients.add_argument(
        "--stagger-s",
        type=float,
        default=0.25,
        help="wall seconds between joins (0 = connect storm)",
    )
    clients.add_argument(
        "--duration-s",
        type=float,
        default=None,
        help="give up after this much wall time (default: until the "
        "server closes the iteration)",
    )
    clients.add_argument("--seed", type=int, default=0)
    clients.add_argument(
        "--trace-out",
        default=None,
        metavar="FILE",
        help="collect client-side spans (wait/dispatch/step/drain per "
        "tick) into this JSONL file; write it as "
        "<output_dir>/telemetry/<name>.clientspans.jsonl and 'repro "
        "trace export' merges it into the campaign timeline",
    )

    top = sub.add_parser(
        "top",
        help="live plain-ANSI dashboard over a metrics endpoint URL or "
        "a campaign output directory",
    )
    top.add_argument(
        "target",
        help="obs endpoint URL (http://host:port/metrics) or a campaign "
        "output directory",
    )
    top.add_argument(
        "--interval-s",
        type=float,
        default=2.0,
        help="seconds between refreshes (default: 2)",
    )
    top.add_argument(
        "--once",
        action="store_true",
        help="render one frame and exit (no ANSI clear; CI-friendly)",
    )

    world = sub.add_parser(
        "world", help="prepare and inspect on-disk world directories"
    )
    world_sub = world.add_subparsers(dest="world_command", required=True)
    prepare = world_sub.add_parser(
        "prepare",
        help="pre-generate a workload world into a region-file store",
    )
    prepare.add_argument("out_dir", help="world directory to write")
    prepare.add_argument(
        "--workload", default="control", help="workload whose world to build"
    )
    prepare.add_argument("--scale", type=float, default=1.0)
    prepare.add_argument("--seed", type=int, default=0)
    prepare.add_argument(
        "--radius",
        type=int,
        default=None,
        metavar="CHUNKS",
        help="pre-generation radius around spawn, in chunks "
        "(default: view distance + 2)",
    )
    inspect_ = world_sub.add_parser(
        "inspect",
        help="scan a world directory: chunk counts, damage, content hash",
    )
    inspect_.add_argument("world_dir", help="world directory to scan")

    from repro.lint.cli import add_lint_parser

    add_lint_parser(sub)
    return parser


def _add_run_options(sub: argparse.ArgumentParser) -> None:
    sub.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="worker processes (default: the spec's jobs field)",
    )
    sub.add_argument(
        "--output-dir",
        default=None,
        help="override the spec's output_dir",
    )
    sub.add_argument(
        "--quiet", action="store_true", help="suppress per-job progress"
    )


def _load_spec(target: str, output_dir: str | None = None) -> CampaignSpec:
    """Resolve a spec from a spec file or a campaign output directory."""
    path = Path(target)
    if path.is_dir():
        spec = JobStore(path).manifest_spec()
        # The manifest may predate a move of the campaign directory;
        # trust the directory we were pointed at.
        spec.output_dir = str(path)
    elif path.is_file():
        spec = CampaignSpec.from_file(path)
    else:
        raise FileNotFoundError(
            f"{target!r} is neither a campaign spec file nor a campaign "
            "output directory"
        )
    if output_dir is not None:
        spec.output_dir = output_dir
    return spec


def _progress_printer(quiet: bool):
    if quiet:
        return None

    def progress(job: Job, n_done: int, n_total: int) -> None:
        print(
            f"[{n_done}/{n_total}] {job.job_id}  {job.cell.key()}",
            flush=True,
        )

    return progress


def _cmd_run(args: argparse.Namespace, resume: bool) -> int:
    target = args.spec if not resume else args.target
    spec = _load_spec(target, args.output_dir)
    executor = CampaignExecutor(
        spec, jobs=args.jobs, progress=_progress_printer(args.quiet)
    )
    verb = "Resuming" if resume else "Running"
    if not args.quiet:
        print(
            f"{verb} campaign {spec.name!r}: {spec.n_cells} cells × "
            f"{spec.iterations} iteration(s) → {spec.output_dir} "
            f"({executor.jobs} worker(s))"
        )
    result = executor.run(resume=resume)
    if not args.quiet:
        print(
            f"Campaign complete: {len(result.iterations)} iteration(s) "
            f"stored in {spec.output_dir}"
        )
    return 0


def _top_bucket(tick: dict) -> str:
    """The cell's dominant Fig. 11 bucket, as ``name share%``.

    Read from the sidecar's cumulative per-bucket totals — the quickest
    "what is this server spending its ticks on" signal without a full
    export.
    """
    buckets = tick.get("breakdown_us") or {}
    total = sum(buckets.values())
    if total <= 0:
        return "-"
    name, us = max(buckets.items(), key=lambda kv: (kv[1], kv[0]))
    return f"{name} {100.0 * us / total:.0f}%"


def _telemetry_columns(entry: dict, iterations: int) -> list[str]:
    """Live columns for one job: iterations, p50/p99/CoV, warmup state,
    and the dominant Fig. 11 bucket.

    Read from the job's streamed JSONL sidecar, so they update while the
    job is still running (``status`` on a live campaign).
    """
    live = entry.get("telemetry") or {}
    tick = (live.get("telemetry") or {}).get("tick") or {}
    snap = tick.get("tick_ms") or {}
    windows = tick.get("windows") or {}
    if not snap:
        return [f"0/{iterations}", "-", "-", "-", "-", "-"]
    phase = "steady" if windows.get("steady") else "warmup"
    return [
        f"{entry.get('iterations_done', 0)}/{iterations}",
        f"{snap['p50']:.1f}",
        f"{snap['p99']:.1f}",
        f"{snap['cov']:.3f}",
        phase,
        _top_bucket(tick),
    ]


_STATUS_HEADERS = (
    "job",
    "server",
    "workload",
    "environment",
    "scale",
    "bots",
    "behavior",
    "status",
    "iters",
    "p50ms",
    "p99ms",
    "cov",
    "phase",
    "top bucket",
)


def _status_frame(spec: CampaignSpec, store: JobStore, status: dict) -> str:
    """The rendered ``status`` output for one per-job entry map."""
    iterations_by_id = {
        job.job_id: spec.cell_config(job.cell).iterations
        for job in store.manifest_jobs()
    }
    rows = [
        [
            entry["job_id"],
            *entry["cell"].split("|"),
            entry["state"],
            *_telemetry_columns(
                entry,
                iterations_by_id.get(entry["job_id"], spec.iterations),
            ),
        ]
        for entry in status["jobs"]
    ]
    lines = [f"Campaign {spec.name!r} in {store.root}"]
    provenance_line = _provenance_line(store.read_manifest())
    if provenance_line:
        lines.append(provenance_line)
    lines.append(format_table(_STATUS_HEADERS, rows))
    parts = [f"{status['completed']}/{status['total']} jobs complete"]
    if status.get("running"):
        parts.append(f"{status['running']} running")
    lines.append(", ".join(parts))
    return "\n".join(lines)


def _watch_status(
    spec: CampaignSpec,
    store: JobStore,
    interval_s: float,
    max_refreshes: int | None = None,
) -> int:
    """``status --watch``: redraw until interrupted.

    One :class:`~repro.campaign.store.SidecarFollower` lives across
    refreshes, remembering a byte offset per sidecar file — each poll
    reads only the lines appended since the previous one (O(new lines)),
    where one-shot ``status`` re-tails every sidecar per invocation.
    ``max_refreshes`` bounds the loop for tests.
    """
    import time

    from repro.campaign.store import SidecarFollower

    follower = SidecarFollower(store)
    refreshes = 0
    try:
        while True:
            follower.poll()
            jobs = sorted(store.manifest_jobs(), key=lambda j: j.index)
            done = store.completed_ids()
            entries = []
            for job in jobs:
                latest = follower.latest.get(job.job_id)
                is_done = job.job_id in done
                entries.append(
                    {
                        "job_id": job.job_id,
                        "cell": job.cell.key(),
                        "state": (
                            "done"
                            if is_done
                            else ("running" if latest else "pending")
                        ),
                        "iterations_done": (
                            int(latest.get("iteration", -1)) + 1
                            if latest
                            else 0
                        ),
                        "telemetry": latest,
                    }
                )
            status = {
                "total": len(jobs),
                "completed": len(done & {job.job_id for job in jobs}),
                "running": sum(
                    1 for entry in entries if entry["state"] == "running"
                ),
                "jobs": entries,
            }
            print(
                "\x1b[2J\x1b[H" + _status_frame(spec, store, status),
                flush=True,
            )
            refreshes += 1
            if max_refreshes is not None and refreshes >= max_refreshes:
                return 0
            time.sleep(interval_s)
    except KeyboardInterrupt:
        return 0


def _cmd_status(args: argparse.Namespace) -> int:
    spec = _load_spec(args.target)
    store = JobStore(spec.output_dir)
    if args.watch:
        return _watch_status(spec, store, args.interval_s)
    print(_status_frame(spec, store, store.status()))
    return 0


def _provenance_line(manifest: dict | None) -> str | None:
    """One-line run-provenance summary from the campaign manifest."""
    provenance = (manifest or {}).get("provenance")
    if not provenance:
        return None
    env = provenance.get("environment") or {}
    sha = env.get("git_sha")
    parts = [
        f"provenance {provenance.get('fingerprint', '?')[:12]}",
        f"git {sha[:10] if sha else 'n/a'}"
        + ("+dirty" if env.get("git_dirty") else ""),
        f"python {env.get('python', '?')}",
        f"numpy {env.get('numpy', '?')}",
    ]
    captured = provenance.get("captured_at")
    if captured:
        parts.append(f"captured {captured}")
    return "  ".join(parts)


def _cmd_export(args: argparse.Namespace) -> int:
    spec = _load_spec(args.target)
    store = JobStore(spec.output_dir)
    status = store.status()
    if status["completed"] == 0:
        print(f"no completed jobs in {store.root}", file=sys.stderr)
        return 1
    result = store.merge()
    out = Path(args.out) if args.out else store.root / "export"
    retrieve(result, out)
    manifest = store.read_manifest() or {}
    if manifest.get("provenance"):
        out.mkdir(parents=True, exist_ok=True)
        (out / "provenance.json").write_text(
            json.dumps(manifest["provenance"], indent=2, sort_keys=True)
            + "\n"
        )
        line = _provenance_line(manifest)
        if line:
            print(line)
    grid = campaign_grid(result)
    if grid.rows:
        headers = list(grid.rows[0])
        write_csv_rows(
            out / "campaign_grid.csv",
            headers,
            [[row[h] for h in headers] for row in grid.rows],
        )
    if status["pending"]:
        print(
            f"warning: exported {status['completed']}/{status['total']} "
            "jobs; resume the campaign for the full grid",
            file=sys.stderr,
        )
    print(f"Exported {len(result.iterations)} iteration(s) to {out}")
    if args.boxplot:
        servers = sorted({it.server for it in result.iterations})
        series = [
            (server, result.pooled_tick_durations(server))
            for server in servers
        ]
        print()
        print("Tick durations per server:")
        print(ascii_boxplot(series))
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.reporting.dataset import load_dataset
    from repro.reporting.html import write_report
    from repro.reporting.spec import OutputSpec

    target_is_file = Path(args.target).is_file()
    spec = _load_spec(args.target)
    store = JobStore(spec.output_dir)
    if args.update_output:
        # Presentation-only manifest rewrite: the output: section is
        # outside the measurement fingerprint and ignored on resume.
        store.update_manifest_output(spec.output)
    dataset = load_dataset(store, bench_dir=_bench_dir(args.bench_dir))
    # A spec-file target renders that file's (possibly edited) output:
    # section; a directory target renders what the manifest recorded.
    output_dict = spec.output if target_is_file else dataset.spec.get("output")
    output = OutputSpec.from_dict(output_dict)
    out_dir = Path(args.out) if args.out else store.report_dir
    written = write_report(dataset, output, out_dir=out_dir)
    hygiene = dataset.hygiene or {}
    print(
        f"Rendered {len(dataset.rows)} iteration(s) across "
        f"{dataset.completed_jobs}/{dataset.total_jobs} job(s) to "
        f"{written['html']}"
    )
    if hygiene:
        print(
            f"measurement hygiene: {hygiene.get('status', '?')} "
            f"({hygiene.get('warn_count', 0)} warning(s))"
        )
    if dataset.partial:
        print(
            "warning: partial campaign — the report covers only what has "
            "landed on disk; resume the campaign for the full matrix",
            file=sys.stderr,
        )
    return 0


def _bench_dir(requested: str | None) -> Path | None:
    """The benchmarks directory for the perf-trajectory panel."""
    if requested is not None:
        return Path(requested)
    default = Path("benchmarks")
    if (default / "BENCH_fig11.json").is_file():
        return default
    return None


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.tracing.chrome import render_campaign_trace

    if args.trace_command != "export":
        raise AssertionError(
            f"unhandled trace command {args.trace_command!r}"
        )
    spec = _load_spec(args.target)
    store = JobStore(spec.output_dir)
    manifest = store.read_manifest()
    if manifest is None:
        raise FileNotFoundError(
            f"no campaign manifest in {store.root}; run the campaign first"
        )
    document = render_campaign_trace(
        store, provenance=manifest.get("provenance")
    )
    out = (
        Path(args.out) if args.out else store.root / "export" / "trace.json"
    )
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(document) + "\n")
    other = document["otherData"]
    print(
        f"Wrote {len(document['traceEvents'])} trace event(s) from "
        f"{other['traced_iterations']} traced iteration(s) across "
        f"{other['traced_jobs']}/{other['jobs']} job(s) to {out}"
    )
    # Collate the per-job flight-recorder sidecars next to the trace.
    anomalies: list[dict] = []
    for job in sorted(store.manifest_jobs(), key=lambda j: j.index):
        anomalies.extend(store.read_job_anomalies(job.job_id))
    if anomalies:
        anomalies_out = out.with_name("anomalies.jsonl")
        anomalies_out.write_text(
            "\n".join(
                json.dumps(anomaly, sort_keys=True) for anomaly in anomalies
            )
            + "\n"
        )
        print(
            f"Wrote {len(anomalies)} slow-tick anomaly dump(s) to "
            f"{anomalies_out}"
        )
    if other["traced_iterations"] == 0:
        print(
            "note: no traced iterations found — run the campaign with "
            "trace: true in the spec",
            file=sys.stderr,
        )
    if other.get("client_processes"):
        print(
            f"Merged {other['client_span_lines']} client span(s) across "
            f"{other['client_processes']} client process(es)"
        )
    elif getattr(spec, "transport", "inproc") == "tcp":
        # A wire campaign without client streams would just render a
        # server-only timeline; say why the client side is missing
        # instead of leaving an unexplained empty half.
        print(
            "note: no client spans found — this is a wire campaign, so "
            "the timeline shows only the server side; re-run 'repro "
            "clients' with --trace-out "
            f"{store.telemetry_dir / 'clients.clientspans.jsonl'} to add "
            "per-client RTT tracks",
            file=sys.stderr,
        )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    # Lazy import: repro.net is the wall-clock/socket layer, loaded only
    # when wire serving is actually requested.
    from repro.net import serve_cell

    summary = serve_cell(
        args.spec,
        cell=args.cell,
        host=args.host,
        port=args.port,
        realtime=not args.no_realtime,
    )
    print(
        f"Served cell {summary['cell']} ({summary['job_id']}): "
        f"{summary['iterations']} iteration(s) → {summary['shard']}"
    )
    return 1 if summary["crashed"] else 0


def _cmd_clients(args: argparse.Namespace) -> int:
    from repro.net import run_clients

    summary = run_clients(
        args.host,
        args.port,
        args.n,
        behavior=args.behavior,
        stagger_s=args.stagger_s,
        duration_s=args.duration_s,
        seed=args.seed,
        trace_out=args.trace_out,
    )
    print(json.dumps(summary, indent=2, sort_keys=True))
    return 0 if summary["connected"] == args.n else 1


def _cmd_top(args: argparse.Namespace) -> int:
    # Lazy import: the dashboard is part of the obs plane, loaded only
    # when asked for.
    from repro.obs import run_top

    return run_top(args.target, interval_s=args.interval_s, once=args.once)


def _cmd_world(args: argparse.Namespace) -> int:
    from repro.persistence.warmup import (
        DEFAULT_PREPARE_RADIUS,
        inspect_world,
        prepare_world,
    )

    if args.world_command == "prepare":
        radius = (
            DEFAULT_PREPARE_RADIUS if args.radius is None else args.radius
        )
        report = prepare_world(
            args.out_dir,
            args.workload,
            scale=args.scale,
            seed=args.seed,
            radius=radius,
        )
        print(
            f"Prepared {report.workload!r} (scale {report.scale:g}, seed "
            f"{report.seed}) into {report.path}: {report.chunks} chunk(s), "
            f"{report.bytes_written / 1024:.1f} KiB, "
            f"hash {report.world_hash}"
        )
        return 0
    if args.world_command == "inspect":
        info = inspect_world(args.world_dir)
        print(f"World directory {info['path']}")
        print(
            f"  {info['chunks']} chunk(s) in {info['regions']} region "
            f"file(s), {info['total_bytes'] / 1024:.1f} KiB on disk"
        )
        print(f"  content hash: {info['world_hash']}")
        manifest = info["manifest"]
        hash_mismatch = False
        if manifest:
            hash_mismatch = manifest.get("world_hash") != info["world_hash"]
            match = "DOES NOT MATCH" if hash_mismatch else "matches"
            print(
                f"  manifest: workload={manifest.get('workload')!r} "
                f"scale={manifest.get('scale')} seed={manifest.get('seed')} "
                f"(recorded hash {match})"
            )
        for name in info["corrupt_regions"]:
            print(f"  CORRUPT region: {name}")
        for entry in info["corrupt_entries"]:
            print(
                f"  CORRUPT chunk ({entry['cx']}, {entry['cz']}): "
                f"{entry['reason']}"
            )
        damaged = bool(
            info["corrupt_regions"] or info["corrupt_entries"]
        )
        return 1 if damaged or hash_mismatch else 0
    raise AssertionError(f"unhandled world command {args.world_command!r}")


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.command == "run":
            return _cmd_run(args, resume=False)
        if args.command == "resume":
            return _cmd_run(args, resume=True)
        if args.command == "status":
            return _cmd_status(args)
        if args.command == "export":
            return _cmd_export(args)
        if args.command == "report":
            return _cmd_report(args)
        if args.command == "trace":
            return _cmd_trace(args)
        if args.command == "serve":
            return _cmd_serve(args)
        if args.command == "clients":
            return _cmd_clients(args)
        if args.command == "top":
            return _cmd_top(args)
        if args.command == "world":
            return _cmd_world(args)
        if args.command == "lint":
            from repro.lint.cli import run_lint

            return run_lint(args)
    except (FileNotFoundError, FileExistsError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    sys.exit(main())
