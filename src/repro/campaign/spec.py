"""Campaign specification: a parameter matrix over Meterstick configs.

Meterstick's core claim is that characterizing variability takes *many*
runs — multiple systems under test × workloads × environments, repeated.
A :class:`CampaignSpec` declares that matrix once (benchalot-style):
every axis is a literal list, the cross product is the set of cells, and
each cell maps to one plain :class:`MeterstickConfig` via
:meth:`CampaignSpec.cell_config`.  Specs load from YAML or JSON files;
expansion is purely literal — no ``{{var}}`` templating — with optional
``overrides`` entries that patch matching cells.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from itertools import product
from pathlib import Path

from repro.cloud.providers import get_environment
from repro.core.config import MeterstickConfig
from repro.emulation.behavior import BEHAVIORS
from repro.mlg.variants import get_variant
from repro.workloads import WORKLOADS

__all__ = ["CampaignCell", "CampaignSpec", "MATRIX_AXES"]

#: Cell attribute name per matrix axis, in expansion (= nesting) order.
MATRIX_AXES = (
    ("servers", "server"),
    ("workloads", "workload"),
    ("environments", "environment"),
    ("scales", "scale"),
    ("bot_counts", "n_bots"),
    ("behaviors", "behavior"),
)

#: ``overrides[*].set`` may patch any of these MeterstickConfig fields.
#: Matrix-axis fields (scale, number_of_bots, behavior) and ``seed`` are
#: deliberately absent: they define a cell's identity — its job id, seeds,
#: and export labels — so patching them would let two "distinct" jobs run
#: identical configs, or report an axis value the run never used.
_OVERRIDABLE_FIELDS = frozenset(
    {
        "duration_s",
        "iterations",
        "warm_machines",
        "inter_iteration_gap_s",
        "ram_gb",
        "retain_raw",
        "autosave_interval_s",
        "autosave_flush_every",
        "max_loaded_chunks",
        "trace",
        "trace_sample_every",
        "slow_tick_factor",
        "transport",
        "wire_port",
        "wire_batch_flush",
        "obs",
        "obs_port",
        "obs_scrape_grace",
    }
)


@dataclass(frozen=True)
class CampaignCell:
    """One point of the campaign matrix (before config materialization)."""

    server: str
    workload: str
    environment: str
    scale: float
    n_bots: int
    behavior: str

    def key(self) -> str:
        """Human-readable identity used in job ids and logs."""
        return (
            f"{self.server}|{self.workload}|{self.environment}"
            f"|{self.scale:g}|{self.n_bots}|{self.behavior}"
        )


@dataclass
class CampaignSpec:
    """A full benchmark campaign: matrix axes plus shared run parameters.

    Axes multiply: ``len(servers) * len(workloads) * len(environments) *
    len(scales) * len(bot_counts) * len(behaviors)`` cells.  Shared
    parameters (``iterations``, ``duration_s``, ``seed``, …) apply to
    every cell unless an ``overrides`` entry patches it.

    ``overrides`` entries have the shape::

        {"where": {"workload": "players", "environment": "aws-t3.large"},
         "set": {"duration_s": 120.0, "warm_machines": True}}

    ``where`` keys are cell attribute names; a cell matches when all its
    listed attributes equal the given values.  Later entries win.
    """

    name: str = "campaign"
    servers: list[str] = field(default_factory=lambda: ["vanilla"])
    workloads: list[str] = field(default_factory=lambda: ["control"])
    environments: list[str] = field(default_factory=lambda: ["das5-2core"])
    scales: list[float] = field(default_factory=lambda: [1.0])
    bot_counts: list[int] = field(default_factory=lambda: [25])
    behaviors: list[str] = field(default_factory=lambda: ["bounded-random"])

    iterations: int = 1
    duration_s: float = 60.0
    seed: int = 0
    inter_iteration_gap_s: float = 20.0
    warm_machines: bool = False
    #: Keep raw per-tick series in shards (figure pipeline); ``False``
    #: streams bounded-memory telemetry only.
    retain_raw: bool = True

    # -- world persistence (applied to every cell; see MeterstickConfig) --
    #: Root of the live world directories: each cell gets its own subtree
    #: (and each iteration its own directory) beneath it.
    world_dir: str | None = None
    autosave_interval_s: float = 45.0
    autosave_flush_every: int = 6
    max_loaded_chunks: int | None = None
    #: Pre-generate each (workload, scale) world once under
    #: ``<output_dir>/world-cache/`` and warm-boot every iteration from
    #: it: faster campaigns, bit-identical initial worlds.  Pins each
    #: cell's terrain seed to the campaign ``seed``.
    warm_world_cache: bool = False

    # -- observability (applied to every cell; see MeterstickConfig) ------
    trace: bool = False
    trace_sample_every: int = 1
    slow_tick_factor: float = 3.0
    obs: bool = False
    obs_port: int = 0
    obs_scrape_grace: float = 0.0

    # -- transport (applied to every cell; see MeterstickConfig) ----------
    transport: str = "inproc"
    wire_port: int = 0
    wire_batch_flush: bool = True

    output_dir: str = "meterstick-out"
    #: Default worker-process count for the executor (CLI ``--jobs`` wins).
    jobs: int = 1

    overrides: list[dict] = field(default_factory=list)

    # -- presentation & provenance (never change what gets simulated) -----
    #: ``output:`` report declaration (pivots, plots, html/csv names);
    #: empty mapping -> the default report.  Editable after a campaign
    #: ran — ``repro report --update-output`` re-renders without
    #: touching job shards.  See :mod:`repro.reporting.spec`.
    output: dict = field(default_factory=dict)
    #: ``system:`` measurement-hygiene requests (governor, SMT, ASLR,
    #: boost, CPU isolation, load ceiling).  Probed against the host at
    #: run start and stamped into the manifest's provenance.
    system: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.validate()

    # -- validation ---------------------------------------------------------

    def validate(self) -> None:
        """Raise ``ValueError`` on an invalid matrix or override table."""
        for axis, _ in MATRIX_AXES:
            if not getattr(self, axis):
                raise ValueError(f"matrix axis {axis!r} must be non-empty")
        for server in self.servers:
            get_variant(server)  # raises on unknown
        for environment in self.environments:
            get_environment(environment)
        for workload in self.workloads:
            if workload.lower() not in WORKLOADS:
                known = ", ".join(sorted(WORKLOADS))
                raise ValueError(
                    f"unknown workload {workload!r}; known: {known}"
                )
        for behavior in self.behaviors:
            if behavior.lower() not in BEHAVIORS:
                known = ", ".join(BEHAVIORS)
                raise ValueError(
                    f"unknown behavior {behavior!r}; known: {known}"
                )
        for scale in self.scales:
            if scale <= 0:
                raise ValueError(f"scale must be positive: {scale!r}")
        for n_bots in self.bot_counts:
            if n_bots < 0:
                raise ValueError(f"bots must be >= 0: {n_bots!r}")
        if self.iterations < 1:
            raise ValueError(f"iterations must be >= 1: {self.iterations!r}")
        if self.duration_s <= 0:
            raise ValueError(f"duration must be positive: {self.duration_s!r}")
        if self.jobs < 1:
            raise ValueError(f"jobs must be >= 1: {self.jobs!r}")
        if self.autosave_interval_s <= 0:
            raise ValueError(
                f"autosave_interval_s must be positive: "
                f"{self.autosave_interval_s!r}"
            )
        if self.autosave_flush_every < 0:
            raise ValueError(
                f"autosave_flush_every must be >= 0: "
                f"{self.autosave_flush_every!r}"
            )
        if self.max_loaded_chunks is not None and self.max_loaded_chunks < 1:
            raise ValueError(
                f"max_loaded_chunks must be >= 1 (or None): "
                f"{self.max_loaded_chunks!r}"
            )
        if self.trace_sample_every < 1:
            raise ValueError(
                f"trace_sample_every must be >= 1: "
                f"{self.trace_sample_every!r}"
            )
        if self.slow_tick_factor <= 0:
            raise ValueError(
                f"slow_tick_factor must be positive: "
                f"{self.slow_tick_factor!r}"
            )
        if self.transport not in ("inproc", "tcp"):
            raise ValueError(
                f"unknown transport {self.transport!r}; known: inproc, tcp"
            )
        if not 0 <= self.wire_port <= 65535:
            raise ValueError(
                f"wire_port must be 0..65535: {self.wire_port!r}"
            )
        if not 0 <= self.obs_port <= 65535:
            raise ValueError(
                f"obs_port must be 0..65535: {self.obs_port!r}"
            )
        if self.obs_scrape_grace < 0:
            raise ValueError(
                f"obs_scrape_grace must be >= 0: "
                f"{self.obs_scrape_grace!r}"
            )
        if self.output:
            from repro.reporting.spec import validate_output

            validate_output(self.output)
        if self.system:
            from repro.reporting.spec import validate_system

            validate_system(self.system)
        cell_fields = {attr for _, attr in MATRIX_AXES}
        for index, override in enumerate(self.overrides):
            if not isinstance(override, dict) or set(override) - {
                "where",
                "set",
            }:
                raise ValueError(
                    f"overrides[{index}] must be a dict with only "
                    f"'where'/'set' keys: {override!r}"
                )
            where = override.get("where", {})
            patch = override.get("set", {})
            unknown_where = set(where) - cell_fields
            if unknown_where:
                raise ValueError(
                    f"overrides[{index}].where has unknown cell fields "
                    f"{sorted(unknown_where)}; known: {sorted(cell_fields)}"
                )
            unknown_set = set(patch) - _OVERRIDABLE_FIELDS
            if unknown_set:
                raise ValueError(
                    f"overrides[{index}].set has unsupported config fields "
                    f"{sorted(unknown_set)}; "
                    f"known: {sorted(_OVERRIDABLE_FIELDS)}"
                )

    # -- matrix expansion ---------------------------------------------------

    @property
    def n_cells(self) -> int:
        count = 1
        for axis, _ in MATRIX_AXES:
            count *= len(getattr(self, axis))
        return count

    def cells(self) -> list[CampaignCell]:
        """Expand the matrix in deterministic axis-nesting order."""
        values = [getattr(self, axis) for axis, _ in MATRIX_AXES]
        return [
            CampaignCell(
                server=server,
                workload=workload,
                environment=environment,
                scale=float(scale),
                n_bots=int(n_bots),
                behavior=behavior,
            )
            for server, workload, environment, scale, n_bots, behavior in (
                product(*values)
            )
        ]

    def cell_config(self, cell: CampaignCell) -> MeterstickConfig:
        """Materialize the plain single-cell config the runner executes."""
        # Live world directories must be disjoint per cell (chains run in
        # parallel); the runner adds the per-iteration leaf below this.
        world_dir = self.world_dir
        if world_dir is not None:
            world_dir = str(
                Path(world_dir) / cell.key().replace("|", "_")
            )
        world_cache_dir = None
        if self.warm_world_cache:
            from repro.persistence.warmup import world_cache_key

            world_cache_dir = str(
                Path(self.output_dir)
                / "world-cache"
                / world_cache_key(cell.workload, cell.scale, self.seed)
            )
        kwargs: dict = dict(
            servers=[cell.server],
            world=cell.workload,
            environment=cell.environment,
            scale=cell.scale,
            number_of_bots=cell.n_bots,
            behavior=cell.behavior,
            iterations=self.iterations,
            duration_s=self.duration_s,
            seed=self.seed,
            inter_iteration_gap_s=self.inter_iteration_gap_s,
            warm_machines=self.warm_machines,
            retain_raw=self.retain_raw,
            output_dir=self.output_dir,
            world_dir=world_dir,
            world_cache_dir=world_cache_dir,
            autosave_interval_s=self.autosave_interval_s,
            autosave_flush_every=self.autosave_flush_every,
            max_loaded_chunks=self.max_loaded_chunks,
            trace=self.trace,
            trace_sample_every=self.trace_sample_every,
            slow_tick_factor=self.slow_tick_factor,
            transport=self.transport,
            wire_port=self.wire_port,
            wire_batch_flush=self.wire_batch_flush,
            obs=self.obs,
            obs_port=self.obs_port,
            obs_scrape_grace=self.obs_scrape_grace,
        )
        for override in self.overrides:
            where = override.get("where", {})
            if all(
                getattr(cell, attr) == value for attr, value in where.items()
            ):
                kwargs.update(override.get("set", {}))
        return MeterstickConfig(**kwargs)

    # -- serialization ------------------------------------------------------

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "CampaignSpec":
        known = set(cls.__dataclass_fields__)
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown campaign spec fields {sorted(unknown)}; "
                f"known: {sorted(known)}"
            )
        return cls(**data)

    @classmethod
    def from_file(cls, path: str | Path) -> "CampaignSpec":
        """Load a spec from a ``.json``, ``.yaml``, or ``.yml`` file."""
        path = Path(path)
        text = path.read_text()
        if path.suffix.lower() in (".yaml", ".yml"):
            try:
                import yaml
            except ImportError as exc:  # pragma: no cover - env-dependent
                raise RuntimeError(
                    f"PyYAML is required to load {path.name}; install it "
                    "or provide the spec as JSON"
                ) from exc
            data = yaml.safe_load(text)
        else:
            data = json.loads(text)
        if not isinstance(data, dict):
            raise ValueError(
                f"campaign spec {path} must contain a mapping at top level"
            )
        return cls.from_dict(data)

    def save(self, path: str | Path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_dict(), indent=2))
        return path
