"""Resumable on-disk job store (one JSON shard per completed job).

Layout, under the campaign's ``output_dir``::

    output_dir/
      manifest.json             the spec, planned job list, and the
                                campaign's provenance fingerprint
      campaign_trace.json       executor phase timings (plan/warm-boot/
                                iterate/externalize, per job and total)
      jobs/<job_id>.json        one shard per *completed* job
      telemetry/<job_id>.jsonl  streaming sidecar: one line per finished
                                iteration, written while the job runs
      telemetry/<job_id>.anomalies.jsonl
                                slow-tick flight-recorder dumps (traced
                                runs only; one line per anomalous tick)

Shards are written atomically (temp file + ``os.replace``), so a campaign
killed mid-run leaves either a complete shard or none — never a torn one.
``resume`` is then just "skip every job that already has a shard".

Telemetry sidecars are different on purpose: they are *streamed* (append
+ flush per iteration) so ``python -m repro status`` can show live
p50/p99/CoV and steady-state progress for in-flight jobs.  A torn final
line (the process died mid-write) is simply skipped on read, and a job
that re-runs after a crash truncates its own sidecar first.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.core.results import ExperimentResult, IterationResult
from repro.campaign.planner import Job
from repro.campaign.spec import CampaignSpec

__all__ = ["JobStore", "SidecarFollower"]

MANIFEST_NAME = "manifest.json"
SHARD_DIR = "jobs"
TELEMETRY_DIR = "telemetry"
REPORT_DIR = "report"


def _iteration_from_dict(raw: dict) -> IterationResult:
    raw = dict(raw)
    raw.pop("isr", None)  # derived property, not a constructor field
    return IterationResult(**raw)


class JobStore:
    """Reads and writes one campaign's on-disk state."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)

    @property
    def manifest_path(self) -> Path:
        return self.root / MANIFEST_NAME

    @property
    def shard_dir(self) -> Path:
        return self.root / SHARD_DIR

    def shard_path(self, job_id: str) -> Path:
        return self.shard_dir / f"{job_id}.json"

    @property
    def telemetry_dir(self) -> Path:
        return self.root / TELEMETRY_DIR

    def telemetry_path(self, job_id: str) -> Path:
        return self.telemetry_dir / f"{job_id}.jsonl"

    def anomaly_path(self, job_id: str) -> Path:
        """Slow-tick flight-recorder sidecar for one job."""
        return self.telemetry_dir / f"{job_id}.anomalies.jsonl"

    @property
    def campaign_trace_path(self) -> Path:
        return self.root / "campaign_trace.json"

    @property
    def report_dir(self) -> Path:
        """Where ``repro report`` renders by default."""
        return self.root / REPORT_DIR

    # -- manifest -----------------------------------------------------------

    def write_manifest(
        self,
        spec: CampaignSpec,
        jobs: list[Job],
        provenance: dict | None = None,
    ) -> Path:
        self.root.mkdir(parents=True, exist_ok=True)
        payload = {
            "name": spec.name,
            "spec": spec.to_dict(),
            "jobs": [job.to_dict() for job in jobs],
        }
        if provenance is not None:
            payload["provenance"] = provenance
        self._write_atomic(self.manifest_path, payload)
        return self.manifest_path

    def read_manifest(self) -> dict | None:
        if not self.manifest_path.exists():
            return None
        return json.loads(self.manifest_path.read_text())

    def manifest_spec(self) -> CampaignSpec:
        manifest = self.read_manifest()
        if manifest is None:
            raise FileNotFoundError(
                f"no campaign manifest at {self.manifest_path}"
            )
        return CampaignSpec.from_dict(manifest["spec"])

    def update_manifest_output(self, output: dict) -> Path:
        """Rewrite only the manifest spec's ``output:`` section.

        ``output`` is presentation-layer (outside the measurement
        fingerprint and ignored by resume), so ``repro report
        --update-output`` may persist an edited report declaration
        without invalidating jobs, shards, or provenance — the rewrite
        is atomic and touches nothing else in the manifest.
        """
        manifest = self.read_manifest()
        if manifest is None:
            raise FileNotFoundError(
                f"no campaign manifest at {self.manifest_path}"
            )
        manifest.setdefault("spec", {})["output"] = output
        self._write_atomic(self.manifest_path, manifest)
        return self.manifest_path

    def manifest_jobs(self) -> list[Job]:
        manifest = self.read_manifest()
        if manifest is None:
            raise FileNotFoundError(
                f"no campaign manifest at {self.manifest_path}"
            )
        return [Job.from_dict(raw) for raw in manifest["jobs"]]

    # -- shards -------------------------------------------------------------

    def save_job(
        self, job: Job, iterations: list[IterationResult]
    ) -> Path:
        self.shard_dir.mkdir(parents=True, exist_ok=True)
        payload = {
            "job": job.to_dict(),
            "iterations": [it.to_dict() for it in iterations],
        }
        path = self.shard_path(job.job_id)
        self._write_atomic(path, payload)
        return path

    def save_job_payload(self, job: Job, iterations: list[dict]) -> Path:
        """Like :meth:`save_job` for already-serialized iteration dicts
        (what worker processes return)."""
        return self.save_job(
            job, [_iteration_from_dict(raw) for raw in iterations]
        )

    def load_job(self, job_id: str) -> list[IterationResult] | None:
        path = self.shard_path(job_id)
        if not path.exists():
            return None
        payload = json.loads(path.read_text())
        return [_iteration_from_dict(raw) for raw in payload["iterations"]]

    def completed_ids(self) -> set[str]:
        if not self.shard_dir.is_dir():
            return set()
        return {path.stem for path in self.shard_dir.glob("*.json")}

    # -- telemetry sidecars -------------------------------------------------

    def read_job_telemetry(self, job_id: str) -> list[dict]:
        """Per-iteration telemetry lines streamed by a (possibly still
        running) job, oldest first.  A torn trailing line is skipped."""
        path = self.telemetry_path(job_id)
        if not path.exists():
            return []
        lines: list[dict] = []
        for raw in path.read_text().splitlines():
            raw = raw.strip()
            if not raw:
                continue
            try:
                lines.append(json.loads(raw))
            except json.JSONDecodeError:
                continue  # torn write from a killed worker
        return lines

    #: How many trailing sidecar bytes ``status`` reads per job — enough
    #: for several iteration lines.
    _TAIL_BYTES = 65536

    def tail_job_telemetry(self, job_id: str) -> tuple[int, dict | None]:
        """``(iterations_done, latest_line)`` for one job's sidecar.

        Reads only the file's tail and parses only the most recent
        intact line — ``status`` polls every job's sidecar on every
        invocation, so the cost must stay O(jobs), not O(file bytes).
        The iteration count comes from the latest line's own
        ``iteration`` field (lines stream in order), not from counting
        lines.
        """
        path = self.telemetry_path(job_id)
        try:
            with path.open("rb") as sidecar:
                sidecar.seek(0, os.SEEK_END)
                size = sidecar.tell()
                sidecar.seek(max(0, size - self._TAIL_BYTES))
                block = sidecar.read().decode(errors="replace")
        except FileNotFoundError:
            return 0, None
        complete, sep, _torn = block.rpartition("\n")
        if not sep:
            return 0, None
        lines = [line for line in complete.splitlines() if line.strip()]
        for raw in reversed(lines):
            try:
                latest = json.loads(raw)
            except json.JSONDecodeError:
                continue  # torn or corrupt line from a killed worker
            return int(latest.get("iteration", len(lines) - 1)) + 1, latest
        return 0, None

    def read_job_anomalies(self, job_id: str) -> list[dict]:
        """Flight-recorder dumps streamed by one job, oldest first."""
        path = self.anomaly_path(job_id)
        if not path.exists():
            return []
        dumps: list[dict] = []
        for raw in path.read_text().splitlines():
            raw = raw.strip()
            if not raw:
                continue
            try:
                dumps.append(json.loads(raw))
            except json.JSONDecodeError:
                continue  # torn write from a killed worker
        return dumps

    # -- campaign trace -----------------------------------------------------

    def write_campaign_trace(self, payload: dict) -> Path:
        """Persist the executor's job-lifecycle phase timings."""
        self.root.mkdir(parents=True, exist_ok=True)
        self._write_atomic(self.campaign_trace_path, payload)
        return self.campaign_trace_path

    def read_campaign_trace(self) -> dict | None:
        if not self.campaign_trace_path.exists():
            return None
        return json.loads(self.campaign_trace_path.read_text())

    # -- aggregation --------------------------------------------------------

    def merge(self, jobs: list[Job] | None = None) -> ExperimentResult:
        """Merge completed shards into one :class:`ExperimentResult`.

        Iterations are concatenated in planned job order (then iteration
        order within each job), so the merged result — and everything
        derived from it, ``summary.csv`` included — is identical no matter
        how many workers ran the campaign or in which order shards landed.
        """
        manifest = self.read_manifest()
        if jobs is None:
            jobs = self.manifest_jobs()
        result = ExperimentResult(
            config=manifest["spec"] if manifest else {}
        )
        for job in sorted(jobs, key=lambda j: j.index):
            iterations = self.load_job(job.job_id)
            if iterations is not None:
                result.iterations.extend(iterations)
        return result

    def status(self) -> dict:
        """Per-job completion map plus aggregate counts and live telemetry.

        A job with streamed telemetry but no shard yet is *running* (or
        was killed mid-chain); its entry carries the latest iteration's
        telemetry line so live campaigns are observable before any job
        completes.
        """
        jobs = self.manifest_jobs()
        done = self.completed_ids()
        entries = []
        for job in sorted(jobs, key=lambda j: j.index):
            n_iterations, latest = self.tail_job_telemetry(job.job_id)
            is_done = job.job_id in done
            entries.append(
                {
                    "job_id": job.job_id,
                    "cell": job.cell.key(),
                    "done": is_done,
                    "state": (
                        "done"
                        if is_done
                        else ("running" if latest else "pending")
                    ),
                    "iterations_done": n_iterations,
                    "telemetry": latest,
                }
            )
        return {
            "total": len(jobs),
            "completed": sum(1 for job in jobs if job.job_id in done),
            "pending": sum(1 for job in jobs if job.job_id not in done),
            "running": sum(
                1 for entry in entries if entry["state"] == "running"
            ),
            "jobs": entries,
        }

    # -- internals ----------------------------------------------------------

    @staticmethod
    def _write_atomic(path: Path, payload: dict) -> None:
        tmp = path.with_suffix(path.suffix + ".tmp")
        tmp.write_text(json.dumps(payload, indent=2))
        os.replace(tmp, path)


class SidecarFollower:
    """Incrementally follow every job's telemetry sidecar in a store.

    Each :meth:`poll` reads only the bytes appended since the previous
    poll (one remembered offset per sidecar file), so a live dashboard or
    watch loop pays O(new lines) per tick instead of re-reading whole
    files the way one-shot ``status`` does.  A torn trailing line (the
    writer is mid-``write``) stays buffered until its newline arrives; a
    sidecar that *shrank* (a crashed job re-running truncates its own
    file) resets that file's offset and replays it from the top.
    """

    def __init__(self, store: JobStore) -> None:
        self.store = store
        #: sidecar path -> (byte offset consumed, buffered partial line).
        self._state: dict[Path, tuple[int, bytes]] = {}
        #: job_id -> the most recent parsed line seen for that job.
        self.latest: dict[str, dict] = {}

    def _paths(self) -> list[tuple[str, Path]]:
        telemetry_dir = self.store.telemetry_dir
        if not telemetry_dir.is_dir():
            return []
        return sorted(
            (path.stem, path)
            for path in telemetry_dir.glob("*.jsonl")
            if not path.name.endswith(
                (".anomalies.jsonl", ".clientspans.jsonl")
            )
        )

    def poll(self) -> list[dict]:
        """Parsed sidecar lines appended since the last poll, in
        (job_id, stream) order."""
        lines: list[dict] = []
        for job_id, path in self._paths():
            offset, partial = self._state.get(path, (0, b""))
            try:
                with path.open("rb") as sidecar:
                    sidecar.seek(0, os.SEEK_END)
                    size = sidecar.tell()
                    if size < offset:
                        # Truncated by a re-running job: replay from 0.
                        offset, partial = 0, b""
                    sidecar.seek(offset)
                    block = sidecar.read()
            except FileNotFoundError:
                continue
            offset += len(block)
            block = partial + block
            # No newline yet: rpartition leaves the whole block in the
            # third slot — it stays buffered as the partial line.
            complete, sep, partial = block.rpartition(b"\n")
            self._state[path] = (offset, partial)
            if not sep:
                continue
            for raw in complete.split(b"\n"):
                raw = raw.strip()
                if not raw:
                    continue
                try:
                    line = json.loads(raw)
                except json.JSONDecodeError:
                    continue  # corrupt line from a killed worker
                lines.append(line)
                self.latest[line.get("job_id", job_id)] = line
        return lines
