"""Campaign orchestration: matrix expansion, parallel execution, resume.

The subsystem that turns Meterstick from a one-config runner into a
campaign engine (ROADMAP: scale + speed + scenario diversity):

* :class:`CampaignSpec` — declarative parameter matrix over the existing
  server/workload/environment registries, loadable from YAML/JSON;
* :class:`JobPlanner` / :class:`Job` — deterministic expansion into
  independent server-chain jobs with stable CRC32 ids;
* :class:`CampaignExecutor` — multiprocessing fan-out with a serial
  fallback, bit-identical to sequential execution;
* :class:`JobStore` — resumable on-disk shards + manifest under the
  campaign's ``output_dir``;
* :mod:`repro.campaign.cli` — the ``python -m repro`` command line.
"""

from repro.campaign.executor import CampaignExecutor, execute_job
from repro.campaign.planner import Job, JobPlanner
from repro.campaign.spec import CampaignCell, CampaignSpec, MATRIX_AXES
from repro.campaign.store import JobStore

__all__ = [
    "CampaignCell",
    "CampaignExecutor",
    "CampaignSpec",
    "Job",
    "JobPlanner",
    "JobStore",
    "MATRIX_AXES",
    "execute_job",
]
