"""Job planning: expand a campaign matrix into schedulable jobs.

A *job* is one server chain — every iteration of one matrix cell.
Iterations within a cell share a machine and clock (the deployment reuses
nodes, and burst credits carry over), so they must stay ordered; distinct
cells are fully independent, which is what lets the executor run them in
parallel while staying bit-identical with a sequential run.

Job ids reuse the repo's CRC32 stable-hash scheme
(:func:`repro.core.config.stable_crc`, the same function behind
``MeterstickConfig.iteration_seed``), so a spec always plans the same ids
— the property resumption depends on.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

from repro.core.config import MeterstickConfig, stable_crc
from repro.campaign.spec import CampaignCell, CampaignSpec

__all__ = ["Job", "JobPlanner"]


@dataclass(frozen=True)
class Job:
    """One schedulable unit: a matrix cell and its stable identity."""

    job_id: str
    index: int
    server: str
    workload: str
    environment: str
    scale: float
    n_bots: int
    behavior: str

    @property
    def cell(self) -> CampaignCell:
        return CampaignCell(
            server=self.server,
            workload=self.workload,
            environment=self.environment,
            scale=self.scale,
            n_bots=self.n_bots,
            behavior=self.behavior,
        )

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "Job":
        return cls(**data)


class JobPlanner:
    """Expands a :class:`CampaignSpec` into a deterministic job list."""

    def __init__(self, spec: CampaignSpec) -> None:
        self.spec = spec

    def job_id(self, cell: CampaignCell) -> str:
        """Stable id: CRC32 of the campaign seed and the cell identity."""
        return f"{stable_crc(self.spec.seed, cell.key()):08x}"

    def plan(self) -> list[Job]:
        """One job per matrix cell, in deterministic expansion order."""
        jobs: list[Job] = []
        seen: dict[str, CampaignCell] = {}
        for index, cell in enumerate(self.spec.cells()):
            job_id = self.job_id(cell)
            if job_id in seen:
                raise ValueError(
                    f"duplicate job id {job_id} for cells "
                    f"{seen[job_id].key()!r} and {cell.key()!r}; "
                    "remove duplicate axis values from the spec"
                )
            seen[job_id] = cell
            jobs.append(
                Job(
                    job_id=job_id,
                    index=index,
                    server=cell.server,
                    workload=cell.workload,
                    environment=cell.environment,
                    scale=cell.scale,
                    n_bots=cell.n_bots,
                    behavior=cell.behavior,
                )
            )
        return jobs

    def job_config(self, job: Job) -> MeterstickConfig:
        """The single-cell config this job's server chain executes."""
        return self.spec.cell_config(job.cell)
