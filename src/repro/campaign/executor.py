"""Campaign execution: independent server chains across a process pool.

Each job (one matrix cell's server chain) is self-contained — its machine,
clock, and every RNG seed derive only from the spec — so jobs can run in
any order, in any process, and produce bit-identical results.  The
executor exploits that: with ``jobs=1`` it runs chains inline; with
``jobs=N`` it fans them out over a ``multiprocessing`` pool.  Either way
the parent process writes one shard per finished job into the
:class:`~repro.campaign.store.JobStore`, which is what makes a killed
campaign resumable.
"""

from __future__ import annotations

import json
import multiprocessing
import threading
import time
from collections.abc import Callable
from pathlib import Path

from repro.core.experiment import run_server_chain
from repro.core.results import ExperimentResult, IterationResult
from repro.campaign.planner import Job, JobPlanner
from repro.campaign.spec import CampaignSpec
from repro.campaign.store import JobStore, SidecarFollower
from repro.tracing.provenance import (
    measurement_config,
    provenance_fingerprint,
)

__all__ = [
    "CampaignExecutor",
    "anomaly_lines",
    "execute_job",
    "telemetry_line",
]

#: Progress callback: (job, n_done, n_total).
ProgressFn = Callable[[Job, int, int], None]

#: Spec fields that may differ between run and resume: where results are
#: stored, how many workers run, and how results are presented — never
#: what gets measured.
_RESUME_IGNORED_FIELDS = ("output_dir", "jobs", "output")


def _ensure_spec_unchanged(recorded: dict, current: dict, root) -> None:
    """Refuse to resume when the spec's measurement parameters changed.

    Job ids only encode each cell's identity, so edits to e.g.
    ``duration_s`` or ``iterations`` between run and resume would
    silently mix measurements taken under different parameters."""
    changed = sorted(
        key
        for key in set(recorded) | set(current)
        if key not in _RESUME_IGNORED_FIELDS
        and recorded.get(key) != current.get(key)
    )
    if changed:
        raise ValueError(
            f"campaign spec changed since {root} was started "
            f"(fields: {', '.join(changed)}); completed shards were "
            "measured under the old spec — rerun into a fresh output_dir"
        )


def _strip_tails(snapshot) -> object:
    """Deep-copy a telemetry snapshot without its ring-buffer tails.

    Sidecar lines are read repeatedly by ``status`` while a campaign
    runs; dropping the recent-tail arrays keeps them to a few hundred
    bytes per iteration without losing any summary statistic.
    """
    if isinstance(snapshot, dict):
        return {
            key: _strip_tails(value)
            for key, value in snapshot.items()
            if key != "tail"
        }
    return snapshot


def _sidecar_telemetry(telemetry: dict) -> object:
    """Sidecar-sized telemetry: tails stripped, trace bulk summarized.

    A traced iteration's span-dump ring ("ticks") and anomaly list can
    run to tens of kilobytes; ``status`` tail-reads sidecars on every
    poll, so the sidecar keeps only the trace's summary state (knobs,
    per-phase accumulators, counters).  The full dumps stay in the job
    shard, and anomalies additionally stream to their own JSONL.
    """
    slim = _strip_tails(telemetry)
    trace = slim.get("trace") if isinstance(slim, dict) else None
    if isinstance(trace, dict):
        trace = dict(trace)
        trace["anomaly_count"] = len(trace.pop("anomalies", None) or [])
        trace.pop("ticks", None)
        slim["trace"] = trace
    return slim


def telemetry_line(job: Job, it: IterationResult) -> str:
    """One JSONL sidecar line for a finished iteration.

    ``sort_keys`` keeps the byte stream deterministic, so serial and
    parallel campaign runs produce bit-identical telemetry shards.
    """
    return json.dumps(
        {
            "job_id": job.job_id,
            "cell": job.cell.key(),
            "iteration": it.iteration,
            "seed": it.seed,
            "crashed": it.crashed,
            "isr": it.isr,
            "fingerprint": it.provenance.get("fingerprint"),
            "telemetry": _sidecar_telemetry(it.telemetry),
        },
        sort_keys=True,
    )


def anomaly_lines(job: Job, it: IterationResult) -> list[str]:
    """Flight-recorder JSONL lines for one finished iteration."""
    anomalies = ((it.telemetry or {}).get("trace") or {}).get("anomalies")
    return [
        json.dumps(
            {
                "job_id": job.job_id,
                "cell": job.cell.key(),
                "iteration": it.iteration,
                **anomaly,
            },
            sort_keys=True,
        )
        for anomaly in anomalies or []
    ]


def execute_job(payload: dict) -> tuple[dict, list[dict], dict]:
    """Run one job's server chain; the unit shipped to worker processes.

    Takes and returns plain JSON-able dicts so the same function serves
    the serial path, ``multiprocessing`` pickling, and shard files.  The
    third element is the job's lifecycle phase timings (wall seconds for
    plan → iterate → externalize), which the executor folds into the
    campaign trace.

    When the payload carries a ``telemetry_dir``, the worker streams one
    JSONL line per finished iteration into
    ``<telemetry_dir>/<job_id>.jsonl`` (truncating any sidecar left by a
    previous attempt), which is what makes in-flight jobs observable via
    ``python -m repro status``.  Traced iterations additionally stream
    their slow-tick flight-recorder dumps into
    ``<telemetry_dir>/<job_id>.anomalies.jsonl``.
    """
    plan_start = time.perf_counter()
    spec = CampaignSpec.from_dict(payload["spec"])
    job = Job.from_dict(payload["job"])
    config = JobPlanner(spec).job_config(job)
    phases = {"plan_s": time.perf_counter() - plan_start}
    telemetry_dir = payload.get("telemetry_dir")
    iterate_start = time.perf_counter()
    if telemetry_dir is None:
        iterations = run_server_chain(config, job.server)
    else:
        path = Path(telemetry_dir) / f"{job.job_id}.jsonl"
        path.parent.mkdir(parents=True, exist_ok=True)
        anomalies_path = Path(telemetry_dir) / f"{job.job_id}.anomalies.jsonl"
        anomalies_path.unlink(missing_ok=True)
        with path.open("w") as sidecar:

            def stream(it: IterationResult) -> None:
                sidecar.write(telemetry_line(job, it) + "\n")
                sidecar.flush()
                lines = anomaly_lines(job, it)
                if lines:
                    with anomalies_path.open("a") as recorder:
                        recorder.write("\n".join(lines) + "\n")

            iterations = run_server_chain(
                config, job.server, on_iteration=stream
            )
    phases["iterate_s"] = time.perf_counter() - iterate_start
    externalize_start = time.perf_counter()
    iteration_dicts = [it.to_dict() for it in iterations]
    phases["externalize_s"] = time.perf_counter() - externalize_start
    return payload["job"], iteration_dicts, phases


class _ObsPlane:
    """The campaign's live metrics endpoint, fed by the sidecar streams.

    Workers already push one bounded delta per finished iteration — the
    sidecar JSONL line they stream for ``repro status`` — so the parent
    needs no second channel: a follower thread tails every sidecar
    (per-file byte offsets, O(new lines) per sweep), folds each line
    into one :class:`~repro.obs.aggregate.CampaignObsAggregate`, and a
    single HTTP endpoint serves the whole campaign.  The same path
    covers the serial and ``multiprocessing`` executors, because both
    stream the same sidecars.
    """

    #: Seconds between sidecar sweeps — latency of the dashboard, not of
    #: the measurement (sidecars land regardless).
    _POLL_S = 0.5

    def __init__(self, spec, store, n_jobs: int, provenance: dict | None):
        from repro.obs import CampaignObsAggregate, ObsHttpServer

        meta: dict = {"campaign": spec.name}
        hygiene = (provenance or {}).get("hygiene")
        if hygiene:
            meta["hygiene"] = {
                "status": hygiene.get("status"),
                "warn_count": hygiene.get("warn_count", 0),
            }
        self._follower = SidecarFollower(store)
        self._aggregate = CampaignObsAggregate(n_jobs=n_jobs, meta=meta)
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._follow, name="obs-follower", daemon=True
        )
        self._endpoint = ObsHttpServer(
            self._aggregate.snapshot,
            port=spec.obs_port,
            scrape_grace_s=spec.obs_scrape_grace,
        )

    @property
    def url(self) -> str:
        return self._endpoint.url

    def _drain(self) -> None:
        for line in self._follower.poll():
            self._aggregate.fold(line)

    def _follow(self) -> None:
        while not self._stop.wait(self._POLL_S):
            self._drain()

    def start(self) -> "_ObsPlane":
        self._endpoint.start()
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        self._thread.join(timeout=5)
        # Final sweep: fold whatever landed after the last poll so a
        # grace-period scrape sees the completed campaign.
        self._drain()
        self._endpoint.stop()


class CampaignExecutor:
    """Plans, runs, and persists one campaign."""

    def __init__(
        self,
        spec: CampaignSpec,
        store: JobStore | None = None,
        jobs: int | None = None,
        progress: ProgressFn | None = None,
    ) -> None:
        self.spec = spec
        self.store = store if store is not None else JobStore(spec.output_dir)
        self.jobs = jobs if jobs is not None else spec.jobs
        if self.jobs < 1:
            raise ValueError(f"jobs must be >= 1: {self.jobs!r}")
        self.progress = progress
        #: The live metrics endpoint URL, set while ``run()`` executes a
        #: spec with ``obs: true`` (None otherwise).
        self.obs_url: str | None = None

    def run(self, resume: bool = False) -> ExperimentResult:
        """Execute the campaign and return the merged result.

        With ``resume=True``, jobs that already have a shard on disk are
        skipped; without it, a non-empty store is an error (never silently
        clobber or silently reuse a previous campaign's measurements).
        """
        run_start = time.perf_counter()
        planner = JobPlanner(self.spec)
        plan = planner.plan()
        plan_s = time.perf_counter() - run_start
        if resume:
            manifest = self.store.read_manifest()
            if manifest is not None:
                recorded = manifest["spec"]
                try:
                    # Normalize older manifests: fields added to the spec
                    # since (e.g. retain_raw) pick up their defaults
                    # instead of reading as spurious changes.
                    recorded = CampaignSpec.from_dict(recorded).to_dict()
                except (TypeError, ValueError):
                    pass
                _ensure_spec_unchanged(
                    recorded, self.spec.to_dict(), self.store.root
                )
        completed = self.store.completed_ids()
        stale = completed - {job.job_id for job in plan}
        if completed and not resume:
            raise FileExistsError(
                f"{self.store.root} already holds {len(completed)} completed "
                "job(s); resume the campaign or choose a fresh output_dir"
            )
        if stale:
            raise ValueError(
                f"{self.store.root} holds {len(stale)} shard(s) from a "
                "different campaign spec; choose a fresh output_dir"
            )
        # The manifest carries the campaign's provenance fingerprint —
        # the only timestamped one: shards and sidecars must stay
        # byte-identical across re-runs, the manifest need not.  The
        # measurement-hygiene snapshot (host conditions vs the spec's
        # ``system:`` requests) rides along *outside* the digest: probes
        # read live host state (load average, affinity), which must not
        # perturb the measurement fingerprint.
        from repro.reporting.hygiene import hygiene_snapshot

        provenance = provenance_fingerprint(
            measurement_config(self.spec.to_dict()), include_timestamp=True
        )
        provenance["hygiene"] = hygiene_snapshot(self.spec.system)
        self.store.write_manifest(self.spec, plan, provenance=provenance)
        obs = None
        if self.spec.obs:
            obs = _ObsPlane(
                self.spec, self.store, n_jobs=len(plan), provenance=provenance
            ).start()
            self.obs_url = obs.url
            print(f"obs endpoint {obs.url}", flush=True)
        try:
            warm_start = time.perf_counter()
            if self.spec.warm_world_cache:
                self._ensure_world_caches(plan)
            warm_boot_s = time.perf_counter() - warm_start
            pending = [job for job in plan if job.job_id not in completed]
            n_total = len(plan)
            n_done = n_total - len(pending)
            payloads = [
                {
                    "spec": self.spec.to_dict(),
                    "job": job.to_dict(),
                    "telemetry_dir": str(self.store.telemetry_dir),
                }
                for job in pending
            ]
            if self.jobs > 1 and len(pending) > 1:
                results = self._run_parallel(payloads)
            else:
                results = map(execute_job, payloads)
            iterate_start = time.perf_counter()
            job_phases: dict[str, dict] = {}
            for job_dict, iteration_dicts, phases in results:
                job = Job.from_dict(job_dict)
                self.store.save_job_payload(job, iteration_dicts)
                job_phases[job.job_id] = phases
                n_done += 1
                if self.progress is not None:
                    self.progress(job, n_done, n_total)
            iterate_s = time.perf_counter() - iterate_start
            externalize_start = time.perf_counter()
            merged = self.store.merge(plan)
            self.store.write_campaign_trace(
                {
                    "phases": {
                        "plan_s": plan_s,
                        "warm_boot_s": warm_boot_s,
                        "iterate_s": iterate_s,
                        "externalize_s": (
                            time.perf_counter() - externalize_start
                        ),
                    },
                    "jobs": {
                        job_id: job_phases[job_id]
                        for job_id in sorted(job_phases)
                    },
                }
            )
            return merged
        finally:
            if obs is not None:
                obs.stop()

    def _ensure_world_caches(self, plan: list[Job]) -> None:
        """Pre-generate each (workload, scale) world once, before any
        worker starts: all iterations of all servers then warm-boot from
        the same on-disk snapshot (``cell_config`` points their
        ``world_cache_dir`` at these directories).  Idempotent — an
        existing snapshot with a matching manifest is kept, so resumes
        and restored CI caches skip the generation cost."""
        from repro.persistence.warmup import ensure_world_cache

        cache_root = Path(self.spec.output_dir) / "world-cache"
        for workload, scale in sorted(
            {(job.workload, job.scale) for job in plan}
        ):
            ensure_world_cache(cache_root, workload, scale, self.spec.seed)

    def _run_parallel(self, payloads: list[dict]):
        """Fan pending jobs out over a process pool, yielding completions.

        ``imap_unordered`` streams results back as chains finish, so
        shards land (and resume-progress accrues) job by job rather than
        all at once; merge order is restored from the plan afterwards.
        """
        n_workers = min(self.jobs, len(payloads))
        with multiprocessing.Pool(processes=n_workers) as pool:
            yield from pool.imap_unordered(execute_job, payloads)
