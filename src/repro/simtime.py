"""Simulated time base shared by the game loop, clouds, and bots.

All measurements in this reproduction run on *simulated* time: the game loop
performs real algorithmic work, a machine model converts work into simulated
microseconds, and a :class:`SimClock` tracks the result.  Wall-clock time
never enters any metric, so every experiment is deterministic given a seed.
"""

from __future__ import annotations

__all__ = [
    "US_PER_MS",
    "US_PER_SECOND",
    "MS_PER_SECOND",
    "SimClock",
    "ms_to_us",
    "s_to_us",
    "us_to_ms",
    "us_to_s",
]

US_PER_MS = 1_000
US_PER_SECOND = 1_000_000
MS_PER_SECOND = 1_000


def ms_to_us(ms: float) -> int:
    """Convert milliseconds to integer microseconds."""
    return int(round(ms * US_PER_MS))


def s_to_us(seconds: float) -> int:
    """Convert seconds to integer microseconds."""
    return int(round(seconds * US_PER_SECOND))


def us_to_ms(us: float) -> float:
    """Convert microseconds to (float) milliseconds."""
    return us / US_PER_MS


def us_to_s(us: float) -> float:
    """Convert microseconds to (float) seconds."""
    return us / US_PER_SECOND


class SimClock:
    """A monotonically advancing microsecond clock.

    The clock only moves forward via :meth:`advance`; components read it
    through :attr:`now_us`.  Keeping it integer avoids drift over long
    experiments.
    """

    def __init__(self, start_us: int = 0) -> None:
        if start_us < 0:
            raise ValueError(f"start_us must be >= 0, got {start_us!r}")
        self._now_us = int(start_us)

    @property
    def now_us(self) -> int:
        """Current simulated time in microseconds."""
        return self._now_us

    @property
    def now_ms(self) -> float:
        """Current simulated time in milliseconds."""
        return self._now_us / US_PER_MS

    @property
    def now_s(self) -> float:
        """Current simulated time in seconds."""
        return self._now_us / US_PER_SECOND

    def advance(self, delta_us: int) -> int:
        """Move the clock forward by ``delta_us`` and return the new time."""
        delta = int(delta_us)
        if delta < 0:
            raise ValueError(f"cannot advance time backwards ({delta_us!r})")
        self._now_us += delta
        return self._now_us

    def advance_to(self, target_us: int) -> int:
        """Advance to an absolute time (no-op if already past it)."""
        if target_us > self._now_us:
            self._now_us = int(target_us)
        return self._now_us

    def __repr__(self) -> str:
        return f"SimClock(now_us={self._now_us})"
