"""``repro top``: a plain-ANSI live dashboard over the obs plane.

Two targets, one renderer:

- an **endpoint URL** (``http://host:port/metrics`` or ``/metrics.json``)
  — polls the JSON snapshot of a running ``repro serve`` loop or a
  campaign executor's aggregate endpoint;
- a **campaign output directory** — follows the telemetry sidecars
  incrementally (per-file byte offsets, O(new lines) per poll) and folds
  them through the same :class:`~repro.obs.aggregate.CampaignObsAggregate`
  the executor serves, so the numbers agree with a scrape of the same
  campaign.

No curses: each frame is one block of text behind an ANSI
clear-and-home, so it works in any terminal, over ssh, and in CI logs
(``--once`` skips the escape codes entirely).
"""

from __future__ import annotations

import json
import sys
import time
import urllib.request

from repro.obs.registry import OBS_METRICS

__all__ = ["fetch_snapshot", "render_top", "run_top"]

#: ANSI clear screen + cursor home — the whole "TUI".
_CLEAR = "\x1b[2J\x1b[H"

#: How many Fig. 11 phase buckets the dashboard shows.
_TOP_BUCKETS = 5


def fetch_snapshot(url: str, timeout_s: float = 5.0) -> dict:
    """GET the JSON snapshot document from an obs endpoint URL.

    Accepts the ``/metrics`` (Prometheus) form of the URL too and
    rewrites it to ``/metrics.json`` — the dashboard always wants the
    JSON body, which carries the run metadata.
    """
    if url.endswith("/metrics"):
        url = url + ".json"
    elif not url.endswith("/metrics.json"):
        url = url.rstrip("/") + "/metrics.json"
    with urllib.request.urlopen(url, timeout=timeout_s) as response:
        return json.loads(response.read().decode("utf-8"))


def _metric(doc: dict, name: str, default: float = 0.0) -> float:
    value = (doc.get("metrics") or {}).get(name, default)
    return float(value)


def _family(doc: dict, name: str) -> dict:
    value = (doc.get("metrics") or {}).get(name) or {}
    return value if isinstance(value, dict) else {}


def _hygiene_banner(meta: dict) -> str | None:
    hygiene = meta.get("hygiene")
    if not hygiene:
        return None
    status = str(hygiene.get("status", "?"))
    warns = hygiene.get("warn_count", 0)
    if status == "pass":
        return "hygiene: PASS"
    return f"HYGIENE: {status.upper()} ({warns} warning(s))"


def render_top(doc: dict, source: str = "") -> str:
    """Render one dashboard frame from a ``repro-obs/v1`` JSON document."""
    meta = doc.get("meta") or {}
    lines: list[str] = []
    title = meta.get("campaign") or meta.get("cell") or ""
    header = "repro top"
    if title:
        header += f" — {title}"
    if source:
        header += f"  [{source}]"
    lines.append(header)
    banner = _hygiene_banner(meta)
    if banner:
        lines.append(banner)
    lines.append("")
    ticks = _metric(doc, "repro_ticks_total")
    lines.append(
        f"ticks {ticks:,.0f}   "
        f"p50 {_metric(doc, 'repro_tick_ms_p50'):.1f}ms   "
        f"p99 {_metric(doc, 'repro_tick_ms_p99'):.1f}ms   "
        f"CoV {_metric(doc, 'repro_tick_cov'):.3f}"
    )
    lines.append(
        f"ISR {_metric(doc, 'repro_isr'):.4f}   "
        f"overloaded {100.0 * _metric(doc, 'repro_overloaded_fraction'):.1f}%"
        f"   entities {_metric(doc, 'repro_entities'):,.0f}"
        f" (peak {_metric(doc, 'repro_entities_peak'):,.0f})"
    )
    phases = _family(doc, "repro_phase_us_total")
    total_us = sum(phases.values())
    if total_us > 0:
        lines.append("")
        lines.append("top buckets (simulated µs):")
        ranked = sorted(phases.items(), key=lambda kv: (-kv[1], kv[0]))
        for name, us in ranked[:_TOP_BUCKETS]:
            share = 100.0 * us / total_us
            bar = "#" * max(1, int(share / 4))
            lines.append(f"  {name:<14} {share:5.1f}%  {bar}")
    samples = _metric(doc, "repro_response_samples_total")
    lines.append("")
    lines.append(
        f"responses {samples:,.0f}   "
        f"p50 {_metric(doc, 'repro_response_ms_p50'):.1f}ms   "
        f"p99 {_metric(doc, 'repro_response_ms_p99'):.1f}ms"
    )
    metrics = doc.get("metrics") or {}
    if "repro_wire_bytes_out_total" in metrics:
        lines.append(
            f"wire in {_metric(doc, 'repro_wire_bytes_in_total'):,.0f}B  "
            f"out {_metric(doc, 'repro_wire_bytes_out_total'):,.0f}B  "
            f"connects {_metric(doc, 'repro_wire_connects_total'):,.0f}  "
            f"flush p99 {_metric(doc, 'repro_wire_flush_us_p99'):,.0f}µs"
        )
    if "repro_trace_anomalies_total" in metrics:
        lines.append(
            f"slow ticks {_metric(doc, 'repro_slow_ticks_total'):,.0f}   "
            f"anomalies {_metric(doc, 'repro_trace_anomalies_total'):,.0f}"
        )
    if "repro_jobs_total" in metrics:
        lines.append(
            f"jobs {_metric(doc, 'repro_jobs_observed'):,.0f}"
            f"/{_metric(doc, 'repro_jobs_total'):,.0f} observed   "
            f"iterations {_metric(doc, 'repro_iterations_total'):,.0f}"
        )
    return "\n".join(lines) + "\n"


class _DirPoller:
    """Poll a campaign output directory through the sidecar follower."""

    def __init__(self, target: str) -> None:
        from repro.campaign.store import JobStore, SidecarFollower
        from repro.obs.aggregate import CampaignObsAggregate

        self.store = JobStore(target)
        manifest = self.store.read_manifest()
        if manifest is None:
            raise FileNotFoundError(
                f"no campaign manifest in {target!r} — "
                "point repro top at an output_dir or an endpoint URL"
            )
        meta = {"campaign": manifest.get("name", "")}
        hygiene = (manifest.get("provenance") or {}).get("hygiene")
        if hygiene:
            meta["hygiene"] = {
                "status": hygiene.get("status"),
                "warn_count": hygiene.get("warn_count", 0),
            }
        self.follower = SidecarFollower(self.store)
        self.aggregate = CampaignObsAggregate(
            n_jobs=len(manifest.get("jobs") or []), meta=meta
        )

    def __call__(self) -> dict:
        for line in self.follower.poll():
            self.aggregate.fold(line)
        snap = self.aggregate.snapshot()
        return {"meta": snap.meta, "metrics": snap.values}


def run_top(
    target: str,
    interval_s: float = 2.0,
    once: bool = False,
    max_polls: int | None = None,
    out=None,
) -> int:
    """Poll ``target`` (endpoint URL or campaign dir) and draw frames.

    ``max_polls`` bounds the loop for tests; interactive use runs until
    interrupted.  Returns a process exit code.
    """
    out = sys.stdout if out is None else out
    if target.startswith(("http://", "https://")):
        poller = lambda: fetch_snapshot(target)  # noqa: E731
        source = target
    else:
        poller = _DirPoller(target)
        source = target
    polls = 0
    try:
        while True:
            try:
                doc = poller()
                frame = render_top(doc, source=source)
            except (OSError, ValueError) as exc:
                frame = f"repro top — {source}\n(unreachable: {exc})\n"
            if once or max_polls is not None:
                out.write(frame)
            else:
                out.write(_CLEAR + frame)
            out.flush()
            polls += 1
            if once or (max_polls is not None and polls >= max_polls):
                return 0
            time.sleep(interval_s)
    except KeyboardInterrupt:
        return 0


# Self-check: every metric name this module reads must be registered —
# a rename in the registry should fail here, not render zeros forever.
for _name in (
    "repro_ticks_total",
    "repro_phase_us_total",
    "repro_jobs_total",
):
    if _name not in OBS_METRICS:  # pragma: no cover - import-time guard
        raise AssertionError(f"repro top reads unregistered metric {_name!r}")
