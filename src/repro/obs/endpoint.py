"""The pull-based metrics endpoint: a tiny stdlib HTTP server.

One :class:`ObsHttpServer` serves two routes from a daemon thread:

- ``GET /metrics`` — Prometheus text exposition format;
- ``GET /metrics.json`` — the JSON snapshot (schema ``repro-obs/v1``),
  which also carries run metadata (``repro top`` polls this one).

The server never touches the simulation: a scrape calls the snapshot
function the owner provided, renders, and responds.  The snapshot
function reads live accumulators from another thread — a read racing a
fold can, very rarely, catch a quantile sketch mid-compaction, so a
failed build answers with the previous successful body (HTTP 200) or
503 when none exists yet.  Scrapes therefore never crash a run and a
run never waits on a scraper.
"""

from __future__ import annotations

import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.obs.registry import ObsSnapshot, render_json, render_prometheus

__all__ = ["ObsHttpServer"]


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"

    # The default handler logs every request to stderr; scrapes are
    # routine, so stay silent.
    def log_message(self, format: str, *args) -> None:
        pass

    def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        owner: "ObsHttpServer" = self.server.obs_owner  # type: ignore[attr-defined]
        path = self.path.split("?", 1)[0]
        if path == "/metrics":
            body, status = owner.body("prometheus")
            content_type = "text/plain; version=0.0.4; charset=utf-8"
        elif path == "/metrics.json":
            body, status = owner.body("json")
            content_type = "application/json; charset=utf-8"
        else:
            body, status = "not found\n", 404
            content_type = "text/plain; charset=utf-8"
        payload = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)


class ObsHttpServer:
    """Serve scrapes of a snapshot function from a daemon thread."""

    def __init__(
        self,
        snapshot_fn,
        host: str = "127.0.0.1",
        port: int = 0,
        scrape_grace_s: float = 0.0,
    ) -> None:
        self._snapshot_fn = snapshot_fn
        self._grace_s = scrape_grace_s
        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.daemon_threads = True
        self._httpd.obs_owner = self  # type: ignore[attr-defined]
        self._thread: threading.Thread | None = None
        self._last: dict[str, str] = {}
        self.host, self.port = self._httpd.server_address[:2]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}/metrics"

    def body(self, which: str) -> tuple[str, int]:
        """Render one scrape body; fall back to the last good one."""
        try:
            snap = self._snapshot_fn()
            if not isinstance(snap, ObsSnapshot):
                raise TypeError(f"snapshot_fn returned {type(snap).__name__}")
            self._last["prometheus"] = render_prometheus(snap)
            self._last["json"] = render_json(snap)
        except Exception:
            if which not in self._last:
                return "snapshot unavailable\n", 503
        return self._last[which], 200

    def start(self) -> "ObsHttpServer":
        thread = threading.Thread(
            target=self._httpd.serve_forever,
            name=f"obs-endpoint:{self.port}",
            daemon=True,
        )
        thread.start()
        self._thread = thread
        return self

    def stop(self, grace_s: float | None = None) -> None:
        """Stop serving, after the configured post-run scrape grace."""
        grace = self._grace_s if grace_s is None else grace_s
        if grace > 0:
            time.sleep(grace)
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None
