"""The obs metric registry: one name table for everything the live
endpoint exports.

Meterstick's thesis is that variability must be observed *while it
happens*; the endpoint therefore re-exports the same streaming state the
sidecars already carry — the :class:`~repro.telemetry.tap.ServerTelemetry`
tap, the tracer's per-phase accumulators, and the wire metrics — rather
than keeping a second set of counters.  :data:`OBS_METRICS` is the single
registry of exported names: every ``ObsSnapshot.export`` call must name
an entry (enforced at runtime here and statically by lint rule MSL008),
and every entry must be exported by some call site (the MSL008 reverse
direction), so the endpoint's surface can never drift from the table
documenting it.

Scrape-diffability contract: rendered output is stable-sorted by metric
name (label values sorted within a family) and carries **no wall-clock
timestamps** — two scrapes of an idle server are byte-identical, and any
diff between scrapes is real simulation progress.
"""

from __future__ import annotations

import json

__all__ = [
    "OBS_METRICS",
    "ObsSnapshot",
    "render_json",
    "render_prometheus",
    "telemetry_obs_snapshot",
]

#: Exported metric name -> (prometheus type, source stream, label, help).
#: ``source`` names the sidecar stream the value derives from — a
#: ``SIDECAR_METRICS`` key for bus metrics, else the tap/trace/campaign
#: section of the sidecar line.  ``label`` is the label key for family
#: metrics ("" = plain scalar).
OBS_METRICS = {
    "repro_ticks_total": (
        "counter", "tick_ms", "", "ticks simulated so far"),
    "repro_tick_ms_mean": (
        "gauge", "tick_ms", "", "mean tick duration (ms)"),
    "repro_tick_ms_p50": (
        "gauge", "tick_ms", "", "p50 tick duration (ms)"),
    "repro_tick_ms_p95": (
        "gauge", "tick_ms", "", "p95 tick duration (ms)"),
    "repro_tick_ms_p99": (
        "gauge", "tick_ms", "", "p99 tick duration (ms)"),
    "repro_tick_ms_max": (
        "gauge", "tick_ms", "", "max tick duration (ms)"),
    "repro_tick_cov": (
        "gauge", "tick_ms", "", "tick-duration coefficient of variation"),
    "repro_isr": (
        "gauge", "tick_ms", "", "streaming Instability Ratio (Eq. 1)"),
    "repro_overloaded_fraction": (
        "gauge", "tick_ms", "", "fraction of ticks over the 50 ms budget"),
    "repro_entities": (
        "gauge", "tap", "", "live entities at the last observed tick"),
    "repro_entities_peak": (
        "gauge", "tap", "", "peak live-entity population"),
    "repro_phase_us_total": (
        "counter", "tap", "phase",
        "simulated microseconds per Fig. 11 work bucket"),
    "repro_response_samples_total": (
        "counter", "response_ms", "", "client response samples observed"),
    "repro_response_ms_p50": (
        "gauge", "response_ms", "", "p50 client response time (ms)"),
    "repro_response_ms_p99": (
        "gauge", "response_ms", "", "p99 client response time (ms)"),
    "repro_wire_bytes_in_total": (
        "counter", "wire_bytes_in", "", "bytes received on the wire"),
    "repro_wire_bytes_out_total": (
        "counter", "wire_bytes_out", "", "bytes flushed to the wire"),
    "repro_wire_flush_us_p99": (
        "gauge", "wire_flush_us", "", "p99 wire flush wall time (µs)"),
    "repro_wire_connects_total": (
        "counter", "wire_connects", "", "client connections accepted"),
    "repro_slow_ticks_total": (
        "counter", "trace", "", "ticks slower than the flight-recorder cut"),
    "repro_trace_anomalies_total": (
        "counter", "trace", "", "slow-tick flight-recorder dumps"),
    "repro_jobs_total": (
        "gauge", "campaign", "", "planned campaign jobs"),
    "repro_jobs_observed": (
        "gauge", "campaign", "", "jobs that have streamed telemetry"),
    "repro_iterations_total": (
        "counter", "campaign", "", "completed campaign iterations"),
}


class ObsSnapshot:
    """One scrape's worth of metric values, plus run metadata.

    ``meta`` (run name, cell, hygiene status, …) rides only in the JSON
    rendering — the Prometheus text body stays pure metric samples.
    """

    def __init__(self, meta: dict | None = None) -> None:
        self.meta = dict(meta or {})
        #: name -> float, or name -> {label value -> float} for families.
        self.values: dict = {}

    def export(self, name: str, value, label: str | None = None) -> None:
        """Record one sample; ``name`` must be in :data:`OBS_METRICS`."""
        if name not in OBS_METRICS:
            raise ValueError(
                f"metric {name!r} is not in the OBS_METRICS registry"
            )
        label_key = OBS_METRICS[name][2]
        if label is None:
            if label_key:
                raise ValueError(
                    f"metric {name!r} needs a {label_key!r} label"
                )
            self.values[name] = float(value)
        else:
            if not label_key:
                raise ValueError(f"metric {name!r} takes no label")
            self.values.setdefault(name, {})[label] = float(value)


def telemetry_obs_snapshot(
    telemetry: dict, meta: dict | None = None
) -> ObsSnapshot:
    """Build a snapshot from one sidecar-shaped telemetry mapping.

    ``telemetry`` is the exact shape the campaign sidecars carry
    (``{"tick": tap snapshot, "response_ms": ..., "wire": ...,
    "trace": ...}``) — the serve loop builds the same mapping live from
    its accumulators, so the endpoint and the sidecars can never
    disagree on what a metric means.
    """
    snap = ObsSnapshot(meta)
    tick = telemetry.get("tick") or {}
    tick_ms = tick.get("tick_ms") or {}
    snap.export("repro_ticks_total", tick.get("ticks", 0))
    snap.export("repro_isr", tick.get("isr", 0.0))
    snap.export(
        "repro_overloaded_fraction", tick.get("overloaded_fraction", 0.0)
    )
    snap.export("repro_tick_ms_mean", tick_ms.get("mean", 0.0))
    snap.export("repro_tick_ms_p50", tick_ms.get("p50", 0.0))
    snap.export("repro_tick_ms_p95", tick_ms.get("p95", 0.0))
    snap.export("repro_tick_ms_p99", tick_ms.get("p99", 0.0))
    snap.export("repro_tick_ms_max", tick_ms.get("max", 0.0))
    snap.export("repro_tick_cov", tick_ms.get("cov", 0.0))
    snap.export("repro_entities", tick.get("entities_last", 0))
    snap.export("repro_entities_peak", tick.get("entities_peak", 0))
    for bucket, us in sorted((tick.get("breakdown_us") or {}).items()):
        snap.export("repro_phase_us_total", us, label=bucket)
    response = telemetry.get("response_ms") or {}
    snap.export("repro_response_samples_total", response.get("count", 0))
    snap.export("repro_response_ms_p50", response.get("p50", 0.0))
    snap.export("repro_response_ms_p99", response.get("p99", 0.0))
    wire = telemetry.get("wire")
    if wire:
        snap.export(
            "repro_wire_bytes_in_total",
            (wire.get("wire_bytes_in") or {}).get("total", 0.0),
        )
        snap.export(
            "repro_wire_bytes_out_total",
            (wire.get("wire_bytes_out") or {}).get("total", 0.0),
        )
        snap.export(
            "repro_wire_flush_us_p99",
            (wire.get("wire_flush_us") or {}).get("p99", 0.0),
        )
        snap.export(
            "repro_wire_connects_total",
            (wire.get("wire_connects") or {}).get("count", 0),
        )
    trace = telemetry.get("trace")
    if trace and trace.get("enabled"):
        snap.export("repro_slow_ticks_total", trace.get("slow_ticks", 0))
        anomalies = trace.get("anomaly_count")
        if anomalies is None:
            anomalies = len(trace.get("anomalies") or [])
        snap.export("repro_trace_anomalies_total", anomalies)
    return snap


def _format_value(value: float) -> str:
    """Deterministic sample formatting (integers stay integral)."""
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return format(value, ".10g")


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def render_prometheus(snap: ObsSnapshot) -> str:
    """The Prometheus text exposition body: stable-sorted, timestamp-free."""
    lines: list[str] = []
    for name in sorted(snap.values):
        mtype, _source, label_key, help_text = OBS_METRICS[name]
        lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {mtype}")
        value = snap.values[name]
        if isinstance(value, dict):
            for label_value in sorted(value):
                lines.append(
                    f'{name}{{{label_key}="{_escape_label(label_value)}"}} '
                    f"{_format_value(value[label_value])}"
                )
        else:
            lines.append(f"{name} {_format_value(value)}")
    return "\n".join(lines) + "\n"


def render_json(snap: ObsSnapshot) -> str:
    """The JSON snapshot body (schema ``repro-obs/v1``), key-sorted."""
    return (
        json.dumps(
            {
                "schema": "repro-obs/v1",
                "meta": snap.meta,
                "metrics": snap.values,
            },
            sort_keys=True,
        )
        + "\n"
    )
