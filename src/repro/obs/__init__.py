"""Live observability plane: registry, endpoint, aggregation, dashboard.

Everything here is pull-based and off by default (``obs: false``): a run
without the endpoint is bit-identical with one that never imported this
package, and a scraped run only pays for the scrapes it serves.
"""

from repro.obs.aggregate import CampaignObsAggregate
from repro.obs.endpoint import ObsHttpServer
from repro.obs.registry import (
    OBS_METRICS,
    ObsSnapshot,
    render_json,
    render_prometheus,
    telemetry_obs_snapshot,
)
from repro.obs.top import fetch_snapshot, render_top, run_top

__all__ = [
    "CampaignObsAggregate",
    "OBS_METRICS",
    "ObsHttpServer",
    "ObsSnapshot",
    "fetch_snapshot",
    "render_json",
    "render_prometheus",
    "render_top",
    "run_top",
    "telemetry_obs_snapshot",
]
