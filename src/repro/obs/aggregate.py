"""Campaign-wide obs aggregation: fold worker deltas into one snapshot.

The campaign executor's workers push one bounded delta per finished
iteration — the very sidecar-line dict they just streamed to disk —
through a multiprocessing queue.  The parent folds them here and serves
a single endpoint for the whole campaign.

Aggregation semantics:

- **Counters sum exactly** (ticks, response samples, wire bytes,
  connects, per-phase microseconds, slow ticks, anomaly dumps) — a
  scrape's counter is monotone and never exceeds the final sidecar sum.
- **Gauges average, weighted by ticks** (tick quantiles, CoV, ISR,
  overloaded fraction, response quantiles by sample count): the sidecar
  snapshots are not mergeable at full fidelity, so campaign-level
  quantiles are the weighted mean of the per-iteration quantiles — an
  approximation, clearly scoped to the dashboard (reports keep using
  the exact sidecar values).
- ``entities_peak`` takes the max; ``entities_last`` the latest fold.
"""

from __future__ import annotations

import threading

from repro.obs.registry import ObsSnapshot, telemetry_obs_snapshot

__all__ = ["CampaignObsAggregate"]

#: tick-section gauge fields averaged weighted by each iteration's ticks.
_TICK_GAUGES = ("isr", "overloaded_fraction")
_TICK_MS_GAUGES = ("mean", "p50", "p95", "p99", "max", "cov")
_RESPONSE_GAUGES = ("p50", "p99")
_WIRE_TOTALS = ("wire_bytes_in", "wire_bytes_out")


class CampaignObsAggregate:
    """Thread-safe fold of per-iteration sidecar lines."""

    def __init__(self, n_jobs: int, meta: dict | None = None) -> None:
        self.n_jobs = n_jobs
        self.meta = dict(meta or {})
        self._lock = threading.Lock()
        self._jobs_observed: set[str] = set()
        self._iterations = 0
        self._ticks = 0.0
        self._tick_weighted = {k: 0.0 for k in _TICK_GAUGES}
        self._tick_ms_weighted = {k: 0.0 for k in _TICK_MS_GAUGES}
        self._phase_us: dict[str, float] = {}
        self._entities_last = 0.0
        self._entities_peak = 0.0
        self._responses = 0.0
        self._response_weighted = {k: 0.0 for k in _RESPONSE_GAUGES}
        self._wire_seen = False
        self._wire_totals = {k: 0.0 for k in _WIRE_TOTALS}
        self._wire_connects = 0.0
        self._wire_flush_p99_weighted = 0.0
        self._trace_seen = False
        self._slow_ticks = 0.0
        self._anomalies = 0.0

    def fold(self, line: dict) -> None:
        """Fold one sidecar-line dict (one finished iteration)."""
        telemetry = line.get("telemetry") or {}
        tick = telemetry.get("tick") or {}
        tick_ms = tick.get("tick_ms") or {}
        ticks = float(tick.get("ticks", 0))
        with self._lock:
            job_id = line.get("job_id")
            if job_id:
                self._jobs_observed.add(job_id)
            self._iterations += 1
            self._ticks += ticks
            for key in _TICK_GAUGES:
                self._tick_weighted[key] += ticks * float(tick.get(key, 0.0))
            for key in _TICK_MS_GAUGES:
                self._tick_ms_weighted[key] += ticks * float(
                    tick_ms.get(key, 0.0)
                )
            for bucket, us in (tick.get("breakdown_us") or {}).items():
                self._phase_us[bucket] = self._phase_us.get(bucket, 0.0) + us
            self._entities_last = float(tick.get("entities_last", 0))
            self._entities_peak = max(
                self._entities_peak, float(tick.get("entities_peak", 0))
            )
            response = telemetry.get("response_ms") or {}
            samples = float(response.get("count", 0))
            self._responses += samples
            for key in _RESPONSE_GAUGES:
                self._response_weighted[key] += samples * float(
                    response.get(key, 0.0)
                )
            wire = telemetry.get("wire")
            if wire:
                self._wire_seen = True
                for key in _WIRE_TOTALS:
                    self._wire_totals[key] += float(
                        (wire.get(key) or {}).get("total", 0.0)
                    )
                self._wire_connects += float(
                    (wire.get("wire_connects") or {}).get("count", 0)
                )
                flushes = float(
                    (wire.get("wire_flush_us") or {}).get("count", 0)
                )
                self._wire_flush_p99_weighted += flushes * float(
                    (wire.get("wire_flush_us") or {}).get("p99", 0.0)
                )
            trace = telemetry.get("trace")
            if trace and trace.get("enabled"):
                self._trace_seen = True
                self._slow_ticks += float(trace.get("slow_ticks", 0))
                anomalies = trace.get("anomaly_count")
                if anomalies is None:
                    anomalies = len(trace.get("anomalies") or [])
                self._anomalies += float(anomalies)

    def _weighted(self, total: float, weight: float) -> float:
        return total / weight if weight else 0.0

    def snapshot(self) -> ObsSnapshot:
        """One campaign-wide snapshot in the sidecar telemetry shape."""
        with self._lock:
            telemetry: dict = {
                "tick": {
                    "ticks": self._ticks,
                    "entities_last": self._entities_last,
                    "entities_peak": self._entities_peak,
                    "breakdown_us": dict(sorted(self._phase_us.items())),
                    **{
                        key: self._weighted(value, self._ticks)
                        for key, value in self._tick_weighted.items()
                    },
                    "tick_ms": {
                        key: self._weighted(value, self._ticks)
                        for key, value in self._tick_ms_weighted.items()
                    },
                },
                "response_ms": {
                    "count": self._responses,
                    **{
                        key: self._weighted(value, self._responses)
                        for key, value in self._response_weighted.items()
                    },
                },
            }
            if self._wire_seen:
                flushes = 1.0  # weighted p99 already normalizes below
                telemetry["wire"] = {
                    "wire_bytes_in": {
                        "total": self._wire_totals["wire_bytes_in"]
                    },
                    "wire_bytes_out": {
                        "total": self._wire_totals["wire_bytes_out"]
                    },
                    "wire_connects": {"count": self._wire_connects},
                    "wire_flush_us": {
                        "p99": self._weighted(
                            self._wire_flush_p99_weighted,
                            self._wire_connects or flushes,
                        )
                    },
                }
            if self._trace_seen:
                telemetry["trace"] = {
                    "enabled": True,
                    "slow_ticks": self._slow_ticks,
                    "anomaly_count": self._anomalies,
                }
            snap = telemetry_obs_snapshot(telemetry, meta=self.meta)
            snap.export("repro_jobs_total", self.n_jobs)
            snap.export("repro_jobs_observed", len(self._jobs_observed))
            snap.export("repro_iterations_total", self._iterations)
        return snap
