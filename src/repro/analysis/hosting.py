"""Table 7: hardware recommendations of MLG cloud-hosting companies.

The paper surveyed 23 services (plus AWS/Azure guides); "NP" fields are
information not provided to consumers, "V" is variable.  The dataset backs
MF5's premise: the most common recommendation is 2 vCPUs and 4 GB RAM —
which Figure 12 then shows to be insufficient.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

__all__ = ["HostingPlan", "HOSTING_PLANS", "most_common_recommendation"]


@dataclass(frozen=True)
class HostingPlan:
    """One provider's recommended plan (paper Table 7)."""

    service: str
    ram_gb: float | None
    vcpus: int | None
    cpu_speed_ghz: float | None


#: None encodes the paper's "NP" (not provided) and "V" (variable) fields.
HOSTING_PLANS: tuple[HostingPlan, ...] = (
    HostingPlan("Hostinger", 3.0, 3, None),
    HostingPlan("Server.pro", 4.0, 2, 2.4),
    HostingPlan("Skynode", 4.0, 2, 3.6),
    HostingPlan("ScalaCube", 3.0, 2, 3.4),
    HostingPlan("Nodecraft", 4.0, None, 3.8),
    HostingPlan("Apex Hosting", 4.0, None, 3.9),
    HostingPlan("GGServers", 4.0, None, 3.2),
    HostingPlan("BisectHosting", 4.0, None, 3.4),
    HostingPlan("Shockbyte", 4.0, None, 4.0),
    HostingPlan("CubedHost", 2.5, None, 4.5),
    HostingPlan("ServerMiner", 3.0, None, 4.0),
    HostingPlan("Akliz", 4.0, None, 3.4),
    HostingPlan("RamShard", 2.0, None, 4.0),
    HostingPlan("MCProHosting", 2.0, None, None),
    HostingPlan("GTXGaming", 3.0, None, 3.8),
    HostingPlan("StickyPiston", 2.5, None, None),
    HostingPlan("HostHavoc", 4.0, None, 4.0),
    HostingPlan("Ferox Hosting", 4.0, None, None),
    HostingPlan("Aquatis", 4.0, None, 4.2),
    HostingPlan("PebbleHost", 3.0, None, 3.7),
    HostingPlan("MelonCube", 4.0, None, 3.4),
    HostingPlan("Azure", 4.0, 2, None),
    HostingPlan("AWS", 1.0, 1, None),
)


def most_common_recommendation() -> tuple[float, int]:
    """(RAM GB, vCPUs) recommended most often — the paper's "2 vCPU and
    4 GB RAM is the most common configuration" (§5.1.2)."""
    ram = Counter(
        plan.ram_gb for plan in HOSTING_PLANS if plan.ram_gb is not None
    )
    vcpus = Counter(
        plan.vcpus for plan in HOSTING_PLANS if plan.vcpus is not None
    )
    return ram.most_common(1)[0][0], vcpus.most_common(1)[0][0]
