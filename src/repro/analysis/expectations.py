"""The paper's reported numbers, centralized for paper-vs-measured tables.

Values are read from the paper's text and figures (approximate where only a
plot is given).  The benchmark harness prints these beside the measured
values; EXPERIMENTS.md records both.  We reproduce *shapes* (orderings,
rough factors, crossovers), not absolute JVM-on-EC2 milliseconds.
"""

from __future__ import annotations

__all__ = ["PAPER"]

PAPER: dict[str, dict] = {
    # §5.2 / Figure 7 (response time on AWS, ms).
    "fig7": {
        "unplayable_ms": 118.0,
        "noticeable_ms": 60.0,
        "control_forge_max_over_mean": 20.7,
        "control_minecraft_max_ms": 679.0,
        "control_forge_max_ms": 514.0,
        "farm_forge_p95_ms": 225.8,
        "tnt_iqr_forge_ms": 547.0,
        "tnt_iqr_minecraft_ms": 503.0,
        "tnt_max_label_forge_ms": 2718.0,
        "tnt_max_label_minecraft_ms": 2303.0,
        "note": "PaperMC omitted: async chat thread decouples echo from tick",
    },
    # §4.2 / Figure 6a closed form.
    "fig6": {
        "isr_s10_lam25": 0.26,
        "fig6b_low_isr": 0.009,
        "fig6b_high_isr": 0.15,
        "note": (
            "Fig 6b printed values are inconsistent with the paper's own "
            "Eq. 1/§4.2 model (which yields ~0.017/~0.087); we reproduce "
            "the order-of-magnitude gap"
        ),
    },
    # §5.3 / Figure 8 (ISR per workload/environment).
    "fig8": {
        "isr_increase_range": (0.04, 0.92),
        "overload_factor_max": 58.0,
        "lag_crashes_all_on_aws": True,
        "lag_isr_band_das5": (0.80, 1.00),
        "env_workloads_above_control": True,
    },
    # §5.3 / Figure 9 (tick time over time on AWS).
    "fig9": {
        "tnt_peak_ms_vanilla_forge": 2500.0,
        "papermc_mostly_under_budget": True,
        "overload_threshold_ms": 50.0,
    },
    # §5.4 / Figure 10 (players workload, 50 iterations).
    "fig10": {
        "das5_max_isr": 0.021,
        "cloud_min_isr": 0.029,
        "papermc_das5_median_isr": 0.007,
        "minecraft_das5_median_isr": 0.010,
        "papermc_aws_median_isr": 0.094,
        "papermc_aws_median_tick_ms": 48.98,
        "papermc_azure_isr_iqr": 0.028,
        "forge_azure_isr_iqr": 0.009,
        "minecraft_azure_isr_iqr": 0.011,
        "isr_iqr_cloud_increase": (1.39, 15.44),
        "tick_iqr_cloud_increase": (1.09, 5.61),
        "aws_best_for": ("vanilla", "forge"),
        "azure_best_for": ("papermc",),
    },
    # §5.5 / Figure 11 + Table 8 (entity share of work and messages).
    "table8": {
        # (workload, server) -> (message share %, byte share %).
        ("control", "vanilla"): (97.5, 3.8),
        ("farm", "vanilla"): (91.7, 17.4),
        ("tnt", "vanilla"): (97.0, 9.8),
        ("control", "forge"): (97.2, 3.2),
        ("farm", "forge"): (86.7, 9.7),
        ("tnt", "forge"): (97.1, 10.3),
        ("control", "papermc"): (89.1, 1.3),
        ("farm", "papermc"): (47.5, 1.2),
        ("tnt", "papermc"): (94.8, 3.5),
    },
    "fig11": {
        "entities_dominate_non_wait": True,
        "papermc_entity_share_smaller": True,
    },
    # §5.6 / Figure 12 (AWS node sizes under TNT).
    "fig12": {
        "l_insufficient": True,
        "xl_mean_above_budget": True,
        "xxl_mean_below_budget": True,
        "papermc_isr_l": 0.08,
        "papermc_isr_2xl": 0.025,
        "papermc_mean_below_budget_all_sizes": True,
    },
    # Table 7 (§5.1.2).
    "table7": {"common_ram_gb": 4.0, "common_vcpus": 2},
    # Table 2 (workload worlds).
    "table2": {
        "worlds": ("Control", "TNT", "Farm", "Lag"),
        "sizes_mb": {"Control": 5.4, "TNT": 6.3, "Farm": 26.0, "Lag": 4.7},
    },
}
