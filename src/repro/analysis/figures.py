"""Figure/table reproduction drivers.

Each ``fig*``/``table*`` function runs the experiments behind one figure or
table of the paper's evaluation and returns a plain-data summary that the
benchmark harness renders and EXPERIMENTS.md records.  Durations and
iteration counts are parameters so the checked-in benchmarks can run
reduced-scale versions (`METERSTICK_FULL=1` restores paper scale).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cloud.providers import get_environment
from repro.core.experiment import run_iteration
from repro.core.results import ExperimentResult, IterationResult
from repro.metrics import (
    box_stats,
    instability_ratio,
    isr_closed_form,
    clustered_outlier_trace,
    periodic_outlier_trace,
    spread_outlier_trace,
    summarize,
)
from repro.mlg.constants import TICK_BUDGET_MS
from repro.simtime import SimClock

__all__ = [
    "FigureResult",
    "campaign_grid",
    "sidecar_grid",
    "run_cell",
    "fig1_response_time",
    "fig6_isr_model",
    "fig7_response_times",
    "fig8_isr_grid",
    "fig9_tick_timeseries",
    "fig10_cloud_variability",
    "fig11_tick_distribution",
    "fig12_node_sizes",
    "table8_network_shares",
]

#: The three systems under test, in the paper's order.
SERVERS = ("vanilla", "forge", "papermc")


@dataclass
class FigureResult:
    """A reproduced figure: identifier, data rows, free-form notes."""

    figure: str
    rows: list[dict] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def row(self, **kwargs) -> dict:
        self.rows.append(kwargs)
        return kwargs


def run_cell(
    workload: str,
    server: str,
    environment: str,
    duration_s: float,
    seed: int = 7,
    warm: bool = True,
    scale: float = 1.0,
) -> IterationResult:
    """Run one (workload, server, environment) cell on a warm machine.

    ``warm`` models the paper's measurement sessions, where configurations
    run back-to-back on nodes whose burst credits are long gone.
    """
    env = get_environment(environment)
    machine = env.create_machine(seed=seed)
    if warm:
        machine.drain_credits()
    return run_iteration(
        workload,
        server,
        environment,
        duration_s=duration_s,
        seed=seed,
        scale=scale,
        machine=machine,
        clock=SimClock(),
    )


# -- Figure 1: Minecraft response time on AWS (Control vs Farm) -------------


def fig1_response_time(duration_s: float = 60.0, seed: int = 7) -> FigureResult:
    result = FigureResult("fig1")
    for workload in ("control", "farm"):
        cell = run_cell(workload, "vanilla", "aws-t3.large", duration_s, seed)
        stats = summarize(cell.response_times_ms)
        result.row(
            workload=workload,
            median_ms=stats["median"],
            p95_ms=stats["p95"],
            max_ms=stats["max"],
            mean_ms=stats["mean"],
            frac_noticeable=stats["frac_noticeable"],
            frac_unplayable=stats["frac_unplayable"],
        )
    return result


# -- Figure 6: ISR analytic model ---------------------------------------------


def fig6_isr_model() -> FigureResult:
    result = FigureResult("fig6")
    lams = list(range(1, 101))
    for s in (2, 10, 20):
        closed = [isr_closed_form(s, lam) for lam in lams]
        measured = [
            instability_ratio(
                periodic_outlier_trace(lam * 200, lam, s), TICK_BUDGET_MS
            )
            for lam in (2, 10, 25, 50, 100)
        ]
        result.row(s=s, lams=lams, closed_form=closed,
                   spot_measured=measured)
    low = clustered_outlier_trace(1000, 5, 20.0)
    high = spread_outlier_trace(1000, 5, 20.0)
    result.row(
        trace="fig6b",
        low_isr=instability_ratio(low, TICK_BUDGET_MS),
        high_isr=instability_ratio(high, TICK_BUDGET_MS),
        identical_distribution=sorted(low) == sorted(high),
    )
    return result


# -- Figure 7 / MF1: response time per workload on AWS -----------------------


def fig7_response_times(
    duration_s: float = 60.0, seed: int = 7
) -> FigureResult:
    result = FigureResult("fig7")
    result.notes.append(
        "PaperMC omitted (async chat thread), as in the paper"
    )
    for workload in ("control", "farm", "tnt"):
        for server in ("vanilla", "forge"):
            cell = run_cell(workload, server, "aws-t3.large", duration_s, seed)
            stats = summarize(cell.response_times_ms)
            result.row(
                workload=workload,
                server=server,
                mean_ms=stats["mean"],
                median_ms=stats["median"],
                p5_ms=stats["p5"],
                p95_ms=stats["p95"],
                max_ms=stats["max"],
                iqr_ms=stats["p75"] - stats["p25"],
                max_over_mean=stats["max_over_mean"],
                frac_noticeable=stats["frac_noticeable"],
                frac_unplayable=stats["frac_unplayable"],
            )
    return result


# -- Figure 8 / MF2: ISR grid ---------------------------------------------------


def fig8_isr_grid(duration_s: float = 60.0, seed: int = 7) -> FigureResult:
    result = FigureResult("fig8")
    environments = ("das5-16core", "das5-2core", "aws-t3.large")
    workloads = ("control", "farm", "tnt", "lag", "players")
    for environment in environments:
        for workload in workloads:
            for server in SERVERS:
                cell = run_cell(workload, server, environment, duration_s, seed)
                result.row(
                    environment=environment,
                    workload=workload,
                    server=server,
                    isr=cell.isr,
                    crashed=cell.crashed,
                    tick_mean_ms=float(np.mean(cell.tick_durations_ms)),
                    tick_max_ms=float(np.max(cell.tick_durations_ms)),
                )
    return result


# -- Figure 9: tick-time series on AWS ------------------------------------------


def fig9_tick_timeseries(
    duration_s: float = 60.0, seed: int = 7
) -> FigureResult:
    result = FigureResult("fig9")
    for workload in ("control", "farm", "tnt", "players"):
        for server in SERVERS:
            cell = run_cell(workload, server, "aws-t3.large", duration_s, seed)
            durations = cell.tick_durations_ms
            steady = durations[120:] or durations
            result.row(
                workload=workload,
                server=server,
                series=durations,
                overloaded_fraction=float(
                    np.mean(np.asarray(durations) > TICK_BUDGET_MS)
                ),
                peak_ms=float(np.max(durations)),
                steady_peak_ms=float(np.max(steady)),
            )
    return result


# -- Figure 10 / MF3: cloud vs self-hosted across iterations ---------------------


def fig10_cloud_variability(
    iterations: int = 12, duration_s: float = 40.0, seed: int = 3
) -> FigureResult:
    from repro.core.config import MeterstickConfig
    from repro.core.experiment import ExperimentRunner

    result = FigureResult("fig10")
    for environment in ("das5-2core", "azure-d2v3", "aws-t3.large"):
        config = MeterstickConfig(
            world="players",
            environment=environment,
            iterations=iterations,
            duration_s=duration_s,
            warm_machines=True,
            seed=seed,
        )
        campaign = ExperimentRunner(config).run()
        for server in SERVERS:
            isrs = campaign.isr_values(server)
            ticks = campaign.pooled_tick_durations(server)
            isr_stats = box_stats(isrs)
            tick_stats = box_stats(ticks)
            result.row(
                environment=environment,
                server=server,
                isr_median=isr_stats.median,
                isr_iqr=isr_stats.iqr,
                isr_min=isr_stats.minimum,
                isr_max=isr_stats.maximum,
                tick_median_ms=tick_stats.median,
                tick_iqr_ms=tick_stats.iqr,
            )
    return result


# -- Figure 11 / MF4: tick-time distribution by operation ------------------------


def fig11_tick_distribution(
    duration_s: float = 60.0, seed: int = 7
) -> FigureResult:
    result = FigureResult("fig11")
    for workload in ("control", "farm", "tnt"):
        for server in SERVERS:
            cell = run_cell(workload, server, "aws-t3.large", duration_s, seed)
            shares = cell.tick_distribution
            active = {
                bucket: share
                for bucket, share in shares.items()
                if not bucket.startswith("Wait")
            }
            total_active = sum(active.values()) or 1.0
            result.row(
                workload=workload,
                server=server,
                shares=shares,
                entity_share_of_non_wait=active.get("Entities", 0.0)
                / total_active,
            )
    return result


# -- Figure 12 / MF5: AWS node sizes under TNT -----------------------------------


def fig12_node_sizes(duration_s: float = 60.0, seed: int = 7) -> FigureResult:
    result = FigureResult("fig12")
    for environment, label in (
        ("aws-t3.large", "L"),
        ("aws-t3.xlarge", "XL"),
        ("aws-t3.2xlarge", "2XL"),
    ):
        for server in SERVERS:
            cell = run_cell("tnt", server, environment, duration_s, seed)
            stats = summarize(cell.tick_durations_ms)
            result.row(
                node=label,
                server=server,
                tick_mean_ms=stats["mean"],
                tick_median_ms=stats["median"],
                tick_p75_ms=stats["p75"],
                isr=cell.isr,
            )
    return result


# -- Campaign results: the Fig.-8-style ISR grid from measured data --------------


def _grid_row(
    grid: FigureResult,
    *,
    environment,
    workload,
    server,
    scale,
    n_bots,
    behavior,
    iteration,
    isr,
    crashed,
    tick_mean_ms,
    tick_p95_ms,
    tick_max_ms,
    throttled_ticks,
) -> dict:
    """One Fig.-8-style grid row — the single place its columns and
    their order are defined, shared by the shard-backed and the
    sidecar-backed grid so both CSVs line up column for column."""
    return grid.row(
        environment=environment,
        workload=workload,
        server=server,
        scale=scale,
        n_bots=n_bots,
        behavior=behavior,
        iteration=iteration,
        isr=isr,
        crashed=crashed,
        tick_mean_ms=tick_mean_ms,
        tick_p95_ms=tick_p95_ms,
        tick_max_ms=tick_max_ms,
        throttled_ticks=throttled_ticks,
    )


def campaign_grid(result: ExperimentResult) -> FigureResult:
    """Fig. 8's (environment × workload × server) ISR grid, computed from
    an already-measured :class:`ExperimentResult` instead of fresh runs.

    This is how campaign exports route through the figure pipeline: a
    campaign's merged result carries every cell the grid needs, so
    re-simulating (what the ``fig*`` drivers do) would only burn time.
    """
    grid = FigureResult("campaign")
    for it in result.iterations:
        stats = it.tick_stats()
        _grid_row(
            grid,
            environment=it.environment,
            workload=it.workload,
            server=it.server,
            scale=it.scale,
            n_bots=it.n_bots,
            behavior=it.behavior,
            iteration=it.iteration,
            isr=it.isr,
            crashed=it.crashed,
            tick_mean_ms=stats["mean"],
            tick_p95_ms=stats["p95"],
            tick_max_ms=stats["max"],
            throttled_ticks=it.throttled_ticks,
        )
    return grid


def sidecar_grid(rows: list[dict]) -> FigureResult:
    """:func:`campaign_grid`'s column set, computed from flattened
    telemetry-sidecar report rows instead of merged shards.

    This is how ``repro report`` writes its grid CSV without ever
    loading a shard: sidecars carry every summary statistic the grid
    needs except ``throttled_ticks`` (a shard-only counter), which
    renders empty.
    """
    grid = FigureResult("campaign")
    for row in rows:
        _grid_row(
            grid,
            environment=row.get("environment"),
            workload=row.get("workload"),
            server=row.get("server"),
            scale=row.get("scale"),
            n_bots=row.get("n_bots"),
            behavior=row.get("behavior"),
            iteration=row.get("iteration"),
            isr=row.get("isr"),
            crashed=row.get("crashed"),
            tick_mean_ms=row.get("tick_mean_ms"),
            tick_p95_ms=row.get("tick_p95_ms"),
            tick_max_ms=row.get("tick_max_ms"),
            throttled_ticks=None,
        )
    return grid


# -- Table 8 / MF4: entity share of network traffic ------------------------------


def table8_network_shares(
    duration_s: float = 60.0, seed: int = 7
) -> FigureResult:
    result = FigureResult("table8")
    for server in SERVERS:
        for workload in ("control", "farm", "tnt"):
            cell = run_cell(workload, server, "aws-t3.large", duration_s, seed)
            result.row(
                server=server,
                workload=workload,
                message_share_pct=100.0 * cell.entity_message_share,
                byte_share_pct=100.0 * cell.entity_byte_share,
            )
    return result
