"""Analysis: figure/table reproduction drivers and paper expectations."""

from repro.analysis.expectations import PAPER
from repro.analysis.figures import (
    FigureResult,
    fig1_response_time,
    fig6_isr_model,
    fig7_response_times,
    fig8_isr_grid,
    fig9_tick_timeseries,
    fig10_cloud_variability,
    fig11_tick_distribution,
    fig12_node_sizes,
    run_cell,
    table8_network_shares,
)
from repro.analysis.hosting import (
    HOSTING_PLANS,
    HostingPlan,
    most_common_recommendation,
)

__all__ = [
    "FigureResult",
    "HOSTING_PLANS",
    "HostingPlan",
    "PAPER",
    "fig1_response_time",
    "fig6_isr_model",
    "fig7_response_times",
    "fig8_isr_grid",
    "fig9_tick_timeseries",
    "fig10_cloud_variability",
    "fig11_tick_distribution",
    "fig12_node_sizes",
    "most_common_recommendation",
    "run_cell",
    "table8_network_shares",
]
