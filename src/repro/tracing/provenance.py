"""Run provenance: fingerprinting the conditions a result ran under.

"When Should I Run My Application Benchmark?" (PAPERS.md) shows that
undocumented machine and configuration drift can dominate benchmark
conclusions.  The defence is cheap: stamp every campaign manifest and
every :class:`~repro.core.results.IterationResult` with a fingerprint of
the environment (git SHA, interpreter, numpy, platform, CPU count) and
the fully-resolved configuration, then compare fingerprints before
comparing numbers.

Two layers:

- :func:`environment_fingerprint` — facts about *this machine and
  checkout*, cached per process (the ``git`` subprocess runs once);
- :func:`provenance_fingerprint` — environment + a resolved config dict
  (+ optional extras), digested into a stable sha256 ``fingerprint``.

Determinism contract: the digest covers only deterministic fields —
``captured_at`` timestamps are *excluded* from the digest and only
included when explicitly requested (campaign manifests want them;
iteration results must stay byte-identical across serial/parallel
re-runs, so they never carry one).  Two runs on the same checkout with
the same config therefore produce the *same* fingerprint, which is
itself tested in CI.
"""

from __future__ import annotations

import functools
import hashlib
import json
import os
import platform
import subprocess
import sys
import time
from pathlib import Path

__all__ = [
    "environment_fingerprint",
    "measurement_config",
    "provenance_fingerprint",
]

#: Config fields that locate storage, size the worker pool, or shape
#: presentation — they do not affect what gets measured, so provenance
#: strips them (two runs into different output dirs must fingerprint the
#: same, or the serial/parallel byte-identity of shards would break).
#: ``output`` (the campaign report declaration) is here so editing a
#: report layout and re-rendering with ``repro report --update-output``
#: never invalidates a recorded measurement fingerprint.
_NON_MEASUREMENT_FIELDS = (
    "output_dir",
    "world_dir",
    "world_cache_dir",
    "jobs",
    "resume",
    "output",
)

#: Every other MeterstickConfig/CampaignSpec field, acknowledged as
#: *fingerprinted*: part of the sha256 measurement identity.  A field
#: must appear in exactly one of these two registries — lint rule
#: MSL004 refuses config fields nobody made a provenance decision for,
#: and flags stale entries, so adding a knob forces the question "does
#: this change what gets measured?" at diff time instead of after two
#: incomparable campaigns ship.
_MEASUREMENT_FIELDS = (
    # deployment (simulated control plane — part of Table 4 identity)
    "ips",
    "ssl_keys",
    "control_port",
    "game_port",
    "jmx_urls",
    "jmx_port_range",
    # systems under test
    "servers",
    "environment",
    "ram_gb",
    "affinity_mask",
    # workload (single-cell config)
    "world",
    "number_of_bots",
    "behavior",
    "duration_s",
    "iterations",
    "scale",
    # campaign matrix axes + identity
    "name",
    "workloads",
    "environments",
    "scales",
    "bot_counts",
    "behaviors",
    "overrides",
    # world persistence & chunk streaming
    "autosave_interval_s",
    "autosave_flush_every",
    "max_loaded_chunks",
    "warm_world_cache",
    # observability (tracing perturbs what the flight recorder sees,
    # so traced and untraced campaigns must not share a fingerprint)
    "trace",
    "trace_sample_every",
    "slow_tick_factor",
    # live observability: a scraped run shares its process (and, in
    # serve mode, its event loop's wall clock) with the endpoint, so
    # obs-on and obs-off campaigns must not share a fingerprint.
    "obs",
    "obs_port",
    "obs_scrape_grace",
    # transport: a wire-served run measures real socket/kernel effects
    # (and the port/batching shape the traffic), so inproc and tcp
    # campaigns must never share a fingerprint.
    "transport",
    "wire_port",
    "wire_batch_flush",
    # reproducibility
    "seed",
    "inter_iteration_gap_s",
    "warm_machines",
    "retain_raw",
    # measurement-hygiene requests: they gate PASS/WARN provenance, and
    # a campaign run under different requested conditions is a
    # different measurement.
    "system",
)


def measurement_config(config: dict) -> dict:
    """A resolved config dict minus storage-location/worker fields."""
    return {
        key: value
        for key, value in config.items()
        if key not in _NON_MEASUREMENT_FIELDS
    }


def _git_revision() -> tuple[str | None, bool | None]:
    """(commit SHA, dirty?) of the checkout this package runs from.

    Returns ``(None, None)`` outside a git checkout or when git is
    unavailable — provenance must never fail a run.
    """
    root = Path(__file__).resolve().parent
    try:
        sha = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=root,
            capture_output=True,
            text=True,
            timeout=10,
        )
        if sha.returncode != 0:
            return None, None
        status = subprocess.run(
            ["git", "status", "--porcelain"],
            cwd=root,
            capture_output=True,
            text=True,
            timeout=10,
        )
        dirty = bool(status.stdout.strip()) if status.returncode == 0 else None
        return sha.stdout.strip(), dirty
    except (OSError, subprocess.SubprocessError):
        return None, None


@functools.lru_cache(maxsize=1)
def environment_fingerprint() -> dict:
    """Facts about this machine/checkout, computed once per process."""
    try:
        import numpy

        numpy_version = numpy.__version__
    except Exception:  # pragma: no cover - numpy is a hard dep in practice
        numpy_version = None
    git_sha, git_dirty = _git_revision()
    return {
        "git_sha": git_sha,
        "git_dirty": git_dirty,
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "numpy": numpy_version,
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
    }


def provenance_fingerprint(
    config: dict | None = None,
    *,
    extra: dict | None = None,
    include_timestamp: bool = False,
) -> dict:
    """Environment + resolved config, digested into a stable sha256.

    ``config`` is the fully-resolved configuration dict (e.g.
    ``MeterstickConfig.to_dict()`` or ``CampaignSpec.to_dict()`` — the
    RNG seeds ride inside it).  ``extra`` adds caller context such as
    the server variant name.  The ``fingerprint`` digest covers all of
    that plus the environment, but never the timestamp: set
    ``include_timestamp=True`` only where byte-stability across re-runs
    is not required (the campaign manifest).
    """
    prov: dict = {"environment": dict(environment_fingerprint())}
    if config is not None:
        prov["config"] = config
    if extra:
        prov.update(extra)
    digest = hashlib.sha256(
        json.dumps(prov, sort_keys=True, default=str).encode("utf-8")
    ).hexdigest()
    prov["fingerprint"] = digest
    if include_timestamp:
        prov["captured_at"] = time.strftime(
            "%Y-%m-%dT%H:%M:%S%z", time.localtime()
        )
    return prov
