"""Observability for the simulated server: spans, provenance, exports.

- :mod:`repro.tracing.tracer` — tick-phase span tracing + the slow-tick
  flight recorder (off by default; bit-identical when off);
- :mod:`repro.tracing.provenance` — environment/config fingerprints for
  campaign manifests and iteration results;
- :mod:`repro.tracing.chrome` — Chrome trace-event (Perfetto) rendering
  of campaign traces;
- :mod:`repro.tracing.perf_baseline` — the committed per-figure
  wall-time baseline and its machine-calibrated CI gate.
"""

from repro.tracing.chrome import render_campaign_trace
from repro.tracing.provenance import (
    environment_fingerprint,
    provenance_fingerprint,
)
from repro.tracing.tracer import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    compact_span,
    merge_span_ops,
)

__all__ = [
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "Tracer",
    "compact_span",
    "environment_fingerprint",
    "merge_span_ops",
    "provenance_fingerprint",
    "render_campaign_trace",
]
