"""The committed perf trajectory: per-figure wall-time baseline + gate.

``benchmarks/conftest.py`` records each benchmark module's wall time
into ``benchmarks/out/bench_runtimes.json`` on every run.  This module
formalizes that artifact into a *committed* baseline
(``benchmarks/BENCH_fig11.json``: per-figure seconds + a provenance
header) and a CI gate that fails on a >20% per-figure regression — the
ROADMAP's "the trajectory is currently invisible" item.

Comparing wall times across machines is exactly the trap "When Should I
Run My Application Benchmark?" (PAPERS.md) warns about, so the gate
never compares raw seconds: both the baseline writer and the checker
time a fixed numpy **calibration workload** on their own machine, and
the budget scales by ``machine_factor = current_cal / baseline_cal``.
A figure regresses when::

    current > baseline * machine_factor * (1 + tolerance)

Usage (CI runs the thin wrapper ``benchmarks/check_perf_baseline.py``)::

    python -m repro.tracing.perf_baseline            # gate current run
    python -m repro.tracing.perf_baseline --update   # rewrite baseline
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

import numpy as np

from repro.tracing.provenance import provenance_fingerprint

__all__ = [
    "append_history",
    "compare",
    "history_entry",
    "main",
    "measure_calibration",
    "write_baseline",
]

#: Default per-figure regression tolerance (on top of machine scaling).
DEFAULT_TOLERANCE = 0.20

#: Calibration workload shape: big enough to exercise the same
#: numpy/BLAS paths the simulation leans on, small enough to finish in
#: tens of milliseconds.
_CAL_N = 192
_CAL_REPS = 6


def measure_calibration(best_of: int = 3) -> float:
    """Seconds the fixed numpy calibration workload takes here (best-of).

    Deterministic input (seeded), minimum over ``best_of`` runs — the
    minimum estimates the machine's unloaded speed, which is what the
    scaling factor should capture, not transient load.
    """
    rng = np.random.default_rng(12345)
    a = rng.standard_normal((_CAL_N, _CAL_N))
    best = float("inf")
    for _ in range(best_of):
        b = a
        start = time.perf_counter()
        for _ in range(_CAL_REPS):
            b = np.tanh(b @ b.T / _CAL_N)
        elapsed = time.perf_counter() - start
        if elapsed < best:
            best = elapsed
        # Fold the result into itself so the work cannot be elided.
        a = a + b * 0.0
    return best


def write_baseline(
    path: str | Path,
    runtimes: dict[str, float],
    calibration_s: float,
    tolerance: float = DEFAULT_TOLERANCE,
) -> Path:
    """Write the committed baseline: figures + calibration + provenance."""
    path = Path(path)
    payload = {
        "provenance": provenance_fingerprint(include_timestamp=True),
        "calibration_s": calibration_s,
        "tolerance": tolerance,
        "figures": {
            name: round(seconds, 3)
            for name, seconds in sorted(runtimes.items())
        },
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def compare(
    current: dict[str, float],
    baseline: dict,
    calibration_s: float,
    tolerance: float | None = None,
) -> tuple[list[dict], list[dict]]:
    """``(rows, regressions)`` of the current run against the baseline.

    Each row carries the figure name, baseline/current seconds, the
    machine-scaled budget, and a status: ``ok``, ``REGRESSION``,
    ``missing`` (in the baseline but not this run — skipped, never
    failed, so partial bench runs stay usable locally), or ``new`` (not
    yet in the baseline).
    """
    if tolerance is None:
        tolerance = float(baseline.get("tolerance", DEFAULT_TOLERANCE))
    base_cal = float(baseline["calibration_s"])
    factor = calibration_s / base_cal if base_cal > 0 else 1.0
    figures = baseline.get("figures", {})
    rows: list[dict] = []
    regressions: list[dict] = []
    for name in sorted(set(figures) | set(current)):
        base_s = figures.get(name)
        cur_s = current.get(name)
        if base_s is None:
            rows.append(
                {"figure": name, "current_s": cur_s, "status": "new"}
            )
            continue
        budget_s = base_s * factor * (1.0 + tolerance)
        if cur_s is None:
            rows.append(
                {
                    "figure": name,
                    "baseline_s": base_s,
                    "budget_s": budget_s,
                    "status": "missing",
                }
            )
            continue
        row = {
            "figure": name,
            "baseline_s": base_s,
            "current_s": cur_s,
            "budget_s": budget_s,
            "status": "ok" if cur_s <= budget_s else "REGRESSION",
        }
        rows.append(row)
        if row["status"] == "REGRESSION":
            regressions.append(row)
    return rows, regressions


def history_entry(
    kind: str,
    status: str,
    rows: list[dict],
    machine_factor: float,
    tolerance: float,
) -> dict:
    """One ``perf_history.jsonl`` record: the gate's full verdict.

    Per-figure ``ratio`` is ``current_s / budget_s`` — 1.0 means exactly
    on the machine-scaled budget, above 1.0 was a gate failure — so
    entries appended on different machines stay comparable.  ``update``
    entries carry current seconds but no ratios (there was nothing to
    gate against).
    """
    figures: dict[str, dict] = {}
    for row in rows:
        budget_s = row.get("budget_s")
        current_s = row.get("current_s")
        figures[row["figure"]] = {
            "baseline_s": row.get("baseline_s"),
            "current_s": current_s,
            "budget_s": budget_s,
            "delta_s": (
                round(current_s - row["baseline_s"], 3)
                if current_s is not None and row.get("baseline_s") is not None
                else None
            ),
            "ratio": (
                round(current_s / budget_s, 4)
                if current_s is not None and budget_s
                else None
            ),
            "status": row["status"],
        }
    return {
        "captured_at": time.strftime(
            "%Y-%m-%dT%H:%M:%S%z", time.localtime()
        ),
        "kind": kind,
        "status": status,
        "machine_factor": round(machine_factor, 4),
        "tolerance": tolerance,
        "figures": figures,
    }


def append_history(path: str | Path, entry: dict) -> Path:
    """Append one record to the JSONL history (created on first use)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("a") as history:
        history.write(json.dumps(entry, sort_keys=True) + "\n")
    return path


def _load(path: Path, what: str) -> dict:
    if not path.exists():
        raise FileNotFoundError(f"no {what} at {path}")
    return json.loads(path.read_text())


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Gate benchmark wall times against the committed "
        "BENCH_fig11.json baseline (machine-calibrated)."
    )
    parser.add_argument(
        "--runtimes",
        default="benchmarks/out/bench_runtimes.json",
        help="per-figure runtimes from the last bench run",
    )
    parser.add_argument(
        "--baseline",
        default="benchmarks/BENCH_fig11.json",
        help="committed baseline to gate against (or rewrite)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=None,
        help="override the baseline's per-figure tolerance",
    )
    parser.add_argument(
        "--update",
        action="store_true",
        help="rewrite the baseline from the current runtimes "
        "(also via METERSTICK_UPDATE_BASELINE=1)",
    )
    parser.add_argument(
        "--history",
        default=None,
        help="JSONL file every run (gate or update, pass or fail) is "
        "appended to (default: perf_history.jsonl next to --runtimes; "
        "--history '' disables)",
    )
    args = parser.parse_args(argv)
    history_path: Path | None
    if args.history == "":
        history_path = None
    elif args.history is not None:
        history_path = Path(args.history)
    else:
        history_path = Path(args.runtimes).parent / "perf_history.jsonl"
    update = args.update or (
        os.environ.get("METERSTICK_UPDATE_BASELINE", "0") == "1"
    )
    try:
        runtimes = _load(Path(args.runtimes), "bench runtimes file")
    except FileNotFoundError as exc:
        print(f"error: {exc} (run the benchmark suite first)", file=sys.stderr)
        return 2
    calibration_s = measure_calibration()
    if update:
        path = write_baseline(
            Path(args.baseline),
            runtimes,
            calibration_s,
            args.tolerance if args.tolerance is not None else DEFAULT_TOLERANCE,
        )
        print(
            f"baseline updated: {path} ({len(runtimes)} figure(s), "
            f"calibration {calibration_s * 1000:.1f} ms)"
        )
        if history_path is not None:
            rows = [
                {"figure": name, "current_s": seconds, "status": "updated"}
                for name, seconds in sorted(runtimes.items())
            ]
            append_history(
                history_path,
                history_entry(
                    "update",
                    "updated",
                    rows,
                    machine_factor=1.0,
                    tolerance=(
                        args.tolerance
                        if args.tolerance is not None
                        else DEFAULT_TOLERANCE
                    ),
                ),
            )
            print(f"history: appended update entry to {history_path}")
        return 0
    try:
        baseline = _load(Path(args.baseline), "committed baseline")
    except FileNotFoundError as exc:
        print(f"error: {exc} (--update to create it)", file=sys.stderr)
        return 2
    factor = calibration_s / float(baseline["calibration_s"])
    rows, regressions = compare(
        runtimes, baseline, calibration_s, tolerance=args.tolerance
    )
    print(
        f"machine factor {factor:.2f} (calibration "
        f"{calibration_s * 1000:.1f} ms vs baseline "
        f"{float(baseline['calibration_s']) * 1000:.1f} ms)"
    )
    def _col(label: str, value: float | None) -> str:
        if value is None:
            return f"{label}     n/a"
        return f"{label} {value:7.2f}s"

    for row in rows:
        print(
            f"{row['figure']:<45} "
            f"{_col('base', row.get('baseline_s'))}  "
            f"{_col('now', row.get('current_s'))}  "
            f"{_col('budget', row.get('budget_s'))}  "
            f"{row['status']}"
        )
    if history_path is not None:
        append_history(
            history_path,
            history_entry(
                "gate",
                "regression" if regressions else "ok",
                rows,
                machine_factor=factor,
                tolerance=(
                    args.tolerance
                    if args.tolerance is not None
                    else float(baseline.get("tolerance", DEFAULT_TOLERANCE))
                ),
            ),
        )
        print(f"history: appended gate entry to {history_path}")
    if regressions:
        names = ", ".join(row["figure"] for row in regressions)
        print(
            f"PERF REGRESSION: {len(regressions)} figure(s) over budget: "
            f"{names}",
            file=sys.stderr,
        )
        return 1
    print("perf trajectory OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
