"""Chrome trace-event rendering for campaign traces.

``repro trace export`` turns the span dumps each traced iteration filed
under ``telemetry["trace"]`` into the Chrome trace-event JSON format, so
a campaign opens directly in Perfetto (https://ui.perfetto.dev) or
``chrome://tracing``:

- one **process** per campaign job (named after its matrix cell),
- one **track** (thread) per subsystem span name — redstone, fluids,
  lifecycle/autosave, broadcast, … — plus a ``job`` track carrying the
  per-iteration extents,
- each job additionally rendered as an **async span** (``b``/``e``
  events keyed by job id) covering its first-to-last traced tick,
- slow-tick flight-recorder dumps as **instant** events on the job
  track.

Timestamps are the simulation's own microseconds.  Span costs are
simulated work-µs while the tick's wall duration includes machine-model
noise, so each tick's spans are tiled proportionally across its wall
duration: nesting, ordering, and relative width are exact; absolute
per-span wall time is an attribution, not a measurement.

Wire campaigns add **client processes**: ``repro clients --trace-out``
streams one span record per (client, tick) into
``telemetry/*.clientspans.jsonl``, and each client renders as its own
pid with wait/dispatch/step/drain tracks.  Client spans carry the
server's simulated ``now_us`` from the TICK frame that closed them, so
client and server tracks share one timeline, aligned tick id by
tick id.
"""

from __future__ import annotations

import json

__all__ = [
    "client_span_events",
    "read_client_spans",
    "render_campaign_trace",
    "tick_events",
]

#: Reserved thread id for the per-job iteration/anomaly track.
JOB_TID = 0

#: Client sidecar suffix ``repro trace export`` merges as client pids.
CLIENT_SPAN_SUFFIX = ".clientspans.jsonl"

#: Client-process track layout: phase name -> thread id.
CLIENT_TIDS = {"wait": 1, "dispatch": 2, "step": 3, "drain": 4}


def tick_events(dump: dict, pid: int, tid_of) -> list[dict]:
    """Render one sampled tick's compact span dump as complete events.

    ``dump`` is one entry of a trace snapshot's ``ticks`` list.  Spans
    arrive in pre-order with depths; a cursor stack tiles each span into
    its parent's extent (children start at the parent's start and
    consume its width left to right), scaled so the tick's top-level
    spans exactly fill its wall duration.
    """
    spans = dump.get("spans") or []
    top_us = sum(span["us"] for span in spans if span["d"] == 1)
    scale = dump["duration_us"] / top_us if top_us > 0 else 0.0
    events: list[dict] = []
    # Stack of [depth, cursor]: cursor is where the next span one level
    # deeper (or the next sibling at that level) starts.
    stack: list[list[float]] = [[0, float(dump["start_us"])]]
    for span in spans:
        depth = span["d"]
        while stack[-1][0] >= depth:
            stack.pop()
        ts = stack[-1][1]
        width = span["us"] * scale
        stack[-1][1] = ts + width
        args = {"cost_us": span["us"], "tick": dump["tick"]}
        if span.get("args"):
            args.update(span["args"])
        events.append(
            {
                "name": span["n"],
                "cat": "tick",
                "ph": "X",
                "ts": ts,
                "dur": width,
                "pid": pid,
                "tid": tid_of(span["n"]),
                "args": args,
            }
        )
        stack.append([depth, ts])
    return events


def read_client_spans(store) -> dict[str, list[dict]]:
    """Client span streams in ``store``'s telemetry dir, by stream name.

    A stream is one ``repro clients --trace-out`` run
    (``<name>.clientspans.jsonl``); torn or corrupt lines are skipped
    exactly like the server sidecars' are.
    """
    telemetry_dir = store.telemetry_dir
    if not telemetry_dir.is_dir():
        return {}
    streams: dict[str, list[dict]] = {}
    for path in sorted(telemetry_dir.glob(f"*{CLIENT_SPAN_SUFFIX}")):
        lines: list[dict] = []
        for raw in path.read_text().splitlines():
            raw = raw.strip()
            if not raw:
                continue
            try:
                lines.append(json.loads(raw))
            except json.JSONDecodeError:
                continue  # torn write from a killed client
        if lines:
            streams[path.name[: -len(CLIENT_SPAN_SUFFIX)]] = lines
    return streams


def client_span_events(lines: list[dict], pid: int) -> list[dict]:
    """Render one client's span records as complete events.

    Each record decomposes one tick cycle's wall time; the phases are
    laid out around the TICK frame's simulated timestamp (wait and
    dispatch end at the tick, step and drain follow it), each on its own
    track, so the client's RTT anatomy lines up under the server's tick
    that produced it.
    """
    events: list[dict] = []
    for line in lines:
        now_us = float(line.get("now_us", 0))
        tick = line.get("tick")
        durations = {
            phase: float(line.get(f"{phase}_us", 0.0)) for phase in CLIENT_TIDS
        }
        starts = {
            "wait": now_us - durations["wait"] - durations["dispatch"],
            "dispatch": now_us - durations["dispatch"],
            "step": now_us,
            "drain": now_us + durations["step"],
        }
        for phase, tid in CLIENT_TIDS.items():
            if durations[phase] <= 0:
                continue
            events.append(
                {
                    "name": phase,
                    "cat": "client",
                    "ph": "X",
                    "ts": starts[phase],
                    "dur": durations[phase],
                    "pid": pid,
                    "tid": tid,
                    "args": {"tick": tick, "client": line.get("client")},
                }
            )
    return events


def _metadata(pid: int, tid: int | None, name: str) -> dict:
    event: dict = {
        "name": "process_name" if tid is None else "thread_name",
        "ph": "M",
        "pid": pid,
        "args": {"name": name},
    }
    if tid is not None:
        event["tid"] = tid
    return event


def render_campaign_trace(store, provenance: dict | None = None) -> dict:
    """Render every completed, traced job in ``store`` to trace JSON.

    ``store`` is a :class:`~repro.campaign.store.JobStore`; jobs without
    a shard (still running) or without trace telemetry (``trace=False``)
    are skipped.  Returns the full trace document — ``traceEvents`` plus
    ``otherData`` carrying the campaign provenance and coverage counts.
    """
    events: list[dict] = []
    jobs = sorted(store.manifest_jobs(), key=lambda job: job.index)
    traced_jobs = 0
    traced_iterations = 0
    for pid, job in enumerate(jobs, start=1):
        iterations = store.load_job(job.job_id)
        if not iterations:
            continue
        tids: dict[str, int] = {}

        def tid_of(name: str, _tids=tids) -> int:
            if name not in _tids:
                _tids[name] = len(_tids) + 1  # JOB_TID stays reserved
            return _tids[name]

        job_start: float | None = None
        job_end: float | None = None
        for it in iterations:
            trace = (it.telemetry or {}).get("trace") or {}
            ticks = trace.get("ticks") or []
            if not trace.get("enabled") or not ticks:
                continue
            traced_iterations += 1
            it_start = float(ticks[0]["start_us"])
            it_end = float(
                ticks[-1]["start_us"] + ticks[-1]["duration_us"]
            )
            job_start = (
                it_start if job_start is None else min(job_start, it_start)
            )
            job_end = it_end if job_end is None else max(job_end, it_end)
            events.append(
                {
                    "name": f"iteration {it.iteration}",
                    "cat": "iteration",
                    "ph": "X",
                    "ts": it_start,
                    "dur": it_end - it_start,
                    "pid": pid,
                    "tid": JOB_TID,
                    "args": {
                        "iteration": it.iteration,
                        "seed": it.seed,
                        "ticks_sampled": trace.get("ticks_sampled"),
                        "slow_ticks": trace.get("slow_ticks"),
                    },
                }
            )
            for dump in ticks:
                events.extend(tick_events(dump, pid, tid_of))
            for anomaly in trace.get("anomalies") or []:
                events.append(
                    {
                        "name": "slow tick",
                        "cat": "anomaly",
                        "ph": "i",
                        "s": "p",
                        "ts": float(
                            anomaly["start_us"] + anomaly["duration_us"]
                        ),
                        "pid": pid,
                        "tid": JOB_TID,
                        "args": {
                            "tick": anomaly["tick"],
                            "duration_us": anomaly["duration_us"],
                            "factor": anomaly["factor"],
                        },
                    }
                )
        if job_start is None:
            continue
        traced_jobs += 1
        cell = job.cell.key()
        events.append(_metadata(pid, None, f"{job.job_id} {cell}"))
        events.append(_metadata(pid, JOB_TID, "job"))
        for name, tid in tids.items():
            events.append(_metadata(pid, tid, name))
        # The whole job as one async span: Perfetto draws these as a
        # global band, which is how overlapping jobs line up at a glance.
        for ph, ts in (("b", job_start), ("e", job_end)):
            events.append(
                {
                    "name": cell,
                    "cat": "job",
                    "ph": ph,
                    "id": job.job_id,
                    "ts": ts,
                    "pid": pid,
                    "tid": JOB_TID,
                }
            )
    # Client processes, one pid per (span stream, client index), after
    # the job pids.
    client_processes = 0
    client_span_lines = 0
    next_pid = len(jobs) + 1
    streams = read_client_spans(store)
    for stream in sorted(streams):
        by_client: dict[int, list[dict]] = {}
        for line in streams[stream]:
            by_client.setdefault(int(line.get("client", 0)), []).append(line)
        for client in sorted(by_client):
            pid = next_pid
            next_pid += 1
            client_processes += 1
            client_span_lines += len(by_client[client])
            events.append(_metadata(pid, None, f"client {stream}#{client}"))
            for phase, tid in CLIENT_TIDS.items():
                events.append(_metadata(pid, tid, phase))
            events.extend(client_span_events(by_client[client], pid))
    other: dict = {
        "jobs": len(jobs),
        "traced_jobs": traced_jobs,
        "traced_iterations": traced_iterations,
        "client_processes": client_processes,
        "client_span_lines": client_span_lines,
    }
    if provenance is not None:
        other["provenance"] = provenance
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": other,
    }
