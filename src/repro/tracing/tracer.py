"""Low-overhead tick-phase span tracing for the simulated server.

Meterstick's tick records say *that* a tick was slow; the tracer says
*which phase* made it slow.  A :class:`Tracer` rides on one server and is
driven by the game loop::

    tracer.begin_tick(tick_index, start_us, report)
    with tracer.span("fluids"):
        server.fluids.tick(...)
    ...
    tracer.end_tick(record, report)

A span does not time wall clocks — the simulation's cost model *is* its
clock.  On a sampled tick the game loop runs against a
:class:`TracedWorkReport`, whose ``counts`` dict always aliases the
innermost open span's *segment*: entering a span pushes a fresh segment,
so the engines' ``add``/``merge`` calls run the **unmodified base-class
code path** (zero per-operation overhead); exiting pops the segment —
which now holds exactly the ops recorded while the span was open — folds
it into the enclosing segment, and prices it to simulated microseconds
with the variant's cost table.  Because every count is an integer tally
(exactly representable as a float), segment sums telescope without
rounding: merging the top-level spans of a tick reproduces the tick's
report — and therefore its ``work_us`` and ``breakdown_us`` — bit for
bit (see :func:`merge_span_ops` and the parity tests).

Design constraints, after "Overhead Measurement Noise in Different
Runtime Environments" (PAPERS.md): tracing is **off by default** and the
disabled path (:class:`NullTracer`) performs no bookkeeping at all, so
``trace=False`` runs stay bit-identical with the untraced simulation;
when enabled, recording an op costs exactly what it costs untraced, span
entry/exit is O(distinct ops inside the span), and memory stays constant
for arbitrarily long runs: ``trace_sample_every`` captures every Nth
tick and a **preallocated ring buffer** bounds retained dumps.

On top of the spans:

- per-phase streaming :class:`~repro.telemetry.accumulators.MetricAccumulator`s
  (one per top-level span name) that campaigns publish into the JSONL
  telemetry sidecars;
- a slow-tick **flight recorder**: any tick whose wall duration exceeds
  ``slow_tick_factor ×`` the tick budget is dumped — span tree plus the
  top-k most expensive operations of its report — into a bounded anomaly
  deque, spark/watchdog style (slow ticks are caught even between
  sampled ticks; the span tree is attached when the tick was sampled).
"""

from __future__ import annotations

from collections import deque

from repro.mlg.workreport import WorkReport
from repro.telemetry.accumulators import MetricAccumulator

__all__ = [
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "TracedWorkReport",
    "Tracer",
    "compact_span",
    "merge_span_ops",
]


class TracedWorkReport(WorkReport):
    """A :class:`WorkReport` whose ``counts`` aliases a segment stack.

    ``segments[0]`` is the base tally; each open span pushes a fresh
    segment dict and repoints ``counts`` at it, so the inherited
    ``add``/``merge`` — the *same code* the untraced simulation runs —
    lands ops in the innermost segment at zero extra cost.  Closing a
    span folds its segment into the enclosing one, so once every span
    has exited ``counts`` is the complete tick tally, arithmetically
    identical to an untraced report's (integer tallies sum exactly in
    any grouping).  Reads that can happen while spans are open
    (``get``/``cost_us`` and everything built on them) merge across the
    stack so mid-tick pricing sees the full picture.
    """

    def __init__(self) -> None:
        super().__init__()
        #: Open-segment stack; ``counts`` always aliases ``segments[-1]``.
        self.segments: list[dict[str, float]] = [self.counts]

    def _merged(self) -> dict[str, float]:
        merged = dict(self.segments[0])
        merged_get = merged.get
        for seg in self.segments[1:]:
            for op, n in seg.items():
                merged[op] = merged_get(op, 0.0) + n
        return merged

    def get(self, op: str) -> float:
        segments = self.segments
        if len(segments) == 1:
            return self.counts.get(op, 0.0)
        return sum(seg.get(op, 0.0) for seg in segments)

    def cost_us(self, cost_table) -> dict[str, float]:
        if len(self.segments) == 1:
            return super().cost_us(cost_table)
        get = cost_table.get
        return {
            op: n * get(op, 0.0)
            for op, n in self._merged().items()
            if get(op, 0.0) > 0.0
        }

    def nonzero_ops(self):
        merged = self._merged() if len(self.segments) > 1 else self.counts
        return (op for op, n in merged.items() if n > 0)

    def copy(self) -> WorkReport:
        if len(self.segments) == 1:
            return WorkReport(dict(self.counts))
        return WorkReport(self._merged())


class _NullSpan:
    """Reusable no-op context manager handed out when tracing is off."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, exc_type, exc, tb):
        return False


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The disabled tracer: every hook is a no-op.

    The game loop calls the tracer unconditionally; with tracing off it
    gets this stateless singleton, whose spans never touch the report —
    which is what keeps ``trace=False`` runs bit-identical with the
    untraced simulation.
    """

    __slots__ = ()

    enabled = False

    def begin_tick(self, tick_index, start_us) -> WorkReport:
        return WorkReport()

    def span(self, name):
        return _NULL_SPAN

    def end_tick(self, record, report) -> None:
        pass

    def snapshot(self, max_ticks: int | None = None) -> dict:
        return {"enabled": False}


NULL_TRACER = NullTracer()


class Span:
    """One traced section of a tick: an owned segment of the report.

    Entering pushes a fresh segment onto the report's stack (ops
    recorded inside land there via the unmodified ``WorkReport`` code
    path); exiting pops it — the segment *is* the span's delta op counts
    (``ops``) — prices it (``cost_us``), and folds it into the enclosing
    segment.  ``note()`` attaches extra key/values (the pricing span
    records ``work_us`` and ``duration_us`` this way).  Spans nest;
    ``depth`` starts at 1 for top-level phases and, because children
    fold into their parent's segment before the parent closes, a
    parent's ops include its children's.
    """

    __slots__ = ("name", "depth", "ops", "cost_us", "args", "_tracer")

    def __init__(self, tracer: "Tracer", name: str) -> None:
        self._tracer = tracer
        self.name = name
        self.depth = 0
        self.ops: dict[str, float] = {}
        self.cost_us = 0.0
        self.args: dict = {}

    def note(self, **kwargs) -> None:
        """Attach extra values to the span (rendered as trace args)."""
        self.args.update(kwargs)

    def __enter__(self) -> "Span":
        tracer = self._tracer
        tracer._depth += 1
        self.depth = tracer._depth
        tracer._spans.append(self)
        report = tracer._report
        seg: dict[str, float] = {}
        report.segments.append(seg)
        report.counts = seg
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        tracer = self._tracer
        report = tracer._report
        segments = report.segments
        seg = segments.pop()
        outer = segments[-1]
        report.counts = outer
        if seg:
            self.ops = seg
            outer_get = outer.get
            table_get = tracer.cost_table.get
            cost = 0.0
            for op, n in seg.items():
                outer[op] = outer_get(op, 0.0) + n
                cost += n * table_get(op, 0.0)
            self.cost_us = cost
        tracer._depth -= 1
        return False


def merge_span_ops(
    spans,
    *,
    top_level_only: bool = True,
    exclude: tuple[str, ...] = (),
) -> dict[str, float]:
    """Merge span op deltas back into one counts dict.

    Spans are merged in recorded (pre-)order; op counts are integer
    tallies, which sum exactly in any grouping, so the result reproduces
    the original report's counts exactly.  Pricing the merged dict
    through :class:`WorkReport` therefore reproduces
    ``work_us``/``breakdown_us`` bit for bit.
    """
    merged: dict[str, float] = {}
    for span in spans:
        if top_level_only and span.depth != 1:
            continue
        if span.name in exclude:
            continue
        for op, n in span.ops.items():
            merged[op] = merged.get(op, 0.0) + n
    return merged


def compact_span(span: Span) -> dict:
    """JSON-able compact form: ``n``ame, ``d``epth, cost in ``us``."""
    compact = {"n": span.name, "d": span.depth, "us": span.cost_us}
    if span.args:
        compact["args"] = dict(span.args)
    return compact


class Tracer:
    """Span tracer + flight recorder for one server's tick loop.

    ``cost_table`` is the variant's op→µs pricing (spans price their own
    deltas with it); ``budget_us`` the 50 ms tick budget the slow-tick
    threshold multiplies.  ``sample_every=N`` captures spans on every
    Nth tick (1 = all); the flight recorder watches *every* tick
    regardless.  ``retain_ticks`` bounds the span ring,
    ``max_anomalies`` the anomaly deque, and ``export_ticks`` how many
    recent sampled ticks :meth:`snapshot` serializes.
    """

    enabled = True

    def __init__(
        self,
        cost_table,
        *,
        budget_us: int,
        sample_every: int = 1,
        slow_tick_factor: float = 3.0,
        retain_ticks: int = 256,
        max_anomalies: int = 64,
        top_ops: int = 8,
        export_ticks: int = 128,
    ) -> None:
        if sample_every < 1:
            raise ValueError(f"sample_every must be >= 1: {sample_every!r}")
        if slow_tick_factor <= 0:
            raise ValueError(
                f"slow_tick_factor must be positive: {slow_tick_factor!r}"
            )
        if retain_ticks < 1:
            raise ValueError(f"retain_ticks must be >= 1: {retain_ticks!r}")
        if budget_us <= 0:
            raise ValueError(f"budget_us must be positive: {budget_us!r}")
        self.cost_table = cost_table
        self.budget_us = budget_us
        self.sample_every = sample_every
        self.slow_tick_factor = slow_tick_factor
        self.retain_ticks = retain_ticks
        self.top_ops = top_ops
        self.export_ticks = export_ticks
        #: Preallocated ring of per-tick span dumps (sampled ticks only).
        self._ring: list[dict | None] = [None] * retain_ticks
        self._ring_next = 0
        self._ring_count = 0
        #: Per-phase streaming accumulators, one per top-level span name.
        self.phases: dict[str, MetricAccumulator] = {}
        #: Bounded slow-tick flight-recorder dumps, oldest dropped first.
        self.anomalies: deque = deque(maxlen=max_anomalies)
        self.ticks_seen = 0
        self.ticks_sampled = 0
        self.slow_ticks = 0
        # Per-tick capture state.
        self._report = None
        self._spans: list[Span] = []
        self._depth = 0
        self._active = False
        self._tick_index = 0
        self._start_us = 0

    # -- per-tick driver (called by the game loop) --------------------------

    def begin_tick(self, tick_index: int, start_us: int) -> WorkReport:
        """Arm the tracer for one tick and hand the game loop its report.

        Sampled ticks get a :class:`TracedWorkReport` (spans need its
        segment stack); unsampled ticks get a plain
        :class:`WorkReport` — both tally identically.
        """
        self.ticks_seen += 1
        self._active = tick_index % self.sample_every == 0
        if not self._active:
            return WorkReport()
        report = TracedWorkReport()
        self._report = report
        self._spans = []
        self._depth = 0
        self._tick_index = tick_index
        self._start_us = start_us
        return report

    def span(self, name: str):
        """A context manager tracing one named section of the tick."""
        if not self._active:
            return _NULL_SPAN
        return Span(self, name)

    def end_tick(self, record, report) -> None:
        """Close the tick: fold accumulators, ring the dump, watch slowness."""
        dump = None
        if self._active:
            self.ticks_sampled += 1
            spans = self._spans
            dump = {
                "tick": record.index,
                "start_us": record.start_us,
                "duration_us": record.duration_us,
                "work_us": record.work_us,
                "spans": spans,
            }
            phases = self.phases
            for span in spans:
                if span.depth != 1:
                    continue
                acc = phases.get(span.name)
                if acc is None:
                    acc = phases[span.name] = MetricAccumulator(
                        span.name, tail_size=0
                    )
                acc.update(span.cost_us)
            self._ring[self._ring_next] = dump
            self._ring_next = (self._ring_next + 1) % self.retain_ticks
            if self._ring_count < self.retain_ticks:
                self._ring_count += 1
            self._report = None
            self._active = False
        if record.duration_us > self.slow_tick_factor * self.budget_us:
            self.slow_ticks += 1
            self.anomalies.append(self._anomaly(record, report, dump))

    # -- flight recorder -----------------------------------------------------

    def _anomaly(self, record, report, dump: dict | None) -> dict:
        """One slow-tick dump: vitals, top-k op costs, span tree if sampled."""
        costs = report.cost_us(self.cost_table)
        top = sorted(costs.items(), key=lambda kv: (-kv[1], kv[0]))
        top = top[: self.top_ops]
        return {
            "tick": record.index,
            "start_us": record.start_us,
            "duration_us": record.duration_us,
            "work_us": record.work_us,
            "budget_us": self.budget_us,
            "factor": record.duration_us / self.budget_us,
            "clients": record.clients,
            "entities": record.entities,
            "breakdown_us": dict(record.breakdown_us),
            "top_ops": [[op, report.get(op), us] for op, us in top],
            "spans": (
                [compact_span(span) for span in dump["spans"]]
                if dump is not None
                else None
            ),
        }

    # -- introspection / export ----------------------------------------------

    @property
    def last_dump(self) -> dict | None:
        """The most recent sampled tick's dump (spans as objects)."""
        if self._ring_count == 0:
            return None
        return self._ring[(self._ring_next - 1) % self.retain_ticks]

    def recent_ticks(self, max_ticks: int | None = None) -> list[dict]:
        """Retained sampled-tick dumps, oldest first."""
        count = self._ring_count
        if max_ticks is not None:
            count = min(count, max_ticks)
        start = self._ring_next - count
        return [
            self._ring[i % self.retain_ticks]
            for i in range(start, self._ring_next)
        ]

    def snapshot(self, max_ticks: int | None = None) -> dict:
        """JSON-able trace state: knobs, phase stats, anomalies, span dumps.

        This is what :func:`repro.core.experiment.run_iteration` files
        under ``telemetry["trace"]`` — and therefore what the campaign
        sidecars stream and ``repro trace export`` renders.
        """
        limit = self.export_ticks if max_ticks is None else max_ticks
        return {
            "enabled": True,
            "sample_every": self.sample_every,
            "slow_tick_factor": self.slow_tick_factor,
            "budget_us": self.budget_us,
            "ticks_seen": self.ticks_seen,
            "ticks_sampled": self.ticks_sampled,
            "slow_ticks": self.slow_ticks,
            "phases": {
                name: acc.snapshot(include_tail=False)
                for name, acc in sorted(self.phases.items())
            },
            "anomalies": list(self.anomalies),
            "ticks": [
                {
                    "tick": dump["tick"],
                    "start_us": dump["start_us"],
                    "duration_us": dump["duration_us"],
                    "work_us": dump["work_us"],
                    "spans": [compact_span(span) for span in dump["spans"]],
                }
                for dump in self.recent_ticks(limit)
            ],
        }
