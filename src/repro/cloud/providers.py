"""Deployment environments (§5.1.2): AWS t3, Azure D2v3, and DAS-5.

Each :class:`Environment` bundles a node type (machine spec) with an
intra-deployment network model.  Parameters encode the qualitative traits
the paper measured:

* **DAS-5** — dedicated dual 8-core 2.4 GHz nodes: essentially noise-free;
  CPU affinity limits the game to 2 cores unless stated otherwise.
* **AWS t3** — burstable instances: low steady noise but CPU-credit
  throttling under sustained load; per-vCPU baselines of 30 % (large) and
  40 % (xlarge/2xlarge) follow the t3 documentation.
* **Azure Standard_D2_v3** — non-burstable but noisier steady state
  (higher jitter, heavier steal) in our calibration.

The registry keys match the names used in benchmark configs:
``das5-2core``, ``das5-16core``, ``aws-t3.large``, ``aws-t3.xlarge``,
``aws-t3.2xlarge``, ``azure-d2v3``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cloud.machine import BurstSpec, Machine, MachineSpec
from repro.cloud.network import NetworkModel
from repro.cloud.variability import NoiseParams

__all__ = [
    "Environment",
    "ENVIRONMENTS",
    "get_environment",
    "DAS5_2CORE",
    "DAS5_16CORE",
    "AWS_T3_LARGE",
    "AWS_T3_XLARGE",
    "AWS_T3_2XLARGE",
    "AZURE_D2V3",
]


@dataclass(frozen=True)
class Environment:
    """One deployment environment: node type plus network fabric."""

    name: str
    display_name: str
    kind: str  # "cloud" | "self-hosted"
    machine_spec: MachineSpec
    network: NetworkModel

    def create_machine(
        self, rng: np.random.Generator | None = None, seed: int = 0
    ) -> Machine:
        """Boot a node of this type."""
        return Machine(self.machine_spec, rng=rng, seed=seed)


_DAS5_NOISE = NoiseParams(
    jitter_sigma=0.006,
    placement_sigma=0.003,
    ar1_sigma=0.0,
    steal_rate_per_s=0.0,
    pause_rate_per_s=0.002,
    pause_ms_range=(5.0, 15.0),
)

_AWS_NOISE = NoiseParams(
    jitter_sigma=0.035,
    placement_sigma=0.050,
    ar1_rho_per_s=0.92,
    ar1_sigma=0.025,
    steal_rate_per_s=0.10,
    steal_duration_s=1.2,
    steal_share=0.50,
    pause_rate_per_s=0.15,
    pause_ms_range=(15.0, 110.0),
)

_AZURE_NOISE = NoiseParams(
    jitter_sigma=0.090,
    placement_sigma=0.085,
    ar1_rho_per_s=0.90,
    ar1_sigma=0.035,
    steal_rate_per_s=0.12,
    steal_duration_s=1.5,
    steal_share=0.50,
    pause_rate_per_s=0.22,
    pause_ms_range=(15.0, 160.0),
)

#: DAS-5 cluster interconnect: sub-millisecond.
_DAS5_NET = NetworkModel(median_one_way_us=250, sigma=0.15)
#: Same-region cloud fabric.
_AWS_NET = NetworkModel(median_one_way_us=900, sigma=0.30)
_AZURE_NET = NetworkModel(median_one_way_us=1_100, sigma=0.32)


def _t3_burst(baseline_per_vcpu: float) -> BurstSpec:
    return BurstSpec(
        baseline_per_vcpu=baseline_per_vcpu,
        initial_credits_s_per_vcpu=25.0,
        max_credits_s_per_vcpu=60.0,
        throttle_penalty=1.1,
    )


#: t3 per-vCPU sustained baselines.  The real t3 documentation says 30 %
#: (large) and 40 % (xlarge+); ours sit higher because the simulator's tick
#: work is the only load — there is no OS/JVM baseline eating headroom.
_T3_LARGE_BASELINE = 0.48
_T3_XLARGE_BASELINE = 0.42


DAS5_2CORE = Environment(
    name="das5-2core",
    display_name="Self-Host, DAS5 2-core",
    kind="self-hosted",
    machine_spec=MachineSpec(
        name="das5-regular (affinity 2 cores)",
        vcpus=2,
        memory_gb=64.0,
        per_core_speed=1.0,
        noise=_DAS5_NOISE,
    ),
    network=_DAS5_NET,
)

DAS5_16CORE = Environment(
    name="das5-16core",
    display_name="Self-Host, DAS5 16-core",
    kind="self-hosted",
    machine_spec=MachineSpec(
        name="das5-regular (all 16 cores)",
        vcpus=16,
        memory_gb=64.0,
        per_core_speed=1.0,
        noise=_DAS5_NOISE,
    ),
    network=_DAS5_NET,
)

AWS_T3_LARGE = Environment(
    name="aws-t3.large",
    display_name="Cloud, AWS t3.large (2 vCPU)",
    kind="cloud",
    machine_spec=MachineSpec(
        name="t3.large",
        vcpus=2,
        memory_gb=8.0,
        per_core_speed=1.02,
        noise=_AWS_NOISE,
        burst=_t3_burst(_T3_LARGE_BASELINE),
    ),
    network=_AWS_NET,
)

AWS_T3_XLARGE = Environment(
    name="aws-t3.xlarge",
    display_name="Cloud, AWS t3.xlarge (4 vCPU)",
    kind="cloud",
    machine_spec=MachineSpec(
        name="t3.xlarge",
        vcpus=4,
        memory_gb=16.0,
        per_core_speed=1.02,
        noise=_AWS_NOISE,
        burst=_t3_burst(_T3_XLARGE_BASELINE),
    ),
    network=_AWS_NET,
)

AWS_T3_2XLARGE = Environment(
    name="aws-t3.2xlarge",
    display_name="Cloud, AWS t3.2xlarge (8 vCPU)",
    kind="cloud",
    machine_spec=MachineSpec(
        name="t3.2xlarge",
        vcpus=8,
        memory_gb=32.0,
        per_core_speed=1.02,
        noise=_AWS_NOISE,
        burst=_t3_burst(_T3_XLARGE_BASELINE),
    ),
    network=_AWS_NET,
)

AZURE_D2V3 = Environment(
    name="azure-d2v3",
    display_name="Cloud, Azure Standard_D2_v3 (2 vCPU)",
    kind="cloud",
    machine_spec=MachineSpec(
        name="Standard_D2_v3",
        vcpus=2,
        memory_gb=8.0,
        per_core_speed=0.98,
        noise=_AZURE_NOISE,
    ),
    network=_AZURE_NET,
)

ENVIRONMENTS: dict[str, Environment] = {
    env.name: env
    for env in (
        DAS5_2CORE,
        DAS5_16CORE,
        AWS_T3_LARGE,
        AWS_T3_XLARGE,
        AWS_T3_2XLARGE,
        AZURE_D2V3,
    )
}
#: Aliases used in paper text/figures.
ENVIRONMENTS["aws"] = AWS_T3_LARGE
ENVIRONMENTS["azure"] = AZURE_D2V3
ENVIRONMENTS["das5"] = DAS5_2CORE


def get_environment(name: str) -> Environment:
    """Resolve an environment by name or alias."""
    try:
        return ENVIRONMENTS[name.lower()]
    except KeyError:
        known = sorted(set(ENVIRONMENTS))
        raise ValueError(
            f"unknown environment {name!r}; known: {', '.join(known)}"
        ) from None
