"""Network latency model between emulation nodes and the server node.

In the paper's deployments, player-emulation workers and the MLG server run
in the same datacenter (cloud region) or on the same cluster (DAS-5), so
per-direction latencies are sub-millisecond to a few milliseconds.  Each
connecting client draws a latency pair once (its path through the fabric);
response-time variability beyond that comes from the server, which is the
object of study.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["NetworkModel"]


@dataclass(frozen=True)
class NetworkModel:
    """Per-direction one-way latency distribution (lognormal)."""

    median_one_way_us: int
    sigma: float = 0.25
    #: Hard floor, in microseconds.
    floor_us: int = 50

    def latency_pair(self, rng: np.random.Generator) -> tuple[int, int]:
        """Draw (uplink, downlink) one-way latencies for a new connection."""
        up = self._draw(rng)
        down = self._draw(rng)
        return up, down

    def _draw(self, rng: np.random.Generator) -> int:
        value = self.median_one_way_us * float(
            np.exp(rng.normal(0.0, self.sigma))
        )
        return max(self.floor_us, int(value))
