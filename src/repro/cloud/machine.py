"""Machine model: converts tick work into simulated wall time.

``duration = work / (per_core_speed × amdahl(vcpus, pf)) × noise`` plus —
on burstable instances — CPU-credit accounting: credits accrue at the
baseline rate and are spent by actual CPU use (main thread plus the
variant's background threads).  An exhausted balance throttles execution to
the baseline share, the t3 behaviour behind MF5 (recommended 2-vCPU nodes
melt under environment workloads) and behind PaperMC's poor showing on AWS
(its extra threads drain credits that vanilla never touches).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cloud.variability import NoiseModel, NoiseParams

__all__ = ["BurstSpec", "MachineSpec", "Machine", "amdahl_speedup"]


def amdahl_speedup(vcpus: int, parallel_fraction: float) -> float:
    """Amdahl's-law speedup of a task with the given parallel fraction."""
    if vcpus < 1:
        raise ValueError(f"vcpus must be >= 1, got {vcpus!r}")
    if not 0.0 <= parallel_fraction < 1.0:
        raise ValueError(
            f"parallel fraction must be in [0, 1), got {parallel_fraction!r}"
        )
    return 1.0 / ((1.0 - parallel_fraction) + parallel_fraction / vcpus)


@dataclass(frozen=True)
class BurstSpec:
    """CPU-credit model of a burstable (AWS t3) instance."""

    #: Baseline CPU fraction per vCPU (t3: 0.3 for large, 0.4 for xlarge+).
    baseline_per_vcpu: float
    #: Credit balance at experiment start, in cpu-seconds *per vCPU*
    #: (larger instances launch with proportionally more credits).
    initial_credits_s_per_vcpu: float
    #: Maximum accruable balance, in cpu-seconds per vCPU.
    max_credits_s_per_vcpu: float
    #: Extra slowdown while throttled (scheduling overhead on a starved VM).
    throttle_penalty: float = 1.25


@dataclass(frozen=True)
class MachineSpec:
    """Static description of one node type."""

    name: str
    vcpus: int
    memory_gb: float
    #: Single-core speed relative to the DAS-5 reference core (2.4 GHz).
    per_core_speed: float
    noise: NoiseParams
    burst: BurstSpec | None = None


class Machine:
    """Stateful executor owned by one simulated node."""

    def __init__(
        self, spec: MachineSpec, rng: np.random.Generator | None = None,
        seed: int = 0,
    ) -> None:
        self.spec = spec
        self.rng = rng if rng is not None else np.random.default_rng(seed)
        self.noise = NoiseModel(spec.noise, self.rng)
        self._credits_us = (
            spec.burst.initial_credits_s_per_vcpu * spec.vcpus * 1e6
            if spec.burst
            else 0.0
        )
        self._last_seen_us: int | None = None
        #: Cumulative CPU microseconds consumed (all threads).
        self.cpu_used_us = 0.0
        #: Cumulative wall microseconds this machine has observed.
        self.wall_observed_us = 0.0
        #: Count of executions that ran throttled.
        self.throttled_executions = 0
        self.total_executions = 0

    # -- introspection -------------------------------------------------------------

    @property
    def credits_s(self) -> float:
        """Current burst-credit balance in cpu-seconds (0 if not burstable)."""
        return self._credits_us / 1e6

    @property
    def is_throttled(self) -> bool:
        return self.spec.burst is not None and self._credits_us <= 0.0

    def utilization(self) -> float:
        """Lifetime CPU utilization across all vCPUs."""
        if self.wall_observed_us <= 0:
            return 0.0
        return min(
            1.0,
            self.cpu_used_us / (self.wall_observed_us * self.spec.vcpus),
        )

    # -- redeploy -------------------------------------------------------------------

    def drain_credits(self) -> None:
        """Model a warm VM whose burst credits are already spent.

        The paper's deployments run whole experiment suites back-to-back on
        the same nodes, so later configurations start at the baseline rate.
        """
        self._credits_us = 0.0

    def redeploy(self) -> None:
        """Fresh VM boot: new placement lottery, refilled launch credits."""
        self.noise.new_placement()
        if self.spec.burst:
            self._credits_us = (
                self.spec.burst.initial_credits_s_per_vcpu
                * self.spec.vcpus
                * 1e6
            )

    # -- execution --------------------------------------------------------------------

    def execute(
        self,
        work_us: float,
        parallel_fraction: float,
        now_us: int,
        background_cpu_fraction: float = 0.0,
        alloc_pressure: float = 0.0,
        extra_thread_cores: float = 0.0,
    ) -> int:
        """Run ``work_us`` of tick work starting at ``now_us``.

        Returns the wall duration in microseconds.  ``work_us`` is CPU time
        on the reference core.  ``background_cpu_fraction`` is the variant's
        off-thread CPU appetite per vCPU (netty, async workers); it burns
        continuously — including between ticks — and spends burst credits.
        ``alloc_pressure`` models allocation-rate-driven GC demand (roughly
        "live entities plus heavy rule updates", pre-scaled by the variant's
        GC factor): GC threads occupy ``alloc_pressure / 1000`` cores, up to
        half the machine.  ``extra_thread_cores`` is scheduling overhead
        from a large thread count — cheap on dedicated hosts, but it spends
        burst credits continuously on t3-style instances.
        """
        if work_us < 0:
            raise ValueError(f"work_us must be >= 0, got {work_us!r}")
        spec = self.spec
        self.total_executions += 1

        bg_cores = background_cpu_fraction * spec.vcpus + extra_thread_cores
        # GC concurrency self-limits around four cores for a 4 GB heap.
        gc_cores = min(4.0, max(0.0, alloc_pressure) / 1000.0)
        demand_vcpus = 1.0 + bg_cores + gc_cores

        # Wall-time bookkeeping, continuous background burn, and credit
        # accrual for the time elapsed since the last call (idle waits
        # between ticks earn credits; background threads spend them).
        if self._last_seen_us is not None:
            elapsed = max(0, now_us - self._last_seen_us)
            self.wall_observed_us += elapsed
            self.cpu_used_us += bg_cores * elapsed
            if spec.burst is not None:
                net_rate = (
                    spec.burst.baseline_per_vcpu * spec.vcpus - bg_cores
                )
                self._credits_us = min(
                    spec.burst.max_credits_s_per_vcpu * spec.vcpus * 1e6,
                    max(0.0, self._credits_us + net_rate * elapsed),
                )
        self._last_seen_us = now_us

        speedup = amdahl_speedup(spec.vcpus, parallel_fraction)
        base_us = work_us / (spec.per_core_speed * speedup)
        slowdown = self.noise.sample(now_us)
        # Oversubscription: when total demand exceeds the cores, everyone
        # waits in the run queue (dedicated hosts included).
        contention = max(1.0, demand_vcpus / spec.vcpus) ** 0.8
        duration = base_us * slowdown * contention
        # Additive hypervisor stalls (sampled per execution window).
        pause_us = self.noise.sample_pause_us(
            max(0.05, base_us / 1e6)
        )

        if spec.burst is not None:
            baseline_total = spec.burst.baseline_per_vcpu * spec.vcpus
            # The tick spends credits for the main thread plus GC; the
            # baseline accrual was already added in the elapsed step above.
            usage = duration * min(1.0 + gc_cores, spec.vcpus)
            if usage <= self._credits_us:
                self._credits_us -= usage
            else:
                # Exhausted: the whole VM is capped at the baseline rate,
                # shared fairly between the tick thread, GC, and workers.
                # The cap dominates run-queue contention (they are the same
                # cores being fought over), so take the worse of the two
                # rather than stacking them.
                effective = min(1.0, baseline_total / demand_vcpus)
                effective = max(0.08, effective)
                throttle_slowdown = (
                    spec.burst.throttle_penalty / effective
                )
                duration = base_us * slowdown * max(
                    contention, throttle_slowdown
                )
                # The unaffordable surplus simply does not execute; the
                # balance keeps accruing at baseline, so near the boundary
                # the instance saw-tooths between full-speed and throttled
                # ticks — the visible signature of a depleted t3.
                self.throttled_executions += 1
            self.cpu_used_us += duration * min(1.0 + gc_cores, spec.vcpus)
        else:
            self.cpu_used_us += duration * min(1.0 + gc_cores, spec.vcpus)

        return max(1, int(duration) + pause_us)
