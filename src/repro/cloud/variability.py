"""Cloud performance-variability processes (§5.4).

The paper attributes cloud variability to "hardware manufacturing
differences, shared tenancy of hardware and networks, specific software
configurations, and resource allocation and scheduling systems" (refs
[32, 56, 71, 75]).  We model each as a separate stochastic process:

* **placement lottery** — a per-boot multiplicative speed factor (hardware
  generation / NUMA luck), constant for a VM's lifetime;
* **lognormal noise** — fast per-tick scheduling jitter;
* **AR(1) windows** — slowly varying co-tenant interference;
* **steal spikes** — Poisson-arriving bursts where a co-tenant takes a
  fixed share of the CPU for a short interval.

A :class:`NoiseModel` composes all four into one multiplicative *slowdown*
factor ≥ ~1 sampled per tick.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["NoiseParams", "NoiseModel"]


@dataclass(frozen=True)
class NoiseParams:
    """Parameters of one environment's variability processes."""

    #: Sigma of the per-tick lognormal jitter.
    jitter_sigma: float = 0.02
    #: Sigma of the per-boot placement lottery (lognormal).
    placement_sigma: float = 0.0
    #: AR(1) interference: correlation per second and innovation sigma.
    ar1_rho_per_s: float = 0.9
    ar1_sigma: float = 0.0
    #: Steal spikes: mean arrivals per second, duration (s), CPU share taken.
    steal_rate_per_s: float = 0.0
    steal_duration_s: float = 1.5
    steal_share: float = 0.3
    #: Hypervisor pauses: Poisson rate and additive stall range (ms).
    pause_rate_per_s: float = 0.0
    pause_ms_range: tuple[float, float] = (10.0, 40.0)


class NoiseModel:
    """Samples a multiplicative slowdown factor per tick."""

    def __init__(self, params: NoiseParams, rng: np.random.Generator) -> None:
        self.params = params
        self.rng = rng
        self._placement = float(
            np.exp(rng.normal(0.0, params.placement_sigma))
        ) if params.placement_sigma > 0 else 1.0
        self._ar1_state = 0.0
        self._last_us: int | None = None
        self._steal_until_us = -1

    @property
    def placement_factor(self) -> float:
        """The boot-time hardware-lottery slowdown (1.0 = reference)."""
        return self._placement

    def new_placement(self) -> float:
        """Redeploy: draw a fresh placement factor (new VM boot)."""
        if self.params.placement_sigma > 0:
            self._placement = float(
                np.exp(self.rng.normal(0.0, self.params.placement_sigma))
            )
        return self._placement

    def sample(self, now_us: int) -> float:
        """Slowdown factor for work executing around ``now_us``.

        Factors multiply: placement × AR(1) interference × steal × jitter.
        The result is clipped below at 0.7 — even lucky placements do not
        make the reference hardware 30 % faster.
        """
        params = self.params
        dt_s = 0.05 if self._last_us is None else max(
            1e-6, (now_us - self._last_us) / 1e6
        )
        self._last_us = now_us

        # AR(1) interference, discretized for a dt-second step.
        if params.ar1_sigma > 0:
            rho = params.ar1_rho_per_s ** dt_s
            innovation = self.rng.normal(0.0, params.ar1_sigma)
            self._ar1_state = (
                rho * self._ar1_state
                + np.sqrt(max(0.0, 1 - rho * rho)) * innovation
            )
            interference = float(np.exp(abs(self._ar1_state)))
        else:
            interference = 1.0

        # Steal spikes: Poisson arrivals; while active, the co-tenant takes
        # ``steal_share`` of the CPU, slowing us by 1/(1-share).
        steal = 1.0
        if params.steal_rate_per_s > 0:
            if now_us < self._steal_until_us:
                steal = 1.0 / (1.0 - params.steal_share)
            elif self.rng.random() < params.steal_rate_per_s * dt_s:
                self._steal_until_us = now_us + int(
                    params.steal_duration_s * 1e6
                )
                steal = 1.0 / (1.0 - params.steal_share)

        jitter = float(
            np.exp(self.rng.normal(0.0, params.jitter_sigma))
        ) if params.jitter_sigma > 0 else 1.0

        return max(0.7, self._placement * interference * steal * jitter)

    def sample_pause_us(self, dt_s: float) -> int:
        """Additive hypervisor-stall time hitting this execution window.

        VM freezes (live-migration blips, host scheduling stalls) add wall
        time directly, independent of how much work the tick does — the
        mechanism that gives clouds a nonzero ISR floor on every workload.
        """
        params = self.params
        if params.pause_rate_per_s <= 0:
            return 0
        if self.rng.random() < params.pause_rate_per_s * dt_s:
            lo, hi = params.pause_ms_range
            return int(self.rng.uniform(lo, hi) * 1000.0)
        return 0
