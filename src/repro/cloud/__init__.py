"""Deployment-environment models: machines, variability, networks.

Public API::

    from repro.cloud import get_environment, Machine, amdahl_speedup
"""

from repro.cloud.machine import (
    BurstSpec,
    Machine,
    MachineSpec,
    amdahl_speedup,
)
from repro.cloud.network import NetworkModel
from repro.cloud.providers import (
    AWS_T3_2XLARGE,
    AWS_T3_LARGE,
    AWS_T3_XLARGE,
    AZURE_D2V3,
    DAS5_16CORE,
    DAS5_2CORE,
    ENVIRONMENTS,
    Environment,
    get_environment,
)
from repro.cloud.variability import NoiseModel, NoiseParams

__all__ = [
    "AWS_T3_2XLARGE",
    "AWS_T3_LARGE",
    "AWS_T3_XLARGE",
    "AZURE_D2V3",
    "BurstSpec",
    "DAS5_16CORE",
    "DAS5_2CORE",
    "ENVIRONMENTS",
    "Environment",
    "Machine",
    "MachineSpec",
    "NetworkModel",
    "NoiseModel",
    "NoiseParams",
    "amdahl_speedup",
    "get_environment",
]
