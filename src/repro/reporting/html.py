"""Assemble the single-file campaign report.

One self-contained HTML document: no external assets, no scripts, all
figures inline SVG, all styling in one ``<style>`` block.  Light and
dark mode come from the same render via CSS custom properties
(``prefers-color-scheme`` plus an explicit ``[data-theme]`` override
hook), so the bytes never depend on the viewer.

Rendering is a pure function of the loaded
:class:`~repro.reporting.dataset.CampaignDataset` and the parsed
``output:`` section — no clocks, no re-probing, no environment reads —
which is what makes ``repro report`` byte-identical across re-renders
of an unchanged campaign directory.
"""

from __future__ import annotations

from pathlib import Path

from repro.reporting.dataset import CampaignDataset
from repro.reporting.pivot import build_pivot
from repro.reporting.spec import OutputSpec
from repro.reporting.svg import (
    N_SERIES_SLOTS,
    anomaly_strip,
    matrix_plot,
    trajectory_panel,
    warmup_panel,
)

__all__ = ["escape", "render_report", "write_report"]


def escape(text: object) -> str:
    """Minimal HTML escaping for text and attribute values."""
    return (
        str(text)
        .replace("&", "&amp;")
        .replace("<", "&lt;")
        .replace(">", "&gt;")
        .replace('"', "&quot;")
    )


# -- stylesheet ---------------------------------------------------------------

#: Light-mode tokens (reference palette; see the dataviz notes in the
#: repo docs).  Dark mode re-declares every token — it is its own
#: selection from the same ramps, not an automatic inversion.
_LIGHT_TOKENS = """\
  --page: #f9f9f7;
  --surface-1: #fcfcfb;
  --text-primary: #0b0b0b;
  --text-secondary: #52514e;
  --muted: #898781;
  --grid: #e1e0d9;
  --baseline: #c3c2b7;
  --series-c1: #2a78d6;
  --series-c2: #eb6834;
  --series-c3: #1baf7a;
  --series-c4: #eda100;
  --series-c5: #e87ba4;
  --series-c6: #008300;
  --series-c7: #4a3aa7;
  --series-c8: #e34948;
  --status-good: #0ca30c;
  --status-warning: #fab219;
  --status-serious: #ec835a;
  --status-critical: #d03b3b;
"""

_DARK_TOKENS = """\
  --page: #0d0d0d;
  --surface-1: #1a1a19;
  --text-primary: #ffffff;
  --text-secondary: #c3c2b7;
  --muted: #898781;
  --grid: #2c2c2a;
  --baseline: #383835;
  --series-c1: #3987e5;
  --series-c2: #d95926;
  --series-c3: #199e70;
  --series-c4: #c98500;
  --series-c5: #d55181;
  --series-c6: #008300;
  --series-c7: #9085e9;
  --series-c8: #e66767;
  --status-good: #0ca30c;
  --status-warning: #fab219;
  --status-serious: #ec835a;
  --status-critical: #d03b3b;
"""


def _series_css() -> str:
    rules = []
    for slot in range(1, N_SERIES_SLOTS + 1):
        rules.append(
            f".series-line.series-{slot} {{ stroke: var(--series-c{slot}); }}"
        )
        rules.append(
            f".series-dot.series-{slot} {{ fill: var(--series-c{slot}); }}"
        )
        rules.append(
            f".series-bgfill-{slot} {{ fill: var(--series-c{slot}); }}"
        )
        rules.append(
            f".series-bg-{slot} {{ background: var(--series-c{slot}); }}"
        )
    return "\n".join(rules)


def _style() -> str:
    return f"""\
:root {{
{_LIGHT_TOKENS}}}
@media (prefers-color-scheme: dark) {{
  :root:not([data-theme="light"]) {{
{_DARK_TOKENS}  }}
}}
:root[data-theme="dark"] {{
{_DARK_TOKENS}}}
* {{ box-sizing: border-box; }}
body {{
  margin: 0; background: var(--page); color: var(--text-primary);
  font: 14px/1.5 system-ui, -apple-system, "Segoe UI", sans-serif;
}}
main {{ max-width: 1020px; margin: 0 auto; padding: 24px 20px 48px; }}
h1 {{ font-size: 22px; margin: 0 0 2px; }}
h2 {{ font-size: 16px; margin: 28px 0 8px; }}
h3 {{ font-size: 13px; margin: 18px 0 6px; color: var(--text-secondary); }}
.subtitle {{ color: var(--text-secondary); margin: 0 0 16px; }}
code {{ font-family: ui-monospace, monospace; font-size: 12px; }}
section, .banner {{
  background: var(--surface-1); border: 1px solid var(--grid);
  border-radius: 8px; padding: 14px 16px; margin: 12px 0;
}}
.banner {{ display: flex; gap: 10px; align-items: baseline; }}
.banner ul {{ margin: 4px 0 0; padding-left: 18px; }}
.badge {{
  font-weight: 700; font-size: 11px; letter-spacing: 0.4px;
  padding: 2px 8px; border-radius: 10px; color: #0b0b0b;
  flex: none;
}}
.banner-pass .badge {{ background: var(--status-good); color: #ffffff; }}
.banner-warn .badge {{ background: var(--status-warning); }}
.banner-partial .badge {{ background: var(--status-serious); }}
.banner-info .badge {{ background: var(--baseline); }}
.stats {{ display: flex; flex-wrap: wrap; gap: 24px; }}
.stat .value {{ font-size: 22px; font-weight: 700; }}
.stat .label {{ color: var(--text-secondary); font-size: 12px; }}
table {{ border-collapse: collapse; margin: 8px 0; }}
th, td {{
  border-bottom: 1px solid var(--grid); padding: 4px 10px;
  text-align: left; font-size: 13px;
}}
thead th {{ color: var(--text-secondary); font-weight: 600; }}
td.num {{
  text-align: right; font-family: ui-monospace, monospace; font-size: 12px;
}}
svg.chart {{ display: block; margin: 8px 0; max-width: 100%; }}
svg text {{
  font: 11px system-ui, sans-serif; fill: var(--text-secondary);
}}
.grid {{ stroke: var(--grid); stroke-width: 1; }}
.series-line {{ fill: none; stroke-width: 2; }}
.series-dot {{ stroke: var(--surface-1); stroke-width: 2; }}
.anomaly-mark {{ stroke: none; }}
.steady-marker {{
  stroke: var(--status-good); stroke-width: 2; stroke-dasharray: 3 3;
}}
.budget-line {{
  stroke: var(--status-critical); stroke-width: 1.5; stroke-dasharray: 5 3;
}}
svg .tick-label {{ font-size: 10px; fill: var(--muted); }}
svg .axis-label {{ fill: var(--text-secondary); }}
svg .facet-title {{ fill: var(--text-primary); font-weight: 600; }}
svg .strip-label {{ font-size: 10px; }}
.legend {{ display: flex; flex-wrap: wrap; gap: 14px; margin: 6px 0; }}
.legend-item {{
  display: inline-flex; align-items: center; gap: 6px;
  color: var(--text-secondary); font-size: 12px;
}}
.swatch {{
  width: 10px; height: 10px; border-radius: 3px; display: inline-block;
}}
.note, .empty {{ color: var(--muted); font-size: 12px; margin: 4px 0; }}
.prov {{ color: var(--text-secondary); font-size: 12px; }}
.prov code {{ word-break: break-all; }}
{_series_css()}
"""


# -- sections -----------------------------------------------------------------


def _hygiene_banner(dataset: CampaignDataset) -> str:
    hygiene = dataset.hygiene
    if not hygiene:
        return (
            '<div class="banner banner-info"><span class="badge">N/A</span>'
            "<div>no measurement-hygiene snapshot in this campaign's "
            "provenance (recorded before hygiene probing, or manifest "
            "was hand-written)</div></div>"
        )
    probes = hygiene.get("probes", [])
    warns = [p for p in probes if p.get("status") == "warn"]
    if hygiene.get("status") == "pass":
        return (
            '<div class="banner banner-pass"><span class="badge">PASS</span>'
            f"<div>measurement hygiene: {len(probes)} probe(s), no "
            "warnings — see the hygiene section for what was observed"
            "</div></div>"
        )
    items = "".join(
        f"<li><strong>{escape(p.get('probe'))}</strong>: "
        f"{escape(p.get('detail'))}</li>"
        for p in warns
    )
    return (
        '<div class="banner banner-warn"><span class="badge">WARN</span>'
        f"<div>measurement hygiene: {len(warns)} of {len(probes)} "
        f"probe(s) warned — treat absolute numbers with care<ul>{items}"
        "</ul></div></div>"
    )


def _partial_banner(dataset: CampaignDataset) -> str:
    if not dataset.partial:
        return ""
    return (
        '<div class="banner banner-partial">'
        '<span class="badge">PARTIAL</span>'
        f"<div>partial campaign: {dataset.completed_jobs} of "
        f"{dataset.total_jobs} job(s) complete, "
        f"{dataset.seen_iterations} of {dataset.expected_iterations} "
        "iteration(s) on disk — figures below cover only what has "
        "landed</div></div>"
    )


def _stat(value: object, label: str) -> str:
    return (
        f'<div class="stat"><div class="value">{escape(value)}</div>'
        f'<div class="label">{escape(label)}</div></div>'
    )


def _summary_section(dataset: CampaignDataset) -> str:
    crashed = sum(1 for row in dataset.rows if row.get("crashed"))
    stats = [
        _stat(f"{dataset.completed_jobs}/{dataset.total_jobs}", "jobs done"),
        _stat(
            f"{dataset.seen_iterations}/{dataset.expected_iterations}",
            "iterations on disk",
        ),
        _stat(crashed, "crashed iterations"),
        _stat(len(dataset.anomalies), "slow-tick anomaly dumps"),
    ]
    return f'<section><div class="stats">{"".join(stats)}</div></section>'


def _provenance_section(dataset: CampaignDataset) -> str:
    prov = dataset.provenance
    bits = []
    if prov.get("captured_at"):
        bits.append(f"run at <code>{escape(prov['captured_at'])}</code>")
    if prov.get("fingerprint"):
        bits.append(
            f"measurement fingerprint <code>{escape(prov['fingerprint'])}"
            "</code>"
        )
    environment = prov.get("environment") or {}
    for key in ("python", "platform"):
        if environment.get(key):
            bits.append(f"{key} <code>{escape(environment[key])}</code>")
    if not bits:
        bits.append("no provenance recorded in the manifest")
    return (
        f'<p class="prov">campaign <strong>{escape(dataset.name)}</strong> '
        f'in <code>{escape(dataset.root)}</code> — {", ".join(bits)}</p>'
    )


def _pivot_sections(dataset: CampaignDataset, output: OutputSpec) -> str:
    parts = []
    for pivot_spec in output.pivots:
        table = build_pivot(dataset.rows, pivot_spec)
        body = table.to_html()
        note = ""
        if table.dropped_rows:
            note = (
                f'<p class="note">{table.dropped_rows} iteration(s) had no '
                f"{escape(pivot_spec.value)} value and were skipped</p>"
            )
        if not table.row_keys:
            body = '<p class="empty">no data for this pivot</p>'
        parts.append(
            f"<section><h2>{escape(table.title)}</h2>{body}{note}</section>"
        )
    return "".join(parts)


def _plot_sections(dataset: CampaignDataset, output: OutputSpec) -> str:
    parts = []
    for plot in output.plots:
        if plot.kind == "matrix":
            body = matrix_plot(dataset.rows, plot)
        elif plot.kind == "warmup":
            body = warmup_panel(dataset.jobs)
        elif plot.kind == "anomalies":
            body = anomaly_strip(dataset.jobs)
        else:  # trajectory
            body = trajectory_panel(
                dataset.bench_history, dataset.bench_baseline
            )
        parts.append(
            f"<section><h2>{escape(plot.label())}</h2>{body}</section>"
        )
    return "".join(parts)


def _hygiene_section(dataset: CampaignDataset) -> str:
    hygiene = dataset.hygiene
    if not hygiene:
        return ""
    rows = []
    for probe in hygiene.get("probes", []):
        observed = probe.get("observed")
        requested = probe.get("requested")
        rows.append(
            "<tr>"
            f"<td>{escape(probe.get('probe'))}</td>"
            f"<td>{escape(probe.get('status'))}</td>"
            f"<td>{escape('-' if observed is None else observed)}</td>"
            f"<td>{escape('-' if requested is None else requested)}</td>"
            f"<td>{escape(probe.get('detail'))}</td>"
            "</tr>"
        )
    return (
        "<section><h2>Measurement hygiene</h2>"
        "<p class='note'>probed on the campaign host at run start and "
        "stamped into the manifest's provenance — not re-probed at "
        "render time</p>"
        "<table><thead><tr><th>probe</th><th>status</th><th>observed</th>"
        "<th>requested</th><th>detail</th></tr></thead>"
        f"<tbody>{''.join(rows)}</tbody></table></section>"
    )


def _trace_section(dataset: CampaignDataset) -> str:
    trace = dataset.campaign_trace
    if not trace:
        return ""
    phases = trace.get("phases") or {}
    cells = "".join(
        f"<tr><td>{escape(name)}</td>"
        f'<td class="num">{phases[name]:.3f}</td></tr>'
        for name in sorted(phases)
    )
    return (
        "<section><h2>Executor phases</h2>"
        "<table><thead><tr><th>phase</th><th>seconds</th></tr></thead>"
        f"<tbody>{cells}</tbody></table></section>"
    )


def render_report(dataset: CampaignDataset, output: OutputSpec) -> str:
    """Render the full report document as a string."""
    title = f"{dataset.name} — campaign report"
    return (
        "<!doctype html>\n"
        '<html lang="en">\n'
        '<head>\n<meta charset="utf-8">\n'
        '<meta name="viewport" content="width=device-width, '
        'initial-scale=1">\n'
        f"<title>{escape(title)}</title>\n"
        f"<style>\n{_style()}</style>\n</head>\n<body>\n<main>\n"
        f"<header><h1>{escape(dataset.name)}</h1>"
        '<p class="subtitle">Meterstick campaign report — rendered from '
        "the on-disk telemetry sidecars, no re-simulation</p></header>\n"
        + _provenance_section(dataset)
        + _hygiene_banner(dataset)
        + _partial_banner(dataset)
        + _summary_section(dataset)
        + _pivot_sections(dataset, output)
        + _plot_sections(dataset, output)
        + _hygiene_section(dataset)
        + _trace_section(dataset)
        + "</main>\n</body>\n</html>\n"
    )


def write_report(
    dataset: CampaignDataset,
    output: OutputSpec | None = None,
    out_dir: str | Path | None = None,
) -> dict[str, Path]:
    """Write the report and its CSV companions; return what was written.

    ``out_dir`` defaults to ``<campaign>/report``.  Writes the HTML
    document, one CSV per pivot that asked for one, and (unless
    disabled) the full per-iteration grid CSV with the same columns the
    figure pipeline's campaign grid uses.
    """
    if output is None:
        output = OutputSpec.from_dict(dataset.spec.get("output"))
    out_dir = Path(out_dir) if out_dir is not None else dataset.root / "report"
    out_dir.mkdir(parents=True, exist_ok=True)
    written: dict[str, Path] = {}
    html_path = out_dir / output.html
    html_path.write_text(render_report(dataset, output))
    written["html"] = html_path
    for pivot_spec in output.pivots:
        if not pivot_spec.csv:
            continue
        table = build_pivot(dataset.rows, pivot_spec)
        csv_path = out_dir / pivot_spec.csv
        table.write_csv(csv_path)
        written[pivot_spec.csv] = csv_path
    if output.grid_csv:
        from repro.analysis.figures import sidecar_grid
        from repro.reporting.text import write_csv_rows

        grid = sidecar_grid(dataset.rows)
        headers = list(grid.rows[0]) if grid.rows else []
        write_csv_rows(
            out_dir / output.grid_csv,
            headers,
            [
                ["" if row[h] is None else row[h] for h in headers]
                for row in grid.rows
            ],
        )
        written[output.grid_csv] = out_dir / output.grid_csv
    return written
