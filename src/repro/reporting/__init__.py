"""Declarative campaign reporting.

The report engine consumes only on-disk campaign artifacts (manifest,
telemetry sidecars, campaign trace, perf history) and renders pivot
tables, inline-SVG figures, and one self-contained HTML report, driven
by the spec's ``output:`` section; :mod:`repro.reporting.hygiene`
supplies the ``system:`` measurement-hygiene probes.

Import discipline: :mod:`repro.core.visualization` re-exports this
package's text renderers, so ``repro.core`` triggers this module during
its own import.  Only cycle-free modules (text, spec, hygiene, pivot)
may be imported eagerly here; everything that reaches back into
``repro.campaign`` or ``repro.analysis`` (dataset, html, svg) loads
lazily through ``__getattr__``.
"""

from repro.reporting.hygiene import HYGIENE_PROBES, hygiene_snapshot
from repro.reporting.pivot import PivotTable, build_pivot
from repro.reporting.spec import (
    AGGREGATES,
    AXIS_FIELDS,
    METRIC_FIELDS,
    OutputSpec,
    PivotSpec,
    PlotSpec,
    SYSTEM_FIELDS,
    default_output,
    validate_output,
    validate_system,
)
from repro.reporting.text import (
    ascii_boxplot,
    ascii_timeseries,
    format_table,
    write_csv_rows,
    write_csv_series,
)

__all__ = [
    "AGGREGATES",
    "AXIS_FIELDS",
    "CampaignDataset",
    "HYGIENE_PROBES",
    "METRIC_FIELDS",
    "OutputSpec",
    "PivotSpec",
    "PivotTable",
    "PlotSpec",
    "SYSTEM_FIELDS",
    "ascii_boxplot",
    "ascii_timeseries",
    "build_pivot",
    "default_output",
    "format_table",
    "hygiene_snapshot",
    "load_dataset",
    "render_report",
    "validate_output",
    "validate_system",
    "write_csv_rows",
    "write_csv_series",
    "write_report",
]

_LAZY = {
    "CampaignDataset": "repro.reporting.dataset",
    "JobView": "repro.reporting.dataset",
    "load_dataset": "repro.reporting.dataset",
    "sidecar_row": "repro.reporting.dataset",
    "escape": "repro.reporting.html",
    "render_report": "repro.reporting.html",
    "write_report": "repro.reporting.html",
}


def __getattr__(name: str):
    if name in _LAZY:
        import importlib

        return getattr(importlib.import_module(_LAZY[name]), name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
