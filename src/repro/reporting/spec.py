"""Declarative report configuration: the ``output:``/``system:`` sections.

A campaign spec may carry two presentation-layer sections (benchalot
style — see SNIPPETS.md):

``output:`` declares what the report renders — which pivot tables and
which faceted plots, over which axes and metrics::

    output:
      html: report.html
      pivots:
        - title: median tick p99 (ms)
          rows: [server]
          cols: [workload]
          value: tick_p99_ms
          agg: median
          csv: p99_pivot.csv
      plots:
        - kind: matrix
          metric: tick_p50_ms
          x: scale
          series: server
          facet: workload
        - kind: warmup
        - kind: anomalies
        - kind: trajectory

``system:`` declares the measurement-hygiene conditions the campaign
*requests* from the host (CPU governor, SMT, ASLR, frequency boost, CPU
isolation, load ceiling).  The executor probes the host against these
requests at run time (:mod:`repro.reporting.hygiene`) and stamps the
findings into the campaign manifest's provenance, so every report can
lead with the conditions its numbers were measured under.

Both sections are *presentation and provenance* — they never change what
gets simulated, so ``output:`` may be edited after a campaign ran and
re-rendered with ``repro report --update-output``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "AGGREGATES",
    "AXIS_FIELDS",
    "METRIC_FIELDS",
    "OutputSpec",
    "PivotSpec",
    "PlotSpec",
    "SIDECAR_METRICS",
    "SYSTEM_FIELDS",
    "default_output",
    "validate_output",
    "validate_system",
]

#: Cell-identity fields every report row carries (sidecar ``cell`` key
#: order, then iteration identity).
AXIS_FIELDS = (
    "server",
    "workload",
    "environment",
    "scale",
    "n_bots",
    "behavior",
    "iteration",
)

#: Metrics derivable from a telemetry sidecar line alone (no shards, no
#: re-simulation).  Values are short human labels for table headers.
METRIC_FIELDS = {
    "isr": "instability ratio (Eq. 1)",
    "tick_mean_ms": "mean tick (ms)",
    "tick_p50_ms": "p50 tick (ms)",
    "tick_p95_ms": "p95 tick (ms)",
    "tick_p99_ms": "p99 tick (ms)",
    "tick_max_ms": "max tick (ms)",
    "tick_cov": "tick CoV",
    "overloaded_fraction": "ticks over budget",
    "ticks": "ticks",
    "entities_peak": "peak entities",
    "response_p50_ms": "p50 response (ms)",
    "response_p99_ms": "p99 response (ms)",
    "warmup_samples": "warmup ticks",
    "steady": "reached steady state",
    "crashed": "crashed",
    "slow_ticks": "slow ticks",
    "anomaly_count": "anomaly dumps",
    "top_bucket_share": "top-bucket share",
    "wire_bytes_in": "wire bytes in",
    "wire_bytes_out": "wire bytes out",
    "wire_flush_p99_us": "p99 wire flush (µs)",
    "wire_connects": "wire connects",
}

#: The sidecar metric registry: which bus-published metric each family
#: of report metrics derives from.  Keys are the exact names producers
#: pass to ``TelemetryBus.publish``; values are the METRIC_FIELDS
#: columns the reporting layer derives from that stream's sidecar
#: snapshot.  Lint rule MSL005 enforces both directions — a metric
#: published but not registered here is invisible to report pivots, and
#: a registry entry nothing publishes is dead weight.  (The remaining
#: METRIC_FIELDS come from tap/flight-recorder state, not bus streams.)
SIDECAR_METRICS = {
    "tick_ms": (
        "tick_mean_ms",
        "tick_p50_ms",
        "tick_p95_ms",
        "tick_p99_ms",
        "tick_max_ms",
        "tick_cov",
        "overloaded_fraction",
    ),
    "response_ms": (
        "response_p50_ms",
        "response_p99_ms",
    ),
    # Wire-served cells only (``repro serve``); inproc rows leave the
    # columns empty.
    "wire_bytes_in": ("wire_bytes_in",),
    "wire_bytes_out": ("wire_bytes_out",),
    "wire_flush_us": ("wire_flush_p99_us",),
    "wire_connects": ("wire_connects",),
}

#: Supported pivot aggregates.
AGGREGATES = ("mean", "median", "min", "max", "std", "sum", "count")

#: Known plot kinds (``matrix`` is parameterized; the rest are fixed
#: panels over sidecar-adjacent artifacts).
PLOT_KINDS = ("matrix", "warmup", "anomalies", "trajectory")

#: ``system:`` request fields and a one-line meaning each.
SYSTEM_FIELDS = {
    "governor": "required CPU frequency governor (e.g. 'performance')",
    "disable_smt": "require SMT/hyper-threading off",
    "disable_aslr": "require address-space layout randomization off",
    "disable_boost": "require frequency boost/turbo off",
    "isolate_cpus": "CPU list the campaign must be pinned to",
    "max_load_1m": "1-minute load-average ceiling at campaign start",
}


@dataclass(frozen=True)
class PivotSpec:
    """One pivot table: row axes x column axes, one aggregated metric."""

    value: str
    rows: tuple[str, ...] = ("server",)
    cols: tuple[str, ...] = ("workload",)
    agg: str = "mean"
    title: str = ""
    decimals: int = 3
    csv: str | None = None

    def label(self) -> str:
        return self.title or f"{self.agg} {self.value} by " + " x ".join(
            (*self.rows, *self.cols)
        )


@dataclass(frozen=True)
class PlotSpec:
    """One report figure.  ``matrix`` plots aggregate a metric over the
    campaign matrix (x/series/facet are axis fields); the other kinds
    are fixed panels and ignore the axis fields."""

    kind: str = "matrix"
    metric: str = "tick_p99_ms"
    x: str = "iteration"
    series: str = "server"
    facet: str = "workload"
    agg: str = "mean"
    title: str = ""

    def label(self) -> str:
        if self.title:
            return self.title
        if self.kind != "matrix":
            return {
                "warmup": "Warmup -> steady state (windowed tick CoV)",
                "anomalies": "Slow-tick anomalies",
                "trajectory": "Perf trajectory (benchmark suite)",
            }[self.kind]
        return (
            f"{self.agg} {self.metric} vs {self.x}, one line per "
            f"{self.series}, faceted by {self.facet}"
        )


@dataclass
class OutputSpec:
    """The parsed ``output:`` section: what the report renders."""

    html: str = "report.html"
    pivots: list[PivotSpec] = field(default_factory=list)
    plots: list[PlotSpec] = field(default_factory=list)
    #: Extra grid CSV next to the report (full per-iteration rows).
    grid_csv: str | None = "report_grid.csv"

    @classmethod
    def from_dict(cls, data: dict | None) -> "OutputSpec":
        """Parse and validate an ``output:`` mapping (``None``/empty
        mapping -> the default report)."""
        if not data:
            return default_output()
        validate_output(data)
        spec = cls(html=data.get("html", "report.html"))
        spec.grid_csv = data.get("grid_csv", "report_grid.csv")
        for raw in data.get("pivots", ()):
            spec.pivots.append(
                PivotSpec(
                    value=raw["value"],
                    rows=tuple(raw.get("rows", ("server",))),
                    cols=tuple(raw.get("cols", ("workload",))),
                    agg=raw.get("agg", "mean"),
                    title=raw.get("title", ""),
                    decimals=int(raw.get("decimals", 3)),
                    csv=raw.get("csv"),
                )
            )
        for raw in data.get("plots", ()):
            spec.plots.append(
                PlotSpec(
                    kind=raw.get("kind", "matrix"),
                    metric=raw.get("metric", "tick_p99_ms"),
                    x=raw.get("x", "iteration"),
                    series=raw.get("series", "server"),
                    facet=raw.get("facet", "workload"),
                    agg=raw.get("agg", "mean"),
                    title=raw.get("title", ""),
                )
            )
        if not spec.pivots and not spec.plots:
            base = default_output()
            spec.pivots, spec.plots = base.pivots, base.plots
        return spec


def default_output() -> OutputSpec:
    """The report rendered when a spec has no ``output:`` section."""
    return OutputSpec(
        pivots=[
            PivotSpec(value="isr", agg="mean", title="mean ISR"),
            PivotSpec(
                value="tick_p99_ms", agg="mean", title="mean p99 tick (ms)"
            ),
            PivotSpec(
                value="tick_cov", agg="mean", title="mean tick CoV"
            ),
        ],
        plots=[
            PlotSpec(metric="tick_p50_ms", x="iteration"),
            PlotSpec(metric="tick_p99_ms", x="iteration"),
            PlotSpec(metric="tick_cov", x="iteration"),
            PlotSpec(kind="warmup"),
            PlotSpec(kind="anomalies"),
            PlotSpec(kind="trajectory"),
        ],
    )


def _require_keys(section: str, raw: dict, allowed: set[str]) -> None:
    if not isinstance(raw, dict):
        raise ValueError(f"{section} must be a mapping: {raw!r}")
    unknown = set(raw) - allowed
    if unknown:
        raise ValueError(
            f"{section} has unknown keys {sorted(unknown)}; "
            f"known: {sorted(allowed)}"
        )


def _check_axes(section: str, names, what: str) -> None:
    for name in names:
        if name not in AXIS_FIELDS:
            raise ValueError(
                f"{section}: unknown {what} axis {name!r}; "
                f"known: {list(AXIS_FIELDS)}"
            )


def validate_output(data: dict) -> None:
    """Raise ``ValueError`` on a malformed ``output:`` section."""
    _require_keys(
        "output", data, {"html", "grid_csv", "pivots", "plots"}
    )
    for index, raw in enumerate(data.get("pivots", ())):
        section = f"output.pivots[{index}]"
        _require_keys(
            section,
            raw,
            {"title", "rows", "cols", "value", "agg", "decimals", "csv"},
        )
        if "value" not in raw:
            raise ValueError(f"{section} must name a 'value' metric")
        if raw["value"] not in METRIC_FIELDS:
            raise ValueError(
                f"{section}: unknown metric {raw['value']!r}; "
                f"known: {sorted(METRIC_FIELDS)}"
            )
        _check_axes(section, raw.get("rows", ()), "row")
        _check_axes(section, raw.get("cols", ()), "column")
        agg = raw.get("agg", "mean")
        if agg not in AGGREGATES:
            raise ValueError(
                f"{section}: unknown aggregate {agg!r}; "
                f"known: {list(AGGREGATES)}"
            )
    for index, raw in enumerate(data.get("plots", ())):
        section = f"output.plots[{index}]"
        _require_keys(
            section,
            raw,
            {"kind", "metric", "x", "series", "facet", "agg", "title"},
        )
        kind = raw.get("kind", "matrix")
        if kind not in PLOT_KINDS:
            raise ValueError(
                f"{section}: unknown plot kind {kind!r}; "
                f"known: {list(PLOT_KINDS)}"
            )
        if kind != "matrix":
            continue
        metric = raw.get("metric", "tick_p99_ms")
        if metric not in METRIC_FIELDS:
            raise ValueError(
                f"{section}: unknown metric {metric!r}; "
                f"known: {sorted(METRIC_FIELDS)}"
            )
        _check_axes(
            section,
            (
                raw.get("x", "iteration"),
                raw.get("series", "server"),
                raw.get("facet", "workload"),
            ),
            "plot",
        )
        agg = raw.get("agg", "mean")
        if agg not in AGGREGATES:
            raise ValueError(
                f"{section}: unknown aggregate {agg!r}; "
                f"known: {list(AGGREGATES)}"
            )


def validate_system(data: dict) -> None:
    """Raise ``ValueError`` on a malformed ``system:`` section."""
    _require_keys("system", data, set(SYSTEM_FIELDS))
    for key in ("disable_smt", "disable_aslr", "disable_boost"):
        if key in data and not isinstance(data[key], bool):
            raise ValueError(f"system.{key} must be a boolean")
    if "governor" in data and not isinstance(data["governor"], str):
        raise ValueError("system.governor must be a string")
    if "isolate_cpus" in data:
        cpus = data["isolate_cpus"]
        if not isinstance(cpus, (list, tuple)) or not all(
            isinstance(cpu, int) and cpu >= 0 for cpu in cpus
        ):
            raise ValueError(
                "system.isolate_cpus must be a list of CPU indices"
            )
    if "max_load_1m" in data:
        load = data["max_load_1m"]
        if not isinstance(load, (int, float)) or load <= 0:
            raise ValueError("system.max_load_1m must be a positive number")
