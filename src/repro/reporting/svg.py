"""Deterministic inline-SVG figures for the campaign report.

Small, dependency-free chart toolkit plus the four report panels:

- faceted matrix plots (``output.plots: kind: matrix``) — one small
  multiple per facet value, one line per series value, shared y scale;
- the warmup -> steady panel: windowed tick-CoV per job with the PR 2
  change-point marked;
- the anomaly strip: slow-tick flight-recorder dumps on a per-job tick
  timeline, autosave-dominated ticks distinguished;
- the perf-trajectory panel over ``benchmarks/out/perf_history.jsonl``.

Everything renders to strings with fixed-precision numbers and sorted
iteration order, so the same inputs always produce the same bytes.
Colors are CSS custom properties (``var(--series-1)`` ...) supplied by
the report stylesheet, which keeps the SVG readable in both light and
dark mode from a single render.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.reporting.pivot import aggregate, _coerce
from repro.reporting.spec import PlotSpec

__all__ = [
    "anomaly_strip",
    "matrix_plot",
    "trajectory_panel",
    "warmup_panel",
]

#: Categorical series slots (fixed assignment order, never cycled).
N_SERIES_SLOTS = 8

#: Panel geometry (px).
PANEL_W = 300
PANEL_H = 190
MARGIN_L = 52
MARGIN_B = 34
MARGIN_T = 26
MARGIN_R = 12
PANELS_PER_ROW = 3


def _esc(text: object) -> str:
    return (
        str(text)
        .replace("&", "&amp;")
        .replace("<", "&lt;")
        .replace(">", "&gt;")
        .replace('"', "&quot;")
    )


def _num(value: float) -> str:
    """Fixed-precision coordinate: deterministic and compact."""
    return f"{value:.2f}".rstrip("0").rstrip(".")


def _label_num(value: float) -> str:
    """Adaptive tick-label precision."""
    magnitude = abs(value)
    if magnitude >= 100:
        return f"{value:.0f}"
    if magnitude >= 1:
        return f"{value:.1f}"
    return f"{value:.3f}"


def _axis_sorted(values) -> list:
    """Axis values in deterministic order (numeric when possible)."""
    try:
        return sorted(values, key=lambda v: (0, float(v)))
    except (TypeError, ValueError):
        return sorted(values, key=lambda v: (1, str(v)))


class _Svg:
    """An append-only SVG document builder."""

    def __init__(self, width: int, height: int, title: str) -> None:
        self.width = width
        self.height = height
        self.parts: list[str] = [
            f'<svg class="chart" role="img" width="{width}" '
            f'height="{height}" viewBox="0 0 {width} {height}" '
            f'aria-label="{_esc(title)}">'
        ]

    def line(self, x1, y1, x2, y2, cls: str) -> None:
        self.parts.append(
            f'<line class="{cls}" x1="{_num(x1)}" y1="{_num(y1)}" '
            f'x2="{_num(x2)}" y2="{_num(y2)}"/>'
        )

    def polyline(self, points: Sequence[tuple[float, float]], cls: str) -> None:
        joined = " ".join(f"{_num(x)},{_num(y)}" for x, y in points)
        self.parts.append(
            f'<polyline class="{cls}" points="{joined}"/>'
        )

    def circle(self, x, y, r, cls: str, tooltip: str | None = None) -> None:
        body = (
            f'<circle class="{cls}" cx="{_num(x)}" cy="{_num(y)}" '
            f'r="{_num(r)}"'
        )
        if tooltip is None:
            self.parts.append(body + "/>")
        else:
            self.parts.append(
                body + f"><title>{_esc(tooltip)}</title></circle>"
            )

    def rect(
        self, x, y, w, h, cls: str, tooltip: str | None = None, rx=0
    ) -> None:
        body = (
            f'<rect class="{cls}" x="{_num(x)}" y="{_num(y)}" '
            f'width="{_num(w)}" height="{_num(h)}" rx="{_num(rx)}"'
        )
        if tooltip is None:
            self.parts.append(body + "/>")
        else:
            self.parts.append(body + f"><title>{_esc(tooltip)}</title></rect>")

    def text(self, x, y, content: str, cls: str, anchor: str = "start") -> None:
        self.parts.append(
            f'<text class="{cls}" x="{_num(x)}" y="{_num(y)}" '
            f'text-anchor="{anchor}">{_esc(content)}</text>'
        )

    def render(self) -> str:
        return "".join(self.parts) + "</svg>"


def _y_scale(lo: float, hi: float):
    if hi <= lo:
        hi = lo + 1.0
    span = hi - lo

    def scale(value: float, top: float, height: float) -> float:
        return top + height - (value - lo) / span * height

    return scale, lo, hi


def _series_legend(names: Sequence[str]) -> str:
    items = []
    for slot, name in enumerate(names, start=1):
        items.append(
            f'<span class="legend-item"><span class="swatch series-bg-'
            f'{slot}"></span>{_esc(name)}</span>'
        )
    return f'<div class="legend">{"".join(items)}</div>'


def matrix_plot(rows: list[dict], plot: PlotSpec) -> str:
    """Faceted small multiples of one aggregated metric.

    One panel per ``plot.facet`` value, one line (2px, 4px markers) per
    ``plot.series`` value, shared y scale across panels so facets stay
    comparable.  Returns an HTML fragment: legend + inline SVG.
    """
    # (facet, series, x) -> values
    groups: dict[tuple, list[float]] = {}
    for row in rows:
        value = _coerce(row.get(plot.metric))
        if value is None:
            continue
        key = (row.get(plot.facet), row.get(plot.series), row.get(plot.x))
        groups.setdefault(key, []).append(value)
    if not groups:
        return '<p class="empty">no data for this plot</p>'
    points = {key: aggregate(plot.agg, vals) for key, vals in groups.items()}
    facets = _axis_sorted({key[0] for key in points})
    series = _axis_sorted({key[1] for key in points})
    xs = _axis_sorted({key[2] for key in points})
    folded = 0
    if len(series) > N_SERIES_SLOTS:
        folded = len(series) - N_SERIES_SLOTS
        series = series[:N_SERIES_SLOTS]
    values = list(points.values())
    scale, lo, hi = _y_scale(0.0, max(values) * 1.05)

    n_cols = min(PANELS_PER_ROW, len(facets))
    n_rows = (len(facets) + n_cols - 1) // n_cols
    svg = _Svg(n_cols * PANEL_W, n_rows * PANEL_H, plot.label())
    plot_w = PANEL_W - MARGIN_L - MARGIN_R
    plot_h = PANEL_H - MARGIN_T - MARGIN_B

    def x_pos(origin: float, index: int) -> float:
        if len(xs) == 1:
            return origin + plot_w / 2.0
        return origin + index * plot_w / (len(xs) - 1)

    for f_index, facet in enumerate(facets):
        px = (f_index % n_cols) * PANEL_W
        py = (f_index // n_cols) * PANEL_H
        left, top = px + MARGIN_L, py + MARGIN_T
        svg.text(
            px + PANEL_W / 2.0,
            py + 14,
            f"{plot.facet} = {facet}",
            "facet-title",
            anchor="middle",
        )
        # Recessive grid: three horizontal guides + baseline.
        for frac in (0.0, 0.5, 1.0):
            gy = top + plot_h * (1.0 - frac)
            svg.line(left, gy, left + plot_w, gy, "grid")
            svg.text(
                left - 4,
                gy + 3,
                _label_num(lo + (hi - lo) * frac),
                "tick-label",
                anchor="end",
            )
        for x_index, x_value in enumerate(xs):
            svg.text(
                x_pos(left, x_index),
                top + plot_h + 14,
                _label_num(x_value)
                if isinstance(x_value, (int, float))
                else str(x_value),
                "tick-label",
                anchor="middle",
            )
        svg.text(
            left + plot_w / 2.0,
            top + plot_h + 28,
            plot.x,
            "axis-label",
            anchor="middle",
        )
        for slot, series_value in enumerate(series, start=1):
            line_points = []
            for x_index, x_value in enumerate(xs):
                value = points.get((facet, series_value, x_value))
                if value is None:
                    continue
                line_points.append(
                    (x_pos(left, x_index), scale(value, top, plot_h), value,
                     x_value)
                )
            if len(line_points) > 1:
                svg.polyline(
                    [(x, y) for x, y, _, _ in line_points],
                    f"series-line series-{slot}",
                )
            for x, y, value, x_value in line_points:
                svg.circle(
                    x,
                    y,
                    4,
                    f"series-dot series-{slot}",
                    tooltip=(
                        f"{plot.series}={series_value} {plot.x}={x_value}: "
                        f"{plot.agg} {plot.metric} = {value:.4f}"
                    ),
                )
    note = (
        f'<p class="note">{folded} series beyond the first '
        f"{N_SERIES_SLOTS} are not drawn</p>"
        if folded
        else ""
    )
    return _series_legend([str(s) for s in series]) + svg.render() + note


#: Cap on per-job strips in the fixed panels; beyond it the report notes
#: what was dropped rather than silently truncating.
MAX_JOB_STRIPS = 12


def warmup_panel(jobs) -> str:
    """Windowed tick CoV per job with the warmup -> steady change-point.

    One mini-panel per job (latest iteration's window snapshot): the
    recent per-window CoV curve, a marker at the detected steady-state
    window, and the warmup sample count — PR 2's change-point detection
    made visible.
    """
    views = [view for view in jobs if view.latest_windows.get("recent_covs")]
    if not views:
        return '<p class="empty">no windowed telemetry in the sidecars</p>'
    dropped = max(0, len(views) - MAX_JOB_STRIPS)
    views = views[:MAX_JOB_STRIPS]
    covs_all = [
        cov for view in views for cov in view.latest_windows["recent_covs"]
    ]
    scale, lo, hi = _y_scale(0.0, max(covs_all) * 1.1)
    row_h = 64
    width = 660
    left, plot_w = 230, width - 230 - 90
    svg = _Svg(width, row_h * len(views), "warmup to steady state")
    for index, view in enumerate(views):
        windows = view.latest_windows
        covs = windows["recent_covs"]
        top = index * row_h + 12
        plot_h = row_h - 24
        svg.text(6, top + plot_h / 2 + 3, view.cell_label, "strip-label")
        svg.line(left, top + plot_h, left + plot_w, top + plot_h, "grid")
        n_windows = windows.get("n_windows", len(covs))
        first_window = n_windows - len(covs)

        def wx(window_index: int) -> float:
            if len(covs) == 1:
                return left + plot_w / 2.0
            return left + (window_index / (len(covs) - 1)) * plot_w

        line_points = [
            (wx(i), scale(cov, top, plot_h)) for i, cov in enumerate(covs)
        ]
        if len(line_points) > 1:
            svg.polyline(line_points, "series-line series-1")
        for i, cov in enumerate(covs):
            svg.circle(
                line_points[i][0],
                line_points[i][1],
                3,
                "series-dot series-1",
                tooltip=f"window {first_window + i}: CoV {cov:.4f}",
            )
        steady_since = windows.get("steady_since_window")
        if windows.get("steady") and steady_since is not None:
            marker_index = steady_since - first_window
            if 0 <= marker_index < len(covs):
                mx = wx(marker_index)
                svg.line(mx, top - 2, mx, top + plot_h, "steady-marker")
            svg.text(
                left + plot_w + 6,
                top + plot_h / 2 + 3,
                f"steady @ w{steady_since} "
                f"({windows.get('warmup_samples', 0)} warmup ticks)",
                "tick-label",
            )
        else:
            svg.text(
                left + plot_w + 6,
                top + plot_h / 2 + 3,
                "still warming up",
                "tick-label",
            )
    note = (
        f'<p class="note">{dropped} more job(s) not shown</p>'
        if dropped
        else ""
    )
    return svg.render() + note


#: Fig. 11 buckets that mark an anomaly as autosave/persistence-driven.
_AUTOSAVE_BUCKETS = frozenset({"Autosave", "Chunk Load"})


def anomaly_strip(jobs) -> str:
    """Slow-tick flight-recorder dumps on per-job tick timelines.

    Each anomaly is a tick whose duration tripped the recorder; marks
    sit at the tick index, height scales with the overrun factor, and
    autosave-dominated ticks (the save-all spike) use the second series
    slot so the two causes separate at a glance.
    """
    views = [view for view in jobs if view.anomalies]
    if not views:
        return (
            '<p class="empty">no slow-tick anomalies recorded '
            "(untraced campaign, or nothing tripped the recorder)</p>"
        )
    dropped = max(0, len(views) - MAX_JOB_STRIPS)
    views = views[:MAX_JOB_STRIPS]
    max_tick = max(
        anomaly.get("tick", 0)
        for view in views
        for anomaly in view.anomalies
    )
    max_factor = max(
        anomaly.get("factor", 1.0)
        for view in views
        for anomaly in view.anomalies
    )
    row_h = 56
    width = 660
    left, plot_w = 230, width - 230 - 20
    svg = _Svg(width, row_h * len(views), "slow-tick anomalies")
    for index, view in enumerate(views):
        top = index * row_h + 10
        strip_h = row_h - 22
        svg.text(6, top + strip_h / 2 + 3, view.cell_label, "strip-label")
        svg.line(left, top + strip_h, left + plot_w, top + strip_h, "grid")
        for anomaly in view.anomalies:
            tick = anomaly.get("tick", 0)
            factor = anomaly.get("factor", 1.0)
            x = left + (tick / max_tick if max_tick else 0.5) * plot_w
            height = max(6.0, (factor / max_factor) * strip_h)
            buckets = anomaly.get("breakdown_us") or {}
            top_bucket = (
                max(buckets.items(), key=lambda kv: (kv[1], kv[0]))[0]
                if buckets
                else "?"
            )
            slot = 2 if top_bucket in _AUTOSAVE_BUCKETS else 1
            svg.rect(
                x - 1.5,
                top + strip_h - height,
                3,
                height,
                f"anomaly-mark series-bgfill-{slot}",
                tooltip=(
                    f"iteration {anomaly.get('iteration', 0)} tick {tick}: "
                    f"{anomaly.get('duration_us', 0) / 1000.0:.1f} ms "
                    f"({factor:.1f}x budget), top bucket {top_bucket}"
                ),
                rx=1.5,
            )
        svg.text(
            left + plot_w,
            top + strip_h + 11,
            f"tick {max_tick}",
            "tick-label",
            anchor="end",
        )
    legend = _series_legend(["slow tick", "autosave/chunk-IO dominated"])
    note = (
        f'<p class="note">{dropped} more job(s) with anomalies '
        "not shown</p>"
        if dropped
        else ""
    )
    return legend + svg.render() + note


def trajectory_panel(history: list[dict], baseline: dict | None) -> str:
    """The benchmark suite's wall-time trajectory vs the committed budget.

    Every ``check_perf_baseline.py`` run appends one history entry with
    per-figure budget ratios (machine-calibrated, so cross-machine
    history is comparable).  The panel draws the worst and the mean
    per-figure ratio per entry; 1.0 is the committed budget line —
    points above it were gate failures.
    """
    entries = [entry for entry in history if entry.get("figures")]
    if not entries:
        return (
            '<p class="empty">no perf history yet — every '
            "<code>check_perf_baseline.py</code> run appends to "
            "<code>benchmarks/out/perf_history.jsonl</code></p>"
        )

    def ratios(entry: dict) -> list[float]:
        out = []
        for figure in entry["figures"].values():
            ratio = figure.get("ratio")
            if ratio is not None:
                out.append(float(ratio))
        return out

    max_series, mean_series, labels = [], [], []
    for entry in entries:
        entry_ratios = ratios(entry)
        if not entry_ratios:
            continue
        max_series.append(max(entry_ratios))
        mean_series.append(sum(entry_ratios) / len(entry_ratios))
        labels.append(
            f"{entry.get('kind', 'gate')} {entry.get('status', '?')} "
            f"(machine x{entry.get('machine_factor', 1.0):.2f}, "
            f"{entry.get('captured_at', 'n/a')})"
        )
    if not max_series:
        return '<p class="empty">perf history has no figure ratios</p>'
    width, height = 660, 200
    left, top = 52, 16
    plot_w, plot_h = width - left - 16, height - top - 40
    hi = max(1.1, max(max_series) * 1.05)
    scale, lo, hi = _y_scale(0.0, hi)
    svg = _Svg(width, height, "perf trajectory")
    for frac in (0.0, 0.5, 1.0):
        gy = top + plot_h * (1.0 - frac)
        svg.line(left, gy, left + plot_w, gy, "grid")
        svg.text(
            left - 4, gy + 3, _label_num(lo + (hi - lo) * frac),
            "tick-label", anchor="end",
        )
    budget_y = scale(1.0, top, plot_h)
    svg.line(left, budget_y, left + plot_w, budget_y, "budget-line")
    svg.text(
        left + plot_w, budget_y - 4, "committed budget", "tick-label",
        anchor="end",
    )

    def tx(index: int) -> float:
        if len(max_series) == 1:
            return left + plot_w / 2.0
        return left + index * plot_w / (len(max_series) - 1)

    for slot, (name, series) in enumerate(
        (("worst figure", max_series), ("mean figure", mean_series)),
        start=1,
    ):
        points = [
            (tx(i), scale(value, top, plot_h))
            for i, value in enumerate(series)
        ]
        if len(points) > 1:
            svg.polyline(points, f"series-line series-{slot}")
        for i, value in enumerate(series):
            svg.circle(
                points[i][0],
                points[i][1],
                4,
                f"series-dot series-{slot}",
                tooltip=f"{name} x budget = {value:.3f} — {labels[i]}",
            )
    svg.text(
        left + plot_w / 2.0,
        height - 8,
        f"{len(max_series)} baseline-gate run(s), oldest to newest",
        "axis-label",
        anchor="middle",
    )
    meta = ""
    if baseline is not None:
        n_figures = len(baseline.get("figures", {}))
        meta = (
            f'<p class="note">committed baseline: {n_figures} figure(s), '
            f"tolerance {baseline.get('tolerance', 0.2):.0%}, "
            f"recorded {baseline.get('provenance', {}).get('captured_at', 'n/a')}"
            "</p>"
        )
    legend = _series_legend(["worst figure", "mean figure"])
    return legend + svg.render() + meta
