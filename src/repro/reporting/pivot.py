"""Pivot tables over report rows (benchalot-style ``output.pivots``).

A pivot groups the per-iteration report rows by row axes x column axes
and aggregates one metric per group.  The result is a plain
:class:`PivotTable` that renders through the shared
:mod:`repro.reporting.text` code path (ASCII + CSV) and to an HTML
``<table>`` — every surface shows the same numbers because they all
read the same cells.

Everything is deterministic: groups sort by their key tuples, floats
format with fixed decimals, and missing cells render as ``-``.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Sequence

from repro.reporting.spec import PivotSpec
from repro.reporting.text import format_table, write_csv_rows

__all__ = ["PivotTable", "aggregate", "build_pivot"]


def aggregate(agg: str, values: Sequence[float]) -> float:
    """Apply one named aggregate to a non-empty value list."""
    if agg == "count":
        return float(len(values))
    if agg == "sum":
        return float(sum(values))
    if agg == "min":
        return float(min(values))
    if agg == "max":
        return float(max(values))
    if agg == "mean":
        return float(sum(values) / len(values))
    if agg == "median":
        ordered = sorted(values)
        mid = len(ordered) // 2
        if len(ordered) % 2:
            return float(ordered[mid])
        return float((ordered[mid - 1] + ordered[mid]) / 2.0)
    if agg == "std":
        mean = sum(values) / len(values)
        return float(
            math.sqrt(sum((v - mean) ** 2 for v in values) / len(values))
        )
    raise ValueError(f"unknown aggregate {agg!r}")


def _coerce(value) -> float | None:
    """Metric value -> float (bools count as 0/1; None/NaN dropped)."""
    if value is None:
        return None
    if isinstance(value, bool):
        return 1.0 if value else 0.0
    try:
        number = float(value)
    except (TypeError, ValueError):
        return None
    if math.isnan(number):
        return None
    return number


def _axis_key(row: dict, axes: Sequence[str]) -> tuple:
    return tuple(row.get(axis) for axis in axes)


def _key_label(key: tuple) -> str:
    return " / ".join(_cell_text(part) for part in key) or "all"


def _cell_text(value) -> str:
    if isinstance(value, float):
        return f"{value:g}"
    return str(value)


class PivotTable:
    """A rendered-ready pivot: sorted row/column keys and cell values."""

    def __init__(self, spec: PivotSpec) -> None:
        self.spec = spec
        self.row_keys: list[tuple] = []
        self.col_keys: list[tuple] = []
        self.cells: dict[tuple, dict[tuple, float]] = {}
        #: Rows whose metric was absent from every grouped line.
        self.dropped_rows = 0

    @property
    def title(self) -> str:
        return self.spec.label()

    def _formatted(self, value: float | None) -> str:
        if value is None:
            return "-"
        return f"{value:.{self.spec.decimals}f}"

    # -- renderers ----------------------------------------------------------

    def headers(self) -> list[str]:
        row_axes = " / ".join(self.spec.rows) or "all"
        return [row_axes] + [_key_label(key) for key in self.col_keys]

    def rows(self) -> list[list[str]]:
        out = []
        for row_key in self.row_keys:
            line = [_key_label(row_key)]
            for col_key in self.col_keys:
                line.append(
                    self._formatted(self.cells[row_key].get(col_key))
                )
            out.append(line)
        return out

    def to_ascii(self) -> str:
        return format_table(self.headers(), self.rows())

    def write_csv(self, path) -> None:
        write_csv_rows(path, self.headers(), self.rows())

    def to_html(self) -> str:
        from repro.reporting.html import escape

        parts = ["<table>", "<thead><tr>"]
        parts.extend(
            f"<th>{escape(header)}</th>" for header in self.headers()
        )
        parts.append("</tr></thead>")
        parts.append("<tbody>")
        for line in self.rows():
            parts.append("<tr>")
            parts.append(f"<th>{escape(line[0])}</th>")
            parts.extend(
                f'<td class="num">{escape(cell)}</td>' for cell in line[1:]
            )
            parts.append("</tr>")
        parts.append("</tbody></table>")
        return "".join(parts)


def build_pivot(rows: Iterable[dict], spec: PivotSpec) -> PivotTable:
    """Group ``rows`` by ``spec.rows`` x ``spec.cols`` and aggregate."""
    groups: dict[tuple, dict[tuple, list[float]]] = {}
    table = PivotTable(spec)
    for row in rows:
        value = _coerce(row.get(spec.value))
        if value is None:
            table.dropped_rows += 1
            continue
        row_key = _axis_key(row, spec.rows)
        col_key = _axis_key(row, spec.cols)
        groups.setdefault(row_key, {}).setdefault(col_key, []).append(value)
    table.row_keys = sorted(groups, key=lambda key: tuple(map(str, key)))
    col_keys = {
        col_key for by_col in groups.values() for col_key in by_col
    }
    table.col_keys = sorted(col_keys, key=lambda key: tuple(map(str, key)))
    for row_key, by_col in groups.items():
        table.cells[row_key] = {
            col_key: aggregate(spec.agg, values)
            for col_key, values in by_col.items()
        }
    return table
