"""Plain-text and CSV renderers shared by every report surface.

This is the single code path for tables, sparklines, box plots, and CSV
files: the CLI (``repro status``/``export``), the benchmark harness, and
the HTML report engine all render through these helpers.  They moved
here verbatim from :mod:`repro.core.visualization` (which now re-exports
them for compatibility), so their ASCII output is bit-identical with the
pre-reporting releases.
"""

from __future__ import annotations

import csv
from collections.abc import Sequence
from pathlib import Path

from repro.metrics import box_stats

__all__ = [
    "ascii_boxplot",
    "ascii_timeseries",
    "format_table",
    "write_csv_rows",
    "write_csv_series",
]


def ascii_boxplot(
    labeled_series: list[tuple[str, Sequence[float]]],
    width: int = 60,
    lo: float | None = None,
    hi: float | None = None,
    unit: str = "ms",
) -> str:
    """Render horizontal box plots (p5 — p25 [median] p75 — p95).

    One line per series: ``label |----[==|==]----| (median unit)``.
    """
    if not labeled_series:
        return "(no data)"
    stats = [(label, box_stats(values)) for label, values in labeled_series]
    lo = lo if lo is not None else min(s.minimum for _, s in stats)
    hi = hi if hi is not None else max(s.p95 * 1.05 for _, s in stats)
    if hi <= lo:
        hi = lo + 1.0
    span = hi - lo
    label_width = max(len(label) for label, _ in stats)

    def col(value: float) -> int:
        clamped = min(max(value, lo), hi)
        return int((clamped - lo) / span * (width - 1))

    lines = []
    for label, s in stats:
        row = [" "] * width
        for x in range(col(s.p5), col(s.p95) + 1):
            row[x] = "-"
        for x in range(col(s.p25), col(s.p75) + 1):
            row[x] = "="
        row[col(s.median)] = "|"
        lines.append(
            f"{label:<{label_width}} {''.join(row)} "
            f"(med {s.median:.1f} {unit}, p95 {s.p95:.1f})"
        )
    lines.append(
        f"{'':<{label_width}} scale: {lo:.1f} .. {hi:.1f} {unit}"
    )
    return "\n".join(lines)


_SPARK_CHARS = " .:-=+*#%@"


def ascii_timeseries(
    values: Sequence[float],
    width: int = 80,
    height_label: str = "",
    hi: float | None = None,
) -> str:
    """Downsample a series into a one-line density sparkline."""
    if len(values) == 0:
        return "(no data)"
    hi = hi if hi is not None else max(values)
    if hi <= 0:
        hi = 1.0
    bucket = max(1, len(values) // width)
    cells = []
    for i in range(0, len(values), bucket):
        window = values[i : i + bucket]
        peak = max(window)
        level = min(len(_SPARK_CHARS) - 1, int(peak / hi * (len(_SPARK_CHARS) - 1)))
        cells.append(_SPARK_CHARS[level])
    suffix = f"  (peak {max(values):.1f}{height_label})"
    return "".join(cells) + suffix


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    """Plain-text table with padded columns."""
    str_rows = [[str(cell) for cell in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in str_rows)) if str_rows
        else len(headers[i])
        for i in range(len(headers))
    ]
    def fmt(row: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))

    lines = [fmt(list(headers)), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in str_rows)
    return "\n".join(lines)


def write_csv_series(
    path: str | Path, column_name: str, values: Sequence[float]
) -> Path:
    """Write one series as a two-column (index, value) CSV."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["index", column_name])
        for i, value in enumerate(values):
            writer.writerow([i, value])
    return path


def write_csv_rows(
    path: str | Path, headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> Path:
    """Write arbitrary rows with a header line."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(list(headers))
        for row in rows:
            writer.writerow(list(row))
    return path
