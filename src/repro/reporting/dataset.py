"""Load a campaign's on-disk artifacts into report-ready data.

The report engine consumes *only* what a campaign already wrote to disk
— it never re-simulates anything:

- ``manifest.json`` — spec, planned jobs, provenance (+ hygiene);
- ``telemetry/<job>.jsonl`` — one streamed line per finished iteration
  (these exist for in-flight and killed jobs too, which is what lets a
  half-completed campaign render with a "partial" banner);
- ``telemetry/<job>.anomalies.jsonl`` — slow-tick flight-recorder dumps;
- ``campaign_trace.json`` — executor phase timings;
- ``benchmarks/BENCH_fig11.json`` + ``benchmarks/out/perf_history.jsonl``
  — the committed perf baseline and the appended gate history, for the
  perf-trajectory panel (optional; the panel is skipped without them).

Each sidecar line becomes one flat *report row*: the cell's axis fields
(:data:`repro.reporting.spec.AXIS_FIELDS`) plus every derivable metric
(:data:`repro.reporting.spec.METRIC_FIELDS`).  Rows are ordered by
planned job index then iteration, so two renders of the same campaign
directory are byte-identical.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.reporting.spec import AXIS_FIELDS

__all__ = ["CampaignDataset", "JobView", "load_dataset", "sidecar_row"]


def sidecar_row(job_dict: dict, line: dict) -> dict:
    """Flatten one telemetry sidecar line into a report row."""
    telemetry = line.get("telemetry") or {}
    tick = telemetry.get("tick") or {}
    snap = tick.get("tick_ms") or {}
    windows = tick.get("windows") or {}
    response = telemetry.get("response_ms") or {}
    trace = telemetry.get("trace") or {}
    wire = telemetry.get("wire") or {}
    wire_in = wire.get("wire_bytes_in") or {}
    wire_out = wire.get("wire_bytes_out") or {}
    wire_flush = wire.get("wire_flush_us") or {}
    wire_connects = wire.get("wire_connects") or {}
    row = {axis: job_dict.get(axis) for axis in AXIS_FIELDS}
    row["iteration"] = line.get("iteration", 0)
    row["seed"] = line.get("seed")
    row["job_id"] = job_dict.get("job_id")
    buckets = tick.get("breakdown_us") or {}
    bucket_total = sum(buckets.values())
    top_bucket, top_share = None, None
    if bucket_total > 0:
        top_bucket, top_us = max(
            buckets.items(), key=lambda kv: (kv[1], kv[0])
        )
        top_share = top_us / bucket_total
    row.update(
        {
            "crashed": bool(line.get("crashed")),
            "isr": line.get("isr"),
            "ticks": tick.get("ticks"),
            "tick_mean_ms": snap.get("mean"),
            "tick_p50_ms": snap.get("p50"),
            "tick_p95_ms": snap.get("p95"),
            "tick_p99_ms": snap.get("p99"),
            "tick_max_ms": snap.get("max"),
            "tick_cov": snap.get("cov"),
            "overloaded_fraction": tick.get("overloaded_fraction"),
            "entities_peak": tick.get("entities_peak"),
            "response_p50_ms": response.get("p50"),
            "response_p99_ms": response.get("p99"),
            "steady": windows.get("steady"),
            "warmup_samples": windows.get("warmup_samples"),
            "slow_ticks": trace.get("slow_ticks"),
            "anomaly_count": trace.get("anomaly_count"),
            "top_bucket": top_bucket,
            "top_bucket_share": top_share,
            # Wire-served cells only; inproc sidecars have no "wire"
            # section, so these stay None there.
            "wire_bytes_in": wire_in.get("total"),
            "wire_bytes_out": wire_out.get("total"),
            "wire_flush_p99_us": wire_flush.get("p99"),
            "wire_connects": wire_connects.get("count"),
        }
    )
    return row


@dataclass
class JobView:
    """One planned job plus everything its sidecars streamed."""

    job: dict
    done: bool
    expected_iterations: int
    lines: list[dict] = field(default_factory=list)
    anomalies: list[dict] = field(default_factory=list)

    @property
    def job_id(self) -> str:
        return self.job["job_id"]

    @property
    def cell_label(self) -> str:
        parts = [self.job.get(axis) for axis in AXIS_FIELDS[:-1]]
        return " ".join(f"{part:g}" if isinstance(part, float) else str(part)
                        for part in parts)

    @property
    def iterations_done(self) -> int:
        return len(self.lines)

    @property
    def latest_windows(self) -> dict:
        """The most recent iteration's warmup/steady window snapshot."""
        if not self.lines:
            return {}
        telemetry = self.lines[-1].get("telemetry") or {}
        return (telemetry.get("tick") or {}).get("windows") or {}


@dataclass
class CampaignDataset:
    """Everything the renderers need, loaded once from disk."""

    root: Path
    name: str
    spec: dict
    provenance: dict
    jobs: list[JobView]
    rows: list[dict]
    campaign_trace: dict | None
    bench_baseline: dict | None
    bench_history: list[dict]

    @property
    def hygiene(self) -> dict | None:
        return self.provenance.get("hygiene")

    @property
    def total_jobs(self) -> int:
        return len(self.jobs)

    @property
    def completed_jobs(self) -> int:
        return sum(1 for view in self.jobs if view.done)

    @property
    def expected_iterations(self) -> int:
        return sum(view.expected_iterations for view in self.jobs)

    @property
    def seen_iterations(self) -> int:
        return sum(view.iterations_done for view in self.jobs)

    @property
    def partial(self) -> bool:
        """True when any planned work has not landed on disk yet."""
        return (
            self.completed_jobs < self.total_jobs
            or self.seen_iterations < self.expected_iterations
        )

    @property
    def anomalies(self) -> list[dict]:
        """All flight-recorder dumps, in planned job order."""
        return [
            anomaly for view in self.jobs for anomaly in view.anomalies
        ]


def _expected_iterations(spec, job_dict: dict) -> int:
    """Per-cell iteration count (``iterations`` is overridable)."""
    try:
        from repro.campaign.planner import Job

        return spec.cell_config(Job.from_dict(job_dict).cell).iterations
    except Exception:
        return getattr(spec, "iterations", 1)


def load_dataset(
    store, bench_dir: str | Path | None = None
) -> CampaignDataset:
    """Read one campaign's artifacts from a
    :class:`~repro.campaign.store.JobStore`.

    ``bench_dir`` points at the repository's ``benchmarks/`` directory
    for the perf-trajectory panel; pass ``None`` to skip it.
    """
    from repro.campaign.spec import CampaignSpec

    manifest = store.read_manifest()
    if manifest is None:
        raise FileNotFoundError(
            f"no campaign manifest at {store.manifest_path}"
        )
    spec_dict = manifest.get("spec") or {}
    try:
        spec = CampaignSpec.from_dict(spec_dict)
    except (TypeError, ValueError):
        spec = None
    completed = store.completed_ids()
    jobs: list[JobView] = []
    rows: list[dict] = []
    for job_dict in sorted(
        manifest.get("jobs", ()), key=lambda job: job["index"]
    ):
        view = JobView(
            job=job_dict,
            done=job_dict["job_id"] in completed,
            expected_iterations=(
                _expected_iterations(spec, job_dict)
                if spec is not None
                else int(spec_dict.get("iterations", 1))
            ),
            lines=store.read_job_telemetry(job_dict["job_id"]),
            anomalies=store.read_job_anomalies(job_dict["job_id"]),
        )
        jobs.append(view)
        rows.extend(sidecar_row(job_dict, line) for line in view.lines)
    bench_baseline = None
    bench_history: list[dict] = []
    if bench_dir is not None:
        bench_dir = Path(bench_dir)
        baseline_path = bench_dir / "BENCH_fig11.json"
        if baseline_path.is_file():
            try:
                bench_baseline = json.loads(baseline_path.read_text())
            except json.JSONDecodeError:
                bench_baseline = None
        history_path = bench_dir / "out" / "perf_history.jsonl"
        if history_path.is_file():
            for raw in history_path.read_text().splitlines():
                raw = raw.strip()
                if not raw:
                    continue
                try:
                    bench_history.append(json.loads(raw))
                except json.JSONDecodeError:
                    continue  # torn trailing line
    return CampaignDataset(
        root=Path(store.root),
        name=manifest.get("name", spec_dict.get("name", "campaign")),
        spec=spec_dict,
        provenance=manifest.get("provenance") or {},
        jobs=jobs,
        rows=rows,
        campaign_trace=store.read_campaign_trace(),
        bench_baseline=bench_baseline,
        bench_history=bench_history,
    )
