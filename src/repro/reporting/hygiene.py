"""Measurement-hygiene probes: the conditions a campaign ran under.

"Overhead Measurement Noise in Different Runtime Environments"
(PAPERS.md) shows runtime-environment knobs — frequency governor, SMT,
ASLR, turbo boost, CPU pinning, background load — shifting benchmark
results by more than the effects under study.  The defence mirrors run
provenance: probe the host *once, at campaign start*, compare what was
observed against what the spec's ``system:`` section requested, and
stamp the findings into the campaign manifest's provenance.  The HTML
report then leads with a pass/warn hygiene banner, so a figure can
never be separated from the conditions it was measured under.

Probes read ``/sys`` and ``/proc`` (and ``os`` APIs) and *never fail a
run*: an unreadable knob (container, non-Linux host) is reported as
``unknown``, not an error.  Every probe takes an optional filesystem
root so tests can fake a host.

Finding statuses:

``ok``
    the observed value satisfies the spec's request, or — with no
    request — matches measurement best practice;
``warn``
    a request is unmet, or a known-noisy condition was observed;
``info``
    observed and recorded, nothing requested and no known hazard;
``unknown``
    the knob could not be read on this host.
"""

from __future__ import annotations

import os
from pathlib import Path

__all__ = ["HYGIENE_PROBES", "hygiene_snapshot"]

#: Probe name -> sysfs/procfs source (informational; shown in reports).
HYGIENE_PROBES = {
    "governor": "/sys/devices/system/cpu/cpu0/cpufreq/scaling_governor",
    "smt": "/sys/devices/system/cpu/smt/active",
    "aslr": "/proc/sys/kernel/randomize_va_space",
    "boost": "/sys/devices/system/cpu/cpufreq/boost",
    "no_turbo": "/sys/devices/system/cpu/intel_pstate/no_turbo",
    "load_1m": "os.getloadavg()",
    "affinity": "os.sched_getaffinity(0)",
}


def _read(root: Path, path: str) -> str | None:
    try:
        return (root / path.lstrip("/")).read_text().strip()
    except OSError:
        return None


def _finding(
    probe: str,
    observed,
    requested=None,
    *,
    status: str,
    detail: str,
) -> dict:
    return {
        "probe": probe,
        "observed": observed,
        "requested": requested,
        "status": status,
        "detail": detail,
    }


def _probe_governor(root: Path, requests: dict) -> dict:
    observed = _read(
        root, "/sys/devices/system/cpu/cpu0/cpufreq/scaling_governor"
    )
    requested = requests.get("governor")
    if observed is None:
        return _finding(
            "governor",
            None,
            requested,
            status="unknown",
            detail="cpufreq scaling_governor not readable on this host",
        )
    if requested is not None:
        if observed == requested:
            return _finding(
                "governor",
                observed,
                requested,
                status="ok",
                detail=f"governor is {observed!r} as requested",
            )
        return _finding(
            "governor",
            observed,
            requested,
            status="warn",
            detail=f"governor is {observed!r}, spec requested {requested!r}",
        )
    if observed == "performance":
        return _finding(
            "governor",
            observed,
            None,
            status="ok",
            detail="fixed-frequency 'performance' governor",
        )
    return _finding(
        "governor",
        observed,
        None,
        status="warn",
        detail=(
            f"governor {observed!r} rescales CPU frequency under load; "
            "benchmark practice is 'performance'"
        ),
    )


def _probe_smt(root: Path, requests: dict) -> dict:
    observed = _read(root, "/sys/devices/system/cpu/smt/active")
    requested = requests.get("disable_smt")
    if observed is None:
        return _finding(
            "smt",
            None,
            requested,
            status="unknown",
            detail="SMT state not readable on this host",
        )
    active = observed != "0"
    if requested and active:
        return _finding(
            "smt",
            active,
            requested,
            status="warn",
            detail="SMT is active but the spec requested it off",
        )
    status = "ok" if requested else "info"
    return _finding(
        "smt",
        active,
        requested,
        status=status,
        detail="SMT active" if active else "SMT off",
    )


def _probe_aslr(root: Path, requests: dict) -> dict:
    observed = _read(root, "/proc/sys/kernel/randomize_va_space")
    requested = requests.get("disable_aslr")
    if observed is None:
        return _finding(
            "aslr",
            None,
            requested,
            status="unknown",
            detail="randomize_va_space not readable on this host",
        )
    enabled = observed != "0"
    if requested and enabled:
        return _finding(
            "aslr",
            enabled,
            requested,
            status="warn",
            detail=(
                f"ASLR is on (randomize_va_space={observed}) but the "
                "spec requested it off"
            ),
        )
    status = "ok" if requested else "info"
    return _finding(
        "aslr",
        enabled,
        requested,
        status=status,
        detail=f"randomize_va_space={observed}",
    )


def _probe_boost(root: Path, requests: dict) -> dict:
    requested = requests.get("disable_boost")
    boost = _read(root, "/sys/devices/system/cpu/cpufreq/boost")
    no_turbo = _read(root, "/sys/devices/system/cpu/intel_pstate/no_turbo")
    if boost is not None:
        enabled = boost != "0"
    elif no_turbo is not None:
        enabled = no_turbo == "0"
    else:
        return _finding(
            "boost",
            None,
            requested,
            status="unknown",
            detail="no cpufreq boost / intel_pstate no_turbo knob found",
        )
    if requested and enabled:
        return _finding(
            "boost",
            enabled,
            requested,
            status="warn",
            detail=(
                "frequency boost is enabled but the spec requested it off"
            ),
        )
    status = "ok" if requested else "info"
    return _finding(
        "boost",
        enabled,
        requested,
        status=status,
        detail="frequency boost enabled" if enabled else "boost off",
    )


def _probe_load(requests: dict) -> dict:
    requested = requests.get("max_load_1m")
    try:
        load_1m = round(os.getloadavg()[0], 2)
    except (OSError, AttributeError):
        return _finding(
            "load_1m",
            None,
            requested,
            status="unknown",
            detail="load average unavailable on this host",
        )
    if requested is not None:
        if load_1m > requested:
            return _finding(
                "load_1m",
                load_1m,
                requested,
                status="warn",
                detail=(
                    f"1-minute load {load_1m} exceeds the spec's ceiling "
                    f"of {requested}"
                ),
            )
        return _finding(
            "load_1m",
            load_1m,
            requested,
            status="ok",
            detail=f"1-minute load {load_1m} within ceiling {requested}",
        )
    return _finding(
        "load_1m",
        load_1m,
        None,
        status="info",
        detail=f"1-minute load average {load_1m} at campaign start",
    )


def _probe_affinity(requests: dict) -> dict:
    requested = requests.get("isolate_cpus")
    requested_list = sorted(requested) if requested is not None else None
    try:
        affinity = sorted(os.sched_getaffinity(0))
    except (OSError, AttributeError):
        return _finding(
            "affinity",
            None,
            requested_list,
            status="unknown",
            detail="CPU affinity unavailable on this host",
        )
    if requested_list is not None:
        if affinity == requested_list:
            return _finding(
                "affinity",
                affinity,
                requested_list,
                status="ok",
                detail=f"pinned to CPUs {requested_list} as requested",
            )
        return _finding(
            "affinity",
            affinity,
            requested_list,
            status="warn",
            detail=(
                f"running on CPUs {affinity}, spec requested isolation "
                f"to {requested_list}"
            ),
        )
    return _finding(
        "affinity",
        affinity,
        None,
        status="info",
        detail=f"schedulable on {len(affinity)} CPU(s)",
    )


def hygiene_snapshot(
    requests: dict | None = None, root: str | Path = "/"
) -> dict:
    """Probe the host against a ``system:`` request mapping.

    Returns a JSON-able report: the requests, every probe finding, and
    an overall ``status`` (``pass`` when nothing warned, else ``warn``)
    with a warn count — what the executor stamps into the campaign
    manifest's provenance and the HTML report renders as its banner.
    """
    requests = dict(requests or {})
    root = Path(root)
    findings = [
        _probe_governor(root, requests),
        _probe_smt(root, requests),
        _probe_aslr(root, requests),
        _probe_boost(root, requests),
        _probe_load(requests),
        _probe_affinity(requests),
    ]
    warnings = [f for f in findings if f["status"] == "warn"]
    return {
        "requests": requests,
        "probes": findings,
        "warn_count": len(warnings),
        "status": "warn" if warnings else "pass",
    }
