"""Real wire serving: the asyncio TCP front end and client fleet.

Everything socket- and wall-clock-shaped lives in this package, *outside*
the deterministic simulation core: the simulation still runs on its
:class:`~repro.simtime.SimClock`, while this layer paces ticks against
real time, materializes the counted protocol traffic as real bytes
(:mod:`repro.mlg.wirecodec`), and measures the kernel/network effects the
Meterstick technical report calls out as part of benchmark variability.

- :mod:`repro.net.server` — ``WireServer``: accept loop, per-client
  reader/writer plumbing feeding ``NetworkQueues``, per-tick flushes.
- :mod:`repro.net.serve` — ``repro serve``: run one campaign cell behind
  a TCP front end, writing standard manifest/sidecar/shard artifacts.
- :mod:`repro.net.client` — ``repro clients``: ramp N emulated players
  over real sockets, streaming response telemetry back to the server.
"""

from repro.net.client import run_clients
from repro.net.serve import serve_cell
from repro.net.server import WireServer

__all__ = ["WireServer", "run_clients", "serve_cell"]
