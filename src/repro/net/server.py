"""The asyncio TCP front end: one ``MLGServer`` behind real sockets.

The simulation stays SimClock-driven and bit-deterministic; this layer
paces its ticks against wall time (one tick per ``TICK_BUDGET_US`` of
real time unless ``realtime=False``), accepts client connections, feeds
their actions into :class:`~repro.mlg.netqueue.NetworkQueues` through the
normal ``submit_action`` path, and materializes the tick's outbound
traffic as real frames:

- materialized deliveries (chat echoes) become ``DELIVERY`` frames;
- the tick's *counted* packets (``PacketStats`` delta) become ``STATE``
  frames padded to the Table 8 model sizes — or one batched
  ``ENTITY_BATCH`` frame per client for entity moves when
  ``wire_batch_flush`` is on;
- every flush ends with a ``TICK`` clock-sync frame.

Keepalive/timeout semantics are the simulation's own: the sim counts
keepalives and ages clients out after ``CLIENT_TIMEOUT_US``; this layer
just closes the socket of any endpoint the sim disconnected, and clients
independently age out the server on their own wall clock.

Wire measurements published to the server's telemetry bus (registered in
``SIDECAR_METRICS``; MSL005): ``wire_bytes_in``/``wire_bytes_out`` per
tick, ``wire_flush_us`` (wall time spent encoding + writing a flush),
and ``wire_connects`` (one sample per accepted connection — the
connect-storm counter).
"""

from __future__ import annotations

import asyncio
import time

from repro.mlg import wirecodec as wc
from repro.mlg.constants import TICK_BUDGET_US
from repro.mlg.protocol import PacketCategory
from repro.simtime import s_to_us

__all__ = [
    "WIRE_BYTES_IN",
    "WIRE_BYTES_OUT",
    "WIRE_CONNECTS",
    "WIRE_FLUSH_US",
    "WireServer",
    "wire_metrics_snapshot",
]

#: Bus metric names (the string constants MSL005 resolves).
WIRE_BYTES_IN = "wire_bytes_in"
WIRE_BYTES_OUT = "wire_bytes_out"
WIRE_FLUSH_US = "wire_flush_us"
WIRE_CONNECTS = "wire_connects"

_WIRE_METRICS = (WIRE_BYTES_IN, WIRE_BYTES_OUT, WIRE_FLUSH_US, WIRE_CONNECTS)

_READ_CHUNK = 65536


def _synth_payload(category: str, index: int) -> tuple:
    """Deterministic schema-valid payload for a counted packet."""
    if category == PacketCategory.ENTITY_SPAWN:
        return (index, index % 7, 0.0, 64.0, 0.0)
    if category == PacketCategory.ENTITY_MOVE:
        return (index, 1, 0, -1)
    if category == PacketCategory.ENTITY_VELOCITY:
        return (index, 2, 0, -2)
    if category == PacketCategory.ENTITY_DESTROY:
        return (index,)
    if category == PacketCategory.BLOCK_CHANGE:
        return (index, 64, -index, 1)
    if category == PacketCategory.CHUNK_DATA:
        return (index, -index)
    if category == PacketCategory.CHUNK_SECTION:
        return (index, -index, index % 16)
    if category == PacketCategory.LIGHT_UPDATE:
        return (index, -index)
    if category == PacketCategory.SOUND_EFFECT:
        return (index % 256, index, 64, -index)
    if category == PacketCategory.BLOCK_ENTITY_DATA:
        return (index, 64, -index)
    if category == PacketCategory.CHAT:
        return (0, index)
    if category == PacketCategory.KEEPALIVE:
        return (index,)
    if category == PacketCategory.TIME_UPDATE:
        return (index * 20, index * 20 % 24_000)
    if category == PacketCategory.PLAYER_INFO:
        return (index, 1)
    raise ValueError(f"unknown packet category {category!r}")


def wire_metrics_snapshot(server) -> dict:
    """Sidecar-shaped snapshots of the wire metrics (totals included)."""
    out: dict = {}
    bus = server.telemetry.bus
    for name in _WIRE_METRICS:
        acc = bus.metric(name)
        snap = acc.snapshot(include_tail=False)
        snap["total"] = acc.total
        out[name] = snap
    return out


class WireServer:
    """Serve one ``MLGServer`` over TCP for the span of an iteration."""

    def __init__(
        self,
        server,
        host: str = "127.0.0.1",
        port: int | None = None,
        batch_flush: bool | None = None,
        realtime: bool = True,
        on_tick=None,
    ) -> None:
        self.server = server
        self.host = host
        self.port = server.wire_port if port is None else port
        self.batch_flush = (
            server.wire_batch_flush if batch_flush is None else batch_flush
        )
        self.realtime = realtime
        #: Called after every ``server.tick()`` (the slot the serve loop
        #: uses for ``SystemMetricsCollector.maybe_sample``).
        self.on_tick = on_tick
        #: Raw response samples streamed back by clients (client-side
        #: measurement, folded into ``telemetry.response_ms`` on arrival).
        self.response_samples: list[float] = []
        self._asyncio_server: asyncio.base_events.Server | None = None
        self._writers: dict[int, asyncio.StreamWriter] = {}
        self._reader_tasks: set[asyncio.Task] = set()
        self._prev_counts: dict[str, int] = {}
        self._bytes_in_tick = 0
        self._tick_index = 0

    # -- lifecycle ----------------------------------------------------------

    async def start(self) -> None:
        self._asyncio_server = await asyncio.start_server(
            self._handle_client, self.host, self.port
        )
        # Port 0 asks the OS for an ephemeral port; record what it chose.
        self.port = self._asyncio_server.sockets[0].getsockname()[1]

    async def close(self) -> None:
        if self._asyncio_server is not None:
            self._asyncio_server.close()
            await self._asyncio_server.wait_closed()
        for task in list(self._reader_tasks):
            task.cancel()
        for writer in list(self._writers.values()):
            writer.close()
        self._writers.clear()

    # -- per-connection plumbing --------------------------------------------

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._reader_tasks.add(task)
        client_id: int | None = None
        decoder = wc.FrameDecoder()
        try:
            pending: list = []
            hello: wc.WireHello | None = None
            while hello is None:
                chunk = await reader.read(_READ_CHUNK)
                if not chunk:
                    return
                self._bytes_in_tick += len(chunk)
                for msg in decoder.feed(chunk):
                    if hello is None and isinstance(msg, wc.WireHello):
                        hello = msg
                    else:
                        pending.append(msg)
            view_kwargs = (
                {}
                if hello.view_distance is None
                else {"view_distance": hello.view_distance}
            )
            conn = self.server.connect_client(
                hello.name,
                hello.spawn_x,
                hello.spawn_z,
                hello.latency_up_us,
                hello.latency_down_us,
                **view_kwargs,
            )
            client_id = conn.client_id
            self._writers[client_id] = writer
            writer.write(
                wc.encode_welcome(
                    client_id, conn.x, conn.y, conn.z,
                    self.server.clock.now_us,
                )
            )
            await writer.drain()
            self.server.telemetry.bus.publish(WIRE_CONNECTS, 1.0)
            for msg in pending:
                self._handle_message(client_id, msg)
            while True:
                chunk = await reader.read(_READ_CHUNK)
                if not chunk:
                    break
                self._bytes_in_tick += len(chunk)
                for msg in decoder.feed(chunk):
                    self._handle_message(client_id, msg)
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            if task is not None:
                self._reader_tasks.discard(task)
            if client_id is not None:
                self.server.net.disconnect(client_id, "socket closed")
                self._writers.pop(client_id, None)
            writer.close()

    def _handle_message(self, client_id: int, msg) -> None:
        if isinstance(msg, wc.WireAction):
            # A client may only speak for its own connection.
            if msg.action.client_id == client_id:
                self.server.submit_action(msg.action, msg.sent_at_us)
        elif isinstance(msg, wc.WireResponseSample):
            self.server.telemetry.observe_response(msg.response_ms)
            if self.server.retain_raw:
                self.response_samples.append(msg.response_ms)
        elif isinstance(msg, wc.WireBye):
            self.server.net.disconnect(client_id, msg.reason)

    # -- the tick flush ------------------------------------------------------

    def _build_flush(self) -> list[tuple[int, bytearray]]:
        """Encode this tick's outbound traffic, one buffer per client."""
        net = self.server.net
        delta: dict[str, int] = {}
        for category, count in net.stats.counts.items():
            moved = count - self._prev_counts.get(category, 0)
            if moved:
                delta[category] = moved
        self._prev_counts = dict(net.stats.counts)
        targets: list[tuple[int, bytearray]] = []
        endpoints = {}
        for client_id in sorted(self._writers):
            endpoint = net.client(client_id)
            if endpoint is None or endpoint.disconnected:
                continue
            endpoints[client_id] = endpoint
            targets.append((client_id, bytearray()))
        # 1. Materialized deliveries (chat echoes) — shared drain path.
        for client_id, buf in targets:
            for delivery in endpoints[client_id].drain_deliveries():
                buf += wc.encode_delivery(
                    delivery.category,
                    delivery.payload,
                    delivery.delivered_at_us,
                )
                delta[delivery.category] = (
                    delta.get(delivery.category, 0) - 1
                )
        # 2. Counted state packets: distribute the tick's PacketStats
        # delta across connected clients (it was recorded per client).
        n_clients = len(targets)
        if n_clients:
            for category in PacketCategory.ALL:
                remaining = delta.get(category, 0)
                if remaining <= 0:
                    continue
                per, extra = divmod(remaining, n_clients)
                for index, (client_id, buf) in enumerate(targets):
                    count = per + (1 if index < extra else 0)
                    if count <= 0:
                        continue
                    if (
                        category == PacketCategory.ENTITY_MOVE
                        and self.batch_flush
                    ):
                        buf += wc.encode_entity_batch(
                            tuple((i, 1, 0, -1) for i in range(count))
                        )
                    else:
                        for i in range(count):
                            buf += wc.encode_state(
                                category, _synth_payload(category, i)
                            )
        # 3. Clock sync.
        now_us = self.server.clock.now_us
        for client_id, buf in targets:
            buf += wc.encode_tick(now_us, self._tick_index)
        return targets

    async def _flush(self) -> None:
        flush_start = time.perf_counter()
        targets = self._build_flush()
        bytes_out = 0
        drains = []
        for client_id, buf in targets:
            writer = self._writers.get(client_id)
            if writer is None:
                continue
            writer.write(bytes(buf))
            bytes_out += len(buf)
            drains.append(writer.drain())
        if drains:
            await asyncio.gather(*drains, return_exceptions=True)
        flush_us = (time.perf_counter() - flush_start) * 1e6
        bus = self.server.telemetry.bus
        bus.publish(WIRE_BYTES_OUT, float(bytes_out))
        bus.publish(WIRE_BYTES_IN, float(self._bytes_in_tick))
        bus.publish(WIRE_FLUSH_US, flush_us)
        self._bytes_in_tick = 0
        # Close the socket of anyone the sim disconnected (timeouts,
        # byes): the client sees EOF instead of silence.
        for client_id in list(self._writers):
            endpoint = self.server.net.client(client_id)
            if endpoint is not None and endpoint.disconnected:
                self._writers.pop(client_id).close()

    # -- the serve loop ------------------------------------------------------

    async def run(self, duration_s: float) -> None:
        """Tick the simulation for ``duration_s`` simulated seconds,
        flushing the wire after every tick.  With ``realtime`` the loop
        paces one tick per 50 ms of wall time (a fast tick sleeps the
        remainder; an overloaded one runs back-to-back, just like a real
        server); otherwise it only yields to the reader tasks."""
        budget_s = TICK_BUDGET_US / 1e6
        deadline = self.server.clock.now_us + s_to_us(duration_s)
        while self.server.clock.now_us < deadline and self.server.running:
            wall_start = time.perf_counter()
            self.server.tick()
            if self.on_tick is not None:
                self.on_tick()
            await self._flush()
            self._tick_index += 1
            if self.server.crashed:
                break
            if self.realtime:
                elapsed = time.perf_counter() - wall_start
                await asyncio.sleep(max(0.0, budget_s - elapsed))
            else:
                await asyncio.sleep(0)
