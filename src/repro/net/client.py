"""The separate-process client driver: N emulated players over TCP.

``repro clients --host --port -n N`` ramps ``N`` bots against a running
``repro serve`` front end.  The bots are the *same*
:class:`~repro.emulation.bot.EmulatedPlayer` code that drives in-process
runs — they just hold a :class:`TcpSession` (a
:class:`~repro.mlg.transport.ServerSession` over a socket) instead of an
in-process one.  Each completed chat-probe response streams back to the
server as a ``RESPONSE_SAMPLE`` frame, so the serve side owns the full
measurement record and writes the standard iteration sidecars.

Clients keep the simulation's keepalive contract on their own wall
clock: a connection that goes ``CLIENT_TIMEOUT_US`` without any traffic
is abandoned, mirroring how real clients give up on a stalled server.
"""

from __future__ import annotations

import asyncio
import json
import time
from pathlib import Path

import numpy as np

from repro.emulation.behavior import make_behavior
from repro.emulation.bot import EmulatedPlayer
from repro.mlg import wirecodec as wc
from repro.mlg.constants import CLIENT_TIMEOUT_US
from repro.mlg.transport import Delivery, ServerSession, SessionInfo

__all__ = ["TcpSession", "run_clients"]

_READ_CHUNK = 65536

#: Players workload movement box (matches ``BotSwarm.add_player_workload``).
_DEFAULT_AREA = (0.0, 0.0, 32.0, 32.0)


class TcpSession(ServerSession):
    """A :class:`ServerSession` bound to one TCP connection.

    The fleet performs the HELLO/WELCOME handshake asynchronously before
    the bot exists; :meth:`connect` then just replays the negotiated
    welcome, and the synchronous bot-side calls (submit, poll, clock)
    map onto the connection's writer and the frames its reader buffered.
    The server clock is known from the last ``TICK``/``WELCOME`` frame;
    ground height is the client-side approximation (spawn terrain), the
    one piece of world knowledge a real client gets from chunk data.
    """

    def __init__(self, connection: "_Connection", welcome: wc.WireWelcome):
        self._conn = connection
        self._welcome = welcome
        self._deliveries: list[Delivery] = []
        self._now_us = welcome.now_us
        self._ground = max(int(welcome.y) - 1, 1)
        self._open = True

    # -- fleet-side feeding --------------------------------------------------

    def on_delivery(self, msg: wc.WireDelivery) -> None:
        self._deliveries.append(
            Delivery(
                self._welcome.client_id,
                msg.category,
                msg.payload,
                msg.delivered_at_us,
            )
        )

    def on_tick(self, now_us: int) -> None:
        self._now_us = now_us

    def mark_closed(self) -> None:
        self._open = False

    # -- ServerSession -------------------------------------------------------

    def connect(
        self,
        name: str,
        spawn_x: float,
        spawn_z: float,
        latency_up_us: int,
        latency_down_us: int,
        view_distance: int | None = None,
    ) -> SessionInfo:
        welcome = self._welcome
        return SessionInfo(welcome.client_id, welcome.x, welcome.y, welcome.z)

    def disconnect(self, reason: str = "client quit") -> None:
        if self._open:
            self._conn.send(wc.encode_bye(reason))
            self._open = False

    @property
    def connected(self) -> bool:
        return self._open

    def submit(self, action, sent_at_us: int) -> None:
        self._conn.send(wc.encode_action(action, sent_at_us))

    def poll_deliveries(self) -> list[Delivery]:
        drained = self._deliveries
        self._deliveries = []
        return drained

    def ground_height(self, x: int, z: int) -> int:
        return self._ground

    def now_us(self) -> int:
        return self._now_us

    def record_response_ms(self, response_ms: float) -> None:
        self._conn.send(wc.encode_response_sample(response_ms))

    @property
    def retain_raw(self) -> bool:
        return True


class _Connection:
    """One socket + decoder + bot, driven by the fleet's event loop."""

    def __init__(
        self,
        index: int,
        host: str,
        port: int,
        behavior_name: str,
        rng: np.random.Generator,
        probe_interval_s: float,
        latency_us: int,
        view_distance: int | None,
        trace: bool = False,
    ) -> None:
        self.index = index
        self.name = f"wire-bot-{index}"
        self.host = host
        self.port = port
        self.behavior_name = behavior_name
        self.rng = rng
        self.probe_interval_s = probe_interval_s
        self.latency_us = latency_us
        self.view_distance = view_distance
        self.connected = False
        self.ticks_seen = 0
        self.bot: EmulatedPlayer | None = None
        self._writer: asyncio.StreamWriter | None = None
        #: Per-tick-cycle client spans (``trace=True`` only): each TICK
        #: frame closes one record decomposing the client's wall time —
        #: wait for the first byte, decode+dispatch up to the tick, the
        #: bot step (encode + buffered send), and the post-step drain.
        #: Stamped with the server's tick index and simulated ``now_us``
        #: so the spans align with the server's trace timeline.
        self.spans: list[dict] | None = [] if trace else None

    def send(self, frame: bytes) -> None:
        if self._writer is not None:
            self._writer.write(frame)

    @property
    def response_times_ms(self) -> list[float]:
        return self.bot.response_times_ms if self.bot is not None else []

    async def run(self, stop_at_wall: float | None) -> None:
        spawn_x = float(self.rng.uniform(_DEFAULT_AREA[0], _DEFAULT_AREA[2]))
        spawn_z = float(self.rng.uniform(_DEFAULT_AREA[1], _DEFAULT_AREA[3]))
        try:
            reader, writer = await asyncio.open_connection(
                self.host, self.port
            )
        except OSError:
            return
        self._writer = writer
        decoder = wc.FrameDecoder()
        try:
            writer.write(
                wc.encode_hello(
                    self.name,
                    spawn_x,
                    spawn_z,
                    self.latency_us,
                    self.latency_us,
                    self.view_distance,
                )
            )
            await writer.drain()
            welcome: wc.WireWelcome | None = None
            backlog: list = []
            while welcome is None:
                chunk = await reader.read(_READ_CHUNK)
                if not chunk:
                    return
                for msg in decoder.feed(chunk):
                    if welcome is None and isinstance(msg, wc.WireWelcome):
                        welcome = msg
                    else:
                        backlog.append(msg)
            session = TcpSession(self, welcome)
            # The bot's constructor "connects" (replaying the welcome)
            # and fires its join-time probe straight onto the wire.
            self.bot = EmulatedPlayer(
                self.name,
                session,
                self.rng,
                behavior=make_behavior(self.behavior_name, _DEFAULT_AREA),
                spawn_x=spawn_x,
                spawn_z=spawn_z,
                latency_up_us=self.latency_us,
                latency_down_us=self.latency_us,
                probe_interval_s=self.probe_interval_s,
            )
            self.connected = True
            await writer.drain()
            timeout_s = CLIENT_TIMEOUT_US / 1e6
            last_rx = time.monotonic()
            for msg in backlog:
                self._dispatch(session, msg)
            prev_done = time.monotonic()
            while True:
                if stop_at_wall is not None and (
                    time.monotonic() >= stop_at_wall
                ):
                    session.disconnect("client done")
                    await writer.drain()
                    break
                try:
                    chunk = await asyncio.wait_for(
                        reader.read(_READ_CHUNK), timeout=1.0
                    )
                except asyncio.TimeoutError:
                    if time.monotonic() - last_rx >= timeout_s:
                        break  # server went silent: client-side timeout
                    continue
                if not chunk:
                    break  # server closed the iteration
                recv_at = time.monotonic()
                last_rx = recv_at
                wait_us = (recv_at - prev_done) * 1e6
                stepped = False
                for msg in decoder.feed(chunk):
                    stepped = (
                        self._dispatch(session, msg, recv_at, wait_us)
                        or stepped
                    )
                    wait_us = 0.0  # only the chunk's first tick pays it
                if stepped:
                    if self.spans:
                        drain_start = time.monotonic()
                        await writer.drain()
                        self.spans[-1]["drain_us"] = round(
                            (time.monotonic() - drain_start) * 1e6, 1
                        )
                    else:
                        await writer.drain()
                prev_done = time.monotonic()
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            if self.bot is not None:
                self.bot.session.mark_closed()
            writer.close()
            self._writer = None

    def _dispatch(
        self,
        session: TcpSession,
        msg,
        recv_at: float | None = None,
        wait_us: float = 0.0,
    ) -> bool:
        """Feed one server frame into the session; True when the bot
        stepped (a TICK frame arrived)."""
        if isinstance(msg, wc.WireDelivery):
            session.on_delivery(msg)
            return False
        if isinstance(msg, wc.WireTick):
            if self.spans is None:
                session.on_tick(msg.now_us)
                self.ticks_seen += 1
                if self.bot is not None:
                    self.bot.step(session.now_us())
                return True
            step_start = time.monotonic()
            dispatch_us = (
                (step_start - recv_at) * 1e6 if recv_at is not None else 0.0
            )
            session.on_tick(msg.now_us)
            self.ticks_seen += 1
            if self.bot is not None:
                self.bot.step(session.now_us())
            self.spans.append(
                {
                    "client": self.index,
                    "tick": msg.tick_index,
                    "now_us": msg.now_us,
                    "wait_us": round(wait_us, 1),
                    "dispatch_us": round(dispatch_us, 1),
                    "step_us": round(
                        (time.monotonic() - step_start) * 1e6, 1
                    ),
                    "drain_us": 0.0,
                }
            )
            return True
        # STATE / ENTITY_BATCH frames are world traffic the bot does not
        # act on; their bytes are the point (bandwidth realism).
        return False


def run_clients(
    host: str,
    port: int,
    n: int,
    behavior: str = "bounded-random",
    stagger_s: float = 0.25,
    probe_interval_s: float = 1.0,
    duration_s: float | None = None,
    latency_us: int = 0,
    view_distance: int | None = None,
    seed: int = 0,
    trace_out: str | Path | None = None,
) -> dict:
    """Ramp ``n`` bots against a wire server; returns a summary dict.

    Bots connect with ``stagger_s`` of wall time between joins (the way
    real players trickle in — and the connect-storm knob: 0 connects
    everyone at once).  They run until the server closes the iteration,
    they time out, or ``duration_s`` wall seconds elapse.  Modeled
    latencies default to 0 on the wire: the real socket provides the
    delay the in-process network model simulates.

    ``trace_out`` enables client-side span collection and writes one
    JSONL line per (client, tick) decomposing the client's wall RTT
    (wait → dispatch → step → drain), stamped with the server's tick
    index.  Write it into a campaign's ``telemetry/`` directory with a
    ``.clientspans.jsonl`` suffix and ``repro trace export`` merges the
    stream into the campaign's Perfetto timeline.
    """
    connections = [
        _Connection(
            index=i,
            host=host,
            port=port,
            behavior_name=behavior,
            rng=np.random.default_rng(seed + i),
            probe_interval_s=probe_interval_s,
            latency_us=latency_us,
            view_distance=view_distance,
            trace=trace_out is not None,
        )
        for i in range(n)
    ]

    async def _ramp() -> None:
        stop_at = (
            time.monotonic() + duration_s if duration_s is not None else None
        )

        async def _one(conn: _Connection) -> None:
            await asyncio.sleep(conn.index * stagger_s)
            await conn.run(stop_at)

        await asyncio.gather(*(_one(conn) for conn in connections))

    asyncio.run(_ramp())

    samples: list[float] = []
    for conn in connections:
        samples.extend(conn.response_times_ms)
    summary = {
        "clients": n,
        "connected": sum(1 for conn in connections if conn.connected),
        "ticks_seen": max(
            (conn.ticks_seen for conn in connections), default=0
        ),
        "samples": len(samples),
    }
    if samples:
        arr = np.asarray(samples)
        summary["response_p50_ms"] = float(np.percentile(arr, 50))
        summary["response_p99_ms"] = float(np.percentile(arr, 99))
        summary["response_max_ms"] = float(arr.max())
    if trace_out is not None:
        path = Path(trace_out)
        path.parent.mkdir(parents=True, exist_ok=True)
        span_lines = 0
        with path.open("w") as stream:
            for conn in connections:
                for span in conn.spans or []:
                    stream.write(json.dumps(span, sort_keys=True) + "\n")
                    span_lines += 1
        summary["span_lines"] = span_lines
        summary["trace_out"] = str(path)
    return summary
