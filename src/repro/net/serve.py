"""``repro serve``: run one campaign cell behind the TCP front end.

The serve side owns the full measurement record: it plans the campaign
exactly like the executor (same job ids, same manifest, same provenance
fingerprints), picks one cell, and runs its server chain behind a
:class:`~repro.net.server.WireServer` instead of an in-process swarm.
Players arrive over real sockets (``repro clients``); everything the
in-process path writes — manifest, per-iteration telemetry sidecars,
the completed job shard — lands in the same layout, so ``repro report``
and ``repro status`` work on wire-served campaigns unchanged.  The
sidecars additionally carry the ``wire_*`` metrics (bytes in/out, flush
wall time, connects) that only exist when real sockets are involved.
"""

from __future__ import annotations

import asyncio
import shutil
from pathlib import Path

from repro.campaign.executor import anomaly_lines, telemetry_line
from repro.campaign.planner import JobPlanner
from repro.campaign.spec import CampaignSpec
from repro.campaign.store import JobStore
from repro.cloud.providers import get_environment
from repro.core.collectors import MetricExternalizer, SystemMetricsCollector
from repro.core.results import IterationResult
from repro.mlg.server import MLGServer
from repro.net.server import WireServer, wire_metrics_snapshot
from repro.simtime import SimClock, s_to_us
from repro.tracing.provenance import measurement_config, provenance_fingerprint
from repro.workloads import get_workload

__all__ = ["serve_cell"]


class _ExternalFleet:
    """The swarm-shaped null object handed to ``workload.install``.

    Workloads populate their player emulation through the swarm API; on
    the wire path every player comes over a socket instead, so install's
    bot requests are deliberately dropped — the workload still shapes the
    world and server, only the emulation moves out of process.
    """

    def add_bot(self, *args, **kwargs) -> None:
        pass

    def add_observer(self, *args, **kwargs) -> None:
        pass

    def add_player_workload(self, *args, **kwargs) -> None:
        pass

    def step(self) -> None:
        pass

    def response_times_ms(self) -> list[float]:
        return []

    @property
    def connected_count(self) -> int:
        return 0


def serve_cell(
    spec_path: str | Path,
    cell: int = 0,
    host: str = "127.0.0.1",
    port: int | None = None,
    realtime: bool = True,
    on_listen=None,
    on_obs=None,
) -> dict:
    """Serve one planned cell of ``spec_path`` over TCP; returns a summary.

    ``cell`` indexes the planned job list (``repro plan`` order).  The
    wire port comes from ``--port``, else the spec's ``wire_port`` knob
    (0 = OS-assigned); whichever port the first iteration binds is kept
    for the rest of the chain so clients can reconnect between
    iterations.  ``on_listen(port)`` fires once per iteration after the
    socket is bound — scripts and tests use it to start their client
    fleet at the right moment.  With the spec's ``obs`` knob on, one
    metrics endpoint serves the whole chain (``on_obs(url)`` fires once,
    before the first iteration binds).
    """
    spec = CampaignSpec.from_file(spec_path)
    planner = JobPlanner(spec)
    plan = planner.plan()
    if not 0 <= cell < len(plan):
        raise ValueError(
            f"cell {cell} out of range: spec plans {len(plan)} job(s)"
        )
    job = plan[cell]
    config = planner.job_config(job)
    store = JobStore(spec.output_dir)
    if store.shard_path(job.job_id).exists():
        raise FileExistsError(
            f"{store.shard_path(job.job_id)} already holds this cell's "
            "measurements; choose a fresh output_dir"
        )
    # Same manifest the executor writes: full planned job list, spec, and
    # the campaign's (timestamped) provenance + hygiene snapshot — other
    # cells of the same spec may be served later into the same store.
    from repro.reporting.hygiene import hygiene_snapshot

    provenance = provenance_fingerprint(
        measurement_config(spec.to_dict()), include_timestamp=True
    )
    provenance["hygiene"] = hygiene_snapshot(spec.system)
    store.write_manifest(spec, plan, provenance=provenance)

    iterations = asyncio.run(
        _serve_chain(
            job, config, store, host, port, realtime, on_listen, on_obs
        )
    )
    store.save_job(job, iterations)
    return {
        "job_id": job.job_id,
        "cell": job.cell.key(),
        "iterations": len(iterations),
        "crashed": any(it.crashed for it in iterations),
        "shard": str(store.shard_path(job.job_id)),
    }


def _live_obs_snapshot(job, state: dict):
    """One scrape of the currently-running iteration's accumulators.

    Builds the same sidecar-shaped telemetry mapping the executor's
    sidecars carry, from the *live* tap/wire/tracer state — so a mid-run
    scrape and the iteration's final sidecar line can never disagree on
    what a metric means.  Raises until the first iteration has
    constructed its server; the endpoint answers 503 (or the last good
    body) for those scrapes.
    """
    from repro.obs import telemetry_obs_snapshot

    server = state.get("server")
    if server is None:
        raise RuntimeError("no iteration has started yet")
    telemetry = {
        "tick": server.telemetry.snapshot(include_tails=False),
        "response_ms": server.telemetry.response_ms.snapshot(
            include_tail=False
        ),
        "wire": wire_metrics_snapshot(server),
    }
    if server.tracer.enabled:
        telemetry["trace"] = {
            "enabled": True,
            "slow_ticks": server.tracer.slow_ticks,
            "anomaly_count": len(server.tracer.anomalies),
        }
    meta = {
        "cell": job.cell.key(),
        "job_id": job.job_id,
        "iteration": state.get("iteration"),
    }
    return telemetry_obs_snapshot(telemetry, meta=meta)


async def _serve_chain(
    job,
    config,
    store: JobStore,
    host: str,
    port: int | None,
    realtime: bool,
    on_listen,
    on_obs=None,
) -> list[IterationResult]:
    """The wire twin of ``run_server_chain``: one persistent machine and
    clock across the chain, one sidecar line per finished iteration."""
    obs = None
    obs_state: dict = {"server": None, "iteration": None}
    if config.obs:
        from repro.obs import ObsHttpServer

        obs = ObsHttpServer(
            lambda: _live_obs_snapshot(job, obs_state),
            host=host,
            port=config.obs_port,
            scrape_grace_s=config.obs_scrape_grace,
        ).start()
        print(f"obs endpoint {obs.url}", flush=True)
        if on_obs is not None:
            on_obs(obs.url)
    try:
        return await _serve_chain_inner(
            job, config, store, host, port, realtime, on_listen, obs_state
        )
    finally:
        if obs is not None:
            obs.stop()


async def _serve_chain_inner(
    job,
    config,
    store: JobStore,
    host: str,
    port: int | None,
    realtime: bool,
    on_listen,
    obs_state: dict,
) -> list[IterationResult]:
    server_name = job.server
    env = get_environment(config.environment)
    machine = env.create_machine(seed=config.iteration_seed(server_name, -1))
    if config.warm_machines:
        machine.drain_credits()
    clock = SimClock()
    chain_provenance = provenance_fingerprint(
        measurement_config(config.to_dict()), extra={"server": server_name}
    )
    sidecar_path = store.telemetry_path(job.job_id)
    sidecar_path.parent.mkdir(parents=True, exist_ok=True)
    anomalies_path = store.anomaly_path(job.job_id)
    anomalies_path.unlink(missing_ok=True)
    bound_port = port
    iterations: list[IterationResult] = []
    with sidecar_path.open("w") as sidecar:
        for iteration in range(config.iterations):
            seed = config.iteration_seed(server_name, iteration)
            world_dir = None
            if config.world_dir is not None:
                iteration_dir = (
                    Path(config.world_dir)
                    / server_name
                    / f"iter{iteration:03d}"
                )
                if iteration_dir.exists():
                    shutil.rmtree(iteration_dir)
                world_dir = str(iteration_dir)
            throttled_before = machine.throttled_executions
            it, bound_port = await _serve_iteration(
                config,
                server_name,
                seed=seed,
                machine=machine,
                clock=clock,
                iteration=iteration,
                world_dir=world_dir,
                host=host,
                port=bound_port,
                realtime=realtime,
                on_listen=on_listen,
                obs_state=obs_state,
            )
            it.throttled_ticks = (
                machine.throttled_executions - throttled_before
            )
            it.provenance = dict(chain_provenance)
            iterations.append(it)
            sidecar.write(telemetry_line(job, it) + "\n")
            sidecar.flush()
            lines = anomaly_lines(job, it)
            if lines:
                with anomalies_path.open("a") as recorder:
                    recorder.write("\n".join(lines) + "\n")
            clock.advance(s_to_us(config.inter_iteration_gap_s))
    return iterations


async def _serve_iteration(
    config,
    server_name: str,
    seed: int,
    machine,
    clock: SimClock,
    iteration: int,
    world_dir: str | None,
    host: str,
    port: int | None,
    realtime: bool,
    on_listen,
    obs_state: dict | None = None,
) -> tuple[IterationResult, int]:
    """The wire twin of ``run_iteration``: identical server construction
    and result collection, with the swarm replaced by real sockets."""
    workload_kwargs = {}
    if config.world.lower() == "players":
        workload_kwargs["n_bots"] = config.number_of_bots
        workload_kwargs["behavior"] = config.behavior
    workload = get_workload(
        config.world, scale=config.scale, **workload_kwargs
    )
    world_seed = (
        config.seed if config.world_cache_dir is not None else None
    )
    world = workload.create_world(seed if world_seed is None else world_seed)
    server = MLGServer(
        server_name,
        machine,
        world=world,
        clock=clock,
        seed=seed,
        retain_raw=config.retain_raw,
        world_dir=world_dir,
        world_cache_dir=config.world_cache_dir,
        autosave_interval_s=config.autosave_interval_s,
        autosave_flush_every=config.autosave_flush_every,
        max_loaded_chunks=config.max_loaded_chunks,
        trace=config.trace,
        trace_sample_every=config.trace_sample_every,
        slow_tick_factor=config.slow_tick_factor,
        transport=config.transport,
        wire_port=config.wire_port,
        wire_batch_flush=config.wire_batch_flush,
        obs=config.obs,
        obs_port=config.obs_port,
        obs_scrape_grace=config.obs_scrape_grace,
    )
    workload.install(server, _ExternalFleet())
    if obs_state is not None:
        # Point the chain's metrics endpoint at this iteration's live
        # accumulators (the scrape path reads, never writes).
        obs_state["server"] = server
        obs_state["iteration"] = iteration
    initial_world_hash = None
    if server.lifecycle is not None:
        from repro.persistence.store import world_hash

        initial_world_hash = f"{world_hash(world):08x}"

    externalizer = MetricExternalizer(server)
    system = SystemMetricsCollector(server)

    server.start()
    wire = WireServer(
        server,
        host=host,
        port=port,
        realtime=realtime,
        on_tick=system.maybe_sample,
    )
    await wire.start()
    print(
        f"serving {server_name} iteration {iteration} "
        f"on {wire.host}:{wire.port}",
        flush=True,
    )
    if on_listen is not None:
        on_listen(wire.port)
    try:
        await wire.run(config.duration_s)
    finally:
        server.running = False
        await wire.close()

    stats = server.net.stats
    n_share, b_share = stats.entity_share()
    telemetry = {
        "tick": server.telemetry.snapshot(include_tails=True),
        "system": system.snapshot(),
        "response_ms": server.telemetry.response_ms.snapshot(
            include_tail=False
        ),
        "wire": wire_metrics_snapshot(server),
    }
    if server.lifecycle is not None:
        telemetry["world"] = {
            "initial_hash": initial_world_hash,
            **server.lifecycle.stats(),
        }
    if server.tracer.enabled:
        telemetry["trace"] = server.tracer.snapshot()
    result = IterationResult(
        server=server_name,
        workload=config.world,
        environment=config.environment,
        iteration=iteration,
        seed=seed,
        duration_s=config.duration_s,
        tick_durations_ms=(
            externalizer.tick_durations_ms() if config.retain_raw else []
        ),
        response_times_ms=list(wire.response_samples),
        tick_distribution=externalizer.tick_distribution().shares,
        packet_counts=dict(stats.counts),
        packet_bytes=dict(stats.bytes_),
        entity_message_share=n_share,
        entity_byte_share=b_share,
        system_summary=system.summary(),
        crashed=server.crashed,
        crash_reason=server.crash_reason,
        throttled_ticks=machine.throttled_executions,
        final_credits_s=machine.credits_s,
        scale=config.scale,
        n_bots=config.number_of_bots,
        behavior=config.behavior,
        telemetry=telemetry,
    )
    return result, wire.port
