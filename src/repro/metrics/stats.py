"""Descriptive statistics used throughout the benchmark reports.

These back the box plots of Figures 1, 7, 10, and 12: percentiles, IQR,
Tukey whiskers (±1.5×IQR bounded by the observed min/max), and the response
time QoS thresholds from the paper (§3.5.1, refs [38, 46]).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "NOTICEABLE_MS",
    "UNPLAYABLE_MS",
    "BoxStats",
    "box_stats",
    "iqr",
    "percentile",
    "summarize",
]

#: Latency above which players notice delay (ms).
NOTICEABLE_MS = 60.0
#: Latency above which the game is considered unplayable (ms).
UNPLAYABLE_MS = 118.0


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile ``q`` in ``[0, 100]``."""
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise ValueError("cannot take a percentile of an empty sequence")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {q!r}")
    return float(np.percentile(arr, q))


def iqr(values: Sequence[float]) -> float:
    """Interquartile range, p75 - p25."""
    return percentile(values, 75.0) - percentile(values, 25.0)


@dataclass(frozen=True)
class BoxStats:
    """Five-number box-plot summary plus mean/extremes/whiskers.

    ``whisker_low``/``whisker_high`` follow the paper's figures: ±1.5×IQR
    beyond the quartiles, bounded by the observed minimum and maximum.
    ``p5``/``p95`` are carried separately because Figure 7's whiskers use
    those percentiles instead.
    """

    count: int
    mean: float
    minimum: float
    p5: float
    p25: float
    median: float
    p75: float
    p95: float
    maximum: float
    whisker_low: float = field(default=float("nan"))
    whisker_high: float = field(default=float("nan"))

    @property
    def iqr(self) -> float:
        return self.p75 - self.p25

    def exceeds_fraction(self, threshold: float) -> float:
        """This summary cannot recover exceedance; see :func:`summarize`."""
        raise NotImplementedError(
            "exceedance needs the raw samples; use summarize()"
        )

    def as_dict(self) -> dict[str, float]:
        return {
            "count": float(self.count),
            "mean": self.mean,
            "min": self.minimum,
            "p5": self.p5,
            "p25": self.p25,
            "median": self.median,
            "p75": self.p75,
            "p95": self.p95,
            "max": self.maximum,
            "whisker_low": self.whisker_low,
            "whisker_high": self.whisker_high,
        }


def box_stats(values: Sequence[float]) -> BoxStats:
    """Compute a :class:`BoxStats` summary of ``values``."""
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise ValueError("cannot summarize an empty sequence")
    p25 = float(np.percentile(arr, 25.0))
    p75 = float(np.percentile(arr, 75.0))
    spread = 1.5 * (p75 - p25)
    low = float(arr.min())
    high = float(arr.max())
    return BoxStats(
        count=int(arr.size),
        mean=float(arr.mean()),
        minimum=low,
        p5=float(np.percentile(arr, 5.0)),
        p25=p25,
        median=float(np.percentile(arr, 50.0)),
        p75=p75,
        p95=float(np.percentile(arr, 95.0)),
        maximum=high,
        whisker_low=max(low, p25 - spread),
        whisker_high=min(high, p75 + spread),
    )


def summarize(values: Sequence[float]) -> dict[str, float]:
    """Box stats plus QoS exceedance fractions, as a plain dict.

    Adds ``frac_noticeable`` and ``frac_unplayable`` — the fraction of
    samples above the 60 ms / 118 ms response-time thresholds — and
    ``max_over_mean``, the headline ratio of MF1.
    """
    arr = np.asarray(values, dtype=float)
    stats = box_stats(arr).as_dict()
    stats["std"] = float(arr.std(ddof=0))
    stats["frac_noticeable"] = float((arr > NOTICEABLE_MS).mean())
    stats["frac_unplayable"] = float((arr > UNPLAYABLE_MS).mean())
    mean = stats["mean"]
    stats["max_over_mean"] = stats["max"] / mean if mean > 0 else float("inf")
    return stats
