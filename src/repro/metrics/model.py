"""Analytic ISR model and synthetic trace generators (paper §4.2, Fig. 6).

The paper analyzes ISR on a trace where one tick in every ``lam`` has
duration ``s * b`` while the rest take exactly ``b``.  For that family the
closed form is::

    ISR(s, lam) = (s - 1) / (s + lam - 1)

Fig. 6a plots this for s in {2, 10, 20}; Fig. 6b contrasts two traces with
identical *distributions* but different *order* (outliers clustered at the
start vs. spread evenly), showing ISR is order dependent where standard
deviation is not.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "isr_closed_form",
    "periodic_outlier_trace",
    "clustered_outlier_trace",
    "spread_outlier_trace",
]


def isr_closed_form(s: float, lam: float) -> float:
    """Closed-form ISR for the periodic-outlier trace model.

    ``s`` is the outlier scaling factor (outlier duration = ``s * b``) and
    ``lam`` the outlier period in ticks (one outlier every ``lam`` ticks).
    """
    if s < 1.0:
        raise ValueError(f"outlier scale s must be >= 1, got {s!r}")
    if lam < 1.0:
        raise ValueError(f"outlier period lam must be >= 1, got {lam!r}")
    return (s - 1.0) / (s + lam - 1.0)


def periodic_outlier_trace(
    n_ticks: int, lam: int, s: float, budget: float = 50.0
) -> np.ndarray:
    """Trace of ``n_ticks`` durations with one ``s*b`` outlier every ``lam``.

    The first outlier lands at index ``lam - 1`` so a trace of exactly
    ``lam`` ticks contains one outlier, matching the §4.2 model in which a
    window of ``lam`` ticks holds ``lam - 1`` nominal ticks and one outlier.
    """
    if n_ticks < 0:
        raise ValueError(f"n_ticks must be >= 0, got {n_ticks!r}")
    if lam < 1:
        raise ValueError(f"lam must be >= 1, got {lam!r}")
    trace = np.full(n_ticks, float(budget))
    trace[lam - 1 :: lam] = s * budget
    return trace


def clustered_outlier_trace(
    n_ticks: int,
    n_outliers: int,
    s: float,
    budget: float = 50.0,
    start: int = 0,
) -> np.ndarray:
    """Trace with ``n_outliers`` consecutive outliers beginning at ``start``.

    This is Fig. 6b's *Low ISR* trace: the outliers are adjacent, so only two
    cycle-to-cycle jumps occur (into the cluster and out of it).
    """
    if n_outliers < 0 or n_outliers > n_ticks:
        raise ValueError("n_outliers must be within [0, n_ticks]")
    if start < 0 or start + n_outliers > n_ticks:
        raise ValueError("outlier cluster must fit inside the trace")
    trace = np.full(n_ticks, float(budget))
    trace[start : start + n_outliers] = s * budget
    return trace


def spread_outlier_trace(
    n_ticks: int, n_outliers: int, s: float, budget: float = 50.0
) -> np.ndarray:
    """Trace with ``n_outliers`` evenly spread outliers (Fig. 6b *High ISR*).

    Outliers are isolated (never adjacent for ``n_outliers <= n_ticks // 2``),
    so each contributes two full jumps, maximizing ISR for this distribution.
    """
    if n_outliers < 0 or n_outliers > n_ticks:
        raise ValueError("n_outliers must be within [0, n_ticks]")
    trace = np.full(n_ticks, float(budget))
    if n_outliers:
        positions = np.linspace(0, n_ticks - 1, n_outliers + 2)[1:-1]
        trace[np.round(positions).astype(int)] = s * budget
    return trace
