"""Jitter metrics that ISR is compared against (paper §4.3, Table 6).

Two notions of jitter appear in the paper:

* **cycle-to-cycle jitter** — the absolute difference between consecutive
  tick durations, the building block of ISR (refs [35, 53]);
* **RFC 3550 jitter** — the smoothed inter-arrival jitter estimator used in
  networking (ref [68]), reported as a running average rather than a
  normalized whole-trace figure.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

__all__ = [
    "cycle_to_cycle_jitter",
    "max_cycle_jitter",
    "mean_cycle_jitter",
    "moving_average_jitter",
    "rfc3550_jitter",
]


def cycle_to_cycle_jitter(values: Sequence[float]) -> np.ndarray:
    """Return ``|v_i - v_{i-1}|`` for each consecutive pair.

    An input with fewer than two samples has no pairs and yields an empty
    array.
    """
    arr = np.asarray(values, dtype=float)
    if arr.ndim != 1:
        raise ValueError("values must be a one-dimensional sequence")
    if arr.size < 2:
        return np.empty(0, dtype=float)
    return np.abs(np.diff(arr))


def max_cycle_jitter(values: Sequence[float]) -> float:
    """Maximum cycle-to-cycle jitter, a common datasheet-style report."""
    jitter = cycle_to_cycle_jitter(values)
    return float(jitter.max()) if jitter.size else 0.0


def mean_cycle_jitter(values: Sequence[float]) -> float:
    """Arithmetic mean of cycle-to-cycle jitter."""
    jitter = cycle_to_cycle_jitter(values)
    return float(jitter.mean()) if jitter.size else 0.0


def moving_average_jitter(
    values: Sequence[float], window: int = 16
) -> np.ndarray:
    """Moving average of cycle-to-cycle jitter over ``window`` pairs.

    The window is truncated at the start of the trace so the output has one
    entry per jitter sample (same length as ``len(values) - 1``).
    """
    if window < 1:
        raise ValueError(f"window must be >= 1, got {window!r}")
    jitter = cycle_to_cycle_jitter(values)
    if jitter.size == 0:
        return jitter
    cumsum = np.cumsum(jitter)
    out = np.empty_like(jitter)
    for i in range(jitter.size):
        lo = max(0, i - window + 1)
        total = cumsum[i] - (cumsum[lo - 1] if lo > 0 else 0.0)
        out[i] = total / (i - lo + 1)
    return out


def rfc3550_jitter(values: Sequence[float], gain: float = 1.0 / 16.0) -> float:
    """Final value of the RFC 3550 smoothed jitter estimator.

    ``J_i = J_{i-1} + (|D_i| - J_{i-1}) * gain`` where ``D_i`` is the
    difference between consecutive transit (here: tick-duration) samples.
    RFC 3550 uses ``gain = 1/16``.
    """
    if not 0.0 < gain <= 1.0:
        raise ValueError(f"gain must be in (0, 1], got {gain!r}")
    jitter = cycle_to_cycle_jitter(values)
    estimate = 0.0
    for sample in jitter:
        estimate += (float(sample) - estimate) * gain
    return estimate
