"""Instability Ratio (ISR) — the paper's novel variability metric (§4).

ISR is a normalized sum of cycle-to-cycle jitter over a whole trace of game
ticks (Equation 1 in the paper)::

    ISR = sum_{i} |max(b, t_i) - max(b, t_{i-1})|  /  (N_e * 2b)

where ``t_i`` is the duration of the i-th tick, ``b`` is the tick budget (the
delay between ticks when the game runs at its intended frequency, 50 ms for a
20 Hz MLG), ``max(b, t_i)`` is the *period* of tick ``i`` (a fast tick still
occupies a full budget because the loop waits), and ``N_e`` is the number of
ticks the server was *expected* to complete in the trace duration.

An ISR of 0 means a perfectly stable trace; 1 is the asymptotic maximum,
reached when periods alternate between ``b`` and arbitrarily large values.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

import numpy as np

__all__ = [
    "instability_ratio",
    "tick_periods",
    "expected_ticks",
    "isr_components",
]


def tick_periods(durations: Sequence[float], budget: float) -> np.ndarray:
    """Return the per-tick *periods* ``max(b, t_i)`` as a float array.

    A tick that finishes early still occupies one full budget ``b`` because
    the game loop sleeps until the next scheduled tick start; a late tick
    occupies its own duration.
    """
    if budget <= 0:
        raise ValueError(f"tick budget must be positive, got {budget!r}")
    arr = np.asarray(durations, dtype=float)
    if arr.ndim != 1:
        raise ValueError("durations must be a one-dimensional sequence")
    if arr.size and (not np.isfinite(arr).all() or (arr < 0).any()):
        raise ValueError("tick durations must be finite and non-negative")
    return np.maximum(arr, budget)


def expected_ticks(durations: Sequence[float], budget: float) -> int:
    """Infer ``N_e`` from a trace: the ticks a healthy server would have run.

    The trace's wall duration is the sum of its periods; at the intended
    frequency the server completes one tick per budget, so
    ``N_e = round(sum(periods) / b)``.  When the server never overruns,
    ``N_e`` equals the actual tick count ``N_a``.
    """
    periods = tick_periods(durations, budget)
    if periods.size == 0:
        return 0
    return int(round(float(periods.sum()) / budget))


def instability_ratio(
    durations: Sequence[float],
    budget: float,
    n_expected: int | None = None,
) -> float:
    """Compute the Instability Ratio of a tick-duration trace (Equation 1).

    Parameters
    ----------
    durations:
        Tick durations ``t_i``, in the same unit as ``budget`` (any unit).
    budget:
        Tick budget ``b`` (50 ms for a 20 Hz game loop).
    n_expected:
        ``N_e``, the expected number of ticks.  When ``None`` it is inferred
        from the trace duration via :func:`expected_ticks`, which matches the
        paper's experiment setup where the trace spans the full experiment.

    Returns
    -------
    float
        ISR in ``[0, 1]`` (up to rounding of ``N_e``).  An empty or
        single-tick trace has no consecutive pairs and yields 0.0.
    """
    periods = tick_periods(durations, budget)
    if periods.size < 2:
        return 0.0
    if n_expected is None:
        n_expected = expected_ticks(durations, budget)
    if n_expected <= 0:
        raise ValueError(f"n_expected must be positive, got {n_expected!r}")
    jitter_sum = float(np.abs(np.diff(periods)).sum())
    return jitter_sum / (n_expected * 2.0 * budget)


def isr_components(
    durations: Sequence[float], budget: float
) -> dict[str, float]:
    """Return the pieces of Equation 1 for inspection and debugging.

    Keys: ``jitter_sum`` (numerator), ``n_actual``, ``n_expected``,
    ``budget``, ``isr``.  Useful in tests and in the per-iteration reports
    the harness writes.
    """
    periods = tick_periods(durations, budget)
    n_actual = int(periods.size)
    n_exp = expected_ticks(durations, budget)
    jitter_sum = (
        float(np.abs(np.diff(periods)).sum()) if n_actual >= 2 else 0.0
    )
    isr = jitter_sum / (n_exp * 2.0 * budget) if n_exp > 0 else 0.0
    return {
        "jitter_sum": jitter_sum,
        "n_actual": float(n_actual),
        "n_expected": float(n_exp),
        "budget": float(budget),
        "isr": isr,
    }


def _self_test() -> None:  # pragma: no cover - debugging helper
    trace = [50.0] * 100
    assert math.isclose(instability_ratio(trace, 50.0), 0.0)


if __name__ == "__main__":  # pragma: no cover
    _self_test()
