"""Allan variance — the frequency-stability metric ISR is compared to (§4.3).

Allan variance is order-dependent (unlike standard deviation) but assumes a
constant sampling frequency and continuous sampling domain, which tick
durations violate — the paper's Table 6 makes exactly this point.  We still
implement it faithfully so the comparison benchmark can demonstrate the
difference in behaviour on tick traces.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

__all__ = ["allan_variance", "allan_deviation", "allan_variance_profile"]


def allan_variance(values: Sequence[float], m: int = 1) -> float:
    """Non-overlapping Allan variance at averaging factor ``m``.

    ``AVAR(m) = 1/(2 (K-1)) * sum_k (ybar_{k+1} - ybar_k)^2`` where the
    ``ybar_k`` are means of ``K = floor(n/m)`` consecutive groups of ``m``
    samples.  Requires at least ``2m`` samples.
    """
    arr = np.asarray(values, dtype=float)
    if arr.ndim != 1:
        raise ValueError("values must be a one-dimensional sequence")
    if m < 1:
        raise ValueError(f"averaging factor m must be >= 1, got {m!r}")
    n_groups = arr.size // m
    if n_groups < 2:
        raise ValueError(
            f"need at least {2 * m} samples for m={m}, got {arr.size}"
        )
    groups = arr[: n_groups * m].reshape(n_groups, m).mean(axis=1)
    diffs = np.diff(groups)
    return float(0.5 * np.mean(diffs**2))


def allan_deviation(values: Sequence[float], m: int = 1) -> float:
    """Square root of :func:`allan_variance`."""
    return float(np.sqrt(allan_variance(values, m)))


def allan_variance_profile(
    values: Sequence[float], factors: Sequence[int] | None = None
) -> dict[int, float]:
    """Allan variance over a ladder of averaging factors.

    When ``factors`` is ``None``, powers of two up to a quarter of the trace
    length are used — the standard sigma-tau plot grid.
    """
    arr = np.asarray(values, dtype=float)
    if factors is None:
        factors = []
        m = 1
        while m <= max(1, arr.size // 4):
            factors.append(m)
            m *= 2
    return {m: allan_variance(arr, m) for m in factors}
