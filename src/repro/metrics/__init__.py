"""Variability metrics: ISR (Equation 1) and the metrics it is compared to.

Public API::

    from repro.metrics import instability_ratio, box_stats, isr_closed_form
"""

from repro.metrics.allan import (
    allan_deviation,
    allan_variance,
    allan_variance_profile,
)
from repro.metrics.isr import (
    expected_ticks,
    instability_ratio,
    isr_components,
    tick_periods,
)
from repro.metrics.jitter import (
    cycle_to_cycle_jitter,
    max_cycle_jitter,
    mean_cycle_jitter,
    moving_average_jitter,
    rfc3550_jitter,
)
from repro.metrics.model import (
    clustered_outlier_trace,
    isr_closed_form,
    periodic_outlier_trace,
    spread_outlier_trace,
)
from repro.metrics.stats import (
    NOTICEABLE_MS,
    UNPLAYABLE_MS,
    BoxStats,
    box_stats,
    iqr,
    percentile,
    summarize,
)

__all__ = [
    "NOTICEABLE_MS",
    "UNPLAYABLE_MS",
    "BoxStats",
    "allan_deviation",
    "allan_variance",
    "allan_variance_profile",
    "box_stats",
    "clustered_outlier_trace",
    "cycle_to_cycle_jitter",
    "expected_ticks",
    "instability_ratio",
    "iqr",
    "isr_closed_form",
    "isr_components",
    "max_cycle_jitter",
    "mean_cycle_jitter",
    "moving_average_jitter",
    "percentile",
    "periodic_outlier_trace",
    "rfc3550_jitter",
    "spread_outlier_trace",
    "summarize",
    "tick_periods",
]
