"""Chat subsystem — the response-time instrument (§3.5.1).

Meterstick measures response time by having a player send a chat message to
all players (including itself) and timing the echo.  In vanilla/Forge the
echo rides the game tick: the message waits in the input queue, is processed
during the next tick, and the reply flushes at tick end — so chat latency
exposes tick latency.  PaperMC handles chat on a dedicated asynchronous
thread, decoupling it from the tick (which is why the paper omits PaperMC
from Figure 7).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.mlg.netqueue import NetworkQueues
from repro.mlg.protocol import PacketCategory
from repro.mlg.workreport import Op, WorkReport

__all__ = ["ChatSystem", "PendingChat"]

#: Cost of the async chat path, in simulated microseconds (thread hop +
#: broadcast, off the tick thread).
ASYNC_CHAT_LATENCY_US = 900


@dataclass(frozen=True)
class PendingChat:
    """A chat message waiting for tick processing (sync mode)."""

    client_id: int
    probe_id: int
    arrival_us: int


class ChatSystem:
    """Broadcasts chat; sync (in-tick) or async (dedicated thread)."""

    def __init__(self, net: NetworkQueues, async_mode: bool) -> None:
        self.net = net
        self.async_mode = async_mode
        self._pending: list[PendingChat] = []
        self.messages_total = 0

    def submit(
        self,
        client_id: int,
        probe_id: int,
        arrival_us: int,
        report: WorkReport,
    ) -> None:
        """A chat action arrived at the server.

        Async mode answers immediately (plus a small thread-hop delay);
        sync mode parks the message for the next tick.
        """
        if self.async_mode:
            self._broadcast(
                client_id, probe_id, arrival_us + ASYNC_CHAT_LATENCY_US, report
            )
        else:
            self._pending.append(PendingChat(client_id, probe_id, arrival_us))

    def pending_count(self) -> int:
        return len(self._pending)

    def process_tick(self, report: WorkReport) -> int:
        """Sync mode: account in-tick chat work; returns processed count.

        The actual echo flushes with the tick's outbound queue — the game
        loop calls :meth:`flush_processed` with the flush timestamp.
        """
        if self.async_mode:
            return 0
        n = len(self._pending)
        if n:
            report.add(Op.CHAT, n)
        return n

    def flush_processed(self, flush_us: int, report: WorkReport) -> int:
        """Sync mode: broadcast all processed messages at tick flush."""
        if self.async_mode:
            return 0
        flushed = 0
        for message in self._pending:
            self._broadcast(
                message.client_id, message.probe_id, flush_us, report
            )
            flushed += 1
        self._pending.clear()
        return flushed

    def _broadcast(
        self, sender_id: int, probe_id: int, flush_us: int, report: WorkReport
    ) -> None:
        """Echo a chat message to every connected client (incl. sender)."""
        self.messages_total += 1
        report.add(Op.CHAT, 1)
        for endpoint in self.net.connected_clients():
            self.net.deliver(
                endpoint.client_id,
                PacketCategory.CHAT,
                (sender_id, probe_id),
                flush_us,
                report,
            )
