"""Client↔server protocol model: packet categories, sizes, and statistics.

The paper's Table 8 splits server→client traffic into entity-related and
other messages, by *count* ("computation") and by *bytes* ("communication").
We model the Minecraft protocol's packet taxonomy with realistic relative
sizes: entity updates are numerous but tiny; chunk data is rare but large.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "PacketCategory",
    "PACKET_SIZES",
    "PacketStats",
    "PlayerAction",
    "ActionKind",
]


class PacketCategory:
    """Server→client packet categories."""

    ENTITY_SPAWN = "entity_spawn"
    ENTITY_MOVE = "entity_move"
    ENTITY_VELOCITY = "entity_velocity"
    ENTITY_DESTROY = "entity_destroy"
    BLOCK_CHANGE = "block_change"
    CHUNK_DATA = "chunk_data"
    CHUNK_SECTION = "chunk_section"
    LIGHT_UPDATE = "light_update"
    SOUND_EFFECT = "sound_effect"
    BLOCK_ENTITY_DATA = "block_entity_data"
    CHAT = "chat"
    KEEPALIVE = "keepalive"
    TIME_UPDATE = "time_update"
    PLAYER_INFO = "player_info"

    ALL = (
        ENTITY_SPAWN,
        ENTITY_MOVE,
        ENTITY_VELOCITY,
        ENTITY_DESTROY,
        BLOCK_CHANGE,
        CHUNK_DATA,
        CHUNK_SECTION,
        LIGHT_UPDATE,
        SOUND_EFFECT,
        BLOCK_ENTITY_DATA,
        CHAT,
        KEEPALIVE,
        TIME_UPDATE,
        PLAYER_INFO,
    )

    ENTITY_RELATED = frozenset(
        {ENTITY_SPAWN, ENTITY_MOVE, ENTITY_VELOCITY, ENTITY_DESTROY}
    )


#: Wire sizes in bytes (header + payload, post-compression estimates).
PACKET_SIZES: dict[str, int] = {
    PacketCategory.ENTITY_SPAWN: 38,
    PacketCategory.ENTITY_MOVE: 13,
    PacketCategory.ENTITY_VELOCITY: 11,
    PacketCategory.ENTITY_DESTROY: 9,
    PacketCategory.BLOCK_CHANGE: 12,
    PacketCategory.CHUNK_DATA: 13_000,
    PacketCategory.CHUNK_SECTION: 1_400,
    PacketCategory.LIGHT_UPDATE: 180,
    PacketCategory.SOUND_EFFECT: 38,
    PacketCategory.BLOCK_ENTITY_DATA: 62,
    PacketCategory.CHAT: 72,
    PacketCategory.KEEPALIVE: 9,
    PacketCategory.TIME_UPDATE: 17,
    PacketCategory.PLAYER_INFO: 44,
}


@dataclass
class PacketStats:
    """Accumulator of packet counts and bytes by category."""

    counts: dict[str, int] = field(default_factory=dict)
    bytes_: dict[str, int] = field(default_factory=dict)

    def record(self, category: str, n: int = 1, size: int | None = None) -> int:
        """Record ``n`` packets; returns the bytes added."""
        if n < 0:
            raise ValueError(f"packet count must be >= 0, got {n!r}")
        if n == 0:
            return 0
        each = PACKET_SIZES[category] if size is None else size
        self.counts[category] = self.counts.get(category, 0) + n
        total = each * n
        self.bytes_[category] = self.bytes_.get(category, 0) + total
        return total

    @property
    def total_count(self) -> int:
        return sum(self.counts.values())

    @property
    def total_bytes(self) -> int:
        return sum(self.bytes_.values())

    def entity_share(self) -> tuple[float, float]:
        """Fraction of (message count, bytes) that is entity-related.

        These are the paper's Table 8 "Computation" and "Communication"
        columns, as fractions in [0, 1].
        """
        total_n = self.total_count
        total_b = self.total_bytes
        if total_n == 0:
            return (0.0, 0.0)
        entity_n = sum(
            n
            for cat, n in self.counts.items()
            if cat in PacketCategory.ENTITY_RELATED
        )
        entity_b = sum(
            b
            for cat, b in self.bytes_.items()
            if cat in PacketCategory.ENTITY_RELATED
        )
        return (entity_n / total_n, entity_b / max(1, total_b))

    def merge(self, other: "PacketStats") -> None:
        for cat, n in other.counts.items():
            self.counts[cat] = self.counts.get(cat, 0) + n
        for cat, b in other.bytes_.items():
            self.bytes_[cat] = self.bytes_.get(cat, 0) + b


class ActionKind:
    """Client→server action types (the player workload vocabulary)."""

    MOVE = "move"
    BUILD = "build"
    DIG = "dig"
    CHAT = "chat"


@dataclass(frozen=True)
class PlayerAction:
    """One client→server action, as buffered by the input queue.

    ``payload`` semantics by kind:

    * MOVE  — target position ``(x, y, z)`` floats;
    * BUILD — ``(x, y, z, block_id)``;
    * DIG   — ``(x, y, z)``;
    * CHAT  — ``(probe_id, text_len)`` for response-time probes.
    """

    kind: str
    client_id: int
    payload: tuple

    #: Approximate uplink wire size by action kind.
    _SIZES = {
        ActionKind.MOVE: 21,
        ActionKind.BUILD: 16,
        ActionKind.DIG: 14,
        ActionKind.CHAT: 68,
    }

    @property
    def size_bytes(self) -> int:
        return self._SIZES.get(self.kind, 16)
