"""Entity simulation (§2.2.3) — movement, collision, AI, merging, despawn.

The manager keeps all entities as objects but switches to a vectorized
"swarm" physics path when many physical entities exist (the TNT workload
spawns thousands at once).  Both paths count the same operations into the
:class:`WorkReport`; the swarm path computes collision-pair counts from
spatial-hash bin occupancy instead of enumerating pairs.

PaperMC's entity-handler optimization (paper Appendix A) appears here as
``merge_items`` (nearby item stacks merge into one entity) and is enabled
per variant profile.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable

import numpy as np

from repro.mlg.blocks import Block
from repro.mlg.constants import ITEM_DESPAWN_S, TICK_RATE_HZ
from repro.mlg.entity import DRAG, GRAVITY_PER_TICK, Entity, EntityKind
from repro.mlg.pathfinding import PathFinder
from repro.mlg.workreport import Op, WorkReport
from repro.mlg.world import World

__all__ = ["EntityManager"]

#: Entity count beyond which physics is vectorized.
SWARM_THRESHOLD = 96
#: Spatial-hash cell edge, in blocks.
CELL_SIZE = 1.0
#: Neighbor-cell factor approximating cross-cell collision checks.
NEIGHBOR_FACTOR = 3.0
#: Mobs re-path every this many ticks (staggered by entity id).
REPATH_INTERVAL = 40

_ITEM_DESPAWN_TICKS = int(ITEM_DESPAWN_S * TICK_RATE_HZ)


class EntityManager:
    """Owns and updates all non-player-controlled entities."""

    def __init__(
        self,
        world: World,
        rng: np.random.Generator,
        merge_items: bool = False,
        fluid_flow: Callable[[int, int, int], tuple[float, float]] | None = None,
    ) -> None:
        self.world = world
        self.rng = rng
        self.merge_items = merge_items
        self.fluid_flow = fluid_flow
        self.pathfinder = PathFinder(world)
        self._entities: dict[int, Entity] = {}
        self._next_eid = 1
        #: Entities that died this tick (for destroy packets).
        self.removed_this_tick: list[Entity] = []
        #: Entities spawned this tick (for spawn packets).
        self.spawned_this_tick: list[Entity] = []
        #: Items collected by hoppers/kill zones this tick.
        self.collected_items = 0

    # -- membership -----------------------------------------------------------

    def spawn(
        self,
        kind: str,
        x: float,
        y: float,
        z: float,
        vx: float = 0.0,
        vy: float = 0.0,
        vz: float = 0.0,
        fuse_ticks: int = -1,
        stack_count: int = 1,
    ) -> Entity:
        """Create and register a new entity."""
        entity = Entity(
            self._next_eid, kind, x, y, z, vx, vy, vz, fuse_ticks, stack_count
        )
        self._next_eid += 1
        self._entities[entity.eid] = entity
        self.spawned_this_tick.append(entity)
        return entity

    def remove(self, entity: Entity) -> None:
        """Mark an entity dead; it is reaped at the end of the tick."""
        if entity.alive:
            entity.alive = False
            self.removed_this_tick.append(entity)

    def get(self, eid: int) -> Entity | None:
        return self._entities.get(eid)

    def all_entities(self) -> Iterable[Entity]:
        return self._entities.values()

    def count(self, kind: str | None = None) -> int:
        if kind is None:
            return len(self._entities)
        return sum(1 for e in self._entities.values() if e.kind == kind)

    def entities_of(self, kind: str) -> list[Entity]:
        return [e for e in self._entities.values() if e.kind == kind]

    def entities_near(
        self, x: float, y: float, z: float, radius: float
    ) -> list[Entity]:
        r_sq = radius * radius
        return [
            e
            for e in self._entities.values()
            if e.alive and e.distance_sq_to(x, y, z) <= r_sq
        ]

    # -- per-tick update --------------------------------------------------------

    def begin_tick(self) -> None:
        self.removed_this_tick = []
        self.spawned_this_tick = []
        self.collected_items = 0

    def tick(self, report: WorkReport) -> None:
        """Advance all physical entities by one game tick."""
        mobs: list[Entity] = []
        swarm: list[Entity] = []
        for entity in self._entities.values():
            if not entity.alive:
                continue
            entity.moved = False
            if entity.kind == EntityKind.MOB:
                mobs.append(entity)
            elif entity.kind in (EntityKind.ITEM, EntityKind.TNT):
                swarm.append(entity)
        for mob in mobs:
            self._tick_mob(mob, report)
        if len(swarm) > SWARM_THRESHOLD:
            self._tick_swarm_vectorized(swarm, report)
        else:
            for entity in swarm:
                self._tick_physical_scalar(entity, report)
        self._count_collisions(mobs, swarm, report)
        if self.merge_items:
            self._merge_item_stacks(report)
        self._reap()

    def _reap(self) -> None:
        dead = [eid for eid, e in self._entities.items() if not e.alive]
        for eid in dead:
            del self._entities[eid]

    # -- mob AI ------------------------------------------------------------------

    def _tick_mob(self, mob: Entity, report: WorkReport) -> None:
        report.add(Op.ENTITY_UPDATE)
        mob.age_ticks += 1
        needs_path = (
            mob.goal is not None
            and (mob.path is None or mob.path_index >= len(mob.path))
            and (mob.age_ticks + mob.eid) % REPATH_INTERVAL == 0
        )
        if needs_path:
            result = self.pathfinder.find_path(
                mob.block_pos, mob.goal, report
            )
            mob.path = result.path if result else None
            mob.path_index = 0
        if mob.path and mob.path_index < len(mob.path):
            tx, ty, tz = mob.path[mob.path_index]
            dx = (tx + 0.5) - mob.x
            dz = (tz + 0.5) - mob.z
            dist = max(1e-6, (dx * dx + dz * dz) ** 0.5)
            speed = 0.15
            mob.vx = dx / dist * speed
            mob.vz = dz / dist * speed
            if dist < 0.4:
                mob.path_index += 1
        elif mob.goal is None and (mob.age_ticks + mob.eid) % 60 == 0:
            # Idle wander impulse.
            angle = self.rng.random() * 2 * np.pi
            mob.vx = float(np.cos(angle)) * 0.08
            mob.vz = float(np.sin(angle)) * 0.08
        old_x, old_z = mob.x, mob.z
        self._integrate_scalar(mob)
        # Entities do not tick in unloaded chunks; keep mobs inside the
        # loaded world instead of letting them wander off the edge.
        if not self.world.has_chunk(int(mob.x) >> 4, int(mob.z) >> 4):
            mob.x, mob.z = old_x, old_z
            mob.vx = -mob.vx
            mob.vz = -mob.vz

    # -- scalar physics ------------------------------------------------------------

    def _tick_physical_scalar(self, entity: Entity, report: WorkReport) -> None:
        if entity.kind == EntityKind.ITEM:
            report.add(Op.ITEM_UPDATE)
            entity.age_ticks += 1
            if entity.age_ticks > _ITEM_DESPAWN_TICKS:
                self.remove(entity)
                return
            self._apply_water_push(entity)
        else:
            report.add(Op.TNT_UPDATE)
            entity.age_ticks += 1
        self._integrate_scalar(entity)

    def _apply_water_push(self, entity: Entity) -> None:
        if self.fluid_flow is None:
            return
        bx, by, bz = entity.block_pos
        block = self.world.get_block(bx, by, bz)
        if block in (Block.WATER_FLOW, Block.WATER_SOURCE):
            push_x, push_z = self.fluid_flow(bx, by, bz)
            entity.vx += push_x * 0.014
            entity.vz += push_z * 0.014
            entity.vy = max(entity.vy, -0.02)  # buoyancy

    def _integrate_scalar(self, entity: Entity) -> None:
        entity.vy -= GRAVITY_PER_TICK
        entity.vx *= DRAG
        entity.vy *= DRAG
        entity.vz *= DRAG
        old = (entity.x, entity.y, entity.z)
        entity.x += entity.vx
        entity.z += entity.vz
        new_y = entity.y + entity.vy
        ground = self._ground_below(entity.x, entity.y, entity.z)
        if new_y <= ground:
            new_y = ground
            entity.vy = 0.0
            entity.vx *= 0.6  # ground friction
            entity.vz *= 0.6
        entity.y = new_y
        entity.moved = (
            abs(entity.x - old[0]) > 1e-3
            or abs(entity.y - old[1]) > 1e-3
            or abs(entity.z - old[2]) > 1e-3
        )

    def _ground_below(self, x: float, y: float, z: float) -> float:
        """Top surface of the first solid block at or below the entity."""
        bx, bz = int(x // 1), int(z // 1)
        start = min(int(y // 1), 127)
        world = self.world
        for by in range(start, max(-1, start - 12), -1):
            if world.is_solid_at(bx, by, bz):
                return float(by + 1)
        return float(max(0, start - 12))

    # -- vectorized swarm physics -----------------------------------------------

    def _tick_swarm_vectorized(
        self, swarm: list[Entity], report: WorkReport
    ) -> None:
        n = len(swarm)
        pos = np.empty((n, 3), dtype=np.float64)
        vel = np.empty((n, 3), dtype=np.float64)
        for i, e in enumerate(swarm):
            pos[i, 0] = e.x
            pos[i, 1] = e.y
            pos[i, 2] = e.z
            vel[i, 0] = e.vx
            vel[i, 1] = e.vy
            vel[i, 2] = e.vz
        vel[:, 1] -= GRAVITY_PER_TICK
        vel *= DRAG
        new_pos = pos + vel
        heights = self.world.column_heights_bulk(
            np.floor(new_pos[:, 0]).astype(np.int64),
            np.floor(new_pos[:, 2]).astype(np.int64),
        ).astype(np.float64)
        grounded = new_pos[:, 1] <= heights
        new_pos[grounded, 1] = heights[grounded]
        vel[grounded, 1] = 0.0
        vel[grounded, 0] *= 0.6
        vel[grounded, 2] *= 0.6
        moved = np.abs(new_pos - pos).max(axis=1) > 1e-3
        items = 0
        tnts = 0
        for i, e in enumerate(swarm):
            e.x = float(new_pos[i, 0])
            e.y = float(new_pos[i, 1])
            e.z = float(new_pos[i, 2])
            e.vx = float(vel[i, 0])
            e.vy = float(vel[i, 1])
            e.vz = float(vel[i, 2])
            e.moved = bool(moved[i])
            e.age_ticks += 1
            if e.kind == EntityKind.ITEM:
                items += 1
                if e.age_ticks > _ITEM_DESPAWN_TICKS:
                    self.remove(e)
            else:
                tnts += 1
        report.add(Op.ITEM_UPDATE, items)
        report.add(Op.TNT_UPDATE, tnts)

    # -- collision accounting -------------------------------------------------------

    def _cell_keys(self, entities: list[Entity]) -> np.ndarray:
        keys = np.empty(len(entities), dtype=np.int64)
        inv = 1.0 / CELL_SIZE
        for i, e in enumerate(entities):
            cx = int(e.x * inv)
            cy = int(e.y * inv)
            cz = int(e.z * inv)
            keys[i] = ((cx & 0x1FFFFF) << 42) | ((cy & 0x1FFFFF) << 21) | (
                cz & 0x1FFFFF
            )
        return keys

    def _count_collisions(
        self, mobs: list[Entity], swarm: list[Entity], report: WorkReport
    ) -> float:
        """Count collision-pair checks via spatial-hash occupancy.

        Entities in the same (and, via ``NEIGHBOR_FACTOR``, adjacent) cells
        are checked pairwise in a real engine; the *number of checks* is the
        work, so that is what we count.  Crowded cells also get a
        separation impulse so dense swarms spread out physically.
        """
        physical = [e for e in (*mobs, *swarm) if e.alive]
        if len(physical) < 2:
            return 0.0
        keys = self._cell_keys(physical)
        _, inverse, counts = np.unique(
            keys, return_inverse=True, return_counts=True
        )
        pairs = float((counts * (counts - 1) / 2).sum() * NEIGHBOR_FACTOR)
        if pairs:
            report.add(Op.COLLISION_PAIR, pairs)
        crowded = counts[inverse] > 2
        if crowded.any():
            idx = np.flatnonzero(crowded)
            jitter = self.rng.uniform(-0.04, 0.04, size=(idx.size, 2))
            for j, i in enumerate(idx):
                entity = physical[int(i)]
                entity.vx += float(jitter[j, 0])
                entity.vz += float(jitter[j, 1])
        return pairs

    # -- PaperMC item merging -----------------------------------------------------

    def _merge_item_stacks(self, report: WorkReport) -> None:
        """Merge co-located item entities into stacks (PaperMC behaviour)."""
        items = [
            e
            for e in self._entities.values()
            if e.alive and e.kind == EntityKind.ITEM
        ]
        if len(items) < 2:
            return
        by_cell: dict[tuple[int, int, int], Entity] = {}
        for item in items:
            cell = (int(item.x), int(item.y), int(item.z))
            keeper = by_cell.get(cell)
            if keeper is None:
                by_cell[cell] = item
            else:
                keeper.stack_count += item.stack_count
                self.remove(item)
