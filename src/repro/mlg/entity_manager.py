"""Entity simulation (§2.2.3) — movement, collision, AI, merging, despawn.

Entity state lives in a struct-of-arrays :class:`EntityStore`; the
:class:`Entity` objects handed to callers are lightweight views over one
slot.  Every tick — whether one dropped item or a ten-thousand-entity TNT
chain — runs the SAME vectorized pipeline:

    age → despawn → water-push → integrate → ground-resolve →
    chunk-containment → collision-count

There is no scalar/vectorized split and no population threshold: the
per-tick work the benchmark measures is computed by one physics model at
every scale, so entity-count sweeps cannot inject implementation
discontinuities into the variability metrics.  Ground resolution scans
*below* each entity (the bulk equivalent of a downward ray), never the
heightmap top, so items inside enclosed farms stay inside.

Mob AI (pathfinding, wander impulses) is inherently sequential and runs
scalar per mob, but mob *physics* goes through the same kernel.

PaperMC's entity-handler optimization (paper Appendix A) appears here as
``merge_items`` (nearby item stacks merge into one entity) and is enabled
per variant profile.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable
from math import floor

import numpy as np

from repro.mlg.blocks import Block
from repro.mlg.constants import ITEM_DESPAWN_S, TICK_RATE_HZ
from repro.mlg.entity import DRAG, GRAVITY_PER_TICK, Entity
from repro.mlg.entity_store import (
    KIND_CODE,
    KIND_ITEM,
    KIND_MOB,
    KIND_TNT,
    EntityStore,
)
from repro.mlg.pathfinding import PathFinder
from repro.mlg.workreport import Op, WorkReport
from repro.mlg.world import World

__all__ = ["EntityManager"]

#: Spatial-hash cell edge, in blocks.
CELL_SIZE = 1.0
#: Neighbor-cell factor approximating cross-cell collision checks.
NEIGHBOR_FACTOR = 3.0
#: Mobs re-path every this many ticks (staggered by entity id).
REPATH_INTERVAL = 40
#: Horizontal ground friction applied to grounded entities.
GROUND_FRICTION = 0.6
#: Water-flow push strength per tick (blocks/tick per unit flow).
WATER_PUSH = 0.014
#: Buoyancy floor: items in water never sink faster than this.
WATER_BUOYANCY_VY = -0.02

_ITEM_DESPAWN_TICKS = int(ITEM_DESPAWN_S * TICK_RATE_HZ)


class EntityManager:
    """Owns and updates all non-player-controlled entities."""

    def __init__(
        self,
        world: World,
        rng: np.random.Generator,
        merge_items: bool = False,
        fluid_flow: Callable[[int, int, int], tuple[float, float]] | None = None,
    ) -> None:
        self.world = world
        self.rng = rng
        self.merge_items = merge_items
        self.fluid_flow = fluid_flow
        self.pathfinder = PathFinder(world)
        self.store = EntityStore()
        #: Slot → handle for the store's current layout.
        self._handles: list[Entity | None] = [None] * self.store.capacity
        self._entities: dict[int, Entity] = {}
        self._next_eid = 1
        #: Entities that died this tick (for destroy packets).
        self.removed_this_tick: list[Entity] = []
        #: Entities spawned this tick (for spawn packets).
        self.spawned_this_tick: list[Entity] = []
        #: Items collected by hoppers/kill zones this tick.
        self.collected_items = 0

    # -- membership -----------------------------------------------------------

    def spawn(
        self,
        kind: str,
        x: float,
        y: float,
        z: float,
        vx: float = 0.0,
        vy: float = 0.0,
        vz: float = 0.0,
        fuse_ticks: int = -1,
        stack_count: int = 1,
    ) -> Entity:
        """Create and register a new entity."""
        eid = self._next_eid
        self._next_eid += 1
        slot = self.store.allocate(
            eid, KIND_CODE[kind], x, y, z, vx, vy, vz, fuse_ticks, stack_count
        )
        if len(self._handles) < self.store.capacity:
            self._handles.extend(
                [None] * (self.store.capacity - len(self._handles))
            )
        entity = Entity(self.store, slot, eid)
        self._handles[slot] = entity
        self._entities[eid] = entity
        self.spawned_this_tick.append(entity)
        return entity

    def remove(self, entity: Entity) -> None:
        """Mark an entity dead; it is reaped at the end of the tick."""
        if entity.alive:
            entity.alive = False
            self.removed_this_tick.append(entity)

    def get(self, eid: int) -> Entity | None:
        return self._entities.get(eid)

    def all_entities(self) -> Iterable[Entity]:
        return self._entities.values()

    def count(self, kind: str | None = None) -> int:
        """Live entity count — an array reduction over the store."""
        return self.store.count(None if kind is None else KIND_CODE[kind])

    def occupied_chunks(self) -> set[tuple[int, int]]:
        """Chunks containing live entities (anchors for eviction)."""
        store = self.store
        slots = np.flatnonzero(store.alive)
        if slots.size == 0:
            return set()
        cxs = np.floor(store.x[slots]).astype(np.int64) >> 4
        czs = np.floor(store.z[slots]).astype(np.int64) >> 4
        return set(zip(cxs.tolist(), czs.tolist()))

    def moved_count(self) -> int:
        """Live entities that moved this tick — an array reduction."""
        return self.store.moved_count()

    def entities_of(self, kind: str) -> list[Entity]:
        code = KIND_CODE[kind]
        slots = np.flatnonzero(self.store.kind == code)
        return [self._handles[int(slot)] for slot in slots]

    def entities_near(
        self, x: float, y: float, z: float, radius: float
    ) -> list[Entity]:
        store = self.store
        slots = store.alive_slots()
        if slots.size == 0:
            return []
        dx = store.x[slots] - x
        dy = store.y[slots] - y
        dz = store.z[slots] - z
        hits = slots[dx * dx + dy * dy + dz * dz <= radius * radius]
        return [self._handles[int(slot)] for slot in hits]

    def absorb_items(
        self,
        x: float,
        z: float,
        radius: float,
        min_age_ticks: int = 0,
        limit: int | None = None,
    ) -> int:
        """Collect settled items within a horizontal radius (hopper lines).

        Removes up to ``limit`` item entities older than ``min_age_ticks``
        whose horizontal distance to ``(x, z)`` is within ``radius``, counts
        them into :attr:`collected_items`, and returns how many were taken.
        Horizontal catchment only: knockback can bounce drops around, and
        the hoppers below still catch them.
        """
        store = self.store
        slots = store.alive_slots(KIND_ITEM)
        if slots.size == 0:
            return 0
        dx = store.x[slots] - x
        dz = store.z[slots] - z
        hits = slots[
            (store.age[slots] > min_age_ticks)
            & (dx * dx + dz * dz <= radius * radius)
        ]
        if limit is not None and hits.size > limit:
            # Oldest first, so a binding limit cannot starve long-settled
            # items until they despawn uncollected (slot order after
            # free-list recycling favours the newest items).
            oldest = np.argsort(-store.age[hits], kind="stable")
            hits = hits[oldest[:limit]]
        for slot in hits:
            self.remove(self._handles[int(slot)])
        self.collected_items += int(hits.size)
        return int(hits.size)

    def expire_fuses(self) -> list[Entity]:
        """Decrement every live TNT fuse (array op); return expired handles."""
        store = self.store
        slots = store.alive_slots(KIND_TNT)
        if slots.size == 0:
            return []
        store.fuse[slots] -= 1
        expired = slots[store.fuse[slots] <= 0]
        return [self._handles[int(slot)] for slot in expired]

    # -- per-tick update --------------------------------------------------------

    def begin_tick(self) -> None:
        self.removed_this_tick = []
        self.spawned_this_tick = []
        self.collected_items = 0

    def tick(self, report: WorkReport) -> None:
        """Advance all physical entities by one game tick."""
        store = self.store
        store.moved[:] = False
        for slot in store.alive_slots(KIND_MOB):
            self._tick_mob_ai(int(slot), report)
        self._tick_kernel(report)
        self._count_collisions(report)
        if self.merge_items:
            self._merge_item_stacks(report)
        self._reap()

    def _reap(self) -> None:
        store = self.store
        dead = np.flatnonzero((store.eid != 0) & ~store.alive)
        for slot in dead:
            slot = int(slot)
            handle = self._handles[slot]
            handle._detach()
            del self._entities[handle.eid]
            self._handles[slot] = None
            store.release(slot)
        if store.should_compact():
            old_slots = store.compact()
            handles: list[Entity | None] = [None] * store.capacity
            for new_slot, old_slot in enumerate(old_slots):
                handle = self._handles[int(old_slot)]
                handle._slot = new_slot
                handles[new_slot] = handle
            self._handles = handles

    # -- mob AI ------------------------------------------------------------------

    def _tick_mob_ai(self, slot: int, report: WorkReport) -> None:
        """Steer one mob: pathfind toward its goal or wander.

        Only velocity decisions happen here — integration, grounding, and
        chunk containment run in the shared kernel with everything else.
        Reads the store arrays directly: this is the hot scalar loop, so
        it skips the handle's property dispatch.
        """
        store = self.store
        mob = self._handles[slot]
        report.add(Op.ENTITY_UPDATE)
        store.age[slot] += 1
        age_plus_eid = int(store.age[slot]) + mob.eid
        needs_path = (
            mob.goal is not None
            and (mob.path is None or mob.path_index >= len(mob.path))
            and age_plus_eid % REPATH_INTERVAL == 0
        )
        if needs_path:
            result = self.pathfinder.find_path(
                mob.block_pos, mob.goal, report
            )
            mob.path = result.path if result else None
            mob.path_index = 0
        if mob.path and mob.path_index < len(mob.path):
            tx, ty, tz = mob.path[mob.path_index]
            dx = (tx + 0.5) - float(store.x[slot])
            dz = (tz + 0.5) - float(store.z[slot])
            dist = max(1e-6, (dx * dx + dz * dz) ** 0.5)
            speed = 0.15
            store.vx[slot] = dx / dist * speed
            store.vz[slot] = dz / dist * speed
            if dist < 0.4:
                mob.path_index += 1
        elif mob.goal is None and age_plus_eid % 60 == 0:
            # Idle wander impulse.
            angle = self.rng.random() * 2 * np.pi
            store.vx[slot] = np.cos(angle) * 0.08
            store.vz[slot] = np.sin(angle) * 0.08

    # -- the unified physics kernel ----------------------------------------------

    def _tick_kernel(self, report: WorkReport) -> None:
        """One vectorized physics pass over every live physical entity."""
        store = self.store
        kind = store.kind
        phys = np.flatnonzero(
            store.alive
            & ((kind == KIND_ITEM) | (kind == KIND_MOB) | (kind == KIND_TNT))
        )
        if phys.size == 0:
            return

        is_item = kind[phys] == KIND_ITEM
        is_tnt = kind[phys] == KIND_TNT
        n_items = int(is_item.sum())
        n_tnt = int(is_tnt.sum())
        if n_items:
            report.add(Op.ITEM_UPDATE, n_items)
        if n_tnt:
            report.add(Op.TNT_UPDATE, n_tnt)

        # Age items and TNT (mobs age in the AI pass), then despawn expired
        # items BEFORE they move — despawn ordering is part of the physics
        # contract, so it happens in exactly one place.
        store.age[phys[is_item | is_tnt]] += 1
        item_slots = phys[is_item]
        expired = item_slots[store.age[item_slots] > _ITEM_DESPAWN_TICKS]
        if expired.size:
            for slot in expired:
                self.remove(self._handles[int(slot)])
            phys = phys[store.alive[phys]]
            if phys.size == 0:
                return

        # Water-stream transport applies at every population, not just
        # below some threshold: farms rely on it as their collection belt.
        if self.fluid_flow is not None:
            self._apply_water_push(phys[store.kind[phys] == KIND_ITEM])

        # Integrate: same float-op order as the historical scalar path, so
        # a lone item and one item among thousands trace identical paths.
        store.vy[phys] -= GRAVITY_PER_TICK
        store.vx[phys] *= DRAG
        store.vy[phys] *= DRAG
        store.vz[phys] *= DRAG
        old_x = store.x[phys].copy()
        old_y = store.y[phys].copy()
        old_z = store.z[phys].copy()
        store.x[phys] += store.vx[phys]
        store.z[phys] += store.vz[phys]
        new_x = store.x[phys]
        new_z = store.z[phys]
        new_y = old_y + store.vy[phys]
        # Ground = first solid surface BELOW the entity (downward scan),
        # never the column's heightmap top: under a roof the two disagree.
        # Scan depth: only blocks an entity can cross this tick can change
        # the grounded decision or the clamp target, so the batch's deepest
        # fall (+2 margin) bounds the scan exactly — a deeper solid block
        # would sit strictly below every entity's new_y, and the phantom
        # fallback floor only engages past a 12-block/tick fall.
        depth = min(
            12,
            int(np.clip(np.max(np.floor(old_y) - np.floor(new_y)), 0, 10))
            + 2,
        )
        ground = self.world.ground_below_bulk(
            new_x, old_y, new_z, max_scan=depth
        )
        grounded = new_y <= ground
        new_y = np.where(grounded, ground, new_y)
        store.y[phys] = new_y
        store.vy[phys] = np.where(grounded, 0.0, store.vy[phys])
        friction = np.where(grounded, GROUND_FRICTION, 1.0)
        store.vx[phys] *= friction
        store.vz[phys] *= friction
        store.moved[phys] = (
            (np.abs(new_x - old_x) > 1e-3)
            | (np.abs(new_y - old_y) > 1e-3)
            | (np.abs(new_z - old_z) > 1e-3)
        )

        # Entities do not tick in unloaded chunks; keep mobs inside the
        # loaded world instead of letting them wander off the edge.
        is_mob = store.kind[phys] == KIND_MOB
        if is_mob.any():
            mob_slots = phys[is_mob]
            loaded = self.world.chunks_loaded_bulk(
                np.floor(store.x[mob_slots]).astype(np.int64),
                np.floor(store.z[mob_slots]).astype(np.int64),
            )
            if not loaded.all():
                escaped = mob_slots[~loaded]
                store.x[escaped] = old_x[is_mob][~loaded]
                store.z[escaped] = old_z[is_mob][~loaded]
                store.vx[escaped] = -store.vx[escaped]
                store.vz[escaped] = -store.vz[escaped]

    def _apply_water_push(self, item_slots: np.ndarray) -> None:
        """Vectorized flow push for items standing in water."""
        if item_slots.size == 0:
            return
        store = self.store
        bx = np.floor(store.x[item_slots]).astype(np.int64)
        by = np.floor(store.y[item_slots]).astype(np.int64)
        bz = np.floor(store.z[item_slots]).astype(np.int64)
        blocks = self.world.blocks_bulk(bx, by, bz)
        wet = (blocks == Block.WATER_FLOW) | (blocks == Block.WATER_SOURCE)
        if not wet.any():
            return
        w = np.flatnonzero(wet)
        wet_slots = item_slots[w]
        # One flow lookup per distinct water cell; streams funnel many
        # items through few cells.
        push = np.empty((w.size, 2), dtype=np.float64)
        flow_cache: dict[tuple[int, int, int], tuple[float, float]] = {}
        for i, j in enumerate(w):
            cell = (int(bx[j]), int(by[j]), int(bz[j]))
            vec = flow_cache.get(cell)
            if vec is None:
                vec = self.fluid_flow(*cell)
                flow_cache[cell] = vec
            push[i, 0] = vec[0]
            push[i, 1] = vec[1]
        store.vx[wet_slots] += push[:, 0] * WATER_PUSH
        store.vz[wet_slots] += push[:, 1] * WATER_PUSH
        store.vy[wet_slots] = np.maximum(store.vy[wet_slots], WATER_BUOYANCY_VY)

    # -- collision accounting -------------------------------------------------------

    def _cell_keys(self, slots: np.ndarray) -> np.ndarray:
        """Packed spatial-hash keys for the given slots.

        Cell coordinates use ``floor``, not ``int()`` truncation: truncation
        collapses the two cells straddling each axis at negative coordinates
        (x ∈ (-1, 1) would alias into one cell), inflating pair counts and
        over-merging stacks near the origin.
        """
        store = self.store
        inv = 1.0 / CELL_SIZE
        cx = np.floor(store.x[slots] * inv).astype(np.int64)
        cy = np.floor(store.y[slots] * inv).astype(np.int64)
        cz = np.floor(store.z[slots] * inv).astype(np.int64)
        return (
            ((cx & 0x1FFFFF) << 42)
            | ((cy & 0x1FFFFF) << 21)
            | (cz & 0x1FFFFF)
        )

    def _count_collisions(self, report: WorkReport) -> float:
        """Count collision-pair checks via spatial-hash occupancy.

        Entities in the same (and, via ``NEIGHBOR_FACTOR``, adjacent) cells
        are checked pairwise in a real engine; the *number of checks* is the
        work, so that is what we count.  Crowded cells also get a
        separation impulse so dense swarms spread out physically.
        """
        store = self.store
        kind = store.kind
        phys = np.flatnonzero(
            store.alive
            & ((kind == KIND_ITEM) | (kind == KIND_MOB) | (kind == KIND_TNT))
        )
        if phys.size < 2:
            return 0.0
        keys = self._cell_keys(phys)
        _, inverse, counts = np.unique(
            keys, return_inverse=True, return_counts=True
        )
        pairs = float((counts * (counts - 1) / 2).sum() * NEIGHBOR_FACTOR)
        if pairs:
            report.add(Op.COLLISION_PAIR, pairs)
        crowded = counts[inverse] > 2
        if crowded.any():
            crowded_slots = phys[crowded]
            jitter = self.rng.uniform(
                -0.04, 0.04, size=(crowded_slots.size, 2)
            )
            store.vx[crowded_slots] += jitter[:, 0]
            store.vz[crowded_slots] += jitter[:, 1]
        return pairs

    # -- PaperMC item merging -----------------------------------------------------

    def _merge_item_stacks(self, report: WorkReport) -> None:
        """Merge co-located item entities into stacks (PaperMC behaviour)."""
        store = self.store
        slots = store.alive_slots(KIND_ITEM)
        if slots.size < 2:
            return
        by_cell: dict[tuple[int, int, int], Entity] = {}
        for slot in slots:
            item = self._handles[int(slot)]
            cell = (floor(item.x), floor(item.y), floor(item.z))
            keeper = by_cell.get(cell)
            if keeper is None:
                by_cell[cell] = item
            else:
                keeper.stack_count += item.stack_count
                self.remove(item)
