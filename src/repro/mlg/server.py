"""The MLG server facade — the system under test (Fig. 5, component 6).

Wires together the world, terrain-simulation engines, entity system,
networking queues, chat, player handler, and game loop for one variant
running on one machine model.  The benchmark harness talks to this class;
bots connect through :meth:`connect_client` and :meth:`submit_action`.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.mlg.chat import ChatSystem
from repro.mlg.constants import (
    DEFAULT_VIEW_DISTANCE,
    TICK_BUDGET_US,
    TICK_RATE_HZ,
)
from repro.mlg.entity_manager import EntityManager
from repro.mlg.fluids import FluidEngine
from repro.mlg.gameloop import GameLoop, TickRecord
from repro.mlg.growth import GrowthEngine
from repro.mlg.lighting import LightEngine
from repro.mlg.netqueue import NetworkQueues
from repro.mlg.player import PlayerConnection, PlayerHandler
from repro.mlg.protocol import PlayerAction
from repro.mlg.redstone import RedstoneEngine
from repro.mlg.spawning import SpawnEngine
from repro.mlg.tnt import TNTSystem
from repro.mlg.variants import VariantProfile, get_variant
from repro.mlg.workreport import WorkReport
from repro.mlg.world import World
from repro.persistence.lifecycle import ChunkLifecycle
from repro.persistence.store import RegionStore
from repro.simtime import SimClock, s_to_us
from repro.telemetry.tap import ServerTelemetry
from repro.tracing.tracer import NULL_TRACER, NullTracer, Tracer

__all__ = ["MLGServer"]

#: Autosave interval (simulated seconds) — feeds the disk-I/O metric.
AUTOSAVE_INTERVAL_S = 45.0

#: Every Nth autosave is a full flush (the save-all tick spike) when
#: region-file persistence is enabled.
DEFAULT_FLUSH_EVERY = 6

#: Hook signature: (server, tick_index, report) -> None.
TickHook = Callable[["MLGServer", int, WorkReport], None]


class MLGServer:
    """One Minecraft-like game server instance under simulation."""

    def __init__(
        self,
        variant: VariantProfile | str,
        machine,
        world: World | None = None,
        clock: SimClock | None = None,
        seed: int = 0,
        retain_raw: bool = True,
        telemetry_window: int = 100,
        world_dir: str | None = None,
        world_cache_dir: str | None = None,
        autosave_interval_s: float = AUTOSAVE_INTERVAL_S,
        autosave_flush_every: int = DEFAULT_FLUSH_EVERY,
        max_loaded_chunks: int | None = None,
        trace: bool = False,
        trace_sample_every: int = 1,
        slow_tick_factor: float = 3.0,
        transport: str = "inproc",
        wire_port: int = 0,
        wire_batch_flush: bool = True,
        obs: bool = False,
        obs_port: int = 0,
        obs_scrape_grace: float = 0.0,
    ) -> None:
        self.variant = (
            get_variant(variant) if isinstance(variant, str) else variant
        )
        self.machine = machine
        self.clock = clock if clock is not None else SimClock()
        self.rng = np.random.default_rng(seed)
        self.world = world if world is not None else World()
        #: Keep the raw per-tick record list (the figure pipeline needs
        #: it); ``False`` runs with O(1) telemetry memory per metric.
        self.retain_raw = retain_raw
        #: Transport knobs: how clients reach this server.  ``inproc``
        #: serves direct-call sessions (:mod:`repro.mlg.transport`);
        #: ``tcp`` is consumed by the wire front end (:mod:`repro.net`),
        #: which binds ``wire_port`` and batches entity-move frames when
        #: ``wire_batch_flush`` is set.  The simulation itself never
        #: branches on these — a served run ticks identically.
        self.transport = transport
        self.wire_port = wire_port
        self.wire_batch_flush = wire_batch_flush
        #: Live-observability knobs, consumed by the serving layers
        #: (:mod:`repro.net.serve`, the campaign executor): ``obs``
        #: stands up the pull-based metrics endpoint on ``obs_port`` and
        #: keeps it up ``obs_scrape_grace`` seconds past the run.  The
        #: simulation itself never branches on these either.
        self.obs = obs
        self.obs_port = obs_port
        self.obs_scrape_grace = obs_scrape_grace
        #: Streaming per-tick telemetry; the game loop is its producer.
        self.telemetry = ServerTelemetry(
            TICK_BUDGET_US, window_size=telemetry_window
        )
        #: Tick-phase span tracing + slow-tick flight recorder.  Off by
        #: default: the null tracer does no bookkeeping at all, keeping
        #: untraced runs bit-identical with the pre-tracing simulation.
        self.tracer: Tracer | NullTracer = NULL_TRACER
        if trace:
            self.tracer = Tracer(
                self.variant.cost_table,
                budget_us=TICK_BUDGET_US,
                sample_every=trace_sample_every,
                slow_tick_factor=slow_tick_factor,
            )

        self.lights = LightEngine(self.world)
        self.fluids = FluidEngine(self.world)
        self.growth = GrowthEngine(self.world, self.rng)
        self.redstone = RedstoneEngine(self.world)
        self.entities = EntityManager(
            self.world,
            self.rng,
            merge_items=self.variant.merge_items,
            fluid_flow=self.fluids.flow_vector,
        )
        self.tnt = TNTSystem(self.world, self.entities, self.rng)
        self.spawning = SpawnEngine(
            self.world, self.lights, self.entities, self.rng
        )
        self.net = NetworkQueues()
        self.chat = ChatSystem(self.net, async_mode=self.variant.async_chat)
        self.players = PlayerHandler(
            self.world, self.lights, self.fluids, self.net, self.chat
        )
        self.loop = GameLoop(self)

        #: Chunk persistence/streaming — ``None`` (the default) keeps the
        #: purely in-memory world of the seed simulation, bit-identically.
        self.lifecycle: ChunkLifecycle | None = None
        if (
            world_dir is not None
            or world_cache_dir is not None
            or max_loaded_chunks is not None
        ):
            self.lifecycle = ChunkLifecycle(
                self.world,
                store=RegionStore(world_dir) if world_dir is not None else None,
                cache=(
                    RegionStore(world_cache_dir)
                    if world_cache_dir is not None
                    else None
                ),
                autosave_interval_ticks=max(
                    1, round(autosave_interval_s * TICK_RATE_HZ)
                ),
                full_flush_every=autosave_flush_every,
                max_loaded_chunks=max_loaded_chunks,
                relight=self.lights.light_chunk,
                pinned=self.simulation_anchor_chunks,
                tracer=self.tracer,
            )

        self.tick_hooks: list[TickHook] = []
        self.running = False
        self.crashed = False
        self.crash_reason: str | None = None
        self._next_client_id = 1
        self._had_clients = False
        self._pending_join_work: WorkReport | None = None
        self._last_autosave_us = 0
        #: Cumulative bytes "written to disk" by the legacy (no-store)
        #: autosave model; real region IO is accounted by the lifecycle.
        self._disk_bytes_written = 0
        self._disk_bytes_read = 0
        #: Chunks already counted by the storeless-lifecycle variant of
        #: the legacy model (whose dirty flags never clear).
        self._legacy_counted: set[tuple[int, int]] = set()

    # -- lifecycle ---------------------------------------------------------------------

    def start(self) -> None:
        self.running = True

    def stop(self, reason: str | None = None) -> None:
        self.running = False
        if reason is not None:
            self.crashed = True
            self.crash_reason = reason

    def add_tick_hook(self, hook: TickHook) -> None:
        """Register a per-tick workload hook (ignition timers, etc.)."""
        self.tick_hooks.append(hook)

    # -- client API (used by the player-emulation bots) ----------------------------------

    def connect_client(
        self,
        name: str,
        x: float,
        z: float,
        latency_up_us: int,
        latency_down_us: int,
        view_distance: int = DEFAULT_VIEW_DISTANCE,
    ) -> PlayerConnection:
        """Connect a client; chunk loading is charged to the *next* tick.

        Returns the server-side player connection (its ``client_id`` is the
        handle bots keep).
        """
        client_id = self._next_client_id
        self._next_client_id += 1
        self.net.register_client(
            client_id, self.clock.now_us, latency_up_us, latency_down_us
        )
        self._had_clients = True
        # The join itself is processed by the player handler immediately,
        # but its work is charged to the join tick via a pending report.
        report = WorkReport()
        conn = self.players.connect(
            client_id, name, x, z, report, view_distance
        )
        if self._pending_join_work is None:
            self._pending_join_work = report
        else:
            self._pending_join_work.merge(report)
        return conn

    def submit_action(self, action: PlayerAction, sent_at_us: int) -> int:
        """Client sends an action; returns its server arrival time (µs).

        Chat takes a fast path on async-chat variants (PaperMC): the
        dedicated chat thread answers on arrival instead of waiting for the
        tick — which is why the paper excludes PaperMC from Figure 7.
        """
        from repro.mlg.protocol import ActionKind

        if action.kind == ActionKind.CHAT and self.chat.async_mode:
            endpoint = self.net.client(action.client_id)
            if endpoint is None or endpoint.disconnected:
                return -1
            arrival = sent_at_us + endpoint.latency_up_us
            probe_id, _ = action.payload
            # Off-thread work: negligible tick cost, but the packets count.
            report = WorkReport()
            self.chat.submit(action.client_id, probe_id, arrival, report)
            return arrival
        return self.net.submit_action(action, sent_at_us)

    def on_client_timeout(self, client_id: int) -> None:
        """A client timed out; a full-lobby timeout is a server crash."""
        self.players.disconnect(client_id)
        if self._had_clients and self.net.connected_count == 0:
            self.stop(reason="all clients timed out (keepalive)")

    # -- tick driving --------------------------------------------------------------------

    def tick(self) -> TickRecord:
        """Run one tick (injecting any pending join work first)."""
        pending = self._pending_join_work
        if pending is not None:

            def _inject(server, tick_index, report, _work=pending):
                report.merge(_work)

            self.tick_hooks.insert(0, _inject)
            record = self.loop.run_tick()
            self.tick_hooks.pop(0)
            self._pending_join_work = None
        else:
            record = self.loop.run_tick()
        self._maybe_autosave()
        return record

    def run_for(self, sim_seconds: float, max_ticks: int | None = None) -> list[TickRecord]:
        """Tick until ``sim_seconds`` of simulated time pass (or crash)."""
        deadline = self.clock.now_us + s_to_us(sim_seconds)
        records: list[TickRecord] = []
        self.start()
        while self.clock.now_us < deadline and self.running:
            records.append(self.tick())
            if self.crashed:
                break
            if max_ticks is not None and len(records) >= max_ticks:
                break
        self.running = False
        return records

    def _maybe_autosave(self) -> None:
        """Legacy dirty-flag autosave model, used without a *real* store.

        With a ``world_dir`` the :class:`ChunkLifecycle` performs — and
        charges — real region-file saves inside the tick instead.  A
        storeless lifecycle (warm cache or eviction only) keeps this
        synthetic disk-IO metric alive, but must not clear dirty flags:
        the eviction invariant (never drop unsaved modifications)
        depends on them.
        """
        if self.lifecycle is not None and self.lifecycle.store is not None:
            return
        now = self.clock.now_us
        if now - self._last_autosave_us >= s_to_us(AUTOSAVE_INTERVAL_S):
            if self.lifecycle is None:
                dirty = sum(1 for c in self.world.loaded_chunks() if c.dirty)
                self._disk_bytes_written += dirty * 4096
                for chunk in self.world.loaded_chunks():
                    chunk.dirty = False
            else:
                # Flags stay set (eviction safety), so charge each
                # dirtied chunk once instead of re-charging the whole
                # ever-dirty set every interval.
                new = [
                    (c.cx, c.cz)
                    for c in self.world.loaded_chunks()
                    if c.dirty and (c.cx, c.cz) not in self._legacy_counted
                ]
                self._disk_bytes_written += len(new) * 4096
                self._legacy_counted.update(new)
            self._last_autosave_us = now

    # -- introspection (used by collectors) ------------------------------------------------

    @property
    def disk_bytes_written(self) -> int:
        """Cumulative bytes written to disk (region IO or legacy model)."""
        lifecycle_bytes = (
            self.lifecycle.bytes_written if self.lifecycle is not None else 0
        )
        return self._disk_bytes_written + lifecycle_bytes

    @property
    def disk_bytes_read(self) -> int:
        lifecycle_bytes = (
            self.lifecycle.bytes_read if self.lifecycle is not None else 0
        )
        return self._disk_bytes_read + lifecycle_bytes

    @property
    def eviction_enabled(self) -> bool:
        """True when chunk streaming bounds the loaded-chunk count."""
        return self.lifecycle is not None and self.lifecycle.eviction_enabled

    def simulation_anchor_chunks(self) -> set[tuple[int, int]]:
        """Chunks active simulation state references outside player views.

        Player views are not the only live references into terrain:
        scheduled fluid cells, redstone nets/events, and entity positions
        all read the world through the AIR-for-unloaded bulk queries, so
        evicting beneath them would silently diverge the simulation from
        an eviction-free run (not just change its timing).  The lifecycle
        excludes these chunks from eviction.
        """
        base = self.fluids.queued_chunks()
        base |= self.redstone.anchored_chunks()
        base |= self.entities.occupied_chunks()
        # One-chunk ring: anchored state near a border reads (and falls,
        # spreads, collides) into the neighbouring chunk.
        return {
            (cx + dx, cz + dz)
            for cx, cz in base
            for dx in (-1, 0, 1)
            for dz in (-1, 0, 1)
        }

    @property
    def tick_records(self) -> list[TickRecord]:
        """Raw per-tick records (empty when ``retain_raw`` is off)."""
        return self.loop.records

    def tick_durations_ms(self) -> list[float]:
        """Raw tick-duration series for the figure pipeline.

        Raises on a ``retain_raw=False`` server rather than silently
        returning a truncated series: summary statistics should come
        from ``self.telemetry`` (streaming, exact counts/moments/
        exceedance) and the recent tail from its ring buffer.
        """
        if not self.retain_raw:
            raise ValueError(
                "raw tick durations were not retained (retain_raw=False); "
                "use server.telemetry for streaming statistics or "
                "server.telemetry.tick_ms.tail for the recent tail"
            )
        return [r.duration_ms for r in self.loop.records]

    def memory_bytes(self) -> int:
        """Approximate process memory: base JVM + world + entities."""
        base = 600 * 1024 * 1024
        per_entity = 2048
        return (
            base
            + self.world.nbytes
            + self.entities.count() * per_entity
        )

    @property
    def thread_count(self) -> int:
        return self.variant.thread_count

    @property
    def overloaded_fraction(self) -> float:
        """Fraction of >50 ms ticks, from the streaming tick counters."""
        return self.telemetry.overloaded_fraction
