"""Binary wire codec for the MLG protocol.

Frames the session/transport traffic (:mod:`repro.mlg.transport`) for a
real socket: each message is ``varint(length) + body``, where the body
starts with a one-byte message type and all fixed-width fields are
little-endian.  Every :class:`~repro.mlg.protocol.PacketCategory` and
``ActionKind`` has a payload schema here, so the asyncio front end
(:mod:`repro.net`) can materialize the simulation's *counted* traffic as
real bytes.

Size contract (Table 8): category and action frames are zero-padded up
to the ``PACKET_SIZES`` / ``PlayerAction._SIZES`` model, so bytes on the
wire reconcile with the modeled bytes the simulation accounts.  The
documented tolerance: a frame may exceed its model size only when its
varint fields outgrow the padding budget (huge timestamps/ids), and
batched entity moves (`wire_batch_flush`) deliberately undercut the
per-packet model — that saving is the point of batching.  The
relationship is pinned by ``tests/mlg/test_wirecodec.py``.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.mlg.protocol import (
    ActionKind,
    PACKET_SIZES,
    PacketCategory,
    PlayerAction,
)

__all__ = [
    "ACTION_SCHEMAS",
    "CATEGORY_IDS",
    "CATEGORY_SCHEMAS",
    "FrameDecoder",
    "MSG_ACTION",
    "MSG_BYE",
    "MSG_DELIVERY",
    "MSG_ENTITY_BATCH",
    "MSG_HELLO",
    "MSG_RESPONSE_SAMPLE",
    "MSG_STATE",
    "MSG_TICK",
    "MSG_WELCOME",
    "WireAction",
    "WireBye",
    "WireDelivery",
    "WireEntityBatch",
    "WireHello",
    "WireResponseSample",
    "WireState",
    "WireTick",
    "WireWelcome",
    "decode_frame",
    "encode_action",
    "encode_bye",
    "encode_delivery",
    "encode_entity_batch",
    "encode_hello",
    "encode_response_sample",
    "encode_state",
    "encode_tick",
    "encode_welcome",
]

# -- message types ------------------------------------------------------------

MSG_HELLO = 1
MSG_WELCOME = 2
MSG_ACTION = 3
MSG_DELIVERY = 4
MSG_STATE = 5
MSG_ENTITY_BATCH = 6
MSG_TICK = 7
MSG_RESPONSE_SAMPLE = 8
MSG_BYE = 9

#: Stable one-byte category ids, in ``PacketCategory.ALL`` order.
CATEGORY_IDS: dict[str, int] = {
    category: index for index, category in enumerate(PacketCategory.ALL)
}
CATEGORY_BY_ID: dict[int, str] = {
    index: category for category, index in CATEGORY_IDS.items()
}

ACTION_IDS: dict[str, int] = {
    ActionKind.MOVE: 0,
    ActionKind.BUILD: 1,
    ActionKind.DIG: 2,
    ActionKind.CHAT: 3,
}
ACTION_BY_ID: dict[int, str] = {
    index: kind for kind, index in ACTION_IDS.items()
}

#: Payload schemas: one codec tag per tuple element.  Tags: ``uv``
#: unsigned varint, ``sv`` zigzag varint, ``u8`` byte, ``f32``/``f64``
#: little-endian IEEE floats.
CATEGORY_SCHEMAS: dict[str, tuple[str, ...]] = {
    PacketCategory.ENTITY_SPAWN: ("uv", "u8", "f32", "f32", "f32"),
    PacketCategory.ENTITY_MOVE: ("uv", "sv", "sv", "sv"),
    PacketCategory.ENTITY_VELOCITY: ("uv", "sv", "sv", "sv"),
    PacketCategory.ENTITY_DESTROY: ("uv",),
    PacketCategory.BLOCK_CHANGE: ("sv", "uv", "sv", "u8"),
    PacketCategory.CHUNK_DATA: ("sv", "sv"),
    PacketCategory.CHUNK_SECTION: ("sv", "sv", "u8"),
    PacketCategory.LIGHT_UPDATE: ("sv", "sv"),
    PacketCategory.SOUND_EFFECT: ("u8", "sv", "uv", "sv"),
    PacketCategory.BLOCK_ENTITY_DATA: ("sv", "uv", "sv"),
    PacketCategory.CHAT: ("uv", "uv"),
    PacketCategory.KEEPALIVE: ("uv",),
    PacketCategory.TIME_UPDATE: ("uv", "uv"),
    PacketCategory.PLAYER_INFO: ("uv", "u8"),
}

ACTION_SCHEMAS: dict[str, tuple[str, ...]] = {
    ActionKind.MOVE: ("f32", "f32", "f32"),
    ActionKind.BUILD: ("sv", "uv", "sv", "u8"),
    ActionKind.DIG: ("sv", "uv", "sv"),
    ActionKind.CHAT: ("uv", "uv"),
}

_F32 = struct.Struct("<f")
_F64 = struct.Struct("<d")


# -- primitives ---------------------------------------------------------------

def encode_varint(value: int) -> bytes:
    """LEB128 unsigned varint."""
    if value < 0:
        raise ValueError(f"varint must be >= 0: {value!r}")
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def decode_varint(buf, offset: int = 0) -> tuple[int, int]:
    """Returns ``(value, next_offset)``; raises on truncation."""
    result = 0
    shift = 0
    while True:
        if offset >= len(buf):
            raise ValueError("truncated varint")
        byte = buf[offset]
        offset += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, offset
        shift += 7
        if shift > 63:
            raise ValueError("varint too long")


def zigzag(value: int) -> int:
    return (value << 1) ^ (value >> 63) if value < 0 else value << 1


def unzigzag(value: int) -> int:
    return (value >> 1) ^ -(value & 1)


def _encode_fields(schema: tuple[str, ...], values: tuple) -> bytes:
    if len(schema) != len(values):
        raise ValueError(
            f"payload arity mismatch: schema {schema!r} vs {values!r}"
        )
    out = bytearray()
    for tag, value in zip(schema, values):
        if tag == "uv":
            out += encode_varint(int(value))
        elif tag == "sv":
            out += encode_varint(zigzag(int(value)))
        elif tag == "u8":
            out.append(int(value) & 0xFF)
        elif tag == "f32":
            out += _F32.pack(float(value))
        elif tag == "f64":
            out += _F64.pack(float(value))
        else:  # pragma: no cover - schema tables are static
            raise ValueError(f"unknown field tag {tag!r}")
    return bytes(out)


def _decode_fields(
    schema: tuple[str, ...], body: bytes, offset: int
) -> tuple[tuple, int]:
    values = []
    for tag in schema:
        if tag == "uv":
            value, offset = decode_varint(body, offset)
        elif tag == "sv":
            raw, offset = decode_varint(body, offset)
            value = unzigzag(raw)
        elif tag == "u8":
            value = body[offset]
            offset += 1
        elif tag == "f32":
            value = _F32.unpack_from(body, offset)[0]
            offset += 4
        elif tag == "f64":
            value = _F64.unpack_from(body, offset)[0]
            offset += 8
        else:  # pragma: no cover - schema tables are static
            raise ValueError(f"unknown field tag {tag!r}")
        values.append(value)
    return tuple(values), offset


def _encode_str(text: str) -> bytes:
    raw = text.encode("utf-8")
    return encode_varint(len(raw)) + raw


def _decode_str(body: bytes, offset: int) -> tuple[str, int]:
    length, offset = decode_varint(body, offset)
    if offset + length > len(body):
        raise ValueError("truncated string")
    return body[offset : offset + length].decode("utf-8"), offset + length


def _frame(body: bytes, pad_to: int | None = None) -> bytes:
    """Wrap a body in a length-varint frame, zero-padding the body so the
    whole frame hits ``pad_to`` bytes when there is room."""
    if pad_to is not None and len(encode_varint(len(body))) + len(body) < pad_to:
        # Frame length = varint(len(body)) + len(body); find the largest
        # body length whose framed size still fits the target (the
        # length varint itself lengthens as the body grows).
        target = pad_to - 1
        while len(encode_varint(target)) + target > pad_to:
            target -= 1
        if target > len(body):
            body = body + b"\x00" * (target - len(body))
    return encode_varint(len(body)) + body


# -- decoded message objects --------------------------------------------------

@dataclass(frozen=True)
class WireHello:
    name: str
    spawn_x: float
    spawn_z: float
    latency_up_us: int
    latency_down_us: int
    view_distance: int | None


@dataclass(frozen=True)
class WireWelcome:
    client_id: int
    x: float
    y: float
    z: float
    now_us: int


@dataclass(frozen=True)
class WireAction:
    action: PlayerAction
    sent_at_us: int


@dataclass(frozen=True)
class WireDelivery:
    category: str
    payload: tuple
    delivered_at_us: int


@dataclass(frozen=True)
class WireState:
    category: str
    payload: tuple


@dataclass(frozen=True)
class WireEntityBatch:
    #: (entity_id, dx, dy, dz) quantized move deltas.
    moves: tuple


@dataclass(frozen=True)
class WireTick:
    now_us: int
    tick_index: int


@dataclass(frozen=True)
class WireResponseSample:
    response_ms: float


@dataclass(frozen=True)
class WireBye:
    reason: str


# -- encoders -----------------------------------------------------------------

def encode_hello(
    name: str,
    spawn_x: float,
    spawn_z: float,
    latency_up_us: int,
    latency_down_us: int,
    view_distance: int | None = None,
) -> bytes:
    body = (
        bytes((MSG_HELLO,))
        + _encode_str(name)
        + _F32.pack(spawn_x)
        + _F32.pack(spawn_z)
        + encode_varint(latency_up_us)
        + encode_varint(latency_down_us)
        + encode_varint(0 if view_distance is None else view_distance + 1)
    )
    return _frame(body)


def encode_welcome(
    client_id: int, x: float, y: float, z: float, now_us: int
) -> bytes:
    body = (
        bytes((MSG_WELCOME,))
        + encode_varint(client_id)
        + _F64.pack(x)
        + _F64.pack(y)
        + _F64.pack(z)
        + encode_varint(now_us)
    )
    return _frame(body)


def encode_action(action: PlayerAction, sent_at_us: int) -> bytes:
    """Client→server action, padded to the modeled uplink size."""
    body = (
        bytes((MSG_ACTION, ACTION_IDS[action.kind]))
        + encode_varint(action.client_id)
        + encode_varint(sent_at_us)
        + _encode_fields(ACTION_SCHEMAS[action.kind], tuple(action.payload))
    )
    return _frame(body, pad_to=action.size_bytes)


def encode_delivery(
    category: str, payload: tuple, delivered_at_us: int
) -> bytes:
    """Materialized server→client delivery, padded to the Table 8 model."""
    body = (
        bytes((MSG_DELIVERY, CATEGORY_IDS[category]))
        + encode_varint(delivered_at_us)
        + _encode_fields(CATEGORY_SCHEMAS[category], tuple(payload))
    )
    return _frame(body, pad_to=PACKET_SIZES[category])


def encode_state(category: str, payload: tuple) -> bytes:
    """Counted server→client state packet, padded to the Table 8 model."""
    body = bytes((MSG_STATE, CATEGORY_IDS[category])) + _encode_fields(
        CATEGORY_SCHEMAS[category], tuple(payload)
    )
    return _frame(body, pad_to=PACKET_SIZES[category])


def encode_entity_batch(moves) -> bytes:
    """Batched entity moves: one frame for ``n`` modeled move packets.

    Entity ids are delta-encoded in ascending order; positions are the
    schema's quantized deltas.  The frame costs well under the
    ``n * PACKET_SIZES[entity_move]`` the per-packet model charges —
    the documented saving behind ``wire_batch_flush``.
    """
    moves = tuple(moves)
    body = bytearray((MSG_ENTITY_BATCH,))
    body += encode_varint(len(moves))
    last_eid = 0
    for eid, dx, dy, dz in moves:
        body += encode_varint(zigzag(int(eid) - last_eid))
        last_eid = int(eid)
        body += encode_varint(zigzag(int(dx)))
        body += encode_varint(zigzag(int(dy)))
        body += encode_varint(zigzag(int(dz)))
    return _frame(bytes(body))


def encode_tick(now_us: int, tick_index: int) -> bytes:
    body = (
        bytes((MSG_TICK,))
        + encode_varint(now_us)
        + encode_varint(tick_index)
    )
    return _frame(body)


def encode_response_sample(response_ms: float) -> bytes:
    body = bytes((MSG_RESPONSE_SAMPLE,)) + _F64.pack(response_ms)
    return _frame(body)


def encode_bye(reason: str = "client quit") -> bytes:
    body = bytes((MSG_BYE,)) + _encode_str(reason)
    return _frame(body)


# -- decoder ------------------------------------------------------------------

def _decode_body(body: bytes):
    msg_type = body[0]
    offset = 1
    if msg_type == MSG_HELLO:
        name, offset = _decode_str(body, offset)
        spawn_x = _F32.unpack_from(body, offset)[0]
        spawn_z = _F32.unpack_from(body, offset + 4)[0]
        offset += 8
        latency_up_us, offset = decode_varint(body, offset)
        latency_down_us, offset = decode_varint(body, offset)
        view_raw, offset = decode_varint(body, offset)
        return WireHello(
            name,
            spawn_x,
            spawn_z,
            latency_up_us,
            latency_down_us,
            None if view_raw == 0 else view_raw - 1,
        )
    if msg_type == MSG_WELCOME:
        client_id, offset = decode_varint(body, offset)
        x = _F64.unpack_from(body, offset)[0]
        y = _F64.unpack_from(body, offset + 8)[0]
        z = _F64.unpack_from(body, offset + 16)[0]
        offset += 24
        now_us, offset = decode_varint(body, offset)
        return WireWelcome(client_id, x, y, z, now_us)
    if msg_type == MSG_ACTION:
        kind = ACTION_BY_ID[body[offset]]
        offset += 1
        client_id, offset = decode_varint(body, offset)
        sent_at_us, offset = decode_varint(body, offset)
        payload, offset = _decode_fields(ACTION_SCHEMAS[kind], body, offset)
        return WireAction(PlayerAction(kind, client_id, payload), sent_at_us)
    if msg_type == MSG_DELIVERY:
        category = CATEGORY_BY_ID[body[offset]]
        offset += 1
        delivered_at_us, offset = decode_varint(body, offset)
        payload, offset = _decode_fields(
            CATEGORY_SCHEMAS[category], body, offset
        )
        return WireDelivery(category, payload, delivered_at_us)
    if msg_type == MSG_STATE:
        category = CATEGORY_BY_ID[body[offset]]
        offset += 1
        payload, offset = _decode_fields(
            CATEGORY_SCHEMAS[category], body, offset
        )
        return WireState(category, payload)
    if msg_type == MSG_ENTITY_BATCH:
        count, offset = decode_varint(body, offset)
        moves = []
        last_eid = 0
        for _ in range(count):
            delta, offset = decode_varint(body, offset)
            eid = last_eid + unzigzag(delta)
            last_eid = eid
            raw_dx, offset = decode_varint(body, offset)
            raw_dy, offset = decode_varint(body, offset)
            raw_dz, offset = decode_varint(body, offset)
            moves.append(
                (eid, unzigzag(raw_dx), unzigzag(raw_dy), unzigzag(raw_dz))
            )
        return WireEntityBatch(tuple(moves))
    if msg_type == MSG_TICK:
        now_us, offset = decode_varint(body, offset)
        tick_index, offset = decode_varint(body, offset)
        return WireTick(now_us, tick_index)
    if msg_type == MSG_RESPONSE_SAMPLE:
        return WireResponseSample(_F64.unpack_from(body, offset)[0])
    if msg_type == MSG_BYE:
        reason, offset = _decode_str(body, offset)
        return WireBye(reason)
    raise ValueError(f"unknown wire message type {msg_type}")


def decode_frame(buf: bytes, offset: int = 0):
    """Decode one frame; returns ``(message, next_offset)``."""
    length, body_start = decode_varint(buf, offset)
    end = body_start + length
    if end > len(buf):
        raise ValueError("truncated frame")
    return _decode_body(bytes(buf[body_start:end])), end


class FrameDecoder:
    """Incremental stream decoder: feed socket chunks, get messages."""

    def __init__(self) -> None:
        self._buf = bytearray()

    def feed(self, data: bytes) -> list:
        """Append ``data``; returns every complete message now decodable."""
        self._buf += data
        messages = []
        offset = 0
        while True:
            try:
                length, body_start = decode_varint(self._buf, offset)
            except ValueError:
                break  # partial length varint
            end = body_start + length
            if end > len(self._buf):
                break  # partial body
            messages.append(
                _decode_body(bytes(self._buf[body_start:end]))
            )
            offset = end
        if offset:
            del self._buf[:offset]
        return messages

    @property
    def pending_bytes(self) -> int:
        return len(self._buf)
