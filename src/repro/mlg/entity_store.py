"""Struct-of-arrays entity state storage (§2.2.3).

All per-entity simulation state lives in preallocated, grow-on-demand
numpy arrays indexed by *slot*.  :class:`repro.mlg.entity.Entity` objects
are lightweight handles over one slot; the entity manager's physics kernel
operates on the arrays directly, so one vectorized code path serves a
single dropped item and a ten-thousand-entity TNT chain identically.

Slots are recycled through a free list (LIFO, lowest-first after a grow)
and the store compacts itself when a despawn wave leaves it mostly empty,
so long farm runs do not hold peak-swarm memory forever.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "EntityStore",
    "KIND_FREE",
    "KIND_ITEM",
    "KIND_MOB",
    "KIND_TNT",
    "KIND_PLAYER",
    "KIND_CODE",
    "KIND_NAME",
]

#: Slot-kind codes stored in the ``kind`` array.
KIND_FREE = 0
KIND_ITEM = 1
KIND_MOB = 2
KIND_TNT = 3
KIND_PLAYER = 4

KIND_CODE: dict[str, int] = {
    "item": KIND_ITEM,
    "mob": KIND_MOB,
    "tnt": KIND_TNT,
    "player": KIND_PLAYER,
}
KIND_NAME: dict[int, str] = {code: name for name, code in KIND_CODE.items()}

#: (name, dtype) of every per-slot state array.
FIELDS: tuple[tuple[str, type], ...] = (
    ("eid", np.int64),
    ("kind", np.uint8),
    ("alive", np.bool_),
    ("moved", np.bool_),
    ("x", np.float64),
    ("y", np.float64),
    ("z", np.float64),
    ("vx", np.float64),
    ("vy", np.float64),
    ("vz", np.float64),
    ("age", np.int64),
    ("fuse", np.int64),
    ("stack", np.int64),
)

#: Smallest capacity the store grows from / compacts down to.
MIN_CAPACITY = 128


class EntityStore:
    """Slot-addressed struct-of-arrays backing store for entity state."""

    __slots__ = tuple(name for name, _ in FIELDS) + (
        "capacity",
        "live_count",
        "_free",
    )

    def __init__(self, capacity: int = MIN_CAPACITY) -> None:
        capacity = max(1, int(capacity))
        self.capacity = capacity
        self.live_count = 0
        for name, dtype in FIELDS:
            setattr(self, name, np.zeros(capacity, dtype=dtype))
        # LIFO free list, seeded descending so slot 0 is handed out first.
        self._free: list[int] = list(range(capacity - 1, -1, -1))

    # -- allocation -----------------------------------------------------------

    def allocate(
        self,
        eid: int,
        kind_code: int,
        x: float,
        y: float,
        z: float,
        vx: float = 0.0,
        vy: float = 0.0,
        vz: float = 0.0,
        fuse: int = -1,
        stack: int = 1,
    ) -> int:
        """Claim a slot (growing if exhausted) and initialise its state."""
        if not self._free:
            self._grow(self.capacity * 2)
        slot = self._free.pop()
        self.eid[slot] = eid
        self.kind[slot] = kind_code
        self.alive[slot] = True
        self.moved[slot] = False
        self.x[slot] = x
        self.y[slot] = y
        self.z[slot] = z
        self.vx[slot] = vx
        self.vy[slot] = vy
        self.vz[slot] = vz
        self.age[slot] = 0
        self.fuse[slot] = fuse
        self.stack[slot] = stack
        self.live_count += 1
        return slot

    def release(self, slot: int) -> None:
        """Return a slot to the free list (its state becomes undefined)."""
        self.kind[slot] = KIND_FREE
        self.alive[slot] = False
        self.eid[slot] = 0
        self.live_count -= 1
        self._free.append(slot)

    @property
    def free_count(self) -> int:
        return len(self._free)

    # -- queries --------------------------------------------------------------

    def used_slots(self) -> np.ndarray:
        """Slots currently claimed (alive or dead-but-not-reaped)."""
        return np.flatnonzero(self.kind != KIND_FREE)

    def alive_slots(self, kind_code: int | None = None) -> np.ndarray:
        """Slots of live entities, optionally filtered by kind."""
        if kind_code is None:
            return np.flatnonzero(self.alive)
        return np.flatnonzero(self.alive & (self.kind == kind_code))

    def count(self, kind_code: int | None = None) -> int:
        """Live entity count — a pure array reduction."""
        if kind_code is None:
            return int(self.alive.sum())
        return int((self.alive & (self.kind == kind_code)).sum())

    def moved_count(self) -> int:
        """Live entities whose last tick changed their position."""
        return int((self.alive & self.moved).sum())

    # -- capacity management --------------------------------------------------

    def _grow(self, new_capacity: int) -> None:
        old_capacity = self.capacity
        for name, dtype in FIELDS:
            grown = np.zeros(new_capacity, dtype=dtype)
            grown[:old_capacity] = getattr(self, name)
            setattr(self, name, grown)
        # New slots join the free list lowest-first (popped from the end).
        self._free.extend(range(new_capacity - 1, old_capacity - 1, -1))
        self.capacity = new_capacity

    def should_compact(self) -> bool:
        """True when a despawn wave left the store mostly empty."""
        used = self.capacity - len(self._free)
        return self.capacity > MIN_CAPACITY and used < self.capacity // 4

    def compact(self) -> np.ndarray:
        """Repack used slots to the front and shrink the arrays.

        Returns the array of *old* slot indices in their new order, so the
        caller can remap its slot-indexed handles:
        ``new_slot_of[old_slots[i]] = i``.
        """
        old_slots = self.used_slots()
        used = int(old_slots.size)
        new_capacity = max(MIN_CAPACITY, 1 << max(0, int(used - 1).bit_length()))
        for name, dtype in FIELDS:
            packed = np.zeros(new_capacity, dtype=dtype)
            packed[:used] = getattr(self, name)[old_slots]
            setattr(self, name, packed)
        self.capacity = new_capacity
        self._free = list(range(new_capacity - 1, used - 1, -1))
        return old_slots
