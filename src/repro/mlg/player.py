"""Player handler — component 4 of the operational model (Fig. 4).

Processes the actions drained from the input queue once per tick: movement
(validated against terrain collision), building/digging (terrain writes that
trigger relighting and fluid updates), and chat (delegated to the chat
subsystem).  Also owns view management: connecting or moving across a chunk
border loads — and lazily generates — the chunks in view distance, the
source of the paper's connect-time response spikes (§5.2: "these outliers
occur directly after a player connects").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.mlg.chat import ChatSystem
from repro.mlg.constants import DEFAULT_VIEW_DISTANCE
from repro.mlg.fluids import FluidEngine
from repro.mlg.lighting import LightEngine
from repro.mlg.netqueue import NetworkQueues
from repro.mlg.protocol import ActionKind, PacketCategory, PlayerAction
from repro.mlg.workreport import Op, WorkReport
from repro.mlg.world import World

__all__ = ["PlayerConnection", "PlayerHandler"]


@dataclass
class PlayerConnection:
    """Server-side state of one connected player."""

    client_id: int
    name: str
    x: float
    y: float
    z: float
    view_distance: int = DEFAULT_VIEW_DISTANCE
    loaded_chunks: set[tuple[int, int]] = field(default_factory=set)
    moved_this_tick: bool = False
    actions_processed: int = 0

    @property
    def chunk_pos(self) -> tuple[int, int]:
        return int(self.x) >> 4, int(self.z) >> 4


class PlayerHandler:
    """Applies player actions to the game state."""

    def __init__(
        self,
        world: World,
        lights: LightEngine,
        fluids: FluidEngine,
        net: NetworkQueues,
        chat: ChatSystem,
    ) -> None:
        self.world = world
        self.lights = lights
        self.fluids = fluids
        self.net = net
        self.chat = chat
        self.players: dict[int, PlayerConnection] = {}

    # -- connection lifecycle -----------------------------------------------------

    def connect(
        self,
        client_id: int,
        name: str,
        x: float,
        z: float,
        report: WorkReport,
        view_distance: int = DEFAULT_VIEW_DISTANCE,
    ) -> PlayerConnection:
        """Join a player at ground level of ``(x, z)`` and load their view.

        Loading generates missing chunks and ships chunk data — the big
        burst of work behind connect-time latency spikes.
        """
        self.world.ensure_chunk(int(x) >> 4, int(z) >> 4)
        ground = self.world.column_height(int(x), int(z))
        conn = PlayerConnection(
            client_id, name, x, float(max(ground, 1)), z, view_distance
        )
        self.players[client_id] = conn
        self._load_view(conn, report)
        # Announce the new player to everyone already connected.
        self.net.broadcast_counted(PacketCategory.PLAYER_INFO, 1, report)
        return conn

    def disconnect(self, client_id: int) -> None:
        self.players.pop(client_id, None)

    def positions(self) -> list[tuple[float, float, float]]:
        return [(p.x, p.y, p.z) for p in self.players.values()]

    def view_anchors(self) -> list[tuple[tuple[int, int], int]]:
        """Each player's ``(chunk_pos, view_distance)`` — what the chunk
        lifecycle must keep resident."""
        return [(p.chunk_pos, p.view_distance) for p in self.players.values()]

    def _load_view(self, conn: PlayerConnection, report: WorkReport) -> int:
        """Load/generate every chunk within view distance; returns new count."""
        ccx, ccz = conn.chunk_pos
        view = conn.view_distance
        newly_loaded = 0
        for cx in range(ccx - view, ccx + view + 1):
            for cz in range(ccz - view, ccz + view + 1):
                # A chunk this player already has is skipped only while it
                # is still resident: one the lifecycle evicted since must
                # stream back in (and be re-sent) on re-entry.  Without
                # eviction nothing is ever unloaded, so this check keeps
                # the seed path untouched.
                if (cx, cz) in conn.loaded_chunks and self.world.has_chunk(
                    cx, cz
                ):
                    continue
                chunk, source = self.world.ensure_chunk_tracked(cx, cz)
                if source == "generated":
                    report.add(Op.CHUNK_GEN)
                    self.lights.light_chunk(chunk, report)
                elif source == "loaded":
                    # Streamed back in from a region file (relit by the
                    # lifecycle loader; the op's cost covers the relight).
                    report.add(Op.CHUNK_LOAD)
                else:
                    # Already resident: only view attachment and packets.
                    report.add(Op.CHUNK_VIEW)
                conn.loaded_chunks.add((cx, cz))
                self.net.send_counted(
                    conn.client_id, PacketCategory.CHUNK_DATA, 1, report
                )
                newly_loaded += 1
        return newly_loaded

    # -- action processing ----------------------------------------------------------

    def process_actions(
        self, actions: list[PlayerAction], report: WorkReport
    ) -> int:
        """Apply this tick's drained actions; returns the processed count."""
        for conn in self.players.values():
            conn.moved_this_tick = False
        processed = 0
        for action in actions:
            conn = self.players.get(action.client_id)
            if conn is None:
                continue
            report.add(Op.PLAYER_ACTION)
            conn.actions_processed += 1
            if action.kind == ActionKind.MOVE:
                self._apply_move(conn, action, report)
            elif action.kind == ActionKind.BUILD:
                self._apply_build(conn, action, report)
            elif action.kind == ActionKind.DIG:
                self._apply_dig(conn, action, report)
            elif action.kind == ActionKind.CHAT:
                probe_id, _ = action.payload
                self.chat.submit(action.client_id, probe_id, 0, report)
            processed += 1
        return processed

    def _apply_move(
        self, conn: PlayerConnection, action: PlayerAction, report: WorkReport
    ) -> None:
        """Validate and apply a movement: the body must fit at the target."""
        tx, ty, tz = action.payload
        bx, by, bz = int(tx), int(ty), int(tz)
        # Collision reads against the terrain in the player's vicinity.
        if self.world.is_solid_at(bx, by, bz) or self.world.is_solid_at(
            bx, by + 1, bz
        ):
            return  # rejected: target obstructed
        old_chunk = conn.chunk_pos
        conn.x, conn.y, conn.z = float(tx), float(ty), float(tz)
        conn.moved_this_tick = True
        if conn.chunk_pos != old_chunk:
            self._load_view(conn, report)

    def _apply_build(
        self, conn: PlayerConnection, action: PlayerAction, report: WorkReport
    ) -> None:
        x, y, z, block_id = action.payload
        if self.world.is_solid_at(x, y, z):
            return  # cannot place into a solid block
        change = self.world.set_block(x, y, z, block_id)
        if change is not None:
            report.add(Op.BLOCK_ADD_REMOVE)
            self.lights.relight_around(x, y, z, report)
            self.fluids.schedule_neighbors(x, y, z)

    def _apply_dig(
        self, conn: PlayerConnection, action: PlayerAction, report: WorkReport
    ) -> None:
        x, y, z = action.payload
        if self.world.get_block(x, y, z) == 0:
            return
        change = self.world.set_block(x, y, z, 0)
        if change is not None:
            report.add(Op.BLOCK_ADD_REMOVE)
            self.lights.relight_around(x, y, z, report)
            self.fluids.schedule_neighbors(x, y, z)

    # -- per-tick broadcasts -----------------------------------------------------------

    def broadcast_movement(self, report: WorkReport) -> int:
        """Send avatar movement of each moved player to every other player."""
        movers = sum(1 for p in self.players.values() if p.moved_this_tick)
        if movers:
            self.net.broadcast_counted(PacketCategory.ENTITY_MOVE, movers, report)
        return movers * max(0, len(self.players) - 1)
