"""The game loop — component 2 of the operational model (Fig. 4).

Each tick: drain player input, apply player actions, run terrain simulation
(redstone, fluids, growth), entity simulation (TNT, physics, AI, spawning),
process chat, then build outbound state updates.  The accumulated
:class:`WorkReport` is priced by the variant's cost table and converted to
simulated wall time by the machine model.  A tick finishing under the 50 ms
budget waits for the next scheduled start; a tick exceeding it starts the
next one immediately — the server is then *overloaded* (§2.1).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.mlg.constants import TICK_BUDGET_US
from repro.mlg.protocol import PacketCategory
from repro.mlg.workreport import Op, WorkReport

__all__ = ["TickRecord", "GameLoop"]

#: A tick resend threshold: when one tick changes more blocks than this —
#: totalled across the whole tick, not per chunk region — servers resend
#: the touched chunks instead of per-block updates.
MULTI_BLOCK_THRESHOLD = 512


@dataclass(frozen=True)
class TickRecord:
    """Everything measured about one executed tick."""

    index: int
    start_us: int
    #: CPU work the tick performed, in simulated microseconds.
    work_us: float
    #: Wall duration after the machine model (noise, throttling, cores).
    duration_us: int
    #: Idle wait after the tick, until the next scheduled start.
    wait_us: int
    #: Simulated-µs cost per Figure 11 bucket (work only, no waits).
    breakdown_us: dict[str, float]
    #: True when duration exceeded the 50 ms budget.
    overloaded: bool
    #: Number of connected clients when the tick started.
    clients: int
    #: Entities alive at the end of the tick.
    entities: int

    @property
    def duration_ms(self) -> float:
        return self.duration_us / 1000.0

    @property
    def period_us(self) -> int:
        """The tick's period: its duration, floored by the budget."""
        return max(self.duration_us, TICK_BUDGET_US)


class GameLoop:
    """Drives one :class:`repro.mlg.server.MLGServer` tick by tick."""

    def __init__(self, server) -> None:
        self.server = server
        self.tick_index = 0
        self.records: list[TickRecord] = []
        #: Most recent tick's record — always available (feedback-driven
        #: workloads read it), even when ``retain_raw`` drops the list.
        self.last_record: TickRecord | None = None
        self._last_time_update_us = 0

    # -- the tick ------------------------------------------------------------------

    def run_tick(self) -> TickRecord:
        """Execute one full tick and return its record."""
        server = self.server
        clock = server.clock
        tracer = server.tracer
        start_us = clock.now_us
        # The tracer supplies the report: a segment-stacked one on
        # sampled ticks (spans own segments), a plain one otherwise.
        report = tracer.begin_tick(self.tick_index, start_us)
        with tracer.span("begin"):
            report.add(Op.TICK_FIXED)
            server.entities.begin_tick()

        # 0. Clients that timed out during the previous (monster) tick are
        # discovered as soon as the server looks at its sockets again.
        with tracer.span("timeouts"):
            for client_id in server.net.check_timeouts(start_us):
                server.on_client_timeout(client_id)

        # 1. Player handler: drain the input queue, apply actions.
        with tracer.span("players"):
            actions = server.net.drain_inbound(start_us)
            server.players.process_actions(actions, report)

        # 2. Terrain simulation: scheduled rules, fluids, growth.
        with tracer.span("redstone"):
            server.redstone.tick(start_us, report, tick_index=self.tick_index)
        with tracer.span("fluids"):
            server.fluids.tick(self.tick_index, report)
        with tracer.span("growth"):
            server.growth.tick(report)

        # 3. Entities: fuses/explosions, physics/AI/collisions, spawning.
        with tracer.span("tnt"):
            server.tnt.tick(report)
        with tracer.span("entities"):
            server.entities.tick(report)
        with tracer.span("spawning"):
            server.spawning.tick(server.players.positions(), report)

        # 4. Chat (sync variants process it on the tick thread).
        with tracer.span("chat"):
            server.chat.process_tick(report)

        # 5. Ambient per-chunk simulation cost: scheduling/border checks
        # (Other) plus the per-chunk mob-spawning eligibility scan, which
        # is entity work in the Fig. 11 taxonomy.
        with tracer.span("chunk_ambient"):
            report.add(Op.CHUNK_TICK, server.world.loaded_chunk_count)
            report.add(Op.SPAWN_SCAN, server.world.loaded_chunk_count)

        # 5.5. Chunk lifecycle: incremental autosave (Op.CHUNK_SAVE →
        # "Autosave"), periodic full flush (the save-all tick spike), and
        # view-driven eviction so the loaded-chunk count plateaus.
        with tracer.span("lifecycle"):
            if server.lifecycle is not None:
                server.lifecycle.tick(
                    self.tick_index, report, server.players.view_anchors()
                )

        # 6. Workload hooks (ignition timers, farm harvesters, ...).
        with tracer.span("hooks"):
            for hook in server.tick_hooks:
                hook(server, self.tick_index, report)

        # 7. Outbound state updates.
        with tracer.span("broadcast"):
            self._broadcast_state(report, start_us)

        # Price the work and let the machine turn it into wall time.
        # Allocation pressure (GC demand) scales with live entities and
        # heavy rule-update volume, damped by the variant's GC efficiency.
        with tracer.span("pricing") as pricing:
            work_us = report.total_cost_us(server.variant.cost_table)
            # Entity churn scales with the variant's allocation efficiency;
            # rule-update event objects are engine-agnostic allocations.
            alloc_pressure = (
                server.variant.gc_factor * server.entities.count()
                + (report.get(Op.REDSTONE) + report.get(Op.BLOCK_UPDATE))
                / 600.0
                + report.get(Op.BLOCK_ADD_REMOVE) / 20.0
            )
            duration_us = server.machine.execute(
                work_us,
                server.variant.parallel_fraction,
                start_us,
                background_cpu_fraction=server.variant.background_cpu_fraction,
                alloc_pressure=alloc_pressure,
                extra_thread_cores=max(0, server.variant.thread_count - 24)
                * 0.008,
            )
            if pricing is not None:
                pricing.note(work_us=work_us, duration_us=duration_us)
        clock.advance(duration_us)
        flush_us = clock.now_us

        # Flush: sync chat echoes and keepalives ride the tick boundary.
        # (Flush ops land after pricing, so they are charged to the
        # *next* tick's budget — the "flush" span marks them apart from
        # the work that produced this tick's work_us.)
        with tracer.span("flush"):
            server.chat.flush_processed(flush_us, report)
            timed_out = server.net.flush_keepalives(flush_us, report)
            for client_id in timed_out:
                server.on_client_timeout(client_id)

        # Wait for the next scheduled tick start (if we are not late).
        wait_us = max(0, TICK_BUDGET_US - duration_us)
        if wait_us:
            clock.advance(wait_us)

        record = TickRecord(
            index=self.tick_index,
            start_us=start_us,
            work_us=work_us,
            duration_us=duration_us,
            wait_us=wait_us,
            breakdown_us=report.bucketed_cost_us(server.variant.cost_table),
            overloaded=duration_us > TICK_BUDGET_US,
            clients=server.net.connected_count,
            entities=server.entities.count(),
        )
        # The tick tap folds the record into streaming telemetry; the raw
        # list is only kept for the figure pipeline (retain_raw).
        tracer.end_tick(record, report)
        server.telemetry.observe_tick(record)
        self.last_record = record
        if server.retain_raw:
            self.records.append(record)
        self.tick_index += 1
        return record

    # -- outbound state updates --------------------------------------------------------

    def _broadcast_state(self, report: WorkReport, start_us: int) -> None:
        """Build this tick's server→client state-update packets."""
        server = self.server
        net = server.net

        # Drain the change log and notify observers BEFORE any client
        # gating: observer-triggered redstone is server-side simulation,
        # so it must advance even on headless/zero-bot runs.
        changes = server.world.drain_changes()
        server.redstone.on_block_changes(changes, start_us)
        if net.connected_count == 0:
            return

        # Block changes: per-block packets, or chunk resends past a bulk
        # threshold (explosions rewrite whole regions).  Terrain mutation
        # also drags along the real protocol's side traffic: per-section
        # light updates, sound/effect events, and chunk-section refreshes.
        if changes:
            touched_chunks = {
                (change.x >> 4, change.z >> 4) for change in changes
            }
            if len(changes) > MULTI_BLOCK_THRESHOLD:
                net.broadcast_counted(
                    PacketCategory.CHUNK_DATA, len(touched_chunks), report
                )
            else:
                net.broadcast_counted(
                    PacketCategory.BLOCK_CHANGE, len(changes), report
                )
                if len(changes) > 8:
                    net.broadcast_counted(
                        PacketCategory.CHUNK_SECTION,
                        len(touched_chunks),
                        report,
                    )
            net.broadcast_counted(
                PacketCategory.LIGHT_UPDATE, len(touched_chunks), report
            )
            net.broadcast_counted(
                PacketCategory.SOUND_EFFECT, min(24, len(changes)), report
            )

        # Hopper/container activity (farm collection) syncs block entities.
        if server.entities.collected_items:
            net.broadcast_counted(
                PacketCategory.BLOCK_ENTITY_DATA,
                server.entities.collected_items,
                report,
            )

        # Entity lifecycle packets.
        spawned = len(server.entities.spawned_this_tick)
        removed = len(server.entities.removed_this_tick)
        if spawned:
            net.broadcast_counted(PacketCategory.ENTITY_SPAWN, spawned, report)
        if removed:
            net.broadcast_counted(
                PacketCategory.ENTITY_DESTROY, removed, report
            )

        # Entity movement: every moved entity, at the variant's send rate
        # (PaperMC batches to every other tick).
        interval = server.variant.entity_broadcast_interval
        if self.tick_index % interval == 0:
            moved = server.entities.moved_count()
            if moved:
                net.broadcast_counted(PacketCategory.ENTITY_MOVE, moved, report)
                # A fraction of movers also get velocity sync.
                net.broadcast_counted(
                    PacketCategory.ENTITY_VELOCITY, moved // 4, report
                )

        # Player avatar movement.
        server.players.broadcast_movement(report)

        # World time, once per second.
        if start_us - self._last_time_update_us >= 1_000_000:
            net.broadcast_counted(PacketCategory.TIME_UPDATE, 1, report)
            self._last_time_update_us = start_us
