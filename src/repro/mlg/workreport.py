"""Per-tick work accounting.

Every engine in the game loop records *what it did* (counts of fine-grained
operations) into a :class:`WorkReport`.  A variant's cost model then converts
counts into simulated CPU microseconds, and the machine model converts CPU
time into wall (simulated) time.  The fine categories also aggregate into the
paper's Figure 11 buckets (Block Add/Remove, Block Update, Entities, Other).
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from dataclasses import dataclass, field

__all__ = ["Op", "WorkReport", "FIGURE11_BUCKETS", "bucket_of"]


class Op:
    """Fine-grained operation categories counted by the engines."""

    TICK_FIXED = "tick_fixed"
    BLOCK_ADD_REMOVE = "block_add_remove"
    BLOCK_UPDATE = "block_update"
    LIGHTING = "lighting"
    FLUID = "fluid"
    GROWTH = "growth"
    REDSTONE = "redstone"
    ENTITY_UPDATE = "entity_update"
    ITEM_UPDATE = "item_update"
    TNT_UPDATE = "tnt_update"
    COLLISION_PAIR = "collision_pair"
    EXPLOSION_RAY = "explosion_ray"
    PATHFIND_NODE = "pathfind_node"
    SPAWN_ATTEMPT = "spawn_attempt"
    SPAWN_SCAN = "spawn_scan"
    CHUNK_GEN = "chunk_gen"
    CHUNK_LOAD = "chunk_load"
    CHUNK_SAVE = "chunk_save"
    CHUNK_VIEW = "chunk_view"
    CHUNK_TICK = "chunk_tick"
    PLAYER_ACTION = "player_action"
    CHAT = "chat"
    PACKET = "packet"
    BYTES_OUT = "bytes_out"

    ALL = (
        TICK_FIXED,
        BLOCK_ADD_REMOVE,
        BLOCK_UPDATE,
        LIGHTING,
        FLUID,
        GROWTH,
        REDSTONE,
        ENTITY_UPDATE,
        ITEM_UPDATE,
        TNT_UPDATE,
        COLLISION_PAIR,
        EXPLOSION_RAY,
        PATHFIND_NODE,
        SPAWN_ATTEMPT,
        SPAWN_SCAN,
        CHUNK_GEN,
        CHUNK_LOAD,
        CHUNK_SAVE,
        CHUNK_VIEW,
        CHUNK_TICK,
        PLAYER_ACTION,
        CHAT,
        PACKET,
        BYTES_OUT,
    )


#: Figure 11's tick-distribution buckets (waiting buckets are added by the
#: game loop from measured wait time, not from work counts).
FIGURE11_BUCKETS = (
    "Block Add/Remove",
    "Block Update",
    "Fluids",
    "Entities",
    "Autosave",
    "Chunk Load",
    "Other",
)

_BUCKET_BY_OP = {
    Op.BLOCK_ADD_REMOVE: "Block Add/Remove",
    Op.BLOCK_UPDATE: "Block Update",
    Op.LIGHTING: "Block Update",
    # Fluid cell updates get their own bucket (§2.2.2's "Fluids"
    # terrain-simulation workload) so water-dominated scenarios are
    # attributable in the tick-time distribution.
    Op.FLUID: "Fluids",
    Op.GROWTH: "Block Update",
    Op.REDSTONE: "Block Update",
    Op.ENTITY_UPDATE: "Entities",
    Op.ITEM_UPDATE: "Entities",
    Op.TNT_UPDATE: "Entities",
    Op.COLLISION_PAIR: "Entities",
    Op.EXPLOSION_RAY: "Entities",
    Op.PATHFIND_NODE: "Entities",
    Op.SPAWN_ATTEMPT: "Entities",
    # The per-chunk mob-spawning eligibility scan is entity work (MF4).
    Op.SPAWN_SCAN: "Entities",
    # Chunk IO gets its own buckets so the persistence workloads are
    # attributable in the tick-time distribution: "Autosave" is the
    # periodic dirty-chunk write-back, "Chunk Load" covers bringing a
    # chunk into play — generating it, reading it back from a region
    # file, or re-attaching an already-resident chunk to a player view.
    Op.CHUNK_SAVE: "Autosave",
    Op.CHUNK_GEN: "Chunk Load",
    Op.CHUNK_LOAD: "Chunk Load",
    Op.CHUNK_VIEW: "Chunk Load",
    # Deliberately "Other" (Fig. 11 lumps fixed tick overhead, chunk
    # ticking, player actions, chat, and networking into its catch-all
    # bucket).  Explicit entries rather than fallback so MSL002 can
    # prove every Op has a *decided* bucket — a new Op landing in
    # "Other" by accident is exactly the attribution leak the lint
    # exists to catch.
    Op.TICK_FIXED: "Other",
    Op.CHUNK_TICK: "Other",
    Op.PLAYER_ACTION: "Other",
    Op.CHAT: "Other",
    Op.PACKET: "Other",
    Op.BYTES_OUT: "Other",
}


def bucket_of(op: str) -> str:
    """Map a fine operation category to its Figure 11 bucket.

    Every registered Op has an explicit entry (enforced by lint rule
    MSL002 and ``tests/mlg/test_op_registry.py``); the fallback only
    covers ad-hoc strings from external callers.
    """
    return _BUCKET_BY_OP.get(op, "Other")


@dataclass
class WorkReport:
    """Mutable per-tick tally of operation counts."""

    counts: dict[str, float] = field(default_factory=dict)

    def add(self, op: str, n: float = 1.0) -> None:
        """Record ``n`` occurrences of operation ``op``."""
        if n < 0:
            raise ValueError(f"cannot record negative work ({op}: {n!r})")
        if n:
            self.counts[op] = self.counts.get(op, 0.0) + n

    def get(self, op: str) -> float:
        """Count recorded for ``op`` (0.0 when absent)."""
        return self.counts.get(op, 0.0)

    def merge(self, other: "WorkReport") -> None:
        """Fold another report's counts into this one."""
        for op, n in other.counts.items():
            self.counts[op] = self.counts.get(op, 0.0) + n

    def cost_us(self, cost_table: Mapping[str, float]) -> dict[str, float]:
        """Convert counts to CPU microseconds using ``cost_table``.

        Operations missing from the table cost nothing; this lets variants
        zero out work they optimize away entirely.
        """
        return {
            op: n * cost_table.get(op, 0.0)
            for op, n in self.counts.items()
            if cost_table.get(op, 0.0) > 0.0
        }

    def total_cost_us(self, cost_table: Mapping[str, float]) -> float:
        """Total CPU microseconds implied by this report."""
        return sum(self.cost_us(cost_table).values())

    def bucketed_cost_us(
        self, cost_table: Mapping[str, float]
    ) -> dict[str, float]:
        """Cost aggregated into Figure 11 buckets."""
        buckets: dict[str, float] = {}
        for op, us in self.cost_us(cost_table).items():
            bucket = bucket_of(op)
            buckets[bucket] = buckets.get(bucket, 0.0) + us
        return buckets

    def nonzero_ops(self) -> Iterable[str]:
        """Operations with a positive count, in insertion order."""
        return (op for op, n in self.counts.items() if n > 0)

    def copy(self) -> "WorkReport":
        return WorkReport(dict(self.counts))
