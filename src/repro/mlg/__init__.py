"""Minecraft-like game (MLG) server simulator.

Implements the paper's operational model (§2): a chunked modifiable voxel
world, terrain simulation (lighting, fluids, growth, redstone), entities
(items, mobs, TNT) with dynamic pathfinding and spawning, a player handler,
networking queues with a typed packet taxonomy, and a 20 Hz game loop whose
tick durations emerge from counted work priced by per-variant cost models.
"""

from repro.mlg.blocks import Block, BlockSpec, spec
from repro.mlg.constants import (
    TICK_BUDGET_MS,
    TICK_BUDGET_US,
    TICK_RATE_HZ,
)
from repro.mlg.entity import Entity, EntityKind
from repro.mlg.gameloop import TickRecord
from repro.mlg.protocol import (
    ActionKind,
    PacketCategory,
    PacketStats,
    PlayerAction,
)
from repro.mlg.server import MLGServer
from repro.mlg.variants import (
    FORGE,
    PAPERMC,
    VANILLA,
    VariantProfile,
    get_variant,
)
from repro.mlg.workreport import Op, WorkReport
from repro.mlg.world import BlockChange, Chunk, World
from repro.mlg.worldgen import PAPER_SEED, TerrainGenerator

__all__ = [
    "ActionKind",
    "Block",
    "BlockChange",
    "BlockSpec",
    "Chunk",
    "Entity",
    "EntityKind",
    "FORGE",
    "MLGServer",
    "Op",
    "PAPERMC",
    "PAPER_SEED",
    "PacketCategory",
    "PacketStats",
    "PlayerAction",
    "TICK_BUDGET_MS",
    "TICK_BUDGET_US",
    "TICK_RATE_HZ",
    "TerrainGenerator",
    "TickRecord",
    "VANILLA",
    "VariantProfile",
    "WorkReport",
    "World",
    "get_variant",
    "spec",
]
