"""Redstone engine — simulated-construct logic (§2.2.2, §3.3.1).

Implements the terrain-simulation rules that power the paper's Farm-world
timers and the Lag-world machine: redstone wire power propagation, repeaters
(delayed propagation), observers (pulse on neighbor change), pistons (block
movement), and clock circuits.

Events are scheduled in **simulated microseconds**, not game ticks.  This is
the detail behind the paper's Lag-machine crash on AWS (§5.3): when a tick
overruns, every clock period that elapsed during the overrun becomes due at
once, so a server that cannot keep up sees its per-tick update volume grow —
positive feedback that ends in a tick long enough to time out every client.
A fast enough server stays subcritical and merely alternates between short
and long ticks, which maximizes ISR.
"""

from __future__ import annotations

import heapq
from collections import deque
from collections.abc import Iterable
from dataclasses import dataclass, field

from repro.mlg.blocks import Block
from repro.mlg.workreport import Op, WorkReport
from repro.mlg.world import BlockChange, World

__all__ = ["ClockCircuit", "RedstoneEngine", "PISTON_FACINGS", "REDSTONE_TICK_US"]

#: One redstone tick = two game ticks = 100 ms.
REDSTONE_TICK_US = 100_000

#: Piston facing table: aux value -> (dx, dy, dz).
PISTON_FACINGS = (
    (0, 1, 0),
    (0, -1, 0),
    (1, 0, 0),
    (-1, 0, 0),
    (0, 0, 1),
    (0, 0, -1),
)

#: Blocks a piston can push.
_PUSHABLE = frozenset(
    {
        Block.STONE,
        Block.COBBLESTONE,
        Block.DIRT,
        Block.SAND,
        Block.GRAVEL,
        Block.SLAB,
        Block.ICE,
    }
)


@dataclass
class ClockCircuit:
    """A free-running clock driving a wire net and a set of pistons.

    ``gate_count`` models the size of the attached logic-gate network: each
    pulse evaluates that many gates (the "high volume of simulation rule
    activations" the paper's Lag machine is built from).  ``sources`` are
    wire positions the pulse energizes; ``pistons`` toggle on each pulse.

    Clocks are scheduled either in simulated time (``period_us``; missed
    periods pile up when the server lags — the runaway ingredient) or in
    game ticks (``period_ticks``; one pulse every N executed ticks, stable
    at any speed — how scheduled block updates really work).
    """

    period_us: int = 0
    period_ticks: int = 0
    gate_count: int = 0
    sources: list[tuple[int, int, int]] = field(default_factory=list)
    pistons: list[tuple[int, int, int]] = field(default_factory=list)
    phase_us: int = 0
    phase_ticks: int = 0
    powered: bool = False
    fired_pulses: int = 0
    #: Work category the gate network's evaluations are charged to.
    #: Redstone-heavy timers use ``Op.REDSTONE``; update-suppression lag
    #: machines stress the generic block-update path (``Op.BLOCK_UPDATE``),
    #: which performance forks do not optimize.
    gate_op: str = Op.REDSTONE

    def __post_init__(self) -> None:
        if self.period_us <= 0 and self.period_ticks <= 0:
            raise ValueError(
                "a clock needs a positive period_us or period_ticks"
            )
        if self.period_us > 0 and self.period_ticks > 0:
            raise ValueError(
                "choose one scheduling mode: period_us or period_ticks"
            )
        if self.period_ticks > 0:
            # Normalize so the fire condition (tick % period == phase) can
            # actually match: a phase at or past the period would never
            # fire, silently muting the clock.
            self.phase_ticks %= self.period_ticks


class RedstoneEngine:
    """Executes redstone events due by the current simulated time."""

    #: Safety valve: at most this many backlogged pulses run per clock per
    #: tick.  By the time a clock is this far behind, the tick is already
    #: long past the client timeout, so capping only bounds host CPU.
    MAX_BACKLOG_PULSES = 64

    def __init__(self, world: World) -> None:
        self.world = world
        self._heap: list[tuple[int, int, int, tuple]] = []
        self._seq = 0
        self._clocks: list[ClockCircuit] = []
        self._observers: set[tuple[int, int, int]] = set()
        #: Total updates executed in the most recent tick.
        self.last_tick_updates = 0

    # -- construction ---------------------------------------------------------

    def add_clock(self, clock: ClockCircuit, now_us: int = 0) -> ClockCircuit:
        """Register a clock.

        Sim-time clocks get their first fire scheduled on the event heap;
        game-tick clocks are polled by :meth:`tick` against the tick index.
        """
        self._clocks.append(clock)
        if clock.period_us > 0:
            first = now_us + clock.phase_us + clock.period_us
            self._push(first, "clock", (len(self._clocks) - 1,))
        return clock

    def register_observer(self, x: int, y: int, z: int) -> None:
        """Track an observer block so neighbor changes emit pulses."""
        self._observers.add((x, y, z))

    @property
    def clocks(self) -> list[ClockCircuit]:
        return self._clocks

    def pending_events(self) -> int:
        return len(self._heap)

    def anchored_chunks(self) -> set[tuple[int, int]]:
        """Chunks referenced by live redstone state (eviction anchors):
        clock wire nets and pistons, scheduled event positions, and
        registered observers."""
        positions: set[tuple[int, int, int]] = set(self._observers)
        for clock in self._clocks:
            positions.update(clock.sources)
            positions.update(clock.pistons)
        for _, _, _, (kind, payload) in self._heap:
            if kind != "clock":
                positions.add(payload[0])
        return {(x >> 4, z >> 4) for x, _y, z in positions}

    def _push(self, due_us: int, kind: str, payload: tuple) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (int(due_us), self._seq, 0, (kind, payload)))

    # -- change notifications --------------------------------------------------

    def on_block_changes(
        self, changes: Iterable[BlockChange], now_us: int
    ) -> None:
        """Feed the tick's block changes; observers near them emit pulses."""
        if not self._observers:
            return
        for change in changes:
            x, y, z = change.x, change.y, change.z
            for pos in (
                (x + 1, y, z),
                (x - 1, y, z),
                (x, y + 1, z),
                (x, y - 1, z),
                (x, y, z + 1),
                (x, y, z - 1),
            ):
                if pos in self._observers:
                    self._push(
                        now_us + REDSTONE_TICK_US, "observer_pulse", (pos,)
                    )

    # -- execution --------------------------------------------------------------

    def tick(
        self, now_us: int, report: WorkReport, tick_index: int = 0
    ) -> int:
        """Run every event due at or before ``now_us``; returns update count.

        Game-tick-scheduled clocks fire here too, when
        ``tick_index % period_ticks == phase_ticks``.
        """
        updates = 0
        for clock in self._clocks:
            if (
                clock.period_ticks > 0
                and tick_index % clock.period_ticks == clock.phase_ticks
            ):
                updates += self._fire_clock(clock, now_us, report)
        fired_per_clock: dict[int, int] = {}
        while self._heap and self._heap[0][0] <= now_us:
            due_us, _, _, (kind, payload) = heapq.heappop(self._heap)
            if kind == "clock":
                (index,) = payload
                fired = fired_per_clock.get(index, 0)
                clock = self._clocks[index]
                if fired < self.MAX_BACKLOG_PULSES:
                    updates += self._fire_clock(clock, due_us, report)
                    fired_per_clock[index] = fired + 1
                # Reschedule from the *due* time so missed periods pile up.
                next_due = due_us + clock.period_us
                if next_due <= now_us and fired + 1 >= self.MAX_BACKLOG_PULSES:
                    next_due = now_us + clock.period_us
                self._push(next_due, "clock", payload)
            elif kind == "observer_pulse":
                (pos,) = payload
                updates += self._fire_observer(pos, due_us, report)
            elif kind == "wire_power":
                pos, power = payload
                updates += self._propagate(pos, power, due_us, report)
        self.last_tick_updates = updates
        return updates

    def _fire_clock(
        self, clock: ClockCircuit, now_us: int, report: WorkReport
    ) -> int:
        clock.powered = not clock.powered
        clock.fired_pulses += 1
        updates = clock.gate_count
        if clock.gate_count:
            report.add(clock.gate_op, clock.gate_count)
        power = 15 if clock.powered else 0
        for source in clock.sources:
            updates += self._propagate(source, power, now_us, report)
        for piston_pos in clock.pistons:
            updates += self._set_piston(piston_pos, clock.powered, report)
        return updates

    def _fire_observer(
        self, pos: tuple[int, int, int], now_us: int, report: WorkReport
    ) -> int:
        """An observer emits a short pulse into adjacent wires/pistons."""
        report.add(Op.REDSTONE, 1)
        x, y, z = pos
        updates = 1
        for nx, ny, nz in self.world.neighbors6(x, y, z):
            block = self.world.get_block(nx, ny, nz)
            if block == Block.REDSTONE_WIRE:
                updates += self._propagate((nx, ny, nz), 15, now_us, report)
            elif block == Block.PISTON:
                updates += self._set_piston((nx, ny, nz), True, report)
        return updates

    def _propagate(
        self,
        source: tuple[int, int, int],
        power: int,
        now_us: int,
        report: WorkReport,
    ) -> int:
        """BFS power propagation along wire from ``source``.

        Wires decrement power by one per block, relaxed to the *maximum*
        power reachable over any path (a long branch can no longer lock a
        weaker level into a wire that a shorter branch reaches later);
        repeaters re-emit full power after their delay (scheduled as a
        future event); pistons adjacent to a powered wire extend, and
        retract when the wire turns off.  ``power=0`` depropagates the
        whole connected net (see :meth:`_depropagate`).
        """
        world = self.world
        if world.get_block(*source) != Block.REDSTONE_WIRE:
            return 0
        if power <= 0:
            return self._depropagate(source, now_us, report)
        best: dict[tuple[int, int, int], int] = {source: power}
        frontier: deque[tuple[int, int, int]] = deque([source])
        evaluations = 0
        while frontier:
            pos = frontier.popleft()
            x, y, z = pos
            level = best[pos]
            evaluations += 1
            for nx, ny, nz in world.neighbors6(x, y, z):
                npos = (nx, ny, nz)
                block = world.get_block(nx, ny, nz)
                if block == Block.REDSTONE_WIRE:
                    candidate = level - 1
                    if candidate > best.get(npos, -1):
                        if npos not in best:
                            evaluations += 1
                        best[npos] = candidate
                        if candidate > 0:
                            frontier.append(npos)
                elif block == Block.REPEATER and level > 0:
                    delay_ticks = max(1, world.get_aux(nx, ny, nz) or 1)
                    # Re-emit at full power on the far side after the delay.
                    far = (2 * nx - x, 2 * ny - y, 2 * nz - z)
                    self._push(
                        now_us + delay_ticks * REDSTONE_TICK_US,
                        "wire_power",
                        (far, 15),
                    )
                    evaluations += 1
                elif block == Block.PISTON:
                    self._set_piston(npos, level > 0, report)
        for (x, y, z), level in best.items():
            world.set_aux(x, y, z, level)
        report.add(Op.REDSTONE, evaluations)
        return evaluations

    def _depropagate(
        self,
        source: tuple[int, int, int],
        now_us: int,
        report: WorkReport,
    ) -> int:
        """Zero aux power across the whole wire net connected to ``source``.

        The falling edge must walk as far as the rising edge did: zeroing
        only the source and its direct neighbors left every wire ≥2 blocks
        away energized forever, so a clock's off phase never actually
        turned its circuit off.  Repeaters forward the falling edge after
        their delay; pistons on the net retract.
        """
        world = self.world
        visited = {source}
        frontier: deque[tuple[int, int, int]] = deque([source])
        evaluations = 0
        while frontier:
            x, y, z = frontier.popleft()
            evaluations += 1
            world.set_aux(x, y, z, 0)
            for nx, ny, nz in world.neighbors6(x, y, z):
                npos = (nx, ny, nz)
                block = world.get_block(nx, ny, nz)
                if block == Block.REDSTONE_WIRE and npos not in visited:
                    visited.add(npos)
                    frontier.append(npos)
                elif block == Block.REPEATER:
                    delay_ticks = max(1, world.get_aux(nx, ny, nz) or 1)
                    far = (2 * nx - x, 2 * ny - y, 2 * nz - z)
                    self._push(
                        now_us + delay_ticks * REDSTONE_TICK_US,
                        "wire_power",
                        (far, 0),
                    )
                    evaluations += 1
                elif block == Block.PISTON:
                    self._set_piston(npos, False, report)
        report.add(Op.REDSTONE, evaluations)
        return evaluations

    def _set_piston(
        self, pos: tuple[int, int, int], extend: bool, report: WorkReport
    ) -> int:
        """Extend or retract a piston, moving a pushable block if present."""
        x, y, z = pos
        world = self.world
        if world.get_block(x, y, z) != Block.PISTON:
            return 0
        facing = PISTON_FACINGS[world.get_aux(x, y, z) % 6]
        hx, hy, hz = x + facing[0], y + facing[1], z + facing[2]
        head_block = world.get_block(hx, hy, hz)
        changed = 0
        if extend and head_block != Block.PISTON_HEAD:
            if head_block in _PUSHABLE:
                bx, by, bz = hx + facing[0], hy + facing[1], hz + facing[2]
                if world.get_block(bx, by, bz) == Block.AIR:
                    world.set_block(bx, by, bz, head_block)
                    changed += 1
            if world.get_block(hx, hy, hz) in (Block.AIR, head_block):
                world.set_block(hx, hy, hz, Block.PISTON_HEAD)
                changed += 1
        elif not extend and head_block == Block.PISTON_HEAD:
            world.set_block(hx, hy, hz, Block.AIR)
            changed += 1
        if changed:
            report.add(Op.BLOCK_ADD_REMOVE, changed)
            # Piston light occlusion changes are small and local; charge a
            # flat relight estimate instead of running the BFS.
            report.add(Op.LIGHTING, 48 * changed)
        report.add(Op.REDSTONE, 1)
        return changed + 1
