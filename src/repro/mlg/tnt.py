"""TNT and explosions — the paper's TNT workload substrate (§3.3.1).

Primed TNT is an entity with a fuse; on expiry it explodes, casting rays
(counted as work — vanilla casts 1352 rays per explosion), destroying
terrain in a blast sphere, priming any TNT blocks it uncovers (the chain
reaction), knocking back nearby entities, and occasionally dropping items.

PaperMC's TNT optimization (Appendix A / §5.3: "performance optimizations
specifically for handling TNT explosions") is modeled in the variant cost
table (cheaper rays/collisions) and by merging co-located TNT entities.
"""

from __future__ import annotations

import numpy as np

from repro.mlg.blocks import Block, spec
from repro.mlg.constants import CHUNK_SIZE, WORLD_HEIGHT
from repro.mlg.entity import Entity, EntityKind
from repro.mlg.entity_manager import EntityManager
from repro.mlg.workreport import Op, WorkReport
from repro.mlg.world import BlockChange, World

__all__ = ["TNTSystem", "DEFAULT_FUSE_TICKS", "RAYS_PER_EXPLOSION"]

#: Vanilla fuse length, in game ticks (4 s).
DEFAULT_FUSE_TICKS = 80
#: Rays cast per explosion in the vanilla algorithm (16×16×16 minus interior).
RAYS_PER_EXPLOSION = 1352
#: Blast radius of a TNT explosion, in blocks.
BLAST_RADIUS = 3.2
#: Chance that a destroyed block drops an item entity.
DROP_CHANCE = 0.08
#: Cap on item drops per explosion (keeps chains from flooding items).
MAX_DROPS_PER_EXPLOSION = 4


class TNTSystem:
    """Manages primed TNT entities and executes explosions."""

    def __init__(
        self,
        world: World,
        entities: EntityManager,
        rng: np.random.Generator,
    ) -> None:
        self.world = world
        self.entities = entities
        self.rng = rng
        #: Cumulative explosion count (exposed to collectors).
        self.explosions_total = 0
        self.blocks_destroyed_total = 0

    # -- priming ------------------------------------------------------------------

    def prime_block(
        self, x: int, y: int, z: int, fuse_ticks: int | None = None
    ) -> Entity | None:
        """Convert a TNT block into a primed TNT entity."""
        if self.world.get_block(x, y, z) != Block.TNT:
            return None
        self.world.set_block(x, y, z, Block.AIR)
        fuse = (
            fuse_ticks
            if fuse_ticks is not None
            else DEFAULT_FUSE_TICKS + int(self.rng.integers(-10, 11))
        )
        return self.entities.spawn(
            EntityKind.TNT,
            x + 0.5,
            y + 0.5,
            z + 0.5,
            vx=float(self.rng.uniform(-0.02, 0.02)),
            vy=0.1,
            vz=float(self.rng.uniform(-0.02, 0.02)),
            fuse_ticks=max(1, fuse),
        )

    def prime_region(
        self,
        x0: int,
        y0: int,
        z0: int,
        x1: int,
        y1: int,
        z1: int,
        fuse_spread: tuple[int, int] = (70, 95),
    ) -> int:
        """Prime every TNT block in an inclusive cuboid; returns the count.

        Fuses are randomized within ``fuse_spread`` so the chain detonates
        as a multi-tick wave rather than a single impulse, matching how a
        large activated TNT cuboid behaves.
        """
        primed = 0
        lo, hi = fuse_spread
        for x in range(x0, x1 + 1):
            for y in range(y0, y1 + 1):
                for z in range(z0, z1 + 1):
                    if self.world.get_block(x, y, z) == Block.TNT:
                        fuse = int(self.rng.integers(lo, hi + 1))
                        if self.prime_block(x, y, z, fuse) is not None:
                            primed += 1
        return primed

    # -- per-tick update -------------------------------------------------------------

    def tick(self, report: WorkReport) -> int:
        """Decrement fuses and explode expired TNT; returns explosion count.

        Fuse countdown is a single array op over the entity store; only
        the (few) expired entities come back as handles to detonate.
        """
        exploding = self.entities.expire_fuses()
        for entity in exploding:
            self.explode(entity, report)
        return len(exploding)

    # -- explosion --------------------------------------------------------------------

    def explode(self, entity: Entity, report: WorkReport) -> int:
        """Detonate ``entity``; returns the number of blocks destroyed."""
        self.entities.remove(entity)
        cx, cy, cz = entity.x, entity.y, entity.z
        report.add(Op.EXPLOSION_RAY, RAYS_PER_EXPLOSION)
        destroyed = self._destroy_sphere(cx, cy, cz, BLAST_RADIUS, report)
        self._knockback(cx, cy, cz)
        self.explosions_total += 1
        self.blocks_destroyed_total += destroyed
        return destroyed

    def _destroy_sphere(
        self, cx: float, cy: float, cz: float, radius: float,
        report: WorkReport,
    ) -> int:
        """Vectorized blast-sphere destruction across overlapped chunks."""
        r = int(np.ceil(radius))
        x_lo, x_hi = int(np.floor(cx - r)), int(np.floor(cx + r))
        z_lo, z_hi = int(np.floor(cz - r)), int(np.floor(cz + r))
        y_lo = max(1, int(np.floor(cy - r)))
        y_hi = min(WORLD_HEIGHT - 1, int(np.floor(cy + r)))
        if y_hi < y_lo:
            return 0
        destroyed = 0
        chain_fuses: list[tuple[int, int, int]] = []
        drops = 0
        for chunk_x in range(x_lo >> 4, (x_hi >> 4) + 1):
            for chunk_z in range(z_lo >> 4, (z_hi >> 4) + 1):
                chunk = self.world.get_chunk(chunk_x, chunk_z)
                if chunk is None:
                    continue
                base_x = chunk_x * CHUNK_SIZE
                base_z = chunk_z * CHUNK_SIZE
                lx_lo = max(0, x_lo - base_x)
                lx_hi = min(CHUNK_SIZE - 1, x_hi - base_x)
                lz_lo = max(0, z_lo - base_z)
                lz_hi = min(CHUNK_SIZE - 1, z_hi - base_z)
                if lx_hi < lx_lo or lz_hi < lz_lo:
                    continue
                region = chunk.blocks[
                    lx_lo : lx_hi + 1, lz_lo : lz_hi + 1, y_lo : y_hi + 1
                ]
                gx = base_x + np.arange(lx_lo, lx_hi + 1)
                gz = base_z + np.arange(lz_lo, lz_hi + 1)
                gy = np.arange(y_lo, y_hi + 1)
                dist_sq = (
                    (gx[:, None, None] + 0.5 - cx) ** 2
                    + (gz[None, :, None] + 0.5 - cz) ** 2
                    + (gy[None, None, :] + 0.5 - cy) ** 2
                )
                in_blast = dist_sq <= radius * radius
                breakable = np.isin(region, _BREAKABLE_IDS) & in_blast
                # TNT blocks in (or just beyond) the blast get primed.
                tnt_mask = (region == Block.TNT) & (
                    dist_sq <= (radius + 1.0) ** 2
                )
                txs, tzs, tys = np.nonzero(tnt_mask)
                for tx, tz, ty in zip(txs, tzs, tys):
                    chain_fuses.append(
                        (base_x + lx_lo + int(tx), y_lo + int(ty),
                         base_z + lz_lo + int(tz))
                    )
                breakable |= tnt_mask
                n_broken = int(breakable.sum())
                if n_broken:
                    bxs, bzs, bys = np.nonzero(breakable)
                    for bx, bz, by in zip(bxs, bzs, bys):
                        wx = base_x + lx_lo + int(bx)
                        wz = base_z + lz_lo + int(bz)
                        wy = y_lo + int(by)
                        old = int(region[bx, bz, by])
                        self.world._change_log.append(
                            BlockChange(wx, wy, wz, old, Block.AIR)
                        )
                        if (
                            old != Block.TNT
                            and spec(old).drops_item
                            and drops < MAX_DROPS_PER_EXPLOSION
                            and self.rng.random() < DROP_CHANCE
                        ):
                            self.entities.spawn(
                                EntityKind.ITEM, wx + 0.5, wy + 0.5, wz + 0.5,
                                vy=0.15,
                            )
                            drops += 1
                    region[breakable] = Block.AIR
                    chunk.dirty = True
                    chunk.recompute_heightmap()
                    destroyed += n_broken
        for x, y, z in chain_fuses:
            # Chain-primed TNT gets a short random fuse (vanilla: 10-30).
            # The block was already cleared with the blast region above, so
            # spawn the primed entity directly.
            self.entities.spawn(
                EntityKind.TNT,
                x + 0.5,
                y + 0.5,
                z + 0.5,
                vx=float(self.rng.uniform(-0.05, 0.05)),
                vy=0.12,
                vz=float(self.rng.uniform(-0.05, 0.05)),
                fuse_ticks=int(self.rng.integers(10, 31)),
            )
        if destroyed:
            report.add(Op.BLOCK_ADD_REMOVE, destroyed)
            # Blast craters change occlusion; charge a local relight.
            report.add(Op.LIGHTING, destroyed * 6)
        return destroyed

    def _knockback(self, cx: float, cy: float, cz: float) -> None:
        """Impulse away from the blast center for nearby entities."""
        near = self.entities.entities_near(cx, cy, cz, BLAST_RADIUS * 2)
        for other in near:
            dx = other.x - cx
            dy = other.y - cy
            dz = other.z - cz
            dist = max(0.5, (dx * dx + dy * dy + dz * dz) ** 0.5)
            strength = 0.6 / dist
            other.vx += dx / dist * strength
            other.vy += abs(dy) / dist * strength * 0.5 + 0.05
            other.vz += dz / dist * strength


_BREAKABLE_IDS = np.array(
    [
        block_id
        for block_id in Block.ALL
        if 0.0 <= spec(block_id).blast_resistance < 100.0
        and block_id != Block.AIR
    ],
    dtype=np.uint8,
)
