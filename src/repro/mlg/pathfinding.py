"""Dynamic A* pathfinding on the voxel world (§2.2.3).

Static games precompute overlay graphs for NPC navigation; MLGs cannot,
because the terrain changes.  This module searches the live world on every
request and reports the number of expanded nodes, which is the work the
cost model charges for ("compute path-finding graphs dynamically, leading to
additional compute-intensive workload").
"""

from __future__ import annotations

import heapq

from repro.mlg.blocks import Block
from repro.mlg.workreport import Op, WorkReport
from repro.mlg.world import World

__all__ = ["PathFinder", "PathResult"]


class PathResult:
    """Outcome of one A* search."""

    __slots__ = ("path", "expanded", "found")

    def __init__(
        self, path: list[tuple[int, int, int]], expanded: int, found: bool
    ) -> None:
        self.path = path
        self.expanded = expanded
        self.found = found

    def __bool__(self) -> bool:
        return self.found


class PathFinder:
    """A* over walkable voxel cells.

    A cell is walkable when it has a solid floor and two non-solid blocks of
    body room; mobs can also wade through water.  Step height is one block
    up or down (plus falls of up to three blocks).
    """

    def __init__(self, world: World, max_expansions: int = 400) -> None:
        self.world = world
        self.max_expansions = max_expansions

    def is_walkable(self, x: int, y: int, z: int) -> bool:
        """Can a mob stand at (occupy) this cell?"""
        world = self.world
        floor = world.get_block(x, y - 1, z)
        body = world.get_block(x, y, z)
        head = world.get_block(x, y + 1, z)
        floor_ok = world.is_solid_at(x, y - 1, z) or floor in (
            Block.WATER_SOURCE,
            Block.WATER_FLOW,
        )
        body_ok = not world.is_solid_at(x, y, z)
        head_ok = not world.is_solid_at(x, y + 1, z)
        del body, head
        return floor_ok and body_ok and head_ok

    def _neighbors(self, x: int, y: int, z: int):
        for dx, dz in ((1, 0), (-1, 0), (0, 1), (0, -1)):
            nx, nz = x + dx, z + dz
            # Same level, step up, or step/fall down (up to 3).
            for dy in (0, 1, -1, -2, -3):
                ny = y + dy
                if ny < 1:
                    continue
                if self.is_walkable(nx, ny, nz):
                    yield nx, ny, nz
                    break

    @staticmethod
    def _heuristic(a: tuple[int, int, int], b: tuple[int, int, int]) -> float:
        return (
            abs(a[0] - b[0]) + abs(a[1] - b[1]) * 0.5 + abs(a[2] - b[2])
        )

    def find_path(
        self,
        start: tuple[int, int, int],
        goal: tuple[int, int, int],
        report: WorkReport | None = None,
    ) -> PathResult:
        """A* from ``start`` to ``goal`` with a node-expansion budget.

        Always records the expansion count (even on failure) — failed
        searches still cost CPU, and in MLGs they are common because the
        terrain changes under the navigator.
        """
        if not self.is_walkable(*start):
            if report is not None:
                report.add(Op.PATHFIND_NODE, 1)
            return PathResult([], 1, False)
        open_heap: list[tuple[float, int, tuple[int, int, int]]] = []
        heapq.heappush(open_heap, (self._heuristic(start, goal), 0, start))
        came_from: dict[tuple[int, int, int], tuple[int, int, int]] = {}
        g_score = {start: 0.0}
        expanded = 0
        counter = 0
        found = False
        current = start
        while open_heap and expanded < self.max_expansions:
            _, _, current = heapq.heappop(open_heap)
            expanded += 1
            if current == goal:
                found = True
                break
            cg = g_score[current]
            for neighbor in self._neighbors(*current):
                tentative = cg + 1.0 + 0.4 * abs(neighbor[1] - current[1])
                if tentative < g_score.get(neighbor, float("inf")):
                    g_score[neighbor] = tentative
                    came_from[neighbor] = current
                    counter += 1
                    heapq.heappush(
                        open_heap,
                        (
                            tentative + self._heuristic(neighbor, goal),
                            counter,
                            neighbor,
                        ),
                    )
        if report is not None:
            report.add(Op.PATHFIND_NODE, expanded)
        if not found:
            return PathResult([], expanded, False)
        path = [current]
        while current in came_from:
            current = came_from[current]
            path.append(current)
        path.reverse()
        return PathResult(path, expanded, True)
